#include <gtest/gtest.h>

#include "tcp/endpoint.h"

namespace tamper::tcp {
namespace {

using namespace net::tcpflag;

EndpointConfig client_config() {
  EndpointConfig config;
  config.addr = net::IpAddress::v4(11, 0, 0, 2);
  config.port = 40000;
  config.is_client = true;
  config.isn = 5000;
  config.request_segments = {{'G', 'E', 'T'}};
  config.think_time = 0.01;
  return config;
}

EndpointConfig server_config() {
  EndpointConfig config;
  config.addr = net::IpAddress::v4(198, 18, 0, 1);
  config.port = 443;
  config.is_client = false;
  config.isn = 90000;
  config.response_size = 1000;
  return config;
}

net::Packet packet_from(const net::IpAddress& src, std::uint16_t sport,
                        const net::IpAddress& dst, std::uint16_t dport,
                        std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                        std::vector<std::uint8_t> payload = {}) {
  return net::make_tcp_packet(src, sport, dst, dport, flags, seq, ack,
                              std::move(payload));
}

TEST(ClientEndpoint, StartEmitsSynWithOptions) {
  TcpEndpoint client(client_config(), common::Rng(1));
  client.set_peer(net::IpAddress::v4(198, 18, 0, 1), 443);
  const auto actions = client.start(0.0);
  ASSERT_EQ(actions.packets.size(), 1u);
  const net::Packet& syn = actions.packets[0];
  EXPECT_EQ(syn.tcp.flags, kSyn);
  EXPECT_EQ(syn.tcp.seq, 5000u);
  EXPECT_TRUE(syn.tcp.mss().has_value());
  EXPECT_TRUE(syn.tcp.sack_permitted());
  EXPECT_EQ(client.state(), TcpState::kSynSent);
  EXPECT_FALSE(actions.timers.empty());  // SYN retransmit armed
}

TEST(ClientEndpoint, HandshakeThenThinkTimer) {
  auto config = client_config();
  TcpEndpoint client(config, common::Rng(1));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  (void)client.start(0.0);
  const auto actions = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kSyn | kAck, 90000, 5001),
      0.05);
  ASSERT_EQ(actions.packets.size(), 1u);
  EXPECT_EQ(actions.packets[0].tcp.flags, kAck);
  EXPECT_EQ(actions.packets[0].tcp.ack, 90001u);
  EXPECT_EQ(client.state(), TcpState::kEstablished);
  ASSERT_EQ(actions.timers.size(), 1u);
  EXPECT_EQ(actions.timers[0].kind, TimerKind::kThink);
}

TEST(ClientEndpoint, ThinkTimerSendsRequest) {
  auto config = client_config();
  TcpEndpoint client(config, common::Rng(1));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  (void)client.start(0.0);
  auto hs = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kSyn | kAck, 90000, 5001),
      0.05);
  const auto& think = hs.timers[0];
  const auto actions = client.on_timer(think.kind, think.generation, 0.06);
  ASSERT_FALSE(actions.packets.empty());
  const net::Packet& data = actions.packets[0];
  EXPECT_EQ(data.tcp.flags, kPsh | kAck);
  EXPECT_EQ(data.tcp.seq, 5001u);
  EXPECT_EQ(data.payload.size(), 3u);
}

TEST(ClientEndpoint, StaleTimerIgnored) {
  TcpEndpoint client(client_config(), common::Rng(1));
  client.set_peer(net::IpAddress::v4(198, 18, 0, 1), 443);
  (void)client.start(0.0);
  // Generation 999 was never issued.
  const auto actions = client.on_timer(TimerKind::kThink, 999, 1.0);
  EXPECT_TRUE(actions.packets.empty());
}

TEST(ClientEndpoint, SynRetransmitThenStop) {
  auto config = client_config();
  config.syn_retries = 2;
  TcpEndpoint client(config, common::Rng(1));
  client.set_peer(net::IpAddress::v4(198, 18, 0, 1), 443);
  auto start = client.start(0.0);
  auto retry1 = client.on_timer(TimerKind::kSynRetransmit,
                                start.timers[0].generation, 1.0);
  ASSERT_EQ(retry1.packets.size(), 1u);
  EXPECT_EQ(retry1.packets[0].tcp.flags, kSyn);
  ASSERT_EQ(retry1.timers.size(), 1u);
  auto retry2 = client.on_timer(TimerKind::kSynRetransmit,
                                retry1.timers[0].generation, 3.0);
  ASSERT_EQ(retry2.packets.size(), 1u);
  EXPECT_TRUE(retry2.timers.empty());  // retries exhausted
}

TEST(ClientEndpoint, RstKillsSession) {
  auto config = client_config();
  TcpEndpoint client(config, common::Rng(1));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  (void)client.start(0.0);
  const auto actions = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kRst, 0, 0), 0.1);
  EXPECT_TRUE(actions.packets.empty());
  EXPECT_EQ(client.state(), TcpState::kReset);
  EXPECT_TRUE(client.quiescent());
}

TEST(ClientEndpoint, SynOnlyVanishesImmediately) {
  auto config = client_config();
  config.kind = ClientKind::kSynOnly;
  TcpEndpoint client(config, common::Rng(1));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  const auto start = client.start(0.0);
  ASSERT_EQ(start.packets.size(), 1u);
  EXPECT_TRUE(client.quiescent());
  const auto reply = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kSyn | kAck, 1, 5001), 0.1);
  EXPECT_TRUE(reply.packets.empty());
}

struct CancelCase {
  ClientKind kind;
  std::uint8_t expected_flags;  // 0 = expects silence
};

class SynAckCancelSweep : public ::testing::TestWithParam<CancelCase> {};

TEST_P(SynAckCancelSweep, RespondsAsSpecified) {
  auto config = client_config();
  config.kind = GetParam().kind;
  TcpEndpoint client(config, common::Rng(1));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  (void)client.start(0.0);
  const auto actions = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kSyn | kAck, 90000, 5001),
      0.05);
  if (GetParam().expected_flags == 0) {
    EXPECT_TRUE(actions.packets.empty());
  } else {
    ASSERT_EQ(actions.packets.size(), 1u);
    EXPECT_EQ(actions.packets[0].tcp.flags, GetParam().expected_flags);
  }
  EXPECT_TRUE(client.quiescent());
}

INSTANTIATE_TEST_SUITE_P(Kinds, SynAckCancelSweep,
                         ::testing::Values(CancelCase{ClientKind::kRstOnSynAck, kRst},
                                           CancelCase{ClientKind::kRstAckOnSynAck,
                                                      kRst | kAck},
                                           CancelCase{ClientKind::kVanishOnSynAck, 0}));

TEST(ServerEndpoint, SynGetsSynAck) {
  auto config = server_config();
  TcpEndpoint server(config, common::Rng(2));
  (void)server.start(0.0);
  const auto client_ip = net::IpAddress::v4(11, 0, 0, 2);
  const auto actions = server.on_packet(
      packet_from(client_ip, 40000, config.addr, 443, kSyn, 5000, 0), 0.1);
  ASSERT_EQ(actions.packets.size(), 1u);
  EXPECT_EQ(actions.packets[0].tcp.flags, kSyn | kAck);
  EXPECT_EQ(actions.packets[0].tcp.ack, 5001u);
  EXPECT_EQ(server.state(), TcpState::kSynReceived);
}

TEST(ServerEndpoint, DuplicateSynRepliesAgain) {
  auto config = server_config();
  TcpEndpoint server(config, common::Rng(2));
  (void)server.start(0.0);
  const auto client_ip = net::IpAddress::v4(11, 0, 0, 2);
  const auto syn = packet_from(client_ip, 40000, config.addr, 443, kSyn, 5000, 0);
  (void)server.on_packet(syn, 0.1);
  const auto again = server.on_packet(syn, 1.1);
  ASSERT_EQ(again.packets.size(), 1u);
  EXPECT_EQ(again.packets[0].tcp.flags, kSyn | kAck);
}

TEST(ServerEndpoint, DataArmsServiceTimerAndAcks) {
  auto config = server_config();
  TcpEndpoint server(config, common::Rng(2));
  (void)server.start(0.0);
  const auto client_ip = net::IpAddress::v4(11, 0, 0, 2);
  (void)server.on_packet(packet_from(client_ip, 40000, config.addr, 443, kSyn, 5000, 0),
                         0.1);
  (void)server.on_packet(
      packet_from(client_ip, 40000, config.addr, 443, kAck, 5001, 90001), 0.2);
  EXPECT_EQ(server.state(), TcpState::kEstablished);
  const auto actions = server.on_packet(
      packet_from(client_ip, 40000, config.addr, 443, kPsh | kAck, 5001, 90001,
                  {'G', 'E', 'T'}),
      0.3);
  ASSERT_EQ(actions.packets.size(), 1u);
  EXPECT_EQ(actions.packets[0].tcp.flags, kAck);
  EXPECT_EQ(actions.packets[0].tcp.ack, 5004u);
  ASSERT_EQ(actions.timers.size(), 1u);
  EXPECT_EQ(actions.timers[0].kind, TimerKind::kService);
}

TEST(ServerEndpoint, ServiceTimerSendsResponseAndFin) {
  auto config = server_config();
  config.response_size = 3000;  // ~3 segments at MSS 1460
  TcpEndpoint server(config, common::Rng(2));
  (void)server.start(0.0);
  const auto client_ip = net::IpAddress::v4(11, 0, 0, 2);
  (void)server.on_packet(packet_from(client_ip, 40000, config.addr, 443, kSyn, 5000, 0),
                         0.1);
  (void)server.on_packet(
      packet_from(client_ip, 40000, config.addr, 443, kAck, 5001, 90001), 0.2);
  const auto data = server.on_packet(
      packet_from(client_ip, 40000, config.addr, 443, kPsh | kAck, 5001, 90001,
                  {'X'}),
      0.3);
  const auto& service = data.timers[0];
  const auto response = server.on_timer(service.kind, service.generation, 0.4);
  ASSERT_EQ(response.packets.size(), 4u);  // 1460+1460+80 data + FIN
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < response.packets.size(); ++i)
    total += response.packets[i].payload.size();
  EXPECT_EQ(total, 3000u);
  EXPECT_EQ(response.packets.back().tcp.flags, kFin | kAck);
  EXPECT_EQ(server.state(), TcpState::kFinWait1);
}

TEST(ServerEndpoint, OutOfOrderDataGetsDuplicateAckOnly) {
  auto config = server_config();
  TcpEndpoint server(config, common::Rng(2));
  (void)server.start(0.0);
  const auto client_ip = net::IpAddress::v4(11, 0, 0, 2);
  (void)server.on_packet(packet_from(client_ip, 40000, config.addr, 443, kSyn, 5000, 0),
                         0.1);
  // Data with a future sequence number: not accepted, ACK repeats rcv_nxt.
  const auto actions = server.on_packet(
      packet_from(client_ip, 40000, config.addr, 443, kPsh | kAck, 9999, 90001, {'A'}),
      0.3);
  ASSERT_EQ(actions.packets.size(), 1u);
  EXPECT_EQ(actions.packets[0].tcp.ack, 5001u);
  EXPECT_TRUE(actions.timers.empty());  // request not seen
}

TEST(ClientEndpoint, AbortMidTransferSendsRstAck) {
  auto config = client_config();
  config.kind = ClientKind::kAbortMidTransfer;
  config.abort_after_response_bytes = 100;
  TcpEndpoint client(config, common::Rng(3));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  (void)client.start(0.0);
  (void)client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kSyn | kAck, 90000, 5001),
      0.05);
  const auto actions = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kAck, 90001, 5004,
                  std::vector<std::uint8_t>(200, 'x')),
      0.2);
  ASSERT_FALSE(actions.packets.empty());
  EXPECT_EQ(actions.packets.back().tcp.flags, kRst | kAck);
  EXPECT_TRUE(client.quiescent());
}

TEST(ClientEndpoint, RstAfterFinEmitsBoth) {
  auto config = client_config();
  config.kind = ClientKind::kRstAfterFin;
  config.request_segments.clear();
  TcpEndpoint client(config, common::Rng(3));
  const auto server_ip = net::IpAddress::v4(198, 18, 0, 1);
  client.set_peer(server_ip, 443);
  (void)client.start(0.0);
  (void)client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kSyn | kAck, 90000, 5001),
      0.05);
  // Server FIN arrives.
  const auto actions = client.on_packet(
      packet_from(server_ip, 443, config.addr, config.port, kFin | kAck, 90001, 5001),
      0.2);
  ASSERT_EQ(actions.packets.size(), 2u);
  EXPECT_EQ(actions.packets[0].tcp.flags, kFin | kAck);
  EXPECT_EQ(actions.packets[1].tcp.flags, kRst | kAck);
}

TEST(Endpoint, ZmapStackEmitsMinimalSynOptions) {
  auto config = client_config();
  config.stack = IpStackModel::zmap();
  TcpEndpoint client(config, common::Rng(4));
  client.set_peer(net::IpAddress::v4(198, 18, 0, 1), 443);
  const auto start = client.start(0.0);
  ASSERT_EQ(start.packets.size(), 1u);
  const net::Packet& syn = start.packets[0];
  ASSERT_EQ(syn.tcp.options.size(), 1u);
  EXPECT_EQ(syn.tcp.options[0].kind, net::TcpOptionKind::kMss);
  EXPECT_EQ(syn.ip.ip_id, 54321);
  EXPECT_EQ(syn.ip.ttl, 255);
}

}  // namespace
}  // namespace tamper::tcp
