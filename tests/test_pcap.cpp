#include <gtest/gtest.h>

#include <sstream>

#include "net/pcap.h"

namespace tamper::net {
namespace {

Packet make_packet(double ts, std::uint32_t seq) {
  Packet pkt = make_tcp_packet(IpAddress::v4(11, 0, 0, 1), 4000,
                               IpAddress::v4(198, 18, 0, 1), 443, tcpflag::kAck, seq, 1);
  pkt.timestamp = ts;
  return pkt;
}

TEST(Pcap, WriteReadRoundTrip) {
  std::ostringstream out;
  PcapWriter writer(out);
  for (int i = 0; i < 5; ++i) writer.write(make_packet(1000.5 + i, 100 + i));
  EXPECT_EQ(writer.packets_written(), 5u);

  std::istringstream in(out.str());
  PcapReader reader(in);
  EXPECT_EQ(reader.linktype(), kLinktypeRaw);
  for (int i = 0; i < 5; ++i) {
    const auto pkt = reader.next();
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->tcp.seq, 100u + i);
    EXPECT_NEAR(pkt->timestamp, 1000.5 + i, 1e-5);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.frames_read(), 5u);
  EXPECT_EQ(reader.frames_skipped(), 0u);
}

TEST(Pcap, GlobalHeaderLayout) {
  std::ostringstream out;
  PcapWriter writer(out, kLinktypeRaw, 1234);
  const std::string blob = out.str();
  ASSERT_EQ(blob.size(), 24u);
  // Little-endian magic 0xa1b2c3d4.
  EXPECT_EQ(static_cast<unsigned char>(blob[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(blob[3]), 0xa1);
  // snaplen at offset 16.
  EXPECT_EQ(static_cast<unsigned char>(blob[16]), 1234 & 0xff);
  // linktype at offset 20.
  EXPECT_EQ(static_cast<unsigned char>(blob[20]), kLinktypeRaw);
}

TEST(Pcap, ReadsBigEndianFiles) {
  // Build a byte-swapped capture by hand: header + one raw IP frame.
  std::ostringstream out;
  PcapWriter writer(out);
  writer.write(make_packet(7.0, 42));
  std::string blob = out.str();
  // Swap every 32-bit field of the global header and the record header.
  auto swap32at = [&](std::size_t off) {
    std::swap(blob[off], blob[off + 3]);
    std::swap(blob[off + 1], blob[off + 2]);
  };
  for (std::size_t off : {0u}) swap32at(off);                       // magic
  std::swap(blob[4], blob[5]);                                      // version major
  std::swap(blob[6], blob[7]);                                      // version minor
  // Full header is {magic, v, zone, sigfigs, snaplen, linktype}: swap words 2..5.
  for (std::size_t off : {8u, 12u, 16u, 20u}) swap32at(off);
  for (std::size_t off : {24u, 28u, 32u, 36u}) swap32at(off);       // record header

  std::istringstream in(blob);
  PcapReader reader(in);
  const auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->tcp.seq, 42u);
}

TEST(Pcap, NanosecondMagicSupported) {
  std::ostringstream out;
  PcapWriter writer(out);
  writer.write(make_packet(3.000000500, 1));
  std::string blob = out.str();
  // Rewrite magic to the nanosecond variant and scale the subsecond field.
  blob[0] = '\x4d';
  blob[1] = '\x3c';
  blob[2] = '\xb2';
  blob[3] = '\xa1';
  std::istringstream in(blob);
  PcapReader reader(in);
  const auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value());
  // Micros field now interpreted as nanos: timestamp shrinks, stays near 3 s.
  EXPECT_NEAR(pkt->timestamp, 3.0, 0.001);
}

TEST(Pcap, EthernetLinktypeStripsMacHeader) {
  std::ostringstream out;
  PcapWriter writer(out, kLinktypeEthernet);
  const Packet pkt = make_packet(1.0, 7);
  auto ip = serialize(pkt);
  std::vector<std::uint8_t> frame(14, 0);
  frame[12] = 0x08;  // ethertype IPv4
  frame[13] = 0x00;
  frame.insert(frame.end(), ip.begin(), ip.end());
  writer.write_raw(1.0, frame);

  std::istringstream in(out.str());
  PcapReader reader(in);
  const auto parsed = reader.next();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tcp.seq, 7u);
}

TEST(Pcap, SkipsNonIpEthernetFrames) {
  std::ostringstream out;
  PcapWriter writer(out, kLinktypeEthernet);
  std::vector<std::uint8_t> arp(40, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;  // ethertype ARP
  writer.write_raw(1.0, arp);

  std::istringstream in(out.str());
  PcapReader reader(in);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.frames_skipped(), 1u);
}

TEST(Pcap, BadMagicThrows) {
  std::istringstream in(std::string("\x00\x01\x02\x03junkjunkjunkjunkjunk", 24));
  EXPECT_THROW(PcapReader reader(in), std::runtime_error);
}

TEST(Pcap, EmptyStreamThrows) {
  std::istringstream in("");
  EXPECT_THROW(PcapReader reader(in), std::runtime_error);
}

TEST(Pcap, TruncatedRecordEndsIteration) {
  std::ostringstream out;
  PcapWriter writer(out);
  writer.write(make_packet(1.0, 1));
  std::string blob = out.str();
  blob.resize(blob.size() - 5);  // cut into the frame body
  std::istringstream in(blob);
  PcapReader reader(in);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Pcap, FileHelpersRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tamper_test.pcap";
  std::vector<Packet> packets = {make_packet(10.0, 1), make_packet(10.1, 2)};
  write_pcap_file(path, packets);
  const auto loaded = read_pcap_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].tcp.seq, 2u);
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW(read_pcap_file("/nonexistent/zzz.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace tamper::net
