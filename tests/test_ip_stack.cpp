#include <gtest/gtest.h>

#include "tcp/ip_stack_model.h"

namespace tamper::tcp {
namespace {

net::Packet v4_packet() {
  return net::make_tcp_packet(net::IpAddress::v4(11, 0, 0, 2), 1234,
                              net::IpAddress::v4(198, 18, 0, 1), 443,
                              net::tcpflag::kAck, 1, 1);
}

TEST(IpStackModel, ZeroStrategy) {
  IpStackModel stack = IpStackModel::zero_ipid();
  common::Rng rng(1);
  stack.start_connection(rng);
  net::Packet pkt = v4_packet();
  stack.stamp(pkt, rng);
  EXPECT_EQ(pkt.ip.ip_id, 0);
  EXPECT_EQ(pkt.ip.ttl, 64);
}

TEST(IpStackModel, PerConnectionCounterIncrements) {
  IpStackModel stack = IpStackModel::linux_like();
  common::Rng rng(2);
  stack.start_connection(rng);
  net::Packet a = v4_packet(), b = v4_packet(), c = v4_packet();
  stack.stamp(a, rng);
  stack.stamp(b, rng);
  stack.stamp(c, rng);
  EXPECT_EQ(static_cast<std::uint16_t>(a.ip.ip_id + 1), b.ip.ip_id);
  EXPECT_EQ(static_cast<std::uint16_t>(b.ip.ip_id + 1), c.ip.ip_id);
}

TEST(IpStackModel, PerConnectionCounterRestartsEachConnection) {
  IpStackModel stack = IpStackModel::linux_like();
  common::Rng rng(3);
  stack.start_connection(rng);
  net::Packet a = v4_packet();
  stack.stamp(a, rng);
  stack.start_connection(rng);  // new connection: new random start
  net::Packet b = v4_packet();
  stack.stamp(b, rng);
  EXPECT_NE(static_cast<std::uint16_t>(a.ip.ip_id + 1), b.ip.ip_id);
}

TEST(IpStackModel, GlobalCounterPersistsAcrossConnections) {
  IpStackModel stack = IpStackModel::windows_like();
  common::Rng rng(4);
  stack.start_connection(rng);
  net::Packet a = v4_packet();
  stack.stamp(a, rng);
  stack.start_connection(rng);
  net::Packet b = v4_packet();
  stack.stamp(b, rng);
  EXPECT_EQ(static_cast<std::uint16_t>(a.ip.ip_id + 1), b.ip.ip_id);
  EXPECT_EQ(a.ip.ttl, 128);
}

TEST(IpStackModel, FixedStrategy) {
  IpStackModel stack = IpStackModel::zmap();
  common::Rng rng(5);
  stack.start_connection(rng);
  net::Packet a = v4_packet(), b = v4_packet();
  stack.stamp(a, rng);
  stack.stamp(b, rng);
  EXPECT_EQ(a.ip.ip_id, 54321);
  EXPECT_EQ(b.ip.ip_id, 54321);
  EXPECT_EQ(a.ip.ttl, 255);
  EXPECT_TRUE(stack.config().minimal_syn_options);
}

TEST(IpStackModel, CopyTriggerStrategy) {
  IpStackModel::Config config;
  config.ipid = IpIdStrategy::kCopyTrigger;
  IpStackModel stack(config);
  common::Rng rng(6);
  net::Packet trigger = v4_packet();
  trigger.ip.ip_id = 7777;
  net::Packet forged = v4_packet();
  stack.stamp(forged, rng, &trigger);
  EXPECT_EQ(forged.ip.ip_id, 7777);
}

TEST(IpStackModel, RandomPerPacketVaries) {
  IpStackModel::Config config;
  config.ipid = IpIdStrategy::kRandomPerPacket;
  IpStackModel stack(config);
  common::Rng rng(7);
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 20; ++i) {
    net::Packet pkt = v4_packet();
    stack.stamp(pkt, rng);
    seen.insert(pkt.ip.ip_id);
  }
  EXPECT_GT(seen.size(), 15u);
}

TEST(IpStackModel, RandomTtlInRange) {
  IpStackModel::Config config;
  config.random_ttl = true;
  IpStackModel stack(config);
  common::Rng rng(8);
  std::set<int> ttls;
  for (int i = 0; i < 50; ++i) {
    net::Packet pkt = v4_packet();
    stack.stamp(pkt, rng);
    ASSERT_GE(pkt.ip.ttl, 16);
    ttls.insert(pkt.ip.ttl);
  }
  EXPECT_GT(ttls.size(), 20u);  // genuinely random, not constant
}

TEST(IpStackModel, Ipv6NeverStampsIpId) {
  IpStackModel stack = IpStackModel::windows_like();
  common::Rng rng(9);
  stack.start_connection(rng);
  net::Packet pkt = net::make_tcp_packet(*net::IpAddress::parse("2400:44d::2"), 1234,
                                         *net::IpAddress::parse("2001:db8:cd::1"), 443,
                                         net::tcpflag::kAck, 1, 1);
  stack.stamp(pkt, rng);
  EXPECT_EQ(pkt.ip.ip_id, 0);
  EXPECT_EQ(pkt.ip.ttl, 128);  // hop limit still applies
}

}  // namespace
}  // namespace tamper::tcp
