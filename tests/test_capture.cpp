#include <gtest/gtest.h>

#include "capture/sampler.h"

namespace tamper::capture {
namespace {

using namespace net::tcpflag;

net::Packet packet(const net::IpAddress& src, std::uint16_t sport, std::uint8_t flags,
                   std::uint32_t seq, double ts, std::uint16_t payload_len = 0) {
  net::Packet pkt = net::make_tcp_packet(src, sport, net::IpAddress::v4(198, 18, 0, 1),
                                         443, flags, seq, 0,
                                         std::vector<std::uint8_t>(payload_len, 'x'));
  pkt.timestamp = ts;
  pkt.ip.ttl = 55;
  pkt.ip.ip_id = 77;
  return pkt;
}

ConnectionSampler::Config sample_everything() {
  ConnectionSampler::Config config;
  config.sample_one_in = 1;
  return config;
}

TEST(Observe, CapturesHeaderFieldsAndQuantizesTime) {
  const net::Packet pkt = packet(net::IpAddress::v4(11, 0, 0, 2), 40000, kPsh | kAck,
                                 123, 1673503999.87, 42);
  const ObservedPacket observed = observe(pkt);
  EXPECT_EQ(observed.ts_sec, 1673503999);  // 1-second granularity
  EXPECT_EQ(observed.flags, kPsh | kAck);
  EXPECT_EQ(observed.seq, 123u);
  EXPECT_EQ(observed.ttl, 55);
  EXPECT_EQ(observed.ip_id, 77);
  EXPECT_EQ(observed.payload_len, 42);
  EXPECT_EQ(observed.payload.size(), 42u);
}

TEST(Observe, CanDropPayloads) {
  const net::Packet pkt =
      packet(net::IpAddress::v4(11, 0, 0, 2), 40000, kPsh | kAck, 1, 5.0, 10);
  const ObservedPacket observed = observe(pkt, /*keep_payload=*/false);
  EXPECT_EQ(observed.payload_len, 10);
  EXPECT_TRUE(observed.payload.empty());
}

TEST(ObservedPacket, FlagPredicates) {
  ObservedPacket p;
  p.flags = kSyn;
  EXPECT_TRUE(p.is_syn());
  p.flags = kSyn | kAck;
  EXPECT_FALSE(p.is_syn());
  p.flags = kRst;
  EXPECT_TRUE(p.is_plain_rst());
  EXPECT_FALSE(p.is_rst_ack());
  p.flags = kRst | kAck;
  EXPECT_TRUE(p.is_rst_ack());
  EXPECT_FALSE(p.is_plain_rst());
  p.flags = kAck;
  EXPECT_TRUE(p.is_pure_ack());
  p.payload_len = 5;
  EXPECT_FALSE(p.is_pure_ack());
  EXPECT_TRUE(p.is_data());
}

TEST(Sampler, FlowOpensOnlyOnSyn) {
  ConnectionSampler sampler(sample_everything());
  const auto client = net::IpAddress::v4(11, 0, 0, 2);
  sampler.on_packet(packet(client, 40000, kAck, 2, 1.0), 1.0);  // mid-flow packet
  auto samples = sampler.flush_all(10.0);
  EXPECT_TRUE(samples.empty());
  EXPECT_EQ(sampler.stats().connections_seen, 0u);
}

TEST(Sampler, RecordsFirstTenPackets) {
  ConnectionSampler sampler(sample_everything());
  const auto client = net::IpAddress::v4(11, 0, 0, 2);
  sampler.on_packet(packet(client, 40000, kSyn, 0, 1.0), 1.0);
  for (int i = 0; i < 15; ++i)
    sampler.on_packet(packet(client, 40000, kAck, 1 + i, 1.1 + i * 0.01), 1.1);
  auto samples = sampler.flush_all(50.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].packets.size(), 10u);
  EXPECT_TRUE(samples[0].packets[0].is_syn());
  EXPECT_EQ(samples[0].observation_end_sec, 50);
  EXPECT_EQ(samples[0].client_port, 40000);
  EXPECT_EQ(samples[0].server_port, 443);
}

TEST(Sampler, SamplingRateIsApproximatelyUniform) {
  ConnectionSampler::Config config;
  config.sample_one_in = 10;
  ConnectionSampler sampler(config);
  common::Rng rng(5);
  const int flows = 40000;
  for (int i = 0; i < flows; ++i) {
    const auto client = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next()));
    sampler.on_packet(packet(client, static_cast<std::uint16_t>(rng.below(60000) + 1024),
                             kSyn, 0, 1.0),
                      1.0);
  }
  EXPECT_EQ(sampler.stats().connections_seen, static_cast<std::uint64_t>(flows));
  EXPECT_NEAR(static_cast<double>(sampler.stats().connections_sampled), flows / 10.0,
              flows / 10.0 * 0.15);
}

TEST(Sampler, SamplingIsDeterministicPerFlow) {
  ConnectionSampler::Config config;
  config.sample_one_in = 7;
  ConnectionSampler a(config), b(config);
  common::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto client = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next()));
    const auto pkt = packet(client, 4242, kSyn, 0, 1.0);
    a.on_packet(pkt, 1.0);
    b.on_packet(pkt, 1.0);
  }
  EXPECT_EQ(a.stats().connections_sampled, b.stats().connections_sampled);
}

TEST(Sampler, ScrubRunsBeforeSampling) {
  ConnectionSampler::Config config = sample_everything();
  config.scrub = [](const net::Packet& pkt) { return pkt.tcp.options.empty(); };
  ConnectionSampler sampler(config);
  auto optionless = packet(net::IpAddress::v4(11, 0, 0, 2), 40000, kSyn, 0, 1.0);
  sampler.on_packet(optionless, 1.0);
  EXPECT_EQ(sampler.stats().packets_scrubbed, 1u);
  EXPECT_EQ(sampler.stats().connections_seen, 0u);

  auto with_options = packet(net::IpAddress::v4(11, 0, 0, 3), 40000, kSyn, 0, 1.0);
  with_options.tcp.options.push_back(net::TcpOption::mss_opt(1460));
  sampler.on_packet(with_options, 1.0);
  EXPECT_EQ(sampler.stats().connections_seen, 1u);
}

TEST(Sampler, IdleFlowsDrainWithEndTimestamp) {
  ConnectionSampler::Config config = sample_everything();
  config.flow_idle_timeout = 5.0;
  ConnectionSampler sampler(config);
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 0, 2), 40000, kSyn, 0, 1.0), 1.0);
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 0, 3), 40000, kSyn, 0, 4.0), 4.0);
  auto drained = sampler.drain_idle(7.0);  // only the first flow is idle >= 5 s
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].client_ip, net::IpAddress::v4(11, 0, 0, 2));
  EXPECT_EQ(drained[0].observation_end_sec, 7);
  // The drained flow is gone; the other remains for flush.
  auto rest = sampler.flush_all(9.0);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].client_ip, net::IpAddress::v4(11, 0, 0, 3));
}

TEST(Sampler, DistinctFlowsKeptSeparate) {
  ConnectionSampler sampler(sample_everything());
  const auto client = net::IpAddress::v4(11, 0, 0, 2);
  sampler.on_packet(packet(client, 40000, kSyn, 0, 1.0), 1.0);
  sampler.on_packet(packet(client, 40001, kSyn, 0, 1.0), 1.0);  // different sport
  sampler.on_packet(packet(client, 40000, kAck, 1, 1.1), 1.1);
  auto samples = sampler.flush_all(10.0);
  ASSERT_EQ(samples.size(), 2u);
  std::size_t sizes[2] = {samples[0].packets.size(), samples[1].packets.size()};
  std::sort(std::begin(sizes), std::end(sizes));
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(Sampler, UnsampledFlowPacketsIgnored) {
  ConnectionSampler::Config config;
  config.sample_one_in = 1'000'000'000;  // effectively never sample
  ConnectionSampler sampler(config);
  const auto client = net::IpAddress::v4(11, 0, 0, 2);
  sampler.on_packet(packet(client, 40000, kSyn, 0, 1.0), 1.0);
  sampler.on_packet(packet(client, 40000, kAck, 1, 1.1), 1.1);
  EXPECT_EQ(sampler.stats().connections_seen, 1u);
  EXPECT_EQ(sampler.stats().connections_sampled, 0u);
  EXPECT_TRUE(sampler.flush_all(10.0).empty());
}

TEST(Sampler, EvictionExactlyAtIdleTimeout) {
  ConnectionSampler::Config config = sample_everything();
  config.flow_idle_timeout = 5.0;
  ConnectionSampler sampler(config);
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 0, 2), 40000, kSyn, 0, 1.0), 1.0);
  // Just under the horizon: idle for 4.999 s, stays.
  EXPECT_TRUE(sampler.drain_idle(5.999).empty());
  // Exactly at the horizon: `now - last_seen >= timeout` evicts.
  auto drained = sampler.drain_idle(6.0);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].observation_end_sec, 6);
  EXPECT_EQ(sampler.open_flows(), 0u);
}

TEST(Sampler, FourTupleReuseAfterEvictionOpensFreshFlow) {
  ConnectionSampler::Config config = sample_everything();
  config.flow_idle_timeout = 5.0;
  ConnectionSampler sampler(config);
  const auto client = net::IpAddress::v4(11, 0, 0, 2);
  sampler.on_packet(packet(client, 40000, kSyn, 100, 1.0), 1.0);
  sampler.on_packet(packet(client, 40000, kAck, 101, 1.5), 1.5);
  ASSERT_EQ(sampler.drain_idle(40.0).size(), 1u);
  // Same 4-tuple returns: the new SYN opens a brand-new flow rather than
  // resurrecting the evicted one's state.
  sampler.on_packet(packet(client, 40000, kSyn, 900, 41.0), 41.0);
  EXPECT_EQ(sampler.stats().connections_seen, 2u);
  auto samples = sampler.flush_all(50.0);
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_EQ(samples[0].packets.size(), 1u);
  EXPECT_EQ(samples[0].packets[0].seq, 900u);
}

TEST(Sampler, OverloadEvictsOldestEmbryonicFirst) {
  ConnectionSampler::Config config = sample_everything();
  config.max_flows = 4;
  config.flow_idle_timeout = 1e9;
  ConnectionSampler sampler(config);
  const auto established_a = net::IpAddress::v4(11, 0, 0, 2);
  const auto established_b = net::IpAddress::v4(11, 0, 0, 3);
  sampler.on_packet(packet(established_a, 40000, kSyn, 0, 1.0), 1.0);
  sampler.on_packet(packet(established_a, 40000, kAck, 1, 1.1), 1.1);
  sampler.on_packet(packet(established_b, 40000, kSyn, 0, 2.0), 2.0);
  sampler.on_packet(packet(established_b, 40000, kAck, 1, 2.1), 2.1);
  // Two embryonic flows fill the table; the fifth flow forces an eviction.
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 0, 4), 40000, kSyn, 0, 3.0), 3.0);
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 0, 5), 40000, kSyn, 0, 4.0), 4.0);
  EXPECT_EQ(sampler.open_flows(), 4u);
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 0, 6), 40000, kSyn, 0, 5.0), 5.0);
  EXPECT_EQ(sampler.open_flows(), 4u);
  EXPECT_EQ(sampler.stats().flows_evicted_overload, 1u);
  // The victim was the oldest *embryonic* flow (11.0.0.4), not an
  // established one; it surfaces through drain_idle() despite not being
  // idle, closed out at the eviction time.
  auto drained = sampler.drain_idle(5.5);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].client_ip, net::IpAddress::v4(11, 0, 0, 4));
  EXPECT_EQ(drained[0].observation_end_sec, 5);
  auto rest = sampler.flush_all(10.0);
  ASSERT_EQ(rest.size(), 4u);
  for (const auto& sample : rest) {
    EXPECT_NE(sample.client_ip, net::IpAddress::v4(11, 0, 0, 4));
  }
}

TEST(Sampler, EstablishedFlowsEvictedOnlyWithoutEmbryonicCandidates) {
  ConnectionSampler::Config config = sample_everything();
  config.max_flows = 2;
  config.flow_idle_timeout = 1e9;
  ConnectionSampler sampler(config);
  for (int i = 0; i < 2; ++i) {
    const auto client = net::IpAddress::v4(11, 0, 1, static_cast<std::uint8_t>(i));
    sampler.on_packet(packet(client, 40000, kSyn, 0, 1.0 + i), 1.0 + i);
    sampler.on_packet(packet(client, 40000, kAck, 1, 1.5 + i), 1.5 + i);
  }
  // All tracked flows are established: the LRU established flow goes.
  sampler.on_packet(packet(net::IpAddress::v4(11, 0, 2, 1), 40000, kSyn, 0, 9.0), 9.0);
  EXPECT_EQ(sampler.stats().flows_evicted_overload, 1u);
  auto drained = sampler.drain_idle(9.5);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].client_ip, net::IpAddress::v4(11, 0, 1, 0));
}

TEST(Sampler, MalformedPacketsCountedAndDropped) {
  ConnectionSampler sampler(sample_everything());
  const auto client = net::IpAddress::v4(11, 0, 0, 2);
  auto port_zero = packet(client, 40000, kSyn, 0, 1.0);
  port_zero.tcp.src_port = 0;
  sampler.on_packet(port_zero, 1.0);
  sampler.on_packet(packet(client, 40000, kSyn | kFin, 0, 1.0), 1.0);
  sampler.on_packet(packet(client, 40000, kSyn | kRst, 0, 1.0), 1.0);
  auto land = packet(client, 443, kSyn, 0, 1.0);
  land.dst = client;  // self-addressed 4-tuple
  sampler.on_packet(land, 1.0);
  EXPECT_EQ(sampler.stats().packets_malformed, 4u);
  EXPECT_EQ(sampler.stats().connections_seen, 0u);
  EXPECT_EQ(sampler.open_flows(), 0u);
}

TEST(ConnectionSample, FirstDataPayloadFindsRequest) {
  ConnectionSample sample;
  ObservedPacket syn;
  syn.flags = kSyn;
  ObservedPacket data;
  data.flags = kPsh | kAck;
  data.payload = {'G', 'E', 'T'};
  data.payload_len = 3;
  sample.packets = {syn, data};
  ASSERT_NE(sample.first_data_payload(), nullptr);
  EXPECT_EQ(sample.first_data_payload()->size(), 3u);

  ConnectionSample no_data;
  no_data.packets = {syn};
  EXPECT_EQ(no_data.first_data_payload(), nullptr);
}

}  // namespace
}  // namespace tamper::capture
