#include <gtest/gtest.h>

#include <set>

#include "core/scanner.h"
#include "core/signature.h"

namespace tamper::core {
namespace {

TEST(Signature, CountIsNineteen) {
  EXPECT_EQ(all_signatures().size(), 19u);
  EXPECT_EQ(kSignatureCount, 19u);
}

TEST(Signature, AllNamesUniqueBothSchemes) {
  std::set<std::string_view> pretty, ascii;
  for (Signature sig : all_signatures()) {
    EXPECT_TRUE(pretty.insert(name(sig)).second) << name(sig);
    EXPECT_TRUE(ascii.insert(ascii_name(sig)).second) << ascii_name(sig);
  }
}

TEST(Signature, StageCountsMatchTable1) {
  int per_stage[5] = {};
  for (Signature sig : all_signatures())
    ++per_stage[static_cast<std::size_t>(stage_of(sig))];
  EXPECT_EQ(per_stage[static_cast<std::size_t>(Stage::kPostSyn)], 4);
  EXPECT_EQ(per_stage[static_cast<std::size_t>(Stage::kPostAck)], 5);
  EXPECT_EQ(per_stage[static_cast<std::size_t>(Stage::kPostPsh)], 8);
  EXPECT_EQ(per_stage[static_cast<std::size_t>(Stage::kPostData)], 2);
  EXPECT_EQ(per_stage[static_cast<std::size_t>(Stage::kOther)], 0);
}

TEST(Signature, NameRoundTripsThroughLookup) {
  for (Signature sig : all_signatures()) {
    EXPECT_EQ(signature_from_name(name(sig)), sig);
    EXPECT_EQ(signature_from_name(ascii_name(sig)), sig);
  }
  EXPECT_FALSE(signature_from_name("not a signature").has_value());
}

TEST(Signature, PaperNames) {
  EXPECT_EQ(name(Signature::kSynNone), "SYN → ∅");
  EXPECT_EQ(name(Signature::kPshRstRst0), "PSH → RST;RST₀");
  EXPECT_EQ(name(Signature::kDataRstAck), "PSH;Data → RST+ACK");
  EXPECT_EQ(name(Stage::kPostSyn), "Post-SYN");
}

TEST(Signature, PostAckOrPshPredicate) {
  EXPECT_FALSE(is_post_ack_or_psh(Signature::kSynRst));
  EXPECT_TRUE(is_post_ack_or_psh(Signature::kAckNone));
  EXPECT_TRUE(is_post_ack_or_psh(Signature::kPshRstNeqRst));
  EXPECT_FALSE(is_post_ack_or_psh(Signature::kDataRst));
}

capture::ConnectionSample scanner_sample(bool options, std::uint8_t ttl,
                                         std::uint16_t ip_id) {
  capture::ConnectionSample sample;
  sample.ip_version = net::IpVersion::kV4;
  capture::ObservedPacket syn;
  syn.flags = net::tcpflag::kSyn;
  syn.has_tcp_options = options;
  syn.ttl = ttl;
  syn.ip_id = ip_id;
  capture::ObservedPacket rst;
  rst.flags = net::tcpflag::kRst;
  rst.ttl = ttl;
  rst.ip_id = ip_id;
  sample.packets = {syn, rst};
  return sample;
}

TEST(Scanner, ZmapFingerprintDetected) {
  const auto indicators = scanner_indicators(scanner_sample(true, 243, kZmapIpId));
  EXPECT_TRUE(indicators.zmap_ipid);
  EXPECT_TRUE(indicators.high_ttl);
  EXPECT_TRUE(indicators.fixed_nonzero_ipid);
  EXPECT_TRUE(indicators.likely_zmap());
  EXPECT_TRUE(indicators.likely_scanner());
}

TEST(Scanner, NormalClientNotFlagged) {
  const auto indicators = scanner_indicators(scanner_sample(true, 52, 1234));
  EXPECT_FALSE(indicators.zmap_ipid);
  EXPECT_FALSE(indicators.high_ttl);
  EXPECT_FALSE(indicators.likely_zmap());
}

TEST(Scanner, OptionlessSynIsScannerIndicator) {
  const auto indicators = scanner_indicators(scanner_sample(false, 52, 1234));
  EXPECT_TRUE(indicators.no_tcp_options);
  EXPECT_TRUE(indicators.likely_scanner());
}

TEST(Scanner, VaryingIpIdNotFixed) {
  auto sample = scanner_sample(true, 52, 100);
  sample.packets[1].ip_id = 101;
  EXPECT_FALSE(scanner_indicators(sample).fixed_nonzero_ipid);
}

TEST(Scanner, Ipv6HasNoFixedIpIdSignal) {
  auto sample = scanner_sample(true, 243, kZmapIpId);
  sample.ip_version = net::IpVersion::kV6;
  EXPECT_FALSE(scanner_indicators(sample).fixed_nonzero_ipid);
}

TEST(Scanner, EmptySampleIsNeutral) {
  capture::ConnectionSample sample;
  const auto indicators = scanner_indicators(sample);
  EXPECT_FALSE(indicators.likely_scanner());
  EXPECT_FALSE(indicators.likely_zmap());
}

}  // namespace
}  // namespace tamper::core
