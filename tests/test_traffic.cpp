// End-to-end generator validation: the classifier must blindly recover the
// generator's hidden ground truth.
#include <gtest/gtest.h>

#include <map>

#include "core/classifier.h"
#include "core/scanner.h"
#include "world/traffic.h"

namespace tamper::world {
namespace {

const World& shared_world() {
  static const World kWorld{WorldConfig{.domains = {.domain_count = 20'000},
                                        .seed = 0x1ce}};
  return kWorld;
}

TrafficConfig small_config(std::uint64_t seed = 0xf00d) {
  TrafficConfig config;
  config.seed = seed;
  return config;
}

TEST(Traffic, DeterministicForSameSeed) {
  TrafficGenerator a(shared_world(), small_config());
  TrafficGenerator b(shared_world(), small_config());
  for (int i = 0; i < 50; ++i) {
    const auto ca = a.generate_one();
    const auto cb = b.generate_one();
    ASSERT_EQ(ca.truth.country, cb.truth.country);
    ASSERT_EQ(ca.truth.domain, cb.truth.domain);
    ASSERT_EQ(ca.sample.packets.size(), cb.sample.packets.size());
  }
}

TEST(Traffic, ClassifierRecallOnGroundTruthIsTotal) {
  TrafficGenerator generator(shared_world(), small_config(1));
  core::SignatureClassifier classifier;
  int tampered = 0, flagged = 0;
  generator.generate(4000, [&](LabeledConnection&& conn) {
    if (!conn.truth.tampered) return;
    ++tampered;
    if (classifier.classify(conn.sample).possibly_tampered) ++flagged;
  });
  ASSERT_GT(tampered, 100);
  EXPECT_EQ(flagged, tampered);  // every middlebox firing leaves a visible trace
}

TEST(Traffic, CleanNormalConnectionsRarelyFlagged) {
  TrafficGenerator generator(shared_world(), small_config(2));
  core::SignatureClassifier classifier;
  int clean_normal = 0, false_flagged = 0;
  generator.generate(4000, [&](LabeledConnection&& conn) {
    if (conn.truth.tampered || conn.truth.client_kind != tcp::ClientKind::kNormal) return;
    ++clean_normal;
    if (classifier.classify(conn.sample).signature.has_value()) ++false_flagged;
  });
  ASSERT_GT(clean_normal, 1000);
  // Only path loss can make a clean, normal connection match a signature.
  EXPECT_LT(static_cast<double>(false_flagged) / clean_normal, 0.02);
}

TEST(Traffic, MethodsMapToDocumentedStages) {
  TrafficGenerator generator(shared_world(), small_config(3));
  core::SignatureClassifier classifier;
  std::map<std::string, std::map<core::Stage, int>> stages;
  generator.generate(12000, [&](LabeledConnection&& conn) {
    if (!conn.truth.tampered) return;
    const auto c = classifier.classify(conn.sample);
    if (c.signature) ++stages[conn.truth.method][core::stage_of(*c.signature)];
  });
  auto dominant = [&](const std::string& method) {
    const auto& counts = stages[method];
    core::Stage best = core::Stage::kOther;
    int best_count = -1;
    for (const auto& [stage, count] : counts)
      if (count > best_count) {
        best = stage;
        best_count = count;
      }
    return best;
  };
  EXPECT_EQ(dominant("iran_rst_ack"), core::Stage::kPostAck);
  EXPECT_EQ(dominant("post_ack_blackhole"), core::Stage::kPostAck);
  EXPECT_EQ(dominant("single_rst_firewall"), core::Stage::kPostPsh);
  EXPECT_EQ(dominant("keyword_firewall_rst_ack"), core::Stage::kPostData);
}

TEST(Traffic, ScannersCarryZmapFingerprint) {
  TrafficConfig config = small_config(4);
  config.zmap_rate = 0.05;  // oversample scanners for the test
  TrafficGenerator generator(shared_world(), config);
  int scanners = 0, fingerprinted = 0;
  generator.generate(3000, [&](LabeledConnection&& conn) {
    if (!conn.truth.scanner) return;
    ++scanners;
    if (core::scanner_indicators(conn.sample).likely_zmap()) ++fingerprinted;
  });
  ASSERT_GT(scanners, 50);
  EXPECT_EQ(fingerprinted, scanners);
}

TEST(Traffic, IpVersionShareTracksCountryConfig) {
  TrafficGenerator generator(shared_world(), small_config(5));
  int us_total = 0, us_v6 = 0;
  generator.generate(8000, [&](LabeledConnection&& conn) {
    if (conn.truth.country != "US") return;
    ++us_total;
    if (conn.truth.ipv6) ++us_v6;
  });
  ASSERT_GT(us_total, 500);
  EXPECT_NEAR(static_cast<double>(us_v6) / us_total, 0.48, 0.07);
}

TEST(Traffic, StartTimesStayInWindow) {
  TrafficGenerator generator(shared_world(), small_config(6));
  generator.generate(500, [&](LabeledConnection&& conn) {
    ASSERT_GE(conn.truth.start_time, common::from_civil(2023, 1, 12));
    ASSERT_LE(conn.truth.start_time, common::from_civil(2023, 1, 26));
  });
}

TEST(Traffic, SampleNeverExceedsTenPackets) {
  TrafficGenerator generator(shared_world(), small_config(7));
  generator.generate(2000, [&](LabeledConnection&& conn) {
    ASSERT_LE(conn.sample.packets.size(), 10u);
  });
}

TEST(Traffic, DomainRecoverableViaDpiForCleanTls) {
  TrafficGenerator generator(shared_world(), small_config(8));
  int checked = 0;
  generator.generate(2000, [&](LabeledConnection&& conn) {
    if (conn.truth.tampered || conn.truth.protocol != appproto::AppProtocol::kTls ||
        conn.truth.client_kind != tcp::ClientKind::kNormal)
      return;
    const auto* payload = conn.sample.first_data_payload();
    if (payload == nullptr) return;
    const auto sni = appproto::extract_sni(*payload);
    // Path loss can reorder a retransmitted ClientHello behind the
    // handshake-continuation record; the SNI is then simply unavailable.
    if (!sni.has_value()) return;
    ASSERT_EQ(*sni, conn.truth.domain);
    ++checked;
  });
  EXPECT_GT(checked, 500);
}

TEST(Traffic, PinningOverridesEverything) {
  TrafficGenerator generator(shared_world(), small_config(9));
  const int country = country_index("DE");
  VisitPin pin;
  pin.client_ip = net::IpAddress::v4(11, 3, 0, 99);
  pin.domain_rank = 77;
  pin.protocol = appproto::AppProtocol::kHttp;
  pin.client_kind = tcp::ClientKind::kNormal;
  pin.ipv6 = false;
  const auto conn =
      generator.generate_pinned(country, common::from_civil(2023, 1, 15), pin);
  EXPECT_EQ(conn.sample.client_ip, *pin.client_ip);
  EXPECT_EQ(conn.truth.domain_rank, 77u);
  EXPECT_EQ(conn.truth.protocol, appproto::AppProtocol::kHttp);
  EXPECT_EQ(conn.sample.server_port, 80);
  EXPECT_EQ(conn.truth.client_kind, tcp::ClientKind::kNormal);
}

TEST(Traffic, InterestModifierShiftsTamperRate) {
  TrafficConfig boosted = small_config(10);
  boosted.interest_modifier = [](const CountrySpec&, common::SimTime, double) {
    return 0.9;  // nearly every request targets blocked content
  };
  TrafficConfig muted = small_config(10);
  muted.interest_modifier = [](const CountrySpec&, common::SimTime, double) {
    return 0.0;
  };
  const int ir = country_index("IR");
  auto tamper_rate = [&](TrafficConfig config) {
    TrafficGenerator generator(shared_world(), config);
    int tampered = 0;
    const int n = 1500;
    for (int i = 0; i < n; ++i) {
      if (generator.generate_at(ir, common::from_civil(2023, 1, 17, 12)).truth.tampered)
        ++tampered;
    }
    return static_cast<double>(tampered) / n;
  };
  EXPECT_GT(tamper_rate(boosted), tamper_rate(muted) + 0.2);
}

TEST(Traffic, TamperedImpliesArmed) {
  TrafficGenerator generator(shared_world(), small_config(11));
  generator.generate(3000, [&](LabeledConnection&& conn) {
    if (conn.truth.tampered) {
      ASSERT_TRUE(conn.truth.tamper_armed);
      ASSERT_FALSE(conn.truth.method.empty());
    }
  });
}

}  // namespace
}  // namespace tamper::world
