#include <gtest/gtest.h>

#include "analysis/changes.h"
#include "analysis/pipeline.h"
#include "capture/anonymize.h"
#include "core/classifier.h"
#include "world/scenarios.h"

namespace tamper {
namespace {

// ---- Named scenarios ----

TEST(Scenarios, GlobalJanuary2023Window) {
  const auto scenario = world::global_january_2023(1);
  EXPECT_EQ(scenario.traffic.window_start, common::from_civil(2023, 1, 12));
  EXPECT_EQ(scenario.traffic.window_end, common::from_civil(2023, 1, 26));
  auto generator = scenario.make_generator();
  const auto conn = generator.generate_one();
  EXPECT_FALSE(conn.truth.country.empty());
}

TEST(Scenarios, ProtestIntensityShape) {
  const common::SimTime start = common::from_civil(2022, 9, 13, 12);
  EXPECT_EQ(world::protest_intensity(start - 3600.0, start, 3.5), 0.0);
  const double day1 = world::protest_intensity(start + 1 * 86400.0, start, 3.5);
  const double day7 = world::protest_intensity(start + 7 * 86400.0, start, 3.5);
  EXPECT_GT(day1, 0.1);
  EXPECT_GT(day7, day1);  // ramps upward
  EXPECT_LE(day7, 1.0);
  // Evening emphasis: 20:00 local beats 08:00 local on the same day
  // (UTC+3:30, so 16:30 UTC and 04:30 UTC respectively).
  const double evening =
      world::protest_intensity(common::from_civil(2022, 9, 16, 16, 30), start, 3.5);
  const double morning =
      world::protest_intensity(common::from_civil(2022, 9, 16, 4, 30), start, 3.5);
  EXPECT_GT(evening, morning);
}

TEST(Scenarios, IranProtestRaisesTamperingOverBaseline) {
  const auto protest = world::iran_protests_2022(3);
  const auto baseline = world::global_january_2023(3);
  const int ir = world::country_index("IR");
  auto protest_gen = protest.make_generator();
  auto baseline_gen = baseline.make_generator();
  int protest_tampered = 0, baseline_tampered = 0;
  const int n = 1200;
  for (int i = 0; i < n; ++i) {
    if (protest_gen
            .generate_at(ir, common::from_civil(2022, 9, 25) + i * 7.0)
            .truth.tampered)
      ++protest_tampered;
    if (baseline_gen
            .generate_at(ir, common::from_civil(2023, 1, 20) + i * 7.0)
            .truth.tampered)
      ++baseline_tampered;
  }
  EXPECT_GT(protest_tampered, baseline_tampered * 3 / 2);
}

TEST(Scenarios, UnscrubbedInflatesSynOnly) {
  EXPECT_GT(world::global_unscrubbed(1).traffic.syn_only_rate,
            world::global_january_2023(1).traffic.syn_only_rate * 3);
}

TEST(Scenarios, ResidualFlappingEnablesResidualState) {
  const auto scenario = world::residual_flapping(1);
  EXPECT_GT(scenario.traffic.residual_block_seconds, 0.0);
  EXPECT_GT(scenario.traffic.loss_rate,
            world::global_january_2023(1).traffic.loss_rate);
}

// ---- Change detection ----

analysis::TimeSeries series_with_shift(double base_rate, double recent_rate,
                                       int hours = 168, int recent_hours = 48,
                                       std::uint64_t per_hour = 400) {
  analysis::TimeSeries series;
  common::Rng rng(7);
  for (int h = 0; h < hours; ++h) {
    const double rate = h >= hours - recent_hours ? recent_rate : base_rate;
    for (std::uint64_t i = 0; i < per_hour; ++i) {
      analysis::ConnectionRecord record;
      record.country = "IR";
      record.first_ts_sec = static_cast<std::int64_t>(h) * 3600 + 10;
      if (rng.chance(rate)) {
        record.classification.possibly_tampered = true;
        record.classification.signature = core::Signature::kAckNone;
        record.classification.stage = core::Stage::kPostAck;
      }
      series.add(record);
    }
  }
  return series;
}

TEST(ChangeDetector, FlagsSurge) {
  const auto series = series_with_shift(0.05, 0.25);
  const auto events = analysis::detect_changes(series);
  ASSERT_FALSE(events.empty());
  const auto& top = events.front();
  EXPECT_EQ(top.country, "IR");
  EXPECT_EQ(top.signature, core::Signature::kAckNone);
  EXPECT_TRUE(top.is_surge());
  EXPECT_GT(top.z_score, 4.0);
  EXPECT_GT(top.fold_change(), 3.0);
  EXPECT_NEAR(top.baseline_pct, 5.0, 1.5);
  EXPECT_NEAR(top.recent_pct, 25.0, 3.0);
}

TEST(ChangeDetector, FlagsDrop) {
  const auto series = series_with_shift(0.25, 0.05);
  const auto events = analysis::detect_changes(series);
  ASSERT_FALSE(events.empty());
  EXPECT_FALSE(events.front().is_surge());
  EXPECT_LT(events.front().z_score, -4.0);
}

TEST(ChangeDetector, QuietSeriesYieldsNothing) {
  const auto series = series_with_shift(0.10, 0.10);
  EXPECT_TRUE(analysis::detect_changes(series).empty());
}

TEST(ChangeDetector, MinConnectionsGuard) {
  const auto series = series_with_shift(0.05, 0.40, 168, 48, /*per_hour=*/2);
  analysis::ChangeDetectorConfig config;
  config.min_connections = 10'000;
  EXPECT_TRUE(analysis::detect_changes(series, config).empty());
}

TEST(ChangeDetector, TrivialShiftSuppressed) {
  // Statistically detectable but operationally tiny: 0.0% -> 0.3%.
  const auto series = series_with_shift(0.000, 0.003, 168, 48, 20'000);
  analysis::ChangeDetectorConfig config;
  config.min_abs_shift_pct = 0.5;
  EXPECT_TRUE(analysis::detect_changes(series, config).empty());
}

// ---- Anonymization ----

TEST(Anonymize, TruncatesV4ToPrefix) {
  capture::AnonymizeConfig config;
  config.v4_prefix_bits = 24;
  const auto addr = net::IpAddress::v4(11, 22, 33, 44);
  EXPECT_EQ(capture::anonymize_address(addr, config).to_string(), "11.22.33.0");
}

TEST(Anonymize, TruncatesV6ToPrefix) {
  capture::AnonymizeConfig config;
  config.v6_prefix_bits = 48;
  const auto addr = *net::IpAddress::parse("2400:44d:1234:5678::9");
  EXPECT_EQ(capture::anonymize_address(addr, config).to_string(), "2400:44d:1234::");
}

TEST(Anonymize, PseudonymsAreStableKeyedAndPrefixPreserving) {
  capture::AnonymizeConfig config;
  config.pseudonymize = true;
  config.key = 0x5ec2e7;
  const auto a1 = net::IpAddress::v4(11, 22, 33, 44);
  const auto a2 = net::IpAddress::v4(11, 22, 33, 99);   // same /24
  const auto b = net::IpAddress::v4(11, 22, 34, 44);    // different /24
  const auto pa1 = capture::anonymize_address(a1, config);
  EXPECT_EQ(pa1, capture::anonymize_address(a1, config));  // deterministic
  EXPECT_EQ(pa1, capture::anonymize_address(a2, config));  // host bits gone
  EXPECT_NE(pa1, capture::anonymize_address(b, config));   // prefixes distinct
  EXPECT_NE(pa1, a1);                                      // not the original
  capture::AnonymizeConfig other_key = config;
  other_key.key = 0x999;
  EXPECT_NE(pa1, capture::anonymize_address(a1, other_key));
}

TEST(Anonymize, VerdictPreservedPayloadGone) {
  // A tampered sample must classify identically after anonymization.
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0xa0a;
  world::TrafficGenerator generator(world, traffic);
  core::SignatureClassifier classifier;
  int compared = 0;
  generator.generate(600, [&](world::LabeledConnection&& conn) {
    if (conn.sample.packets.empty()) return;
    const auto before = classifier.classify(conn.sample);
    capture::AnonymizeConfig config;
    config.key = 42;
    capture::anonymize(conn.sample, config);
    const auto after = classifier.classify(conn.sample);
    ASSERT_EQ(before.signature, after.signature);
    ASSERT_EQ(before.possibly_tampered, after.possibly_tampered);
    ASSERT_EQ(conn.sample.first_data_payload(), nullptr);  // payloads stripped
    ++compared;
  });
  EXPECT_GT(compared, 500);
}

TEST(Anonymize, PortScramblingKeyed) {
  capture::ConnectionSample sample;
  sample.client_ip = net::IpAddress::v4(11, 0, 0, 1);
  sample.client_port = 44321;
  capture::AnonymizeConfig config;
  config.key = 7;
  capture::anonymize(sample, config);
  EXPECT_NE(sample.client_port, 44321);
  capture::ConnectionSample again;
  again.client_ip = net::IpAddress::v4(11, 0, 0, 1);
  again.client_port = 44321;
  capture::anonymize(again, config);
  EXPECT_EQ(sample.client_port, again.client_port);  // deterministic per key
}

}  // namespace
}  // namespace tamper
