// Fleet suite: anycast routing laws, the partial wire codec, the monoid
// laws every aggregator must obey (associativity / commutativity /
// identity — the reason shard count and arrival order can never change the
// merged bytes), merger idempotence and coverage accounting, fleet-vs-
// monolith equivalence, checkpoint resume with no duplicate and no gap,
// and the >= 50-seed chaos campaigns pinning the two fleet invariants:
// byte-identical output when the surviving coverage set is identical,
// explicit degradation when it is not.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "common/ids.h"
#include "capture/sample.h"
#include "control/overload.h"
#include "fault/chaos.h"
#include "fleet/campaign.h"
#include "fleet/fleet.h"
#include "fleet/merger.h"
#include "fleet/partial.h"
#include "net/ip_address.h"
#include "service/checkpoint.h"
#include "world/anycast.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper {
namespace {

namespace fs = std::filesystem;

using common::EpochId;
using common::PopId;

const world::World& shared_world() {
  static const world::World kWorld{
      world::WorldConfig{.domains = {.domain_count = 10'000}, .seed = 0x5e44}};
  return kWorld;
}

/// Samples sorted by observation time, so each PoP's epoch (derived from
/// its latest observed timestamp) advances monotonically.
std::vector<capture::ConnectionSample> generate_samples(std::size_t n,
                                                        std::uint64_t seed = 0xfeed) {
  world::TrafficConfig traffic;
  traffic.seed = seed;
  world::TrafficGenerator generator(shared_world(), traffic);
  std::vector<capture::ConnectionSample> out;
  out.reserve(n);
  generator.generate(n, [&](world::LabeledConnection&& conn) {
    out.push_back(std::move(conn.sample));
  });
  std::stable_sort(out.begin(), out.end(),
                   [](const capture::ConnectionSample& a,
                      const capture::ConnectionSample& b) {
                     return a.observation_end_sec < b.observation_end_sec;
                   });
  return out;
}

/// Unique scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("tamper_fleet_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

/// Canonical byte image of a pipeline's aggregate state (zeroed meta) —
/// the equality relation all monoid-law tests use.
std::vector<std::uint8_t> state_bytes(const analysis::Pipeline& pipeline) {
  return service::encode_checkpoint(pipeline, service::CheckpointMeta{});
}

/// The same image with the trends ring normalized to empty. Fleet-vs-
/// monolith equivalence is about the fold of the sample multiset; ring
/// points are sampled at per-PoP report cadence — a property of the
/// deployment shape, not of the data. Ring merge laws are pinned by the
/// federated-trends tests instead.
std::vector<std::uint8_t> without_trends(const std::vector<std::uint8_t>& image) {
  analysis::Pipeline scratch(shared_world());
  const service::LoadResult load = service::decode_checkpoint(image, scratch);
  EXPECT_TRUE(load.ok) << load.error;
  scratch.set_trends_config(scratch.trends().config());
  return service::encode_checkpoint(scratch, {});
}

// ---------------------------------------------------------------------------
// Anycast routing
// ---------------------------------------------------------------------------

TEST(Anycast, SameSeedRoutesIdentically) {
  const auto samples = generate_samples(300);
  world::AnycastMap a(5, 99), b(5, 99);
  for (const auto& s : samples) EXPECT_EQ(a.route(s.client_ip), b.route(s.client_ip));
}

TEST(Anycast, ClientPrefixIsSticky) {
  world::AnycastMap map(7, 42);
  // Every address in one /16 shares the routing key, hence the PoP.
  const auto base = map.route(net::IpAddress::v4(10, 7, 0, 1));
  ASSERT_TRUE(base.has_value());
  for (std::uint8_t c = 0; c < 200; c += 13)
    for (std::uint8_t d = 1; d < 200; d += 17)
      EXPECT_EQ(map.route(net::IpAddress::v4(10, 7, c, d)), base);
  // A different /16 is allowed to (and with 7 PoPs, some will) go elsewhere.
  std::size_t moved = 0;
  for (int b = 0; b < 50; ++b)
    if (map.route(net::IpAddress::v4(10, static_cast<std::uint8_t>(b + 8), 0, 1)) !=
        base)
      ++moved;
  EXPECT_GT(moved, 0u);
}

TEST(Anycast, FailoverMovesOnlyTheDeadPopsClients) {
  const auto samples = generate_samples(400);
  world::AnycastMap map(4, 7);
  std::vector<std::optional<PopId>> before;
  before.reserve(samples.size());
  for (const auto& s : samples) before.push_back(map.route(s.client_ip));

  map.set_alive(PopId(2), false);
  std::size_t failed_over = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto after = map.route(samples[i].client_ip);
    ASSERT_TRUE(after.has_value());
    if (before[i] == PopId(2)) {
      EXPECT_NE(*after, PopId(2));  // dead PoP's clients moved...
      ++failed_over;
    } else {
      EXPECT_EQ(after, before[i]);  // ...and nobody else did (rendezvous)
    }
  }
  EXPECT_GT(failed_over, 0u);

  // Re-announcing restores the original assignment exactly.
  map.set_alive(PopId(2), true);
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_EQ(map.route(samples[i].client_ip), before[i]);
}

TEST(Anycast, FullyWithdrawnFleetObservesNothing) {
  world::AnycastMap map(3, 1);
  for (std::uint32_t pop = 0; pop < 3; ++pop) map.set_alive(PopId(pop), false);
  EXPECT_EQ(map.alive_count(), 0u);
  EXPECT_FALSE(map.route(net::IpAddress::v4(192, 0, 2, 1)).has_value());
}

TEST(Anycast, PrefixKeySeparatesFamilies) {
  // A v4 /16 and a v6 /32 with the same leading bits must not collide.
  const auto v4 = world::AnycastMap::prefix_key(net::IpAddress::v4(32, 1, 13, 184));
  const auto v6 = world::AnycastMap::prefix_key(
      net::IpAddress::v6(0x2001'0db8'0000'0000ULL, 1));
  EXPECT_NE(v4, v6);
}

// ---------------------------------------------------------------------------
// Partial codec
// ---------------------------------------------------------------------------

TEST(Partial, RoundTripsHeaderAndState) {
  const auto samples = generate_samples(150);
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : samples) pipeline.ingest(s);

  fleet::PartialHeader header;
  header.pop = PopId(2);
  header.epoch = EpochId(465'191);
  header.sequence = 150;
  const std::string wire = fleet::encode_partial(header, pipeline);

  const fleet::DecodeResult peek = fleet::peek_partial(wire);
  ASSERT_TRUE(peek.ok) << peek.error;
  EXPECT_EQ(peek.header.pop, PopId(2));
  EXPECT_EQ(peek.header.epoch, EpochId(465'191));
  EXPECT_EQ(peek.header.sequence, 150u);

  analysis::Pipeline restored(shared_world());
  const fleet::DecodeResult full = fleet::decode_partial(wire, restored);
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(state_bytes(restored), state_bytes(pipeline));
}

TEST(Partial, CorruptionIsRefusedNeverTrusted) {
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(40)) pipeline.ingest(s);
  const std::string wire =
      fleet::encode_partial({PopId(1), EpochId(7), 40, {}}, pipeline);

  // Any single flipped payload byte must fail the checksum (the fixed
  // header is 40 bytes: magic + version + pop + epoch + sequence + size).
  std::string flipped = wire;
  flipped[40 + 25] ^= 0x01;
  EXPECT_FALSE(fleet::peek_partial(flipped).ok);

  // Truncation at every interesting boundary is a refusal, not a crash.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                                std::size_t{20}, wire.size() / 2, wire.size() - 1}) {
    analysis::Pipeline scratch(shared_world());
    EXPECT_FALSE(fleet::decode_partial(wire.substr(0, cut), scratch).ok)
        << "cut=" << cut;
  }

  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(fleet::peek_partial(bad_magic).ok);

  std::string bad_version = wire;
  bad_version[8] = static_cast<char>(fleet::kPartialVersion + 1);
  EXPECT_FALSE(fleet::peek_partial(bad_version).ok);
}

TEST(Partial, V2CarriesOverloadStateInTheEnvelope) {
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(30)) pipeline.ingest(s);

  fleet::PartialHeader header;
  header.pop = PopId(4);
  header.epoch = EpochId(12);
  header.sequence = 30;
  header.overload.level = control::Level::kEvidenceOnly;
  header.overload.shed_samples = 1234;
  header.overload.first_shed_ts_sec = 41'000;
  const std::string wire = fleet::encode_partial(header, pipeline);

  const fleet::DecodeResult peek = fleet::peek_partial(wire);
  ASSERT_TRUE(peek.ok) << peek.error;
  EXPECT_EQ(peek.header.overload.level, control::Level::kEvidenceOnly);
  EXPECT_EQ(peek.header.overload.shed_samples, 1234u);
  EXPECT_EQ(peek.header.overload.first_shed_ts_sec, 41'000);

  // A v1 envelope (no overload state) is refused like an old checkpoint:
  // partials are operational state, not an archival format.
  std::string v1 = wire;
  v1[8] = 1;
  const auto refused = fleet::peek_partial(v1);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("version"), std::string::npos);

  // The ladder level is range-checked: 5 names no rung.
  // Envelope layout: magic(8) + version(4) + pop(4) + epoch(8) +
  // sequence(8) puts the level byte at offset 32.
  std::string bad_level = wire;
  bad_level[32] = 5;
  EXPECT_FALSE(fleet::peek_partial(bad_level).ok);
}


// ---------------------------------------------------------------------------
// Monoid laws — the algebra that makes the fleet correct by construction
// ---------------------------------------------------------------------------

class MonoidLaws : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto samples = generate_samples(600, 0xabc);
    // Three shards with disjoint sample sets (round-robin split).
    for (std::size_t i = 0; i < samples.size(); ++i)
      shards_[i % 3].push_back(samples[i]);
  }

  std::unique_ptr<analysis::Pipeline> pipeline_of(int shard) const {
    auto p = std::make_unique<analysis::Pipeline>(shared_world());
    for (const auto& s : shards_[shard]) p->ingest(s);
    return p;
  }

  std::vector<capture::ConnectionSample> shards_[3];
};

TEST_F(MonoidLaws, MergeIsCommutative) {
  const auto a = pipeline_of(0), b = pipeline_of(1), c = pipeline_of(2);
  std::vector<std::vector<std::uint8_t>> images;
  for (const auto& order : std::vector<std::vector<const analysis::Pipeline*>>{
           {a.get(), b.get(), c.get()},
           {c.get(), a.get(), b.get()},
           {b.get(), c.get(), a.get()},
           {c.get(), b.get(), a.get()}}) {
    analysis::Pipeline merged(shared_world());
    for (const analysis::Pipeline* p : order) merged.merge_from(*p);
    images.push_back(state_bytes(merged));
  }
  for (std::size_t i = 1; i < images.size(); ++i) EXPECT_EQ(images[0], images[i]);
}

TEST_F(MonoidLaws, MergeIsAssociative) {
  // (A + B) + C == A + (B + C), evaluated as serialized bytes.
  analysis::Pipeline left(shared_world());
  left.merge_from(*pipeline_of(0));
  left.merge_from(*pipeline_of(1));
  left.merge_from(*pipeline_of(2));

  analysis::Pipeline bc(shared_world());
  bc.merge_from(*pipeline_of(1));
  bc.merge_from(*pipeline_of(2));
  analysis::Pipeline right(shared_world());
  right.merge_from(*pipeline_of(0));
  right.merge_from(bc);

  EXPECT_EQ(state_bytes(left), state_bytes(right));
}

TEST_F(MonoidLaws, FreshPipelineIsTheIdentity) {
  const auto a = pipeline_of(0);
  const auto before = state_bytes(*a);

  // Right identity: merging an empty pipeline changes nothing.
  analysis::Pipeline identity(shared_world());
  a->merge_from(identity);
  EXPECT_EQ(state_bytes(*a), before);

  // Left identity: an empty pipeline absorbing A becomes A.
  analysis::Pipeline fresh(shared_world());
  fresh.merge_from(*a);
  EXPECT_EQ(state_bytes(fresh), before);
}

// ---------------------------------------------------------------------------
// Merger: idempotence, straggler classification, coverage
// ---------------------------------------------------------------------------

class MergerTest : public ::testing::Test {
 protected:
  std::string partial(std::uint32_t pop, std::uint64_t epoch, std::uint64_t sequence,
                      std::size_t samples) {
    analysis::Pipeline p(shared_world());
    for (const auto& s : generate_samples(samples, 0x9000 + pop)) p.ingest(s);
    return fleet::encode_partial({PopId(pop), EpochId(epoch), sequence, {}}, p);
  }
};

TEST_F(MergerTest, SheddingPopMarksItsEpochsDegradedNeverSilentlyComplete) {
  fleet::MergerConfig mc;
  mc.pops_expected = 2;
  mc.grace_epochs = 1;
  mc.epoch_length_sec = 3600;
  fleet::Merger merger(shared_world(), mc);

  // PoP 0: healthy. PoP 1: reporting, but admission control began
  // shedding in epoch 10 (first shed at 10h + 5min of capture time).
  EXPECT_TRUE(merger.deliver(partial(0, 11, 200, 60)));
  analysis::Pipeline p1(shared_world());
  for (const auto& s : generate_samples(60, 0x9100)) p1.ingest(s);
  fleet::PartialHeader h1;
  h1.pop = PopId(1);
  h1.epoch = EpochId(11);
  h1.sequence = 180;
  h1.overload.level = control::Level::kEmbryonicShed;
  h1.overload.shed_samples = 20;
  h1.overload.first_shed_ts_sec = 10 * 3600 + 300;
  EXPECT_TRUE(merger.deliver(fleet::encode_partial(h1, p1)));

  const auto c = merger.coverage();
  EXPECT_EQ(c.pops_reporting, 2u);
  EXPECT_TRUE(c.degraded);
  bool saw_shedding_epoch = false;
  for (const auto& e : c.epochs) {
    EXPECT_EQ(e.pops_reporting, 2u);
    if (e.epoch >= EpochId(10)) {
      // Both PoPs reported, but one was shedding: the epoch must say so
      // rather than pass as complete.
      EXPECT_EQ(e.pops_shedding, 1u);
      EXPECT_TRUE(e.degraded());
      saw_shedding_epoch = true;
    } else {
      EXPECT_EQ(e.pops_shedding, 0u);
      EXPECT_FALSE(e.degraded());
    }
  }
  EXPECT_TRUE(saw_shedding_epoch);

  // The merged report names the shed: coverage JSON plus the per-PoP
  // overload state.
  const std::string json = merger.merged_report({.min_country_connections = 0});
  EXPECT_NE(json.find("\"pops_shedding\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("embryonic_shed"), std::string::npos);
}

TEST_F(MergerTest, SheddingCoverageIgnoresArrivalOrder) {
  fleet::MergerConfig mc;
  mc.pops_expected = 2;
  mc.epoch_length_sec = 3600;

  analysis::Pipeline p1(shared_world());
  for (const auto& s : generate_samples(40, 0x9200)) p1.ingest(s);
  fleet::PartialHeader h1{PopId(1), EpochId(9), 40, {}};
  h1.overload.level = control::Level::kShedding;
  h1.overload.shed_samples = 7;
  h1.overload.first_shed_ts_sec = 8 * 3600;
  const std::string shed_wire = fleet::encode_partial(h1, p1);
  const std::string ok_wire = partial(0, 9, 120, 50);

  fleet::Merger forward(shared_world(), mc);
  EXPECT_TRUE(forward.deliver(ok_wire));
  EXPECT_TRUE(forward.deliver(shed_wire));
  fleet::Merger reverse(shared_world(), mc);
  EXPECT_TRUE(reverse.deliver(shed_wire));
  EXPECT_TRUE(reverse.deliver(ok_wire));

  EXPECT_EQ(forward.merged_report({.min_country_connections = 0}),
            reverse.merged_report({.min_country_connections = 0}));
}

TEST_F(MergerTest, ExactReplayIsADuplicate) {
  fleet::Merger merger(shared_world(), {.pops_expected = 2});
  const std::string wire = partial(0, 10, 100, 50);
  EXPECT_TRUE(merger.deliver(wire));
  EXPECT_TRUE(merger.deliver(wire));  // acknowledged, not re-merged
  const auto s = merger.stats();
  EXPECT_EQ(s.received, 2u);
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.duplicates, 1u);
}

TEST_F(MergerTest, OlderSequenceIsStaleNotRegressing) {
  fleet::Merger merger(shared_world(), {.pops_expected = 2});
  EXPECT_TRUE(merger.deliver(partial(0, 10, 100, 50)));
  // A spool replay arriving after fresher cumulative state: superseded.
  EXPECT_TRUE(merger.deliver(partial(0, 9, 60, 30)));
  const auto s = merger.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.stale, 1u);
  // The retained state is still the newer partial.
  const auto coverage = merger.coverage();
  EXPECT_EQ(coverage.pops[0].samples, 100u);
  EXPECT_EQ(coverage.pops[0].last_epoch, EpochId(10));
}

TEST_F(MergerTest, LatePartialIsCountedButStillMerged) {
  fleet::Merger merger(shared_world(),
                       {.pops_expected = 2, .grace_epochs = 1});
  EXPECT_TRUE(merger.deliver(partial(1, 20, 200, 50)));  // watermark -> 19
  EXPECT_TRUE(merger.deliver(partial(0, 10, 100, 50)));  // behind it
  const auto s = merger.stats();
  EXPECT_EQ(s.late, 1u);
  EXPECT_EQ(s.accepted, 2u);  // late data still counts — never dropped
  EXPECT_EQ(merger.coverage().pops[0].samples, 100u);
}

TEST_F(MergerTest, CorruptPartialIsRejectedAndAcknowledged) {
  fleet::Merger merger(shared_world(), {.pops_expected = 1});
  // Acknowledged (true) so the sender's spool is never wedged on bad bytes.
  EXPECT_TRUE(merger.deliver("not a partial"));
  std::string wire = partial(0, 1, 10, 20);
  wire[wire.size() - 3] ^= 0x40;
  EXPECT_TRUE(merger.deliver(wire));
  const auto s = merger.stats();
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.accepted, 0u);
}

TEST_F(MergerTest, BoundedSkewGuardTrips) {
  fleet::Merger merger(shared_world(),
                       {.pops_expected = 3,
                        .grace_epochs = 1,
                        .epoch_length_sec = 1,
                        .max_skew_sec = 3});  // bound = 3 + 1 grace = 4 epochs
  EXPECT_TRUE(merger.deliver(partial(0, 100, 10, 20)));
  EXPECT_TRUE(merger.deliver(partial(1, 101, 10, 20)));
  EXPECT_EQ(merger.stats().skew_detected, 0u);
  // PoP 2's clock is minutes out: 80 epochs from the fleet median.
  EXPECT_TRUE(merger.deliver(partial(2, 180, 10, 20)));
  EXPECT_EQ(merger.stats().skew_detected, 1u);
}

TEST_F(MergerTest, CoverageFlagsSilentAndLaggingPops) {
  fleet::Merger merger(shared_world(),
                       {.pops_expected = 3,
                        .grace_epochs = 1,
                        .heartbeat_timeout_epochs = 3,
                        .coverage_window_epochs = 4});
  EXPECT_TRUE(merger.deliver(partial(0, 20, 300, 60)));
  EXPECT_TRUE(merger.deliver(partial(1, 18, 120, 40)));  // behind watermark 19
  const auto c = merger.coverage();
  EXPECT_EQ(c.pops_expected, 3u);
  EXPECT_EQ(c.pops_reporting, 2u);
  EXPECT_EQ(c.max_epoch, 20u);
  EXPECT_EQ(c.watermark, 19u);
  ASSERT_EQ(c.pops.size(), 3u);
  EXPECT_EQ(c.pops[0].status, "live");
  EXPECT_EQ(c.pops[1].status, "lagging");
  EXPECT_EQ(c.pops[2].status, "silent");
  EXPECT_TRUE(c.degraded);
  // Epoch rows: 18 has both reporters (cumulative partials), 19 only PoP 0,
  // and every row is missing the silent PoP.
  ASSERT_EQ(c.epochs.size(), 4u);
  EXPECT_EQ(c.epochs[2].epoch, EpochId(18));
  EXPECT_EQ(c.epochs[2].pops_reporting, 2u);
  EXPECT_EQ(c.epochs[3].epoch, EpochId(19));
  EXPECT_EQ(c.epochs[3].pops_reporting, 1u);
  for (const auto& e : c.epochs) EXPECT_TRUE(e.degraded());
}

TEST_F(MergerTest, DeadPopIsDeclaredAfterHeartbeatTimeout) {
  fleet::Merger merger(shared_world(),
                       {.pops_expected = 2,
                        .grace_epochs = 1,
                        .heartbeat_timeout_epochs = 3});
  EXPECT_TRUE(merger.deliver(partial(0, 30, 500, 60)));
  EXPECT_TRUE(merger.deliver(partial(1, 26, 200, 40)));  // 4 epochs behind
  const auto c = merger.coverage();
  EXPECT_EQ(c.pops[0].status, "live");
  EXPECT_EQ(c.pops[1].status, "dead");
}

TEST_F(MergerTest, MergedReportCarriesTheFleetSection) {
  fleet::Merger merger(shared_world(), {.pops_expected = 2});
  EXPECT_TRUE(merger.deliver(partial(0, 5, 100, 50)));
  const std::string json = merger.merged_report();
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"pops_expected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"pops_reporting\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"silent\""), std::string::npos);
}

TEST_F(MergerTest, MergedBytesIgnoreArrivalOrder) {
  const std::string p0 = partial(0, 8, 100, 60);
  const std::string p1 = partial(1, 8, 90, 50);
  const std::string p2 = partial(2, 9, 110, 70);
  fleet::MergerConfig config{.pops_expected = 3};

  fleet::Merger forward(shared_world(), config);
  EXPECT_TRUE(forward.deliver(p0));
  EXPECT_TRUE(forward.deliver(p1));
  EXPECT_TRUE(forward.deliver(p2));

  fleet::Merger backward(shared_world(), config);
  EXPECT_TRUE(backward.deliver(p2));
  EXPECT_TRUE(backward.deliver(p1));
  EXPECT_TRUE(backward.deliver(p0));
  EXPECT_TRUE(backward.deliver(p1));  // plus a replay for good measure

  EXPECT_EQ(forward.merged_state_image(), backward.merged_state_image());
  EXPECT_EQ(forward.merged_report(), backward.merged_report());
}

// ---------------------------------------------------------------------------
// Federated trends: the merged epoch ring obeys the same monoid laws as
// the scalar aggregates, so the `tamper-timeseries/1` dump is a pure
// function of the partial set — arrival order, replays, and checkpoint
// round trips can never change a byte.
// ---------------------------------------------------------------------------

/// A partial whose pipeline carries a populated trends ring: samples are
/// ingested in observation order with periodic sample_trends() calls, the
/// way the service worker rolls up at checkpoint/report boundaries.
std::string trends_partial(std::uint32_t pop, std::uint64_t epoch,
                           std::uint64_t sequence, std::size_t samples,
                           std::uint64_t seed) {
  analysis::Pipeline p(shared_world());
  std::size_t ingested = 0;
  for (const auto& s : generate_samples(samples, seed)) {
    p.ingest(s);
    if (++ingested % 50 == 0) p.sample_trends();
  }
  p.sample_trends();
  return fleet::encode_partial({PopId(pop), EpochId(epoch), sequence, {}}, p);
}

TEST_F(MergerTest, TimeseriesDumpIgnoresArrivalOrderAndReplays) {
  const std::string p0 = trends_partial(0, 8, 200, 180, 0xa000);
  const std::string p1 = trends_partial(1, 8, 190, 160, 0xa001);
  const std::string p2 = trends_partial(2, 9, 210, 200, 0xa002);
  fleet::MergerConfig config{.pops_expected = 3};

  fleet::Merger forward(shared_world(), config);
  EXPECT_TRUE(forward.deliver(p0));
  EXPECT_TRUE(forward.deliver(p1));
  EXPECT_TRUE(forward.deliver(p2));

  fleet::Merger shuffled(shared_world(), config);
  EXPECT_TRUE(shuffled.deliver(p2));
  EXPECT_TRUE(shuffled.deliver(p0));
  EXPECT_TRUE(shuffled.deliver(p1));
  EXPECT_TRUE(shuffled.deliver(p0));  // replay: idempotent on (pop, epoch, seq)
  EXPECT_EQ(shuffled.stats().duplicates, 1u);

  const std::string dump = forward.timeseries_dump();
  EXPECT_EQ(dump, shuffled.timeseries_dump());
  EXPECT_EQ(forward.merged_report(), shuffled.merged_report());

  // The dump carries the fleet scope plus one scope per reporting PoP.
  EXPECT_NE(dump.find("tamper-timeseries/1"), std::string::npos);
  EXPECT_NE(dump.find("\"fleet\""), std::string::npos);
  EXPECT_NE(dump.find("\"pop:0\""), std::string::npos);
  EXPECT_NE(dump.find("\"pop:1\""), std::string::npos);
  EXPECT_NE(dump.find("\"pop:2\""), std::string::npos);

  // And the fleet-scope trends view is populated, identically, on both.
  const fleet::Merger::FleetTrends a = forward.fleet_trends();
  const fleet::Merger::FleetTrends b = shuffled.fleet_trends();
  EXPECT_FALSE(a.epochs.empty());
  EXPECT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_EQ(a.scan.points_scanned, b.scan.points_scanned);
  EXPECT_EQ(a.scan.events.size(), b.scan.events.size());
}

TEST_F(MergerTest, TrendsRingSurvivesTheCheckpointRoundTripByteStably) {
  // A pipeline with a non-empty ring: save -> restore -> save must be
  // byte-identical, and the restored ring must serve the same series.
  analysis::Pipeline pipeline(shared_world());
  std::size_t ingested = 0;
  for (const auto& s : generate_samples(300, 0xa100)) {
    pipeline.ingest(s);
    if (++ingested % 50 == 0) pipeline.sample_trends();
  }
  pipeline.sample_trends();
  ASSERT_FALSE(pipeline.trends().series().empty());

  const auto first = state_bytes(pipeline);
  analysis::Pipeline restored(shared_world());
  const service::LoadResult load = service::decode_checkpoint(first, restored);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(state_bytes(restored), first);
  EXPECT_EQ(restored.trends().series().size(), pipeline.trends().series().size());
  EXPECT_EQ(restored.trends().max_epoch(), pipeline.trends().max_epoch());
}

// ---------------------------------------------------------------------------
// Fleet end-to-end
// ---------------------------------------------------------------------------

fleet::FleetConfig fleet_config(const ScratchDir& scratch, std::uint32_t pops = 3) {
  fleet::FleetConfig fc;
  fc.pops = pops;
  fc.seed = 11;
  fc.state_dir = (scratch.path / "fleet").string();
  fc.report_every_samples = 200;
  fc.checkpoint_every_samples = 100;
  return fc;
}

TEST(Fleet, MergedFleetEqualsMonolith) {
  // Below the evidence per-bucket cap (1000): the cap is per-vantage, so a
  // monolith that truncated where shards did not would legitimately differ.
  const auto samples = generate_samples(800);
  analysis::Pipeline monolith(shared_world());
  for (const auto& s : samples) monolith.ingest(s);

  ScratchDir scratch("monolith");
  fleet::Fleet fleet(shared_world(), fleet_config(scratch));
  for (const auto& s : samples) EXPECT_TRUE(fleet.submit(s).has_value());
  fleet.stop();

  // Sharding by anycast must be invisible in the merged aggregate bytes
  // (the trends ring is sampled at per-PoP cadence, so it is normalized).
  EXPECT_EQ(without_trends(fleet.merger().merged_state_image()),
            without_trends(state_bytes(monolith)));
  const auto c = fleet.merger().coverage();
  EXPECT_EQ(c.pops_reporting, c.pops_expected);
  EXPECT_FALSE(c.degraded);
  std::uint64_t merged_samples = 0;
  for (const auto& pop : c.pops) merged_samples += pop.samples;
  EXPECT_EQ(merged_samples, samples.size());
}

TEST(Fleet, ResumeFromCheckpointHasNoDuplicateAndNoGap) {
  const auto samples = generate_samples(800);

  ScratchDir baseline_dir("resume_baseline");
  fleet::Fleet baseline(shared_world(), fleet_config(baseline_dir));
  for (const auto& s : samples) baseline.submit(s);
  baseline.stop();

  ScratchDir chaos_dir("resume_chaos");
  fleet::Fleet fleet(shared_world(), fleet_config(chaos_dir));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i == samples.size() / 3) {
      // kill -9 mid-epoch, past at least one checkpoint, then restart: the
      // PoP resumes from its checkpoint and re-feeds the dropped tail.
      fleet.kill_pop(PopId(1));
      ASSERT_TRUE(fleet.restart_pop(PopId(1)));
    }
    fleet.submit(samples[i]);
  }
  fleet.stop();

  // No gap and no duplicate: per-PoP cumulative sequences add up to exactly
  // the fed stream, and the merged bytes match the undisturbed run.
  std::uint64_t merged_samples = 0;
  for (const auto& pop : fleet.merger().coverage().pops) merged_samples += pop.samples;
  EXPECT_EQ(merged_samples, samples.size());
  EXPECT_EQ(fleet.merger().merged_state_image(), baseline.merger().merged_state_image());
  EXPECT_FALSE(fleet.merger().coverage().degraded);
}

TEST(Fleet, PartitionSpoolsAndHealsWithoutLoss) {
  const auto samples = generate_samples(600);

  ScratchDir baseline_dir("partition_baseline");
  fleet::Fleet baseline(shared_world(), fleet_config(baseline_dir));
  for (const auto& s : samples) baseline.submit(s);
  baseline.stop();

  ScratchDir chaos_dir("partition_chaos");
  fleet::Fleet fleet(shared_world(), fleet_config(chaos_dir));
  fleet.set_pop_partitioned(PopId(0), true);  // cut PoP 0 <-> merger at start
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i == (2 * samples.size()) / 3) fleet.set_pop_partitioned(PopId(0), false);
    fleet.submit(samples[i]);
  }
  fleet.stop();

  EXPECT_EQ(fleet.merger().merged_state_image(), baseline.merger().merged_state_image());
  // The partial emitted inside the partition window spooled, then replayed.
  EXPECT_GT(fleet.merger().stats().received, 0u);
}

TEST(Fleet, PerPopMetricsSurviveRestart) {
  const auto samples = generate_samples(400);
  ScratchDir scratch("metrics");
  fleet::Fleet fleet(shared_world(), fleet_config(scratch));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i == samples.size() / 2) {
      fleet.kill_pop(PopId(0));
      ASSERT_TRUE(fleet.restart_pop(PopId(0)));
    }
    fleet.submit(samples[i]);
  }
  const auto summaries = fleet.stop();
  ASSERT_EQ(summaries.size(), 3u);
  // The registry is owned by the fleet, not the service: the rebuilt PoP
  // kept appending to the same metric families without re-registration.
  const std::string prom = fleet.pop_metrics(PopId(0)).prometheus_text();
  EXPECT_NE(prom.find("tamper_reports_emitted_total"), std::string::npos);
  EXPECT_NE(prom.find("tamper_emitter_delivered_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chaos campaigns (>= 50 seeds across the two modes)
// ---------------------------------------------------------------------------

fleet::CampaignOptions campaign_options(std::uint64_t seed, const ScratchDir& scratch,
                                        fleet::CampaignMode mode) {
  fleet::CampaignOptions options;
  options.seed = seed;
  options.pops = 3;
  options.mode = mode;
  options.state_dir = (scratch.path / ("c" + std::to_string(seed))).string();
  options.report_every_samples = 120;
  options.checkpoint_every_samples = 60;
  return options;
}

TEST(FleetCampaign, DeliveryChaosNeverChangesTheMergedBytes) {
  // Crashes with resume, partitions that heal, stragglers, spool replays
  // and skewed clocks: the surviving coverage set is the full fleet, so the
  // merged aggregate image must be byte-identical to the chaos-free run.
  const auto samples = generate_samples(700);
  ScratchDir scratch("delivery_chaos");
  fleet::CampaignEvents total;
  std::uint64_t absorbed = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto baseline_options =
        campaign_options(seed, scratch, fleet::CampaignMode::kDeliveryChaos);
    baseline_options.state_dir += "-baseline";
    const auto baseline = run_campaign(shared_world(), samples, baseline_options);

    auto chaos_options =
        campaign_options(seed, scratch, fleet::CampaignMode::kDeliveryChaos);
    chaos_options.chaos.fleet.pop_crash_probability = 0.6;
    chaos_options.chaos.fleet.partition_probability = 0.35;
    chaos_options.chaos.fleet.straggler_probability = 0.25;
    chaos_options.chaos.fleet.skew_probability = 0.4;
    chaos_options.chaos.fleet.max_skew_sec = 7200;
    const auto result = run_campaign(shared_world(), samples, chaos_options);

    EXPECT_EQ(result.merged_image, baseline.merged_image) << "seed=" << seed;
    EXPECT_EQ(result.events.restarts, result.events.kills) << "seed=" << seed;
    // Epoch-level coverage may shift when a clock is skewed — that is the
    // guard doing its job (the skewed PoP's epoch tags stray), and the
    // bytes above prove no data was actually lost. Without skew the entire
    // report — aggregates AND the fleet coverage section — must match the
    // chaos-free run (a routing seed can make one PoP's clients go quiet
    // early, but then the baseline shows the very same coverage).
    if (result.events.skewed_pops == 0) {
      EXPECT_EQ(result.merged_json, baseline.merged_json) << "seed=" << seed;
    }
    total.kills += result.events.kills;
    total.restarts += result.events.restarts;
    total.partition_windows += result.events.partition_windows;
    total.straggler_windows += result.events.straggler_windows;
    total.skewed_pops += result.events.skewed_pops;
    absorbed += result.merger_stats.duplicates + result.merger_stats.stale;
  }
  // The campaign set must actually have exercised every chaos class.
  EXPECT_GT(total.kills, 0u);
  EXPECT_GT(total.partition_windows, 0u);
  EXPECT_GT(total.straggler_windows, 0u);
  EXPECT_GT(total.skewed_pops, 0u);
  EXPECT_GT(absorbed, 0u);  // idempotence did real work, not vacuous truth
}

TEST(FleetCampaign, PopLossIsExplicitlyDegradedNeverSilentlyWrong) {
  const auto samples = generate_samples(700);
  ScratchDir scratch("pop_loss");
  std::uint64_t total_kills = 0, degraded_runs = 0;
  for (std::uint64_t seed = 101; seed <= 120; ++seed) {
    auto baseline_options =
        campaign_options(seed, scratch, fleet::CampaignMode::kPopLoss);
    baseline_options.state_dir += "-baseline";
    const auto baseline = run_campaign(shared_world(), samples, baseline_options);

    auto loss_options = campaign_options(seed, scratch, fleet::CampaignMode::kPopLoss);
    // Large report interval: a killed PoP dies before its first partial, so
    // the loss is visible as a silent PoP, not merely a short tail.
    loss_options.report_every_samples = 100'000;
    loss_options.chaos.fleet.pop_crash_probability = 0.5;
    const auto result = run_campaign(shared_world(), samples, loss_options);

    total_kills += result.events.kills;
    if (result.events.kills == 0) {
      EXPECT_FALSE(result.coverage.degraded) << "seed=" << seed;
      continue;
    }
    // Data died with the PoP — and the output says so instead of passing
    // itself off as the full fleet.
    EXPECT_EQ(result.events.withdrawals, result.events.kills) << "seed=" << seed;
    EXPECT_LT(result.coverage.pops_reporting, result.coverage.pops_expected)
        << "seed=" << seed;
    EXPECT_TRUE(result.coverage.degraded) << "seed=" << seed;
    EXPECT_NE(result.merged_image, baseline.merged_image) << "seed=" << seed;
    EXPECT_NE(result.merged_json.find("\"degraded\": true"), std::string::npos)
        << "seed=" << seed;
    ++degraded_runs;
  }
  // With p=0.5 over 3 PoPs x 20 seeds, a chaos drought means a seeding bug.
  EXPECT_GE(total_kills, 5u);
  EXPECT_GE(degraded_runs, 5u);
}

}  // namespace
}  // namespace tamper
