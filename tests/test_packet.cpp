#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/checksum.h"
#include "net/packet.h"

namespace tamper::net {
namespace {

Packet sample_packet(bool v6 = false) {
  Packet pkt = make_tcp_packet(
      v6 ? *IpAddress::parse("2400:44d::1234") : IpAddress::v4(11, 2, 3, 4), 51515,
      v6 ? *IpAddress::parse("2001:db8:cd:1::1") : IpAddress::v4(198, 18, 0, 7), 443,
      tcpflag::kPsh | tcpflag::kAck, 0xdeadbeef, 0x12345678,
      std::vector<std::uint8_t>{'h', 'e', 'l', 'l', 'o'});
  pkt.ip.ttl = 57;
  pkt.ip.ip_id = 4242;
  pkt.tcp.window = 29200;
  return pkt;
}

TEST(Packet, SerializeParseRoundTripV4) {
  const Packet pkt = sample_packet(false);
  const auto wire = serialize(pkt);
  const auto parsed = parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->tcp_checksum_ok);
  const Packet& out = parsed->packet;
  EXPECT_EQ(out.src, pkt.src);
  EXPECT_EQ(out.dst, pkt.dst);
  EXPECT_EQ(out.ip.ttl, 57);
  EXPECT_EQ(out.ip.ip_id, 4242);
  EXPECT_EQ(out.tcp.src_port, 51515);
  EXPECT_EQ(out.tcp.dst_port, 443);
  EXPECT_EQ(out.tcp.seq, 0xdeadbeef);
  EXPECT_EQ(out.tcp.ack, 0x12345678u);
  EXPECT_EQ(out.tcp.flags, tcpflag::kPsh | tcpflag::kAck);
  EXPECT_EQ(out.tcp.window, 29200);
  EXPECT_EQ(out.payload, pkt.payload);
}

TEST(Packet, SerializeParseRoundTripV6) {
  const Packet pkt = sample_packet(true);
  const auto wire = serialize(pkt);
  EXPECT_EQ(wire[0] >> 4, 6);
  const auto parsed = parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->tcp_checksum_ok);
  EXPECT_EQ(parsed->packet.src, pkt.src);
  EXPECT_EQ(parsed->packet.ip.ttl, 57);  // hop limit
  EXPECT_EQ(parsed->packet.payload, pkt.payload);
}

TEST(Packet, OptionsRoundTrip) {
  Packet pkt = sample_packet();
  pkt.tcp.flags = tcpflag::kSyn;
  pkt.payload.clear();
  pkt.tcp.options = {
      TcpOption::mss_opt(1460),
      TcpOption::sack_permitted_opt(),
      TcpOption::timestamps_opt(0xaabbccdd, 0x11223344),
      TcpOption::nop_opt(),
      TcpOption::window_scale_opt(7),
  };
  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  const TcpHeader& tcp = parsed->packet.tcp;
  EXPECT_EQ(tcp.mss(), 1460);
  EXPECT_TRUE(tcp.sack_permitted());
  EXPECT_EQ(tcp.timestamp_value(), 0xaabbccddu);
  bool saw_wscale = false;
  for (const auto& option : tcp.options)
    if (option.kind == TcpOptionKind::kWindowScale) {
      saw_wscale = true;
      EXPECT_EQ(option.window_scale, 7);
    }
  EXPECT_TRUE(saw_wscale);
}

TEST(Packet, HeaderSizePaddedToFourBytes) {
  TcpHeader tcp;
  tcp.options = {TcpOption::window_scale_opt(7)};  // 3 bytes -> padded to 4
  EXPECT_EQ(tcp.options_wire_size(), 4u);
  EXPECT_EQ(tcp.header_size(), 24u);
}

TEST(Packet, CorruptedIpChecksumDetected) {
  auto wire = serialize(sample_packet());
  wire[8] ^= 0xff;  // flip the TTL: IP header checksum breaks
  const auto parsed = parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ip_checksum_ok);
}

TEST(Packet, CorruptedPayloadDetectedByTcpChecksum) {
  auto wire = serialize(sample_packet());
  wire.back() ^= 0x01;
  const auto parsed = parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->tcp_checksum_ok);
}

TEST(Packet, RejectsNonTcp) {
  auto wire = serialize(sample_packet());
  wire[9] = 17;  // claim UDP
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Packet, RejectsTruncatedInputs) {
  const auto wire = serialize(sample_packet());
  for (std::size_t len : {0u, 10u, 19u, 25u, 39u}) {
    EXPECT_FALSE(parse(std::span(wire).first(len)).has_value()) << len;
  }
}

TEST(Packet, RejectsBadVersionNibble) {
  auto wire = serialize(sample_packet());
  wire[0] = 0x75;
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Packet, RejectsBadDataOffset) {
  auto wire = serialize(sample_packet());
  wire[20 + 12] = 0x30;  // TCP data offset 3 (< 5) is illegal
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Packet, SummaryMentionsFlagsAndPorts) {
  const std::string s = sample_packet().summary();
  EXPECT_NE(s.find("PSH+ACK"), std::string::npos);
  EXPECT_NE(s.find("443"), std::string::npos);
}

TEST(FlagsToString, Rendering) {
  EXPECT_EQ(flags_to_string(tcpflag::kSyn), "SYN");
  EXPECT_EQ(flags_to_string(tcpflag::kRst | tcpflag::kAck), "RST+ACK");
  EXPECT_EQ(flags_to_string(0), "NONE");
  EXPECT_EQ(flags_to_string(tcpflag::kFin | tcpflag::kAck), "FIN+ACK");
}

// Property sweep: random packets round-trip bit-exactly.
class PacketFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzzRoundTrip, Holds) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Packet pkt;
    const bool v6 = rng.chance(0.4);
    pkt.src = v6 ? IpAddress::v6(rng.next(), rng.next())
                 : IpAddress::v4(static_cast<std::uint32_t>(rng.next()));
    pkt.dst = v6 ? IpAddress::v6(rng.next(), rng.next())
                 : IpAddress::v4(static_cast<std::uint32_t>(rng.next()));
    pkt.ip.ttl = static_cast<std::uint8_t>(rng.range(1, 255));
    pkt.ip.ip_id = static_cast<std::uint16_t>(rng.below(65536));
    pkt.tcp.src_port = static_cast<std::uint16_t>(rng.below(65536));
    pkt.tcp.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    pkt.tcp.seq = static_cast<std::uint32_t>(rng.next());
    pkt.tcp.ack = static_cast<std::uint32_t>(rng.next());
    pkt.tcp.flags = static_cast<std::uint8_t>(rng.below(256));
    pkt.tcp.window = static_cast<std::uint16_t>(rng.below(65536));
    pkt.payload.resize(rng.below(300));
    for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(rng.below(256));
    if (rng.chance(0.5)) pkt.tcp.options.push_back(TcpOption::mss_opt(1400));
    if (rng.chance(0.5))
      pkt.tcp.options.push_back(TcpOption::timestamps_opt(
          static_cast<std::uint32_t>(rng.next()), static_cast<std::uint32_t>(rng.next())));

    const auto parsed = parse(serialize(pkt));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->ip_checksum_ok);
    ASSERT_TRUE(parsed->tcp_checksum_ok);
    ASSERT_EQ(parsed->packet.src, pkt.src);
    ASSERT_EQ(parsed->packet.dst, pkt.dst);
    ASSERT_EQ(parsed->packet.tcp.seq, pkt.tcp.seq);
    ASSERT_EQ(parsed->packet.tcp.ack, pkt.tcp.ack);
    ASSERT_EQ(parsed->packet.tcp.flags, pkt.tcp.flags);
    ASSERT_EQ(parsed->packet.payload, pkt.payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzzRoundTrip, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace tamper::net
