// Supervised-service suite: bounded-queue backpressure, checkpoint
// round-trips (byte-stable, version-skewed, truncated at every offset),
// report-sink retry/spool behaviour, and chaos campaigns proving the
// service-level contract — kill at any point loses at most one checkpoint
// interval and never corrupts aggregate state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "common/bounded_queue.h"
#include "fault/chaos.h"
#include "service/checkpoint.h"
#include "service/shutdown.h"
#include "service/sink.h"
#include "service/supervisor.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper {
namespace {

namespace fs = std::filesystem;

const world::World& shared_world() {
  static const world::World kWorld{
      world::WorldConfig{.domains = {.domain_count = 10'000}, .seed = 0x5e44}};
  return kWorld;
}

std::vector<capture::ConnectionSample> generate_samples(std::size_t n,
                                                        std::uint64_t seed = 0xfeed) {
  world::TrafficConfig traffic;
  traffic.seed = seed;
  world::TrafficGenerator generator(shared_world(), traffic);
  std::vector<capture::ConnectionSample> out;
  out.reserve(n);
  generator.generate(n, [&](world::LabeledConnection&& conn) {
    out.push_back(std::move(conn.sample));
  });
  return out;
}

/// Unique scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("tamper_service_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
  fs::path path;
};

/// A checkpoint image with the trends ring normalized to empty. The
/// stitched-vs-uninterrupted contract is about the fold of the sample
/// multiset; ring points are sampled at checkpoint/report cadence, which a
/// plain golden pipeline does not share. Ring durability has its own tests
/// (obs suite + fleet round-trip).
std::vector<std::uint8_t> without_trends(const std::vector<std::uint8_t>& image) {
  analysis::Pipeline scratch(shared_world());
  const service::LoadResult load = service::decode_checkpoint(image, scratch);
  EXPECT_TRUE(load.ok) << load.error;
  scratch.set_trends_config(scratch.trends().config());
  return service::encode_checkpoint(scratch, {});
}

// ---------------------------------------------------------------- queue --

TEST(BoundedQueue, BlockPolicyDeliversEverythingInOrder) {
  common::BoundedQueue<int> q(4, common::QueuePolicy::kBlock);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  // Hold off popping until the producer is blocked on a full queue, so the
  // push_waits assertion below is deterministic.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  int expect = 0;
  while (auto item = q.pop_wait(std::chrono::seconds(1))) {
    EXPECT_EQ(*item, expect++);
  }
  producer.join();
  EXPECT_EQ(expect, 100);
  const auto stats = q.stats();
  EXPECT_EQ(stats.pushed, 100u);
  EXPECT_EQ(stats.popped, 100u);
  EXPECT_EQ(stats.shed_total(), 0u);
  // Capacity 4 with a never-popping consumer at first: some pushes waited.
  EXPECT_GT(stats.push_waits, 0u);
}

TEST(BoundedQueue, ClosedQueueRejectsPushAndDrains) {
  common::BoundedQueue<int> q(4, common::QueuePolicy::kBlock);
  ASSERT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));
  auto item = q.try_pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, ShedPolicyPrefersLowValueItems) {
  // Low-value = negative numbers; the queue should sacrifice them first.
  common::BoundedQueue<int> q(3, common::QueuePolicy::kShed,
                              [](const int& v) { return v < 0; });
  ASSERT_TRUE(q.push(-1));
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  ASSERT_TRUE(q.push(12));  // full: sheds the queued -1
  const auto stats = q.stats();
  EXPECT_EQ(stats.shed_low_value, 1u);
  EXPECT_EQ(stats.shed_other, 0u);
  std::vector<int> drained;
  while (auto item = q.try_pop()) drained.push_back(*item);
  EXPECT_EQ(drained, (std::vector<int>{10, 11, 12}));
}

TEST(BoundedQueue, ShedPolicyDropsLowValueIncoming) {
  common::BoundedQueue<int> q(2, common::QueuePolicy::kShed,
                              [](const int& v) { return v < 0; });
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  ASSERT_TRUE(q.push(-5));  // full, incoming itself low-value: dropped
  EXPECT_EQ(q.stats().shed_low_value, 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, ShedPolicyFallsBackToOldest) {
  common::BoundedQueue<int> q(2, common::QueuePolicy::kShed,
                              [](const int& v) { return v < 0; });
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  ASSERT_TRUE(q.push(12));  // nothing low-value: oldest (10) goes
  EXPECT_EQ(q.stats().shed_other, 1u);
  std::vector<int> drained;
  while (auto item = q.try_pop()) drained.push_back(*item);
  EXPECT_EQ(drained, (std::vector<int>{11, 12}));
}

// -------------------------------------------- idempotent stat recording --

TEST(PipelineStats, RecordingSameSnapshotTwiceCountsOnce) {
  analysis::Pipeline pipeline(shared_world());
  net::PcapReader::Stats rs;
  rs.skipped_unparseable = 7;
  rs.skipped_oversize = 3;
  rs.skipped_truncated = 2;
  pipeline.record_reader_stats(rs);
  pipeline.record_reader_stats(rs);  // periodic re-poll of the same source
  pipeline.record_reader_stats(rs);
  EXPECT_EQ(pipeline.degraded().unparseable_frames, 7u);
  EXPECT_EQ(pipeline.degraded().oversize_frames, 3u);
  EXPECT_EQ(pipeline.degraded().truncated_frames, 2u);

  capture::ConnectionSampler::Stats ss;
  ss.packets_malformed = 5;
  ss.flows_evicted_overload = 4;
  pipeline.record_sampler_stats(ss);
  pipeline.record_sampler_stats(ss);
  EXPECT_EQ(pipeline.degraded().malformed_packets, 5u);
  EXPECT_EQ(pipeline.degraded().overload_evicted, 4u);
}

TEST(PipelineStats, RecordingAddsOnlyTheDelta) {
  analysis::Pipeline pipeline(shared_world());
  net::PcapReader::Stats rs;
  rs.skipped_unparseable = 10;
  pipeline.record_reader_stats(rs);
  rs.skipped_unparseable = 25;  // source progressed
  pipeline.record_reader_stats(rs);
  EXPECT_EQ(pipeline.degraded().unparseable_frames, 25u);
}

TEST(PipelineStats, BackwardsCounterMeansFreshSource) {
  analysis::Pipeline pipeline(shared_world());
  net::PcapReader::Stats rs;
  rs.skipped_unparseable = 10;
  pipeline.record_reader_stats(rs);
  rs.skipped_unparseable = 4;  // a new reader started from zero
  pipeline.record_reader_stats(rs);
  EXPECT_EQ(pipeline.degraded().unparseable_frames, 14u);
}

TEST(PipelineStats, QueueShedsLandInDegradedStats) {
  analysis::Pipeline pipeline(shared_world());
  common::BoundedQueueStats qs;
  qs.shed_low_value = 6;
  qs.shed_other = 2;
  pipeline.record_queue_stats(qs);
  pipeline.record_queue_stats(qs);
  EXPECT_EQ(pipeline.degraded().queue_shed_embryonic, 6u);
  EXPECT_EQ(pipeline.degraded().queue_shed_other, 2u);
  EXPECT_GE(pipeline.degraded().total(), 8u);
}

// ----------------------------------------------------------- checkpoint --

TEST(Checkpoint, SaveRestoreSaveIsByteStable) {
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(2000)) pipeline.ingest(s);
  service::CheckpointMeta meta;
  meta.samples_ingested = 2000;
  meta.sequence = 3;

  const auto first = service::encode_checkpoint(pipeline, meta);
  analysis::Pipeline restored(shared_world());
  const auto load = service::decode_checkpoint(first, restored);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.meta.samples_ingested, 2000u);
  EXPECT_EQ(load.meta.sequence, 3u);
  const auto second = service::encode_checkpoint(restored, meta);
  EXPECT_EQ(first, second);  // golden: serialization is a pure state image
}

TEST(Checkpoint, RestoredPipelineMatchesUninterruptedRun) {
  const auto samples = generate_samples(3000);
  analysis::Pipeline uninterrupted(shared_world());
  for (const auto& s : samples) uninterrupted.ingest(s);

  // Same stream, but checkpointed + restored halfway through.
  analysis::Pipeline first_half(shared_world());
  for (std::size_t i = 0; i < 1500; ++i) first_half.ingest(samples[i]);
  const auto image = service::encode_checkpoint(first_half, {});
  analysis::Pipeline resumed(shared_world());
  ASSERT_TRUE(service::decode_checkpoint(image, resumed).ok);
  for (std::size_t i = 1500; i < samples.size(); ++i) resumed.ingest(samples[i]);

  const auto full = service::encode_checkpoint(uninterrupted, {});
  const auto stitched = service::encode_checkpoint(resumed, {});
  EXPECT_EQ(full, stitched);
  EXPECT_EQ(resumed.signatures().total_connections(),
            uninterrupted.signatures().total_connections());
}

TEST(Checkpoint, FutureVersionIsCleanlyRefused) {
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(50)) pipeline.ingest(s);
  auto image = service::encode_checkpoint(pipeline, {});
  image[8] = static_cast<std::uint8_t>(service::kCheckpointVersion + 1);  // LE u32 at offset 8
  analysis::Pipeline target(shared_world());
  const auto load = service::decode_checkpoint(image, target);
  EXPECT_FALSE(load.ok);
  EXPECT_NE(load.error.find("version"), std::string::npos) << load.error;
}

TEST(Checkpoint, BadMagicIsCleanlyRefused) {
  analysis::Pipeline pipeline(shared_world());
  auto image = service::encode_checkpoint(pipeline, {});
  image[0] ^= 0xff;
  analysis::Pipeline target(shared_world());
  EXPECT_FALSE(service::decode_checkpoint(image, target).ok);
}

TEST(Checkpoint, TruncationAtEveryOffsetIsCleanlyRefused) {
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(40)) pipeline.ingest(s);
  const auto image = service::encode_checkpoint(pipeline, {});
  ASSERT_GT(image.size(), 28u);
  for (std::size_t keep = 0; keep < image.size(); ++keep) {
    const auto broken = fault::truncated_prefix(image, keep);
    analysis::Pipeline target(shared_world());
    const auto load = service::decode_checkpoint(broken, target);
    EXPECT_FALSE(load.ok) << "accepted a checkpoint truncated to " << keep << " bytes";
    EXPECT_FALSE(load.error.empty());
  }
  analysis::Pipeline target(shared_world());
  EXPECT_TRUE(service::decode_checkpoint(image, target).ok);  // intact still loads
}

TEST(Checkpoint, BitFlipsAreCleanlyRefused) {
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(40)) pipeline.ingest(s);
  const auto image = service::encode_checkpoint(pipeline, {});
  // Flip a spread of payload bytes (the checksum must catch every one).
  for (std::size_t offset = 20; offset < image.size(); offset += 97) {
    auto broken = image;
    broken[offset] ^= 0x40;
    analysis::Pipeline target(shared_world());
    EXPECT_FALSE(service::decode_checkpoint(broken, target).ok)
        << "accepted a bit-flip at offset " << offset;
  }
}

TEST(Checkpoint, MissingFileReportsNoCheckpoint) {
  ScratchDir dir("missing");
  analysis::Pipeline pipeline(shared_world());
  const auto load = service::load_checkpoint(dir.file("absent.ckpt"), pipeline);
  EXPECT_FALSE(load.ok);
  EXPECT_EQ(load.error.rfind("no checkpoint", 0), 0u) << load.error;
}

TEST(Checkpoint, SaveLoadRoundTripsThroughDisk) {
  ScratchDir dir("roundtrip");
  analysis::Pipeline pipeline(shared_world());
  for (const auto& s : generate_samples(500)) pipeline.ingest(s);
  service::CheckpointMeta meta;
  meta.samples_ingested = 500;
  ASSERT_EQ(service::save_checkpoint(dir.file("state.ckpt"), pipeline, meta), "");
  analysis::Pipeline restored(shared_world());
  const auto load = service::load_checkpoint(dir.file("state.ckpt"), restored);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.meta.samples_ingested, 500u);
  EXPECT_EQ(service::encode_checkpoint(restored, meta),
            service::encode_checkpoint(pipeline, meta));
}

// ------------------------------------------------------------ sink/emit --

TEST(ReportEmitter, RetriesWithBackoffUntilDelivery) {
  service::MemorySink sink;
  int failures_left = 2;
  sink.fail_next = [&] { return failures_left-- > 0; };
  std::vector<double> delays;
  service::ReportEmitter emitter(sink, {}, /*spool_dir=*/"", /*seed=*/7,
                                 [&](double s) { delays.push_back(s); });
  EXPECT_TRUE(emitter.emit("payload"));
  EXPECT_EQ(sink.delivered().size(), 1u);
  EXPECT_EQ(emitter.stats().retries, 2u);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_GT(delays[1], delays[0]);  // exponential growth despite jitter
}

TEST(ReportEmitter, ExhaustedRetriesSpoolThenReplay) {
  ScratchDir dir("spool");
  service::MemorySink sink;
  bool down = true;
  sink.fail_next = [&] { return down; };
  service::ReportEmitter emitter(sink, {}, dir.file("spool"), 7, [](double) {});
  EXPECT_FALSE(emitter.emit("report-a"));
  EXPECT_FALSE(emitter.emit("report-b"));
  EXPECT_EQ(emitter.spool_depth(), 2u);
  EXPECT_EQ(emitter.stats().spooled, 2u);

  down = false;  // sink recovers; the next emit also replays the backlog
  EXPECT_TRUE(emitter.emit("report-c"));
  EXPECT_EQ(emitter.spool_depth(), 0u);
  EXPECT_EQ(emitter.stats().spool_replayed, 2u);
  ASSERT_EQ(sink.delivered().size(), 3u);
  EXPECT_EQ(sink.delivered()[0], "report-c");
  EXPECT_EQ(sink.delivered()[1], "report-a");  // replay is oldest-first
  EXPECT_EQ(sink.delivered()[2], "report-b");
}

TEST(ReportEmitter, SpoolSurvivesEmitterRestart) {
  ScratchDir dir("spool_restart");
  service::MemorySink sink;
  bool down = true;
  sink.fail_next = [&] { return down; };
  {
    service::ReportEmitter first(sink, {}, dir.file("spool"), 7, [](double) {});
    EXPECT_FALSE(first.emit("from-run-one"));
  }
  down = false;
  service::ReportEmitter second(sink, {}, dir.file("spool"), 8, [](double) {});
  EXPECT_EQ(second.spool_depth(), 1u);
  EXPECT_TRUE(second.emit("from-run-two"));
  ASSERT_EQ(sink.delivered().size(), 2u);
  EXPECT_EQ(sink.delivered()[1], "from-run-one");
}

TEST(ReportEmitter, SpoolReplayOrderIsNumericNotLexical) {
  ScratchDir dir("spool_order");
  const std::string spool = dir.file("spool");
  fs::create_directories(spool);
  // A foreign (or overflowed-width) spool feeds unpadded names, where the
  // lexical order would replay 10 before 2.
  std::ofstream(spool + "/report-10") << "ten";
  std::ofstream(spool + "/report-2") << "two";

  service::MemorySink sink;
  service::ReportEmitter emitter(sink, {}, spool, 7, [](double) {});
  EXPECT_TRUE(emitter.emit("fresh"));
  ASSERT_EQ(sink.delivered().size(), 3u);
  EXPECT_EQ(sink.delivered()[1], "two");  // oldest sequence first
  EXPECT_EQ(sink.delivered()[2], "ten");
  // And the resumed sequence counter starts past the highest replayed one.
  sink.fail_next = [] { return true; };
  EXPECT_FALSE(emitter.emit("doomed"));
  EXPECT_TRUE(fs::exists(spool + "/report-000000000011"));
}

TEST(ReportEmitter, UnreadableSpoolEntryIsCountedAndQuarantined) {
  ScratchDir dir("spool_bad");
  const std::string spool = dir.file("spool");
  fs::create_directories(spool);
  // A directory wearing a spool-entry name can never be read as a report —
  // the replay must count the loss and quarantine it rather than silently
  // skipping it (or stalling on it) forever.
  fs::create_directories(spool + "/report-000000000003");
  std::ofstream(spool + "/report-000000000007") << "survivor";

  service::MemorySink sink;
  service::ReportEmitter emitter(sink, {}, spool, 7, [](double) {});
  EXPECT_TRUE(emitter.emit("fresh"));

  EXPECT_EQ(emitter.stats().spool_replay_failures, 1u);
  EXPECT_FALSE(fs::exists(spool + "/report-000000000003"));
  EXPECT_TRUE(fs::exists(spool + "/bad-report-000000000003"));
  // The poisoned entry did not block the rest of the backlog.
  ASSERT_EQ(sink.delivered().size(), 2u);
  EXPECT_EQ(sink.delivered()[1], "survivor");
  EXPECT_EQ(emitter.spool_depth(), 0u);
}

TEST(PipelineStats, SinkReplayFailuresLandInDegradedStats) {
  analysis::Pipeline pipeline(shared_world());
  pipeline.record_sink_stats(3);
  EXPECT_EQ(pipeline.degraded().spool_replay_failures, 3u);
  pipeline.record_sink_stats(3);  // same snapshot twice counts once
  EXPECT_EQ(pipeline.degraded().spool_replay_failures, 3u);
  pipeline.record_sink_stats(5);  // only the delta is added
  EXPECT_EQ(pipeline.degraded().spool_replay_failures, 5u);
  EXPECT_GE(pipeline.degraded().total(), 5u);

  std::ostringstream out;
  analysis::write_radar_report(out, pipeline);
  EXPECT_NE(out.str().find("\"spool_replay_failures\": 5"), std::string::npos);
}

TEST(ReportEmitter, NoSpoolDirMeansAccountedLoss) {
  service::MemorySink sink;
  sink.fail_next = [] { return true; };
  service::ReportEmitter emitter(sink, {}, "", 7, [](double) {});
  EXPECT_FALSE(emitter.emit("doomed"));
  EXPECT_EQ(emitter.stats().lost, 1u);
}

TEST(FileSink, WritesAtomically) {
  ScratchDir dir("filesink");
  service::FileSink sink(dir.file("report.json"));
  EXPECT_TRUE(sink.deliver("{\"v\":1}"));
  EXPECT_TRUE(sink.deliver("{\"v\":2}"));
  std::ifstream in(dir.file("report.json"));
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"v\":2}");
  EXPECT_FALSE(fs::exists(dir.file("report.json") + ".tmp"));
}

// ------------------------------------------------------------ supervisor --

service::ServiceConfig fast_config() {
  service::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.checkpoint_every_samples = 0;
  cfg.watchdog_poll = std::chrono::milliseconds(2);
  cfg.stall_timeout = std::chrono::milliseconds(200);
  cfg.pop_timeout = std::chrono::milliseconds(5);
  return cfg;
}

TEST(SupervisedService, GracefulRunIngestsEverything) {
  const auto samples = generate_samples(1000);
  analysis::Pipeline reference(shared_world());
  for (const auto& s : samples) reference.ingest(s);

  service::SupervisedService svc(shared_world(), fast_config(), nullptr);
  ASSERT_TRUE(svc.start());
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();
  EXPECT_EQ(summary.ingested, samples.size());
  EXPECT_EQ(summary.worker_crashes, 0u);
  EXPECT_FALSE(summary.failed);
  // The streamed pipeline must match a direct synchronous run exactly
  // (degraded zero-packet samples and all).
  EXPECT_EQ(svc.pipeline().signatures().total_connections(),
            reference.signatures().total_connections());
  EXPECT_EQ(service::encode_checkpoint(svc.pipeline(), {}),
            service::encode_checkpoint(reference, {}));
}

TEST(SupervisedService, InjectedCrashesAreRestartedWithoutSampleLoss) {
  const auto samples = generate_samples(800);
  auto cfg = fast_config();
  std::atomic<int> crashes{0};
  cfg.ingest_hook = [&](std::uint64_t tick) {
    if (tick == 100 || tick == 300 || tick == 500) {
      crashes.fetch_add(1);
      throw fault::InjectedCrash{};
    }
  };
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();
  EXPECT_EQ(crashes.load(), 3);
  EXPECT_EQ(summary.worker_crashes, 3u);
  EXPECT_EQ(summary.worker_restarts, 3u);
  EXPECT_EQ(summary.ingested, samples.size());  // the hook fires pre-pop
  EXPECT_FALSE(summary.failed);
}

TEST(SupervisedService, RestartBudgetExhaustionFailsCleanly) {
  auto cfg = fast_config();
  cfg.max_worker_restarts = 2;
  cfg.ingest_hook = [](std::uint64_t) { throw fault::InjectedCrash{}; };
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!svc.failed() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(svc.failed());
  EXPECT_FALSE(svc.submit(capture::ConnectionSample{}));  // queue is closed
  const auto summary = svc.stop();
  EXPECT_TRUE(summary.failed);
  EXPECT_NE(summary.failure.find("restart budget"), std::string::npos);
  EXPECT_EQ(summary.worker_restarts, 2u);
}

TEST(SupervisedService, StallIsDetectedAndRecovered) {
  const auto samples = generate_samples(300);
  auto cfg = fast_config();
  cfg.stall_timeout = std::chrono::milliseconds(50);
  std::atomic<bool> stalled_once{false};
  cfg.ingest_hook = [&](std::uint64_t tick) {
    if (tick == 20 && !stalled_once.exchange(true))
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
  };
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();
  EXPECT_GE(summary.stalls_detected, 1u);
  EXPECT_EQ(summary.ingested, samples.size());
  EXPECT_FALSE(summary.failed);
}

TEST(SupervisedService, ShedPolicyAccountsDropsInDegradedStats) {
  const auto samples = generate_samples(600);
  auto cfg = fast_config();
  cfg.queue_capacity = 4;
  cfg.queue_policy = common::QueuePolicy::kShed;
  cfg.ingest_hook = [](std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  };
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();
  ASSERT_GT(summary.queue.shed_total(), 0u) << "campaign produced no sheds";
  EXPECT_EQ(svc.pipeline().degraded().queue_shed_embryonic +
                svc.pipeline().degraded().queue_shed_other,
            summary.queue.shed_total());
  EXPECT_EQ(summary.ingested + summary.queue.shed_total(), samples.size());
}

TEST(SupervisedService, KillAtAnyPointLosesAtMostOneInterval) {
  constexpr std::uint64_t kInterval = 250;
  const auto samples = generate_samples(2000);

  analysis::Pipeline uninterrupted(shared_world());
  for (const auto& s : samples) uninterrupted.ingest(s);
  const auto golden = service::encode_checkpoint(uninterrupted, {});

  for (const std::size_t kill_after : {260u, 777u, 1499u}) {
    ScratchDir dir("kill_" + std::to_string(kill_after));
    auto cfg = fast_config();
    cfg.checkpoint_path = dir.file("state.ckpt");
    cfg.checkpoint_every_samples = kInterval;

    service::SupervisedService first(shared_world(), cfg, nullptr);
    ASSERT_TRUE(first.start(service::SupervisedService::Resume::kFresh));
    for (std::size_t i = 0; i < kill_after; ++i) ASSERT_TRUE(first.submit(samples[i]));
    // Let the worker make some progress, then yank the floor out.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto killed = first.kill();

    service::SupervisedService second(shared_world(), cfg, nullptr);
    ASSERT_TRUE(second.start());
    const auto resumed_from = second.stop().restored_samples;

    // The durability contract: everything up to the last checkpoint
    // interval boundary before the kill survived.
    EXPECT_LE(killed.ingested - resumed_from, kInterval + cfg.queue_capacity);
    EXPECT_EQ(resumed_from % kInterval, 0u);
    EXPECT_LE(resumed_from, killed.ingested);

    // Re-feed exactly the samples the checkpoint had not yet covered; the
    // stitched state must be byte-identical to the uninterrupted run.
    service::SupervisedService third(shared_world(), cfg, nullptr);
    ASSERT_TRUE(third.start());
    for (std::size_t i = resumed_from; i < samples.size(); ++i)
      ASSERT_TRUE(third.submit(samples[i]));
    const auto final_summary = third.stop();
    EXPECT_EQ(final_summary.ingested, samples.size());
    // Aggregate state modulo the trends ring: the golden pipeline never
    // crossed a checkpoint boundary, so it sampled no ring points.
    EXPECT_EQ(without_trends(service::encode_checkpoint(third.pipeline(), {})),
              without_trends(golden));
  }
}

TEST(SupervisedService, CorruptCheckpointRefusesToStart) {
  ScratchDir dir("corrupt_start");
  auto cfg = fast_config();
  cfg.checkpoint_path = dir.file("state.ckpt");
  cfg.checkpoint_every_samples = 100;
  {
    service::SupervisedService svc(shared_world(), cfg, nullptr);
    ASSERT_TRUE(svc.start());
    for (const auto& s : generate_samples(300)) ASSERT_TRUE(svc.submit(s));
    svc.stop();
  }
  // Truncate the file in place (the no-atomic-rename disaster).
  {
    std::ifstream in(cfg.checkpoint_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(cfg.checkpoint_path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
  }
  service::SupervisedService refused(shared_world(), cfg, nullptr);
  EXPECT_FALSE(refused.start());  // corruption must never be silently dropped
  EXPECT_FALSE(refused.error().empty());
  service::SupervisedService fresh(shared_world(), cfg, nullptr);
  EXPECT_TRUE(fresh.start(service::SupervisedService::Resume::kFresh));
  fresh.stop();
}

TEST(SupervisedService, RequireResumeRefusesWithoutCheckpoint) {
  ScratchDir dir("require");
  auto cfg = fast_config();
  cfg.checkpoint_path = dir.file("absent.ckpt");
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  EXPECT_FALSE(svc.start(service::SupervisedService::Resume::kRequire));
}

TEST(SupervisedService, ChaosCampaignNeverCorruptsState) {
  // The headline campaign: seeded crashes + stalls + sink outages +
  // checkpoint write failures, all at once, and the service still ingests
  // every sample with consistent accounting.
  const auto samples = generate_samples(1500);
  ScratchDir dir("chaos");

  fault::ChaosSchedule::Config chaos_cfg;
  chaos_cfg.crash_probability = 0.003;
  chaos_cfg.stall_probability = 0.001;
  chaos_cfg.stall_seconds = 0.02;
  chaos_cfg.sink_failure_probability = 0.3;
  chaos_cfg.sink_outage_length = 2;
  chaos_cfg.checkpoint_failure_probability = 0.25;
  fault::ChaosSchedule chaos(0xbad5eed, chaos_cfg);

  service::MemorySink sink;
  sink.fail_next = [&] { return chaos.sink_should_fail(); };
  service::RetryPolicy retry;
  retry.max_attempts = 2;
  service::ReportEmitter emitter(sink, retry, dir.file("spool"), 1, [](double) {});

  auto cfg = fast_config();
  cfg.checkpoint_path = dir.file("state.ckpt");
  cfg.checkpoint_every_samples = 200;
  cfg.report_every_samples = 300;
  cfg.max_worker_restarts = 64;
  cfg.ingest_hook = [&](std::uint64_t tick) { chaos.ingest_tick(tick); };
  cfg.checkpoint_fault_hook = [&] { return chaos.checkpoint_should_fail(); };

  service::SupervisedService svc(shared_world(), cfg, &emitter);
  ASSERT_TRUE(svc.start(service::SupervisedService::Resume::kFresh));
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();

  analysis::Pipeline reference(shared_world());
  for (const auto& s : samples) reference.ingest(s);

  EXPECT_FALSE(summary.failed) << summary.failure;
  EXPECT_EQ(summary.ingested, samples.size());
  EXPECT_EQ(svc.pipeline().signatures().total_connections(),
            reference.signatures().total_connections());
  EXPECT_GT(summary.worker_crashes, 0u) << "campaign too tame: no crashes injected";
  EXPECT_EQ(summary.worker_crashes, chaos.stats().crashes_injected);
  EXPECT_GT(summary.checkpoint_failures, 0u);

  // Whatever the chaos did, the on-disk checkpoint must still be loadable
  // and internally consistent.
  analysis::Pipeline restored(shared_world());
  const auto load = service::load_checkpoint(cfg.checkpoint_path, restored);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_LE(load.meta.samples_ingested, samples.size());

  // Report accounting: every emit ended as delivered, spooled, or lost.
  const auto& es = emitter.stats();
  EXPECT_EQ(summary.reports_emitted, es.reports);
  EXPECT_EQ(es.reports, (es.delivered - es.spool_replayed) + es.spooled + es.lost);
}

// ------------------------------------------------------- shutdown guard --

TEST(ShutdownGuard, FirstSignalRequestsDrainAndInstallRearms) {
  service::ShutdownGuard::install();
  EXPECT_FALSE(service::ShutdownGuard::requested());
  EXPECT_EQ(service::ShutdownGuard::pending(), 0);

  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(service::ShutdownGuard::requested());
  EXPECT_EQ(service::ShutdownGuard::pending(), SIGTERM);
  EXPECT_EQ(service::ShutdownGuard::exit_code(), 128 + SIGTERM);

  // install() is the re-arm: a fresh first strike, no stale state.
  service::ShutdownGuard::install();
  EXPECT_FALSE(service::ShutdownGuard::requested());
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

TEST(ShutdownGuardDeathTest, SecondSignalForceExitsWith128PlusSig) {
  // Regression for `tamperscope watch`: a second SIGINT during the drain
  // must not wait for the drain — it force-exits with the conventional
  // fatal-signal code (128 + SIGINT = 130), destructors be damned.
  EXPECT_EXIT(
      {
        service::ShutdownGuard::install();
        std::raise(SIGINT);  // first strike: recorded, handler returns
        std::raise(SIGINT);  // second strike: _Exit(130)
        std::_Exit(0);       // unreachable if the guard works
      },
      ::testing::ExitedWithCode(128 + SIGINT), "");
}

TEST(ShutdownGuardDeathTest, SecondStrikeKeepsTheFirstSignalsDrainSemantics) {
  // SIGTERM then SIGINT: the drain was requested by SIGTERM, but the
  // impatient second strike exits with ITS OWN signal's code.
  EXPECT_EXIT(
      {
        service::ShutdownGuard::install();
        std::raise(SIGTERM);
        if (service::ShutdownGuard::pending() != SIGTERM) std::_Exit(99);
        std::raise(SIGINT);
        std::_Exit(0);
      },
      ::testing::ExitedWithCode(128 + SIGINT), "");
}

}  // namespace
}  // namespace tamper
