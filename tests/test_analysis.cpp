#include <gtest/gtest.h>

#include "analysis/aggregates.h"
#include "analysis/evidence.h"
#include "analysis/pipeline.h"
#include "analysis/testlists.h"

namespace tamper::analysis {
namespace {

using namespace net::tcpflag;

const world::World& shared_world() {
  static const world::World kWorld{
      world::WorldConfig{.domains = {.domain_count = 20'000}, .seed = 0x90}};
  return kWorld;
}

capture::ObservedPacket obs(std::int64_t ts, std::uint8_t flags, std::uint32_t seq,
                            std::uint32_t ack, std::uint16_t ipid, std::uint8_t ttl,
                            std::uint16_t payload_len = 0) {
  capture::ObservedPacket p;
  p.ts_sec = ts;
  p.flags = flags;
  p.seq = seq;
  p.ack = ack;
  p.ip_id = ipid;
  p.ttl = ttl;
  p.payload_len = payload_len;
  return p;
}

capture::ConnectionSample tampered_sample() {
  capture::ConnectionSample s;
  s.ip_version = net::IpVersion::kV4;
  s.packets = {
      obs(1000, kSyn, 100, 0, 500, 52),
      obs(1000, kAck, 101, 9000, 501, 52),
      obs(1000, kPsh | kAck, 101, 9000, 502, 52, 200),
      obs(1000, kRst, 301, 9000, 30000, 40),  // injected: far IP-ID, other TTL
  };
  s.observation_end_sec = 1030;
  return s;
}

TEST(Evidence, InjectedRstShowsLargeDeltas) {
  const auto sample = tampered_sample();
  const auto classification = core::SignatureClassifier{}.classify(sample);
  ASSERT_EQ(classification.signature, core::Signature::kPshRst);
  const EvidenceDeltas deltas = evidence_deltas(sample, classification);
  ASSERT_TRUE(deltas.max_ipid_delta.has_value());
  EXPECT_EQ(*deltas.max_ipid_delta, 30000u - 502u);
  ASSERT_TRUE(deltas.max_ttl_delta.has_value());
  EXPECT_EQ(*deltas.max_ttl_delta, 12u);
}

TEST(Evidence, CleanConnectionShowsSmallDeltas) {
  capture::ConnectionSample s;
  s.ip_version = net::IpVersion::kV4;
  s.packets = {
      obs(1000, kSyn, 100, 0, 500, 52),
      obs(1000, kAck, 101, 9000, 501, 52),
      obs(1000, kPsh | kAck, 101, 9000, 502, 52, 200),
      obs(1000, kFin | kAck, 301, 9500, 503, 52),
  };
  s.observation_end_sec = 1030;
  const auto classification = core::SignatureClassifier{}.classify(s);
  ASSERT_FALSE(classification.possibly_tampered);
  const EvidenceDeltas deltas = evidence_deltas(s, classification);
  EXPECT_EQ(*deltas.max_ipid_delta, 1u);
  EXPECT_EQ(*deltas.max_ttl_delta, 0u);
}

TEST(Evidence, Ipv6HasNoIpIdDelta) {
  auto sample = tampered_sample();
  sample.ip_version = net::IpVersion::kV6;
  const auto classification = core::SignatureClassifier{}.classify(sample);
  const EvidenceDeltas deltas = evidence_deltas(sample, classification);
  EXPECT_FALSE(deltas.max_ipid_delta.has_value());
  EXPECT_TRUE(deltas.max_ttl_delta.has_value());
}

TEST(Evidence, CollectorCapsPerSignature) {
  EvidenceCollector collector(/*per_signature_cap=*/5);
  const auto sample = tampered_sample();
  ConnectionRecord record;
  record.classification = core::SignatureClassifier{}.classify(sample);
  for (int i = 0; i < 20; ++i) collector.add(sample, record);
  EXPECT_EQ(
      collector.ipid_cdf(static_cast<std::size_t>(core::Signature::kPshRst)).count(), 5u);
}

TEST(Aggregates, SignatureMatrixTotals) {
  SignatureMatrix matrix;
  ConnectionRecord clean;
  clean.country = "DE";
  matrix.add(clean);
  ConnectionRecord hit;
  hit.country = "CN";
  hit.classification.possibly_tampered = true;
  hit.classification.signature = core::Signature::kPshRstRstAck;
  hit.classification.stage = core::Stage::kPostPsh;
  matrix.add(hit);
  matrix.add(hit);
  EXPECT_EQ(matrix.total_connections(), 3u);
  EXPECT_EQ(matrix.possibly_tampered(), 2u);
  EXPECT_EQ(matrix.matched(), 2u);
  EXPECT_EQ(matrix.count("CN", core::Signature::kPshRstRstAck), 2u);
  EXPECT_EQ(matrix.signature_total(core::Signature::kPshRstRstAck), 2u);
  EXPECT_EQ(matrix.country_matches("CN"), 2u);
  EXPECT_EQ(matrix.country_matches("DE"), 0u);
  EXPECT_EQ(matrix.stage_possibly(core::Stage::kPostPsh), 2u);
}

TEST(Aggregates, AsnTopEightyPercent) {
  AsnAggregator agg;
  auto record_for = [](std::uint32_t asn, bool match) {
    ConnectionRecord r;
    r.country = "RU";
    r.asn = common::AsnId(asn);
    if (match) {
      r.classification.possibly_tampered = true;
      r.classification.signature = core::Signature::kPshRst;
    }
    return r;
  };
  // AS 1: 80 connections, AS 2: 15, AS 3: 5.
  for (int i = 0; i < 80; ++i) agg.add(record_for(1, i < 40));
  for (int i = 0; i < 15; ++i) agg.add(record_for(2, false));
  for (int i = 0; i < 5; ++i) agg.add(record_for(3, true));
  const auto top = agg.top_ases("RU", 0.8);
  ASSERT_EQ(top.size(), 1u);  // AS 1 alone carries 80%
  EXPECT_EQ(top[0].asn, common::AsnId(1));
  EXPECT_NEAR(top[0].match_percent(), 50.0, 1e-9);
  EXPECT_EQ(agg.country_total("RU"), 100u);
}

TEST(Aggregates, TimeSeriesBucketsByHour) {
  TimeSeries series;
  ConnectionRecord r;
  r.country = "IR";
  r.first_ts_sec = 7200 + 100;  // hour 2
  r.classification.possibly_tampered = true;
  r.classification.signature = core::Signature::kAckNone;
  r.classification.stage = core::Stage::kPostAck;
  series.add(r);
  r.first_ts_sec = 7200 + 3599;
  series.add(r);
  r.first_ts_sec = 10800;  // hour 3
  series.add(r);
  const auto& hours = series.country_hours("IR");
  ASSERT_EQ(hours.size(), 2u);
  EXPECT_EQ(hours.at(2).connections, 2u);
  EXPECT_EQ(hours.at(2).post_ack_psh_matches, 2u);
  EXPECT_EQ(hours.at(3).connections, 1u);
}

TEST(Aggregates, VersionProtocolSplit) {
  VersionProtocolAggregator agg;
  ConnectionRecord r;
  r.country = "LK";
  r.ip_version = net::IpVersion::kV6;
  r.protocol = appproto::AppProtocol::kTls;
  r.classification.possibly_tampered = true;
  r.classification.signature = core::Signature::kPshRst;
  r.classification.stage = core::Stage::kPostPsh;
  agg.add(r);
  const auto& split = agg.by_country().at("LK");
  EXPECT_EQ(split.v6_total, 1u);
  EXPECT_EQ(split.v6_matches, 1u);
  EXPECT_EQ(split.v4_total, 0u);
  EXPECT_EQ(split.tls_psh_matches, 1u);
}

TEST(Aggregates, OverlapMatrixTracksPairs) {
  OverlapMatrix overlap;
  ConnectionRecord r;
  r.country = "CN";
  r.client_ip_hash = 42;
  r.domain = "pair.example";
  r.classification.possibly_tampered = true;
  r.classification.signature = core::Signature::kPshRst;
  overlap.add(r);  // first visit: recorded, no transition yet
  EXPECT_EQ(overlap.row_total(static_cast<std::size_t>(core::Signature::kPshRst)), 0u);
  overlap.add(r);  // second visit: diagonal transition
  EXPECT_EQ(overlap.count(static_cast<std::size_t>(core::Signature::kPshRst),
                          static_cast<std::size_t>(core::Signature::kPshRst)),
            1u);
  r.classification.signature = core::Signature::kPshRstEqRst;
  overlap.add(r);  // third visit: off-diagonal from the FIRST state
  EXPECT_EQ(overlap.count(static_cast<std::size_t>(core::Signature::kPshRst),
                          static_cast<std::size_t>(core::Signature::kPshRstEqRst)),
            1u);
  // A different domain is a different pair.
  r.domain = "other.example";
  overlap.add(r);
  EXPECT_EQ(overlap.row_total(static_cast<std::size_t>(core::Signature::kPshRstEqRst)),
            0u);
}

TEST(TestLists, TrancoTiersAreNestedInSpirit) {
  TestListBuilder builder(shared_world(), 0x11);
  const TestList small = builder.tranco(200, "small");
  const TestList large = builder.tranco(2000, "large");
  EXPECT_EQ(small.entries.size(), 200u);
  EXPECT_EQ(large.entries.size(), 2000u);
  // The small tier is (noisily) head-biased, so most of it appears in large.
  std::size_t overlap = 0;
  for (const auto& entry : small.entries)
    if (large.contains(entry)) ++overlap;
  EXPECT_GT(overlap, small.entries.size() * 8 / 10);
}

TEST(TestLists, PopularityListsCoverHeadBetterThanTail) {
  TestListBuilder builder(shared_world(), 0x12);
  const TestList list = builder.tranco(2000, "t");
  std::size_t head_hits = 0, tail_hits = 0;
  for (std::size_t rank = 0; rank < 500; ++rank)
    if (list.contains(shared_world().domains().by_rank(rank).name)) ++head_hits;
  for (std::size_t rank = 15000; rank < 15500; ++rank)
    if (list.contains(shared_world().domains().by_rank(rank).name)) ++tail_hits;
  EXPECT_GT(head_hits, tail_hits * 5 + 10);
}

TEST(TestLists, CuratedListsSmallerThanPopularityTiers) {
  TestListBuilder builder(shared_world(), 0x13);
  const auto battery = builder.standard_battery();
  ASSERT_EQ(battery.size(), 12u);
  const auto& tranco_1m = battery[3];
  const auto& citizenlab_global = battery[11];
  EXPECT_GT(tranco_1m.entries.size(), citizenlab_global.entries.size() * 20);
}

TEST(TestLists, CoverageAuditCounts) {
  TestList list;
  list.name = "t";
  list.entries = {"alpha.example", "beta.example"};
  list.lookup.insert(list.entries.begin(), list.entries.end());
  const Coverage coverage =
      audit_coverage(list, {"alpha.example", "gamma.example", "beta.exampl"});
  EXPECT_EQ(coverage.observed, 3u);
  EXPECT_EQ(coverage.exact, 1u);
  // "beta.exampl" is a substring of "beta.example".
  EXPECT_EQ(coverage.substring, 2u);
  EXPECT_NEAR(coverage.exact_pct(), 33.33, 0.1);
  EXPECT_NEAR(coverage.substring_pct(), 66.67, 0.1);
}

TEST(TestLists, UnionDeduplicates) {
  TestList a;
  a.entries = {"x.example", "y.example"};
  a.lookup.insert(a.entries.begin(), a.entries.end());
  TestList b;
  b.entries = {"y.example", "z.example"};
  b.lookup.insert(b.entries.begin(), b.entries.end());
  const TestList u = TestListBuilder::union_of("u", {&a, &b});
  EXPECT_EQ(u.entries.size(), 3u);
  EXPECT_TRUE(u.contains("z.example"));
}

TEST(TestLists, CitizenlabCountryOnlyContainsBlocked) {
  TestListBuilder builder(shared_world(), 0x14);
  const TestList list = builder.citizenlab_country("CN");
  const int cn = world::country_index("CN");
  ASSERT_GT(list.entries.size(), 0u);
  std::size_t exact_entries = 0;
  for (const auto& entry : list.entries) {
    // Curated entries are often host variants ("www.x", "m.x"); resolve the
    // ones that are clean eTLD+1 names and check they are genuinely blocked.
    const auto rank = shared_world().domains().rank_of(entry);
    if (!rank) continue;
    ++exact_entries;
    EXPECT_TRUE(shared_world().is_blocked(cn, *rank));
  }
  EXPECT_GT(exact_entries, 0u);
  EXPECT_TRUE(builder.citizenlab_country("ZZ").entries.empty());
}

TEST(Pipeline, IngestRoutesToAllAggregators) {
  Pipeline pipeline(shared_world());
  world::TrafficConfig config;
  config.seed = 0x7777;
  world::TrafficGenerator generator(shared_world(), config);
  pipeline.run(generator, 2000);
  EXPECT_GE(pipeline.signatures().total_connections(), 1990u);  // minus lost-SYN flows
  EXPECT_GT(pipeline.signatures().possibly_tampered(), 100u);
  EXPECT_FALSE(pipeline.signatures().countries().empty());
  EXPECT_GT(pipeline.scanner_stats().connections, 0u);
  EXPECT_GT(
      pipeline.evidence().ipid_cdf(analysis::EvidenceCollector::clean_bucket()).count(),
      100u);
}

TEST(Record, AttributionFromSample) {
  const auto& geo = shared_world().geo();
  const auto& as_info = geo.ases().front();
  common::Rng rng(1);
  capture::ConnectionSample sample;
  sample.client_ip = geo.sample_client_ip(as_info, false, rng);
  sample.server_port = 443;
  sample.ip_version = net::IpVersion::kV4;
  sample.packets = {obs(1000, kSyn, 1, 0, 5, 50)};
  sample.observation_end_sec = 1030;
  core::SignatureClassifier classifier;
  const ConnectionRecord record = analyze(sample, geo, classifier);
  EXPECT_EQ(record.country, as_info.country);
  EXPECT_EQ(record.asn, as_info.asn);
  EXPECT_EQ(record.protocol, appproto::AppProtocol::kTls);  // port heuristic
  EXPECT_EQ(record.first_ts_sec, 1000);
  EXPECT_EQ(record.classification.signature, core::Signature::kSynNone);
}

}  // namespace
}  // namespace tamper::analysis
