// Ground-truth validation of the censor catalog: every preset, driven
// through a real session, must produce exactly the Table 1 signature it is
// documented to produce — recovered blindly by the classifier.
#include <gtest/gtest.h>

#include "appproto/http.h"
#include "appproto/tls.h"
#include "capture/sample.h"
#include "core/classifier.h"
#include "middlebox/catalog.h"
#include "middlebox/middlebox.h"
#include "tcp/session.h"

namespace tamper::middlebox {
namespace {

using namespace net::tcpflag;

constexpr const char* kBlockedDomain = "blocked-site.example";

struct RunResult {
  capture::ConnectionSample sample;
  core::Classification classification;
  bool triggered = false;
  std::optional<std::string> trigger_domain;
};

RunResult run_preset(const std::string& preset, bool http = false,
                     int request_segments = 1, std::uint64_t seed = 1) {
  tcp::EndpointConfig client_cfg;
  client_cfg.addr = net::IpAddress::v4(11, 0, 0, 2);
  client_cfg.port = 40000;
  client_cfg.is_client = true;
  client_cfg.isn = 5000;
  common::Rng payload_rng(seed);
  for (int i = 0; i < request_segments; ++i) {
    if (http) {
      appproto::HttpRequestSpec spec;
      spec.host = kBlockedDomain;
      spec.path = "/x-blocked/" + std::to_string(i);
      client_cfg.request_segments.push_back(appproto::build_http_request(spec));
    } else if (i == 0) {
      appproto::ClientHelloSpec spec;
      spec.sni = kBlockedDomain;
      client_cfg.request_segments.push_back(
          appproto::build_client_hello(spec, payload_rng));
    } else {
      std::vector<std::uint8_t> opaque(120, 0x17);
      client_cfg.request_segments.push_back(std::move(opaque));
    }
  }

  tcp::EndpointConfig server_cfg;
  server_cfg.addr = net::IpAddress::v4(198, 18, 0, 1);
  server_cfg.port = http ? 80 : 443;
  server_cfg.is_client = false;
  server_cfg.isn = 90000;
  server_cfg.response_size = 2000;

  tcp::SessionConfig session;
  session.start_time = 1'673'500'000.0;

  Behavior behavior = catalog::by_name(preset);
  TriggerSet triggers;
  if (behavior.trigger_point != TriggerPoint::kClientData) {
    triggers.match_everything();
  } else if (behavior.min_data_packets > 1) {
    triggers.match_everything();
  } else {
    triggers.add_exact_domain(kBlockedDomain);
  }
  Middlebox box(std::move(behavior), std::move(triggers), session.geometry,
                common::Rng(seed ^ 0xb0));

  tcp::TcpEndpoint client(client_cfg, common::Rng(seed));
  tcp::TcpEndpoint server(server_cfg, common::Rng(seed ^ 1));
  client.set_peer(server_cfg.addr, server_cfg.port);
  server.set_peer(client_cfg.addr, client_cfg.port);
  common::Rng rng(seed ^ 2);
  const tcp::SessionResult result = tcp::simulate_session(client, server, &box, session, rng);

  RunResult out;
  out.sample.client_ip = client_cfg.addr;
  out.sample.server_ip = server_cfg.addr;
  out.sample.client_port = client_cfg.port;
  out.sample.server_port = server_cfg.port;
  for (const auto& traced : result.server_inbound) {
    if (out.sample.packets.size() >= 10) break;
    out.sample.packets.push_back(capture::observe(traced.pkt));
  }
  out.sample.observation_end_sec = static_cast<std::int64_t>(result.end_time);
  out.classification = core::SignatureClassifier{}.classify(out.sample);
  out.triggered = box.triggered();
  out.trigger_domain = box.trigger_domain();
  return out;
}

struct PresetCase {
  const char* preset;
  core::Signature expected;
  bool http = false;
  int segments = 1;
};

class CatalogGroundTruth : public ::testing::TestWithParam<PresetCase> {};

TEST_P(CatalogGroundTruth, ProducesDocumentedSignature) {
  const auto& param = GetParam();
  // Several seeds: the signature must be stable, not a timing accident.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RunResult result = run_preset(param.preset, param.http, param.segments, seed);
    ASSERT_TRUE(result.triggered) << param.preset << " seed " << seed;
    ASSERT_TRUE(result.classification.possibly_tampered) << param.preset;
    ASSERT_EQ(result.classification.signature, param.expected)
        << param.preset << " seed " << seed << " got "
        << (result.classification.signature
                ? core::name(*result.classification.signature)
                : "none");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, CatalogGroundTruth,
    ::testing::Values(
        PresetCase{"syn_blackhole", core::Signature::kSynNone},
        PresetCase{"syn_rst", core::Signature::kSynRst},
        PresetCase{"syn_rst_ack", core::Signature::kSynRstAck},
        PresetCase{"gfw_syn_burst", core::Signature::kSynRstRstAck},
        PresetCase{"post_ack_blackhole", core::Signature::kAckNone},
        PresetCase{"post_ack_rst", core::Signature::kAckRst},
        PresetCase{"post_ack_rst_burst", core::Signature::kAckRstRst},
        PresetCase{"iran_rst_ack", core::Signature::kAckRstAck},
        PresetCase{"iran_rst_ack_burst", core::Signature::kAckRstAckRstAck},
        PresetCase{"psh_blackhole", core::Signature::kPshNone},
        PresetCase{"single_rst_firewall", core::Signature::kPshRst},
        PresetCase{"single_rst_ack_firewall", core::Signature::kPshRstAck},
        PresetCase{"gfw_mixed_burst", core::Signature::kPshRstRstAck},
        PresetCase{"gfw_double_rst_ack", core::Signature::kPshRstAckRstAck},
        PresetCase{"repeated_rst_same_ack", core::Signature::kPshRstEqRst},
        PresetCase{"ack_guessing_injector", core::Signature::kPshRstNeqRst},
        PresetCase{"zero_ack_injector", core::Signature::kPshRstRst0},
        PresetCase{"korea_random_ttl", core::Signature::kPshRstNeqRst},
        PresetCase{"keyword_firewall_rst", core::Signature::kDataRst, false, 2},
        PresetCase{"keyword_firewall_rst_ack", core::Signature::kDataRstAck, false, 2}),
    [](const ::testing::TestParamInfo<PresetCase>& param_info) {
      return std::string(param_info.param.preset);
    });

TEST(Middlebox, NoTriggerOnUnblockedDomain) {
  tcp::SessionConfig session;
  Behavior behavior = catalog::single_rst_firewall();
  TriggerSet triggers;
  triggers.add_exact_domain("not-this-domain.example");
  Middlebox box(std::move(behavior), std::move(triggers), session.geometry,
                common::Rng(9));
  common::Rng payload_rng(5);
  appproto::ClientHelloSpec spec;
  spec.sni = kBlockedDomain;  // client asks for a different domain
  net::Packet data = net::make_tcp_packet(net::IpAddress::v4(11, 0, 0, 2), 40000,
                                          net::IpAddress::v4(198, 18, 0, 1), 443,
                                          kPsh | kAck, 5001, 90001,
                                          appproto::build_client_hello(spec, payload_rng));
  const auto decision = box.on_transit(tcp::Direction::kClientToServer, data, 0.0);
  EXPECT_FALSE(decision.drop);
  EXPECT_TRUE(decision.injections.empty());
  EXPECT_FALSE(box.triggered());
}

TEST(Middlebox, RecordsTriggerDomain) {
  const RunResult result = run_preset("single_rst_firewall");
  ASSERT_TRUE(result.trigger_domain.has_value());
  EXPECT_EQ(*result.trigger_domain, kBlockedDomain);
}

TEST(Middlebox, ByNameThrowsOnUnknownPreset) {
  EXPECT_THROW(catalog::by_name("not_a_preset"), std::out_of_range);
}

TEST(TriggerSet, ExactAndSuffixMatching) {
  TriggerSet triggers;
  triggers.add_exact_domain("exact.example");
  triggers.add_domain_suffix("blocked.org");
  EXPECT_TRUE(triggers.matches_domain("exact.example"));
  EXPECT_FALSE(triggers.matches_domain("sub.exact.example"));
  EXPECT_TRUE(triggers.matches_domain("blocked.org"));
  EXPECT_TRUE(triggers.matches_domain("a.b.blocked.org"));
  EXPECT_FALSE(triggers.matches_domain("notblocked.org"));  // no dot boundary
}

TEST(TriggerSet, SubstringOverblocking) {
  // The Turkmenistan "wn.com" over-blocking rule (§5.5).
  TriggerSet triggers;
  triggers.add_domain_substring("wn.com");
  EXPECT_TRUE(triggers.matches_domain("wn.com"));
  EXPECT_TRUE(triggers.matches_domain("cnn-town.com"));  // contains "wn.com"? no
  EXPECT_TRUE(triggers.matches_domain("dawn.com"));
  EXPECT_FALSE(triggers.matches_domain("example.net"));
}

TEST(TriggerSet, KeywordAndIpMatching) {
  TriggerSet triggers;
  triggers.add_http_keyword("/forbidden");
  triggers.add_ip_prefix(*net::IpPrefix::parse("198.18.0.0/24"));
  EXPECT_TRUE(triggers.matches_keyword("/x/forbidden/page"));
  EXPECT_FALSE(triggers.matches_keyword("/allowed"));
  EXPECT_TRUE(triggers.matches_ip(net::IpAddress::v4(198, 18, 0, 77)));
  EXPECT_FALSE(triggers.matches_ip(net::IpAddress::v4(198, 19, 0, 77)));
}

TEST(TriggerSet, MatchEverything) {
  TriggerSet triggers;
  triggers.match_everything();
  EXPECT_TRUE(triggers.matches_domain("anything.example"));
  EXPECT_TRUE(triggers.matches_keyword(""));
  EXPECT_TRUE(triggers.matches_ip(net::IpAddress::v4(1, 1, 1, 1)));
  EXPECT_FALSE(triggers.empty());
}

TEST(TriggerSet, EmptyMatchesNothing) {
  TriggerSet triggers;
  EXPECT_TRUE(triggers.empty());
  EXPECT_FALSE(triggers.matches_domain("x.example"));
  EXPECT_FALSE(triggers.matches_ip(net::IpAddress::v4(1, 1, 1, 1)));
}

TEST(MiddleboxChain, FirstDropShadowsLaterBoxes) {
  tcp::PathGeometry geometry;
  auto dropping = std::make_unique<Middlebox>(catalog::post_ack_blackhole(),
                                              TriggerSet{}.match_everything(), geometry,
                                              common::Rng(1));
  auto injecting = std::make_unique<Middlebox>(catalog::single_rst_firewall(),
                                               TriggerSet{}.match_everything(), geometry,
                                               common::Rng(2));
  Middlebox* injecting_raw = injecting.get();
  MiddleboxChain chain;
  chain.add(std::move(dropping));
  chain.add(std::move(injecting));

  common::Rng payload_rng(5);
  appproto::ClientHelloSpec spec;
  spec.sni = "anything.example";
  net::Packet data = net::make_tcp_packet(net::IpAddress::v4(11, 0, 0, 2), 40000,
                                          net::IpAddress::v4(198, 18, 0, 1), 443,
                                          kPsh | kAck, 5001, 90001,
                                          appproto::build_client_hello(spec, payload_rng));
  const auto decision = chain.on_transit(tcp::Direction::kClientToServer, data, 0.0);
  EXPECT_TRUE(decision.drop);
  EXPECT_FALSE(injecting_raw->triggered());  // never saw the packet
}

TEST(Middlebox, InjectedTtlReflectsGeometry) {
  const RunResult result = run_preset("single_rst_firewall");
  // Injector initial TTL 64, default geometry hops_to_server = 14 - 5 = 9.
  for (const auto& pkt : result.sample.packets) {
    if (pkt.is_rst()) {
      EXPECT_EQ(pkt.ttl, 64 - 9);
    }
  }
}

TEST(Middlebox, CopyTriggerIpIdMatchesClient) {
  const RunResult result = run_preset("iran_rst_ack");
  // Find the client data... it was dropped; compare RST IP-ID against the
  // handshake ACK instead: kCopyTrigger copies the *trigger* (the dropped
  // PSH), whose IP-ID is one above the ACK's for counter-based stacks.
  const capture::ObservedPacket* ack = nullptr;
  const capture::ObservedPacket* rst = nullptr;
  for (const auto& pkt : result.sample.packets) {
    if (pkt.is_pure_ack()) ack = &pkt;
    if (pkt.is_rst_ack()) rst = &pkt;
  }
  ASSERT_NE(ack, nullptr);
  ASSERT_NE(rst, nullptr);
  EXPECT_LE(rst->ip_id - ack->ip_id, 2u);  // near the client's counter
}

}  // namespace
}  // namespace tamper::middlebox
