// AnycastMap edge cases: IPv6 prefix extraction, single-PoP fleets,
// fully-withdrawn anycast (route() -> nullopt), and the byte-identical
// restore guarantee — after a full withdraw/re-announce cycle every
// client routes exactly where it did before, because routing is a pure
// function of (prefix, alive-set, seed), not of history.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "net/ip_address.h"
#include "world/anycast.h"

namespace tamper {
namespace {

using common::PopId;
using world::AnycastMap;

std::vector<net::IpAddress> sample_clients() {
  std::vector<net::IpAddress> clients;
  for (std::uint8_t a = 1; a < 200; a += 13)
    for (std::uint8_t b = 0; b < 250; b += 31)
      clients.push_back(net::IpAddress::v4(a, b, a, b));
  for (std::uint64_t hi = 1; hi < 4000; hi += 257)
    clients.push_back(net::IpAddress::v6(0x2001'0db8'0000'0000 | hi, hi * 977));
  return clients;
}

// ------------------------------------------------------- prefix keys --

TEST(AnycastPrefix, V4KeyIsTheSlash16) {
  const auto key = AnycastMap::prefix_key(net::IpAddress::v4(198, 51, 100, 7));
  EXPECT_EQ(key, AnycastMap::prefix_key(net::IpAddress::v4(198, 51, 0, 0)));
  EXPECT_EQ(key, AnycastMap::prefix_key(net::IpAddress::v4(198, 51, 255, 255)));
  EXPECT_NE(key, AnycastMap::prefix_key(net::IpAddress::v4(198, 52, 100, 7)));
}

TEST(AnycastPrefix, V6KeyIsTheSlash32) {
  // Same first 32 bits -> same key, no matter what the low 96 bits do.
  const auto base =
      AnycastMap::prefix_key(net::IpAddress::v6(0x2001'0db8'0000'0000ULL, 0));
  EXPECT_EQ(base, AnycastMap::prefix_key(
                      net::IpAddress::v6(0x2001'0db8'ffff'ffffULL, 0xffff'ffff'ffff'ffffULL)));
  EXPECT_EQ(base, AnycastMap::prefix_key(
                      net::IpAddress::v6(0x2001'0db8'0000'0001ULL, 42)));
  // Bit 32 flips the prefix.
  EXPECT_NE(base, AnycastMap::prefix_key(
                      net::IpAddress::v6(0x2001'0db9'0000'0000ULL, 0)));
}

TEST(AnycastPrefix, V4AndV6KeysNeverCollide) {
  // A v4 /16 whose bits numerically equal a v6 /32 prefix must still get a
  // distinct key: the key is family-tagged.
  const auto v4 = AnycastMap::prefix_key(net::IpAddress::v4(0x20, 0x01, 1, 1));
  const auto v6 = AnycastMap::prefix_key(
      net::IpAddress::v6(0x2001'0000'0000'0000ULL, 0));
  EXPECT_NE(v4, v6);
}

TEST(AnycastPrefix, StickyWithinThePrefixAcrossTheMap) {
  AnycastMap map(7, 0xfeed);
  // Every host of one /16 lands on the same PoP (per-client stickiness is
  // what keeps the per-PoP shards nearly disjoint).
  const auto pop = map.route(net::IpAddress::v4(203, 9, 0, 1));
  ASSERT_TRUE(pop.has_value());
  for (std::uint8_t c = 0; c < 200; c += 17)
    EXPECT_EQ(map.route(net::IpAddress::v4(203, 9, c, c + 1)), pop);
  // IPv6: same /32, same PoP.
  const auto pop6 = map.route(net::IpAddress::v6(0x2001'0db8'0000'0000ULL, 1));
  ASSERT_TRUE(pop6.has_value());
  EXPECT_EQ(map.route(net::IpAddress::v6(0x2001'0db8'1234'5678ULL, 99)), pop6);
}

// ---------------------------------------------------- degenerate sets --

TEST(AnycastRouting, SinglePopFleetTakesEverything) {
  AnycastMap map(1, 7);
  for (const auto& client : sample_clients()) {
    const auto pop = map.route(client);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(*pop, PopId(0));
  }
  map.set_alive(PopId(0), false);
  EXPECT_EQ(map.alive_count(), 0u);
  EXPECT_EQ(map.route(net::IpAddress::v4(1, 2, 3, 4)), std::nullopt);
}

TEST(AnycastRouting, AllPopsWithdrawnRoutesNowhere) {
  AnycastMap map(5, 11);
  for (std::uint32_t pop = 0; pop < map.pop_count(); ++pop)
    map.set_alive(PopId(pop), false);
  EXPECT_EQ(map.alive_count(), 0u);
  for (const auto& client : sample_clients())
    EXPECT_EQ(map.route(client), std::nullopt);
  // One PoP re-announcing catches the whole address space.
  map.set_alive(PopId(3), true);
  for (const auto& client : sample_clients()) {
    const auto pop = map.route(client);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(*pop, PopId(3));
  }
}

// ------------------------------------------------------ restore cycle --

TEST(AnycastRouting, WithdrawReannounceRestoresRoutingExactly) {
  AnycastMap map(8, 0x5eed);
  const auto clients = sample_clients();
  std::vector<std::optional<PopId>> before;
  before.reserve(clients.size());
  for (const auto& c : clients) before.push_back(map.route(c));

  // Full outage, then full recovery, in scrambled order: routing state is
  // the alive-set, not the transition history.
  for (std::uint32_t pop = 0; pop < map.pop_count(); ++pop)
    map.set_alive(PopId(pop), false);
  for (std::uint32_t pop = map.pop_count(); pop-- > 0;)
    map.set_alive(PopId(pop), true);

  for (std::size_t i = 0; i < clients.size(); ++i)
    EXPECT_EQ(map.route(clients[i]), before[i]) << "client " << i;

  // A fresh map with the same (pop_count, seed) agrees byte-for-byte too.
  AnycastMap twin(8, 0x5eed);
  for (std::size_t i = 0; i < clients.size(); ++i)
    EXPECT_EQ(twin.route(clients[i]), before[i]);
}

TEST(AnycastRouting, WithdrawMovesOnlyTheDeadPopsClients) {
  AnycastMap map(6, 42);
  const auto clients = sample_clients();
  std::vector<PopId> before;
  before.reserve(clients.size());
  for (const auto& c : clients) before.push_back(*map.route(c));

  const PopId victim(2);
  map.set_alive(victim, false);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto now = map.route(clients[i]);
    ASSERT_TRUE(now.has_value());
    if (before[i] == victim) {
      EXPECT_NE(*now, victim);  // the victim's clients re-homed...
      ++moved;
    } else {
      EXPECT_EQ(*now, before[i]);  // ...and nobody else budged
    }
  }
  EXPECT_GT(moved, 0u);

  // Re-announce: the victim's clients come straight back.
  map.set_alive(victim, true);
  for (std::size_t i = 0; i < clients.size(); ++i)
    EXPECT_EQ(*map.route(clients[i]), before[i]);
}

}  // namespace
}  // namespace tamper
