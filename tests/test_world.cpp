#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/ids.h"
#include "common/stats.h"
#include "world/world.h"

namespace tamper::world {
namespace {

const World& shared_world() {
  static const World kWorld{WorldConfig{.domains = {.domain_count = 20'000},
                                        .seed = 0xabcd}};
  return kWorld;
}

TEST(Countries, TableSanity) {
  const auto& countries = default_countries();
  EXPECT_GE(countries.size(), 50u);
  std::set<std::string> codes;
  for (const auto& c : countries) {
    EXPECT_EQ(c.code.size(), 2u) << c.code;
    EXPECT_TRUE(codes.insert(c.code).second) << "duplicate " << c.code;
    EXPECT_GT(c.traffic_weight, 0.0);
    EXPECT_GE(c.asn_count, 1);
    EXPECT_GE(c.ipv6_share, 0.0);
    EXPECT_LE(c.ipv6_share, 1.0);
    EXPECT_GE(c.http_share, 0.0);
    EXPECT_LE(c.http_share, 1.0);
    for (const auto& method : c.policy.methods) EXPECT_GT(method.weight, 0.0);
    for (const auto& [cat, share] : c.policy.category_block_share) {
      EXPECT_GT(share, 0.0);
      EXPECT_LE(share, 1.0);
    }
  }
}

TEST(Countries, PaperRegionsPresent) {
  for (const char* cc : {"TM", "PE", "UZ", "CU", "SA", "KZ", "RU", "PK", "UA", "IR",
                         "CN", "KR", "IN", "MX", "US", "GB", "DE", "LK", "KE"}) {
    EXPECT_GE(country_index(cc), 0) << cc;
  }
  EXPECT_EQ(country_index("ZZ"), -1);
}

TEST(Geo, EveryAsHasConsistentAttribution) {
  const auto& geo = shared_world().geo();
  common::Rng rng(1);
  for (const auto& as_info : geo.ases()) {
    // Sampled client addresses attribute back to the same AS and country.
    for (bool v6 : {false, true}) {
      const net::IpAddress addr = geo.sample_client_ip(as_info, v6, rng);
      EXPECT_EQ(addr.is_v6(), v6);
      EXPECT_EQ(geo.lookup_asn(addr), as_info.asn);
      EXPECT_EQ(geo.lookup_country(addr), as_info.country);
    }
  }
}

TEST(Geo, UnallocatedAddressUnattributed) {
  const auto& geo = shared_world().geo();
  EXPECT_FALSE(geo.lookup_asn(net::IpAddress::v4(8, 8, 8, 8)).has_value());
  EXPECT_FALSE(geo.lookup_country(*net::IpAddress::parse("2001:4860::1")).has_value());
}

TEST(Geo, CountryAsesOrderedByTraffic) {
  const auto& geo = shared_world().geo();
  const auto& ases = geo.country_ases("US");
  ASSERT_GE(ases.size(), 2u);
  EXPECT_GE(geo.as_by_number(ases[0]).weight, geo.as_by_number(ases[1]).weight * 0.5);
}

TEST(Geo, SampleAsFollowsWeights) {
  const auto& geo = shared_world().geo();
  common::Rng rng(2);
  std::map<common::AsnId, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[geo.sample_as("RU", rng).asn];
  // The heaviest AS should dominate any single light one.
  const auto& ases = geo.country_ases("RU");
  EXPECT_GT(counts[ases.front()], counts[ases.back()]);
}

TEST(Geo, UnknownCountryThrows) {
  const auto& geo = shared_world().geo();
  EXPECT_TRUE(geo.country_ases("ZZ").empty());
  common::Rng rng(3);
  EXPECT_THROW((void)geo.sample_as("ZZ", rng), std::out_of_range);
  EXPECT_THROW((void)geo.as_by_number(common::AsnId(1)), std::out_of_range);
}

TEST(Domains, DeterministicAndIndexed) {
  const DomainUniverse::Config config{.domain_count = 5'000};
  const DomainUniverse a(config, 42), b(config, 42);
  EXPECT_EQ(a.by_rank(100).name, b.by_rank(100).name);
  EXPECT_EQ(a.by_rank(100).category, b.by_rank(100).category);
  EXPECT_EQ(a.rank_of(a.by_rank(4999).name), 4999u);
  EXPECT_FALSE(a.rank_of("no-such-domain.example").has_value());
}

TEST(Domains, NamesAreUniqueAndPlausible) {
  const DomainUniverse universe({.domain_count = 3'000}, 7);
  std::set<std::string> names;
  for (const auto& d : universe.all()) {
    EXPECT_TRUE(names.insert(d.name).second) << d.name;
    EXPECT_NE(d.name.find('.'), std::string::npos);
  }
}

TEST(Domains, RequestSamplingPrefersHead) {
  const DomainUniverse universe({.domain_count = 10'000}, 7);
  common::Rng rng(9);
  std::uint64_t head = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t rank = universe.sample_request(rng);
    (rank < 1000 ? head : tail) += 1;
  }
  EXPECT_GT(head, tail);
}

TEST(Domains, ServerAddressesStableAndInCdnRange) {
  const auto& domains = shared_world().domains();
  EXPECT_EQ(domains.server_ipv4(42), domains.server_ipv4(42));
  const std::uint32_t v4 = domains.server_ipv4(42).v4_value();
  EXPECT_EQ(v4 >> 24, 198u);
  EXPECT_TRUE(domains.server_ipv6(42).is_v6());
}

TEST(World, BlockedSetMatchesConfiguredShares) {
  const World& world = shared_world();
  const int cn = country_index("CN");
  ASSERT_GE(cn, 0);
  // Measure realized coverage of Adult Themes in CN (configured 0.51).
  std::uint64_t adult = 0, blocked = 0;
  for (std::size_t rank = 0; rank < world.domains().size(); ++rank) {
    if (world.domains().by_rank(rank).category != Category::kAdultThemes) continue;
    ++adult;
    if (world.is_blocked(cn, rank)) ++blocked;
  }
  ASSERT_GT(adult, 100u);
  EXPECT_NEAR(static_cast<double>(blocked) / static_cast<double>(adult), 0.51, 0.05);
}

TEST(World, BlockedMembershipIsStable) {
  const World& world = shared_world();
  const int ir = country_index("IR");
  for (std::size_t rank = 0; rank < 500; ++rank)
    EXPECT_EQ(world.is_blocked(ir, rank), world.is_blocked(ir, rank));
}

TEST(World, SampleBlockedDomainReturnsBlocked) {
  const World& world = shared_world();
  const int cn = country_index("CN");
  common::Rng rng(11);
  for (int i = 0; i < 200; ++i)
    EXPECT_TRUE(world.is_blocked(cn, world.sample_blocked_domain(cn, rng)));
}

TEST(World, BlockedInterestPeaksAtNight) {
  const World& world = shared_world();
  const int cn = country_index("CN");
  // CN is UTC+8: local 03:30 is 19:30 UTC; local 15:30 is 07:30 UTC.
  const common::SimTime night = common::from_civil(2023, 1, 17, 19, 30, 0);
  const common::SimTime day = common::from_civil(2023, 1, 17, 7, 30, 0);
  EXPECT_GT(world.blocked_interest(cn, night), world.blocked_interest(cn, day));
}

TEST(World, WeekendReducesInterest) {
  const World& world = shared_world();
  const int de = country_index("DE");
  // Same local hour, Saturday vs Tuesday.
  const common::SimTime saturday = common::from_civil(2023, 1, 14, 12, 0, 0);
  const common::SimTime tuesday = common::from_civil(2023, 1, 17, 12, 0, 0);
  EXPECT_LT(world.blocked_interest(de, saturday), world.blocked_interest(de, tuesday));
}

TEST(World, VolumePeaksInEvening) {
  const World& world = shared_world();
  const int us = country_index("US");  // UTC-6
  const common::SimTime evening = common::from_civil(2023, 1, 17, 1, 0, 0);  // 19:00 local
  const common::SimTime night = common::from_civil(2023, 1, 17, 10, 0, 0);   // 04:00 local
  EXPECT_GT(world.volume_factor(us, evening), world.volume_factor(us, night));
}

TEST(World, PickMethodHonorsProtocolRestriction) {
  const World& world = shared_world();
  const int tm = country_index("TM");
  const common::AsnId asn = world.geo().country_ases("TM").front();
  common::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const MethodWeight* tls = world.pick_method(tm, asn, appproto::AppProtocol::kTls, rng);
    ASSERT_NE(tls, nullptr);
    EXPECT_NE(tls->preset, "single_rst_firewall");  // HTTP-only in TM
    const MethodWeight* http =
        world.pick_method(tm, asn, appproto::AppProtocol::kHttp, rng);
    ASSERT_NE(http, nullptr);
    EXPECT_NE(http->preset, "post_ack_rst");  // TLS-only in TM
  }
}

TEST(World, DominantAsOverrideForKorea) {
  const World& world = shared_world();
  const int kr = country_index("KR");
  const common::AsnId dominant = world.geo().country_ases("KR").front();
  common::Rng rng(14);
  const MethodWeight* method =
      world.pick_method(kr, dominant, appproto::AppProtocol::kTls, rng);
  ASSERT_NE(method, nullptr);
  EXPECT_EQ(method->preset, "korea_random_ttl");
  // Other KR ASes draw from the normal mix.
  const common::AsnId other = world.geo().country_ases("KR").back();
  bool saw_non_dominant = false;
  for (int i = 0; i < 50; ++i) {
    const MethodWeight* m = world.pick_method(kr, other, appproto::AppProtocol::kTls, rng);
    if (m != nullptr && m->preset != "korea_random_ttl") saw_non_dominant = true;
  }
  EXPECT_TRUE(saw_non_dominant);
}

TEST(World, AsnEnforcementSpreadTracksCentralization) {
  const World& world = shared_world();
  auto spread = [&](const char* cc) {
    common::RunningMoments moments;
    for (const common::AsnId asn : world.geo().country_ases(cc))
      moments.add(world.asn_enforcement(asn));
    return moments.stddev();
  };
  EXPECT_LT(spread("CN"), spread("RU"));  // centralized vs decentralized
}

TEST(World, SampleCountryFollowsWeights) {
  const World& world = shared_world();
  common::Rng rng(15);
  std::map<int, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[world.sample_country(rng)];
  EXPECT_GT(counts[country_index("US")], counts[country_index("TM")]);
  EXPECT_GT(counts[country_index("IN")], counts[country_index("CU")]);
}

TEST(Category, MetadataComplete) {
  double total_share = 0.0;
  for (Category c : all_categories()) {
    EXPECT_FALSE(name(c).empty());
    EXPECT_GT(universe_share(c), 0.0);
    EXPECT_GT(request_multiplier(c), 0.0);
    total_share += universe_share(c);
  }
  EXPECT_NEAR(total_share, 1.0, 0.05);
}

}  // namespace
}  // namespace tamper::world
