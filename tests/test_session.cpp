#include <gtest/gtest.h>

#include "tcp/session.h"

namespace tamper::tcp {
namespace {

using namespace net::tcpflag;

struct SessionFixture {
  EndpointConfig client_cfg;
  EndpointConfig server_cfg;

  SessionFixture() {
    client_cfg.addr = net::IpAddress::v4(11, 0, 0, 2);
    client_cfg.port = 40000;
    client_cfg.is_client = true;
    client_cfg.isn = 5000;
    client_cfg.request_segments = {{'G', 'E', 'T', ' ', '/'}};
    server_cfg.addr = net::IpAddress::v4(198, 18, 0, 1);
    server_cfg.port = 443;
    server_cfg.is_client = false;
    server_cfg.isn = 90000;
    server_cfg.response_size = 2000;
  }

  SessionResult run(PathHook* hook = nullptr, SessionConfig config = {}) {
    TcpEndpoint client(client_cfg, common::Rng(1));
    TcpEndpoint server(server_cfg, common::Rng(2));
    client.set_peer(server_cfg.addr, server_cfg.port);
    server.set_peer(client_cfg.addr, client_cfg.port);
    common::Rng rng(3);
    return simulate_session(client, server, hook, config, rng);
  }
};

TEST(Session, CleanExchangeCompletesGracefully) {
  SessionFixture fixture;
  const SessionResult result = fixture.run();
  ASSERT_GE(result.server_inbound.size(), 4u);
  // Inbound at server: SYN, ACK, PSH+ACK(request), ACK(s), FIN+ACK.
  EXPECT_EQ(result.server_inbound[0].pkt.tcp.flags, kSyn);
  EXPECT_EQ(result.server_inbound[1].pkt.tcp.flags, kAck);
  EXPECT_EQ(result.server_inbound[2].pkt.tcp.flags, kPsh | kAck);
  bool fin_seen = false;
  for (const auto& traced : result.server_inbound)
    if (traced.pkt.tcp.has(kFin)) fin_seen = true;
  EXPECT_TRUE(fin_seen);
  EXPECT_EQ(result.packets_dropped_by_hook, 0u);
}

TEST(Session, InboundTimestampsMonotone) {
  SessionFixture fixture;
  const SessionResult result = fixture.run();
  for (std::size_t i = 1; i < result.server_inbound.size(); ++i)
    EXPECT_GE(result.server_inbound[i].pkt.timestamp,
              result.server_inbound[i - 1].pkt.timestamp);
}

TEST(Session, TtlDecrementedByPathHops) {
  SessionFixture fixture;
  SessionConfig config;
  config.geometry.total_hops = 13;
  const SessionResult result = fixture.run(nullptr, config);
  // Client stack default initial TTL is 64.
  EXPECT_EQ(result.server_inbound[0].pkt.ip.ttl, 64 - 13);
}

TEST(Session, StartTimeShiftsAllTimestamps) {
  SessionFixture fixture;
  SessionConfig config;
  config.start_time = 1'700'000'000.0;
  const SessionResult result = fixture.run(nullptr, config);
  for (const auto& traced : result.server_inbound)
    EXPECT_GE(traced.pkt.timestamp, config.start_time);
  EXPECT_EQ(result.end_time, config.start_time + config.time_budget);
}

TEST(Session, TotalLossProducesNothingDelivered) {
  SessionFixture fixture;
  SessionConfig config;
  config.loss_rate = 1.0;
  const SessionResult result = fixture.run(nullptr, config);
  EXPECT_TRUE(result.server_inbound.empty());
  EXPECT_GT(result.packets_lost, 0u);
}

/// Hook that drops every client data packet (a crude in-path censor).
class DropClientData : public PathHook {
 public:
  PathDecision on_transit(Direction dir, const net::Packet& pkt,
                          common::SimTime) override {
    PathDecision decision;
    if (dir == Direction::kClientToServer && !pkt.payload.empty()) decision.drop = true;
    return decision;
  }
};

TEST(Session, HookCanDropPackets) {
  SessionFixture fixture;
  DropClientData hook;
  const SessionResult result = fixture.run(&hook);
  EXPECT_GT(result.packets_dropped_by_hook, 0u);
  for (const auto& traced : result.server_inbound)
    EXPECT_TRUE(traced.pkt.payload.empty());  // no data ever arrives
}

/// Hook that injects one spoofed RST toward the server on the first client
/// data packet, pre-stamped with a distinctive TTL.
class InjectRstOnData : public PathHook {
 public:
  PathDecision on_transit(Direction dir, const net::Packet& pkt,
                          common::SimTime) override {
    PathDecision decision;
    if (fired_ || dir != Direction::kClientToServer || pkt.payload.empty())
      return decision;
    fired_ = true;
    net::Packet rst = net::make_tcp_packet(pkt.src, pkt.tcp.src_port, pkt.dst,
                                           pkt.tcp.dst_port, kRst,
                                           pkt.tcp.seq + static_cast<std::uint32_t>(
                                                             pkt.payload.size()),
                                           0);
    rst.ip.ttl = 33;  // arrival TTL (hook contract)
    decision.injections.push_back({std::move(rst), Direction::kClientToServer, 0.0005});
    return decision;
  }

 private:
  bool fired_ = false;
};

TEST(Session, HookInjectionReachesServerWithGroundTruthFlag) {
  SessionFixture fixture;
  InjectRstOnData hook;
  const SessionResult result = fixture.run(&hook);
  bool saw_injected_rst = false;
  for (const auto& traced : result.server_inbound) {
    if (traced.injected) {
      saw_injected_rst = true;
      EXPECT_TRUE(traced.pkt.tcp.is_rst());
      EXPECT_EQ(traced.pkt.ip.ttl, 33);  // delivered with the pre-set arrival TTL
    }
  }
  EXPECT_TRUE(saw_injected_rst);
}

TEST(Session, InjectedRstKillsServerResponse) {
  SessionFixture fixture;
  InjectRstOnData hook;
  const SessionResult result = fixture.run(&hook);
  // After the RST the server is dead: no FIN handshake happens.
  for (const auto& traced : result.server_inbound)
    EXPECT_FALSE(traced.pkt.tcp.has(kFin));
}

TEST(Session, HookSeesMidPathTtl) {
  SessionFixture fixture;
  SessionConfig config;
  config.geometry.total_hops = 14;
  config.geometry.middlebox_hop = 4;

  class TtlProbe : public PathHook {
   public:
    PathDecision on_transit(Direction dir, const net::Packet& pkt,
                            common::SimTime) override {
      if (dir == Direction::kClientToServer && pkt.tcp.is_syn() && first_ttl == 0)
        first_ttl = pkt.ip.ttl;
      return {};
    }
    std::uint8_t first_ttl = 0;
  } probe;

  (void)fixture.run(&probe, config);
  EXPECT_EQ(probe.first_ttl, 64 - 4);
}

TEST(Session, GeometryHelpers) {
  PathGeometry geometry{.total_hops = 14, .middlebox_hop = 5};
  EXPECT_EQ(geometry.hops_to_server(), 9);
  EXPECT_EQ(geometry.hops_to_client(), 5);
}

}  // namespace
}  // namespace tamper::tcp
