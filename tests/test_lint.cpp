// Fixture-backed tests for tamperlint (src/lint): every rule must fire on
// its violation fixture, stay quiet on its clean fixture, and honor
// well-formed suppressions. Fixtures live in tests/lint_fixtures/ and are
// fed through lint_source() under synthetic paths, so the path-scoped rules
// (R2 emission files, R4 net parsers) are exercised no matter where the
// fixture tree sits on disk.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

using tamper::lint::Config;
using tamper::lint::Finding;
using tamper::lint::lint_source;

std::string fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintR1, FiresOnAmbientTimeAndRandomness) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r1_violation.cpp"), {});
  EXPECT_GE(count_rule(findings, "R1"), 3);
}

TEST(LintR1, SuppressionCoversExactlyOneLine) {
  const auto findings =
      lint_source("src/service/supervisor.cpp", fixture("r1_suppressed.cpp"), {});
  // `std::random_device rd;` is suppressed; the bare `rd()` call line has
  // no banned token, so the file yields no R1 at the suppressed site —
  // and no R0, because the directive is well-formed.
  EXPECT_EQ(count_rule(findings, "R1"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR1, QuietOnDeterministicCode) {
  const auto findings =
      lint_source("src/analysis/signature.cpp", fixture("r1_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R1"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR1, AllowlistedSourcesMayUseAmbientEntropy) {
  const auto findings =
      lint_source("src/common/rng.cpp", fixture("r1_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R1"), 0);
}

TEST(LintR2, FiresOnUnorderedContainersInEmissionFiles) {
  const auto findings =
      lint_source("src/analysis/report.cpp", fixture("r2_violation.cpp"), {});
  EXPECT_GE(count_rule(findings, "R2"), 1);
}

TEST(LintR2, OnlyAppliesToEmissionPaths) {
  // The same unordered_map is fine in a non-emission file (flow tables
  // want O(1) lookups; they just must not drive output order).
  const auto findings =
      lint_source("src/tcp/session.cpp", fixture("r2_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R2"), 0);
}

TEST(LintR2, QuietOnOrderedEmission) {
  const auto findings =
      lint_source("src/analysis/report.cpp", fixture("r2_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R2"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR3, FiresInsideMarkedFunctionOnly) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r3_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R3"), 2) << tamper::lint::format_text(findings);
  // Both findings must sit inside the marked function (lines 8-11), not in
  // unmarked() further down.
  for (const auto& f : findings) {
    if (f.rule == "R3") {
      EXPECT_LE(f.line, 11) << f.message;
    }
  }
}

TEST(LintR3, QuietOnCountAndDrop) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r3_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R3"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR4, FiresOnNarrowingAndTypePunningInNet) {
  const auto findings =
      lint_source("src/net/packet.cpp", fixture("r4_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R4"), 2) << tamper::lint::format_text(findings);
}

TEST(LintR4, OnlyAppliesToNetSources) {
  const auto findings =
      lint_source("src/analysis/report.cpp", fixture("r4_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R4"), 0);
}

TEST(LintR4, SanctionsStaticCastAndCharBridge) {
  const auto findings =
      lint_source("src/net/pcap.cpp", fixture("r4_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R4"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR5, FiresOnGuardlessHeaderWithNamespaceDump) {
  const auto findings =
      lint_source("src/common/util.h", fixture("r5_violation.h"), {});
  EXPECT_EQ(count_rule(findings, "R5"), 2) << tamper::lint::format_text(findings);
}

TEST(LintR5, QuietOnHygienicHeader) {
  const auto findings =
      lint_source("src/common/util.h", fixture("r5_clean.h"), {});
  EXPECT_EQ(count_rule(findings, "R5"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR5, SourcesAreExemptFromHeaderRules) {
  const auto findings =
      lint_source("tests/test_util.cpp", fixture("r5_violation.h"), {});
  EXPECT_EQ(count_rule(findings, "R5"), 0);
}

TEST(LintR6, FiresOnBadNamesLabelsAndDuplicateRegistration) {
  const auto findings =
      lint_source("src/service/supervisor.cpp", fixture("r6_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R6"), 3) << tamper::lint::format_text(findings);
  // The duplicate finding points back at the first registration site.
  bool saw_duplicate = false;
  for (const auto& f : findings)
    if (f.rule == "R6" && f.message.find("more than once") != std::string::npos) {
      saw_duplicate = true;
      EXPECT_NE(f.message.find("first at line"), std::string::npos) << f.message;
    }
  EXPECT_TRUE(saw_duplicate);
}

TEST(LintR6, QuietOnHygienicRegistrations) {
  // Includes a multi-line registration (name on its own line), a help
  // string that *mentions* a registration call, and a free-form label
  // value — none of which may fire.
  const auto findings =
      lint_source("src/obs/handles.cpp", fixture("r6_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R6"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR6, SuppressionSilencesExactlyOneSite) {
  const auto findings =
      lint_source("src/obs/legacy.cpp", fixture("r6_suppressed.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R6"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR6, IgnoresRegistrationsInsideStringLiterals) {
  const std::string src =
      "const char* doc = \"call reg.counter(\\\"Bad_Name\\\", ...) to register\";\n";
  const auto findings = lint_source("src/obs/doc.cpp", src, {});
  EXPECT_EQ(count_rule(findings, "R6"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR0, MalformedDirectivesAreFindingsAndSuppressNothing) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r0_malformed.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R0"), 2) << tamper::lint::format_text(findings);
  EXPECT_GE(count_rule(findings, "R1"), 1)
      << "a reasonless directive must not suppress";
}

TEST(LintConfig, RuleFilterRestrictsOutput) {
  Config only_r5;
  only_r5.rules = {"R5"};
  const auto findings =
      lint_source("src/net/packet.h", fixture("r5_violation.h"), only_r5);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "R5") << f.message;
  EXPECT_EQ(count_rule(findings, "R5"), 2);
}

TEST(LintStripper, IgnoresCommentsStringsAndRawStrings) {
  const std::string src = R"__(
// std::rand in a comment
const char* a = "system_clock inside a string";
const char* b = R"x(random_device in a raw string)x";
/* gettimeofday in a block comment */
)__";
  const auto findings = lint_source("src/analysis/x.cpp", src, {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

TEST(LintOutput, DeterministicAndMachineReadable) {
  const auto a =
      lint_source("src/net/packet.cpp", fixture("r4_violation.cpp"), {});
  const auto b =
      lint_source("src/net/packet.cpp", fixture("r4_violation.cpp"), {});
  EXPECT_EQ(tamper::lint::format_text(a), tamper::lint::format_text(b));
  const std::string json = tamper::lint::format_json(a);
  EXPECT_NE(json.find("\"rule\": \"R4\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
}

}  // namespace
