// Fixture-backed tests for tamperlint (src/lint): every rule must fire on
// its violation fixture, stay quiet on its clean fixture, and honor
// well-formed suppressions. Fixtures live in tests/lint_fixtures/ and are
// fed through lint_source() under synthetic paths, so the path-scoped rules
// (R2 emission files, R4 net parsers) are exercised no matter where the
// fixture tree sits on disk.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint/baseline.h"

namespace {

using tamper::lint::Config;
using tamper::lint::Finding;
using tamper::lint::lint_repo;
using tamper::lint::lint_source;
using tamper::lint::SourceFile;

std::string fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

/// Load a fixture mini-repo (tests/lint_fixtures/<name>/...) as in-memory
/// SourceFiles whose paths are relative to the subtree root, so module
/// detection ("src/net/...") works no matter where the checkout lives.
std::vector<SourceFile> load_repo(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(LINT_FIXTURE_DIR) / name;
  std::vector<SourceFile> files;
  EXPECT_TRUE(fs::is_directory(root)) << "missing fixture tree: " << root;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    files.push_back({entry.path().lexically_relative(root).generic_string(),
                     std::string((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>())});
  }
  return files;
}

TEST(LintR1, FiresOnAmbientTimeAndRandomness) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r1_violation.cpp"), {});
  EXPECT_GE(count_rule(findings, "R1"), 3);
}

TEST(LintR1, SuppressionCoversExactlyOneLine) {
  const auto findings =
      lint_source("src/service/supervisor.cpp", fixture("r1_suppressed.cpp"), {});
  // `std::random_device rd;` is suppressed; the bare `rd()` call line has
  // no banned token, so the file yields no R1 at the suppressed site —
  // and no R0, because the directive is well-formed.
  EXPECT_EQ(count_rule(findings, "R1"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR1, QuietOnDeterministicCode) {
  const auto findings =
      lint_source("src/analysis/signature.cpp", fixture("r1_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R1"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR1, AllowlistedSourcesMayUseAmbientEntropy) {
  const auto findings =
      lint_source("src/common/rng.cpp", fixture("r1_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R1"), 0);
}

TEST(LintR2, FiresOnUnorderedContainersInEmissionFiles) {
  const auto findings =
      lint_source("src/analysis/report.cpp", fixture("r2_violation.cpp"), {});
  EXPECT_GE(count_rule(findings, "R2"), 1);
}

TEST(LintR2, OnlyAppliesToEmissionPaths) {
  // The same unordered_map is fine in a non-emission file (flow tables
  // want O(1) lookups; they just must not drive output order).
  const auto findings =
      lint_source("src/tcp/session.cpp", fixture("r2_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R2"), 0);
}

TEST(LintR2, QuietOnOrderedEmission) {
  const auto findings =
      lint_source("src/analysis/report.cpp", fixture("r2_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R2"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR3, FiresInsideMarkedFunctionOnly) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r3_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R3"), 2) << tamper::lint::format_text(findings);
  // Both findings must sit inside the marked function (lines 8-11), not in
  // unmarked() further down.
  for (const auto& f : findings) {
    if (f.rule == "R3") {
      EXPECT_LE(f.line, 11) << f.message;
    }
  }
}

TEST(LintR3, QuietOnCountAndDrop) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r3_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R3"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR4, FiresOnNarrowingAndTypePunningInNet) {
  const auto findings =
      lint_source("src/net/packet.cpp", fixture("r4_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R4"), 2) << tamper::lint::format_text(findings);
}

TEST(LintR4, OnlyAppliesToNetSources) {
  const auto findings =
      lint_source("src/analysis/report.cpp", fixture("r4_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R4"), 0);
}

TEST(LintR4, SanctionsStaticCastAndCharBridge) {
  const auto findings =
      lint_source("src/net/pcap.cpp", fixture("r4_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R4"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR5, FiresOnGuardlessHeaderWithNamespaceDump) {
  const auto findings =
      lint_source("src/common/util.h", fixture("r5_violation.h"), {});
  EXPECT_EQ(count_rule(findings, "R5"), 2) << tamper::lint::format_text(findings);
}

TEST(LintR5, QuietOnHygienicHeader) {
  const auto findings =
      lint_source("src/common/util.h", fixture("r5_clean.h"), {});
  EXPECT_EQ(count_rule(findings, "R5"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR5, SourcesAreExemptFromHeaderRules) {
  const auto findings =
      lint_source("tests/test_util.cpp", fixture("r5_violation.h"), {});
  EXPECT_EQ(count_rule(findings, "R5"), 0);
}

TEST(LintR6, FiresOnBadNamesLabelsAndDuplicateRegistration) {
  const auto findings =
      lint_source("src/service/supervisor.cpp", fixture("r6_violation.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R6"), 3) << tamper::lint::format_text(findings);
  // The duplicate finding points back at the first registration site.
  bool saw_duplicate = false;
  for (const auto& f : findings)
    if (f.rule == "R6" && f.message.find("more than once") != std::string::npos) {
      saw_duplicate = true;
      EXPECT_NE(f.message.find("first at line"), std::string::npos) << f.message;
    }
  EXPECT_TRUE(saw_duplicate);
}

TEST(LintR6, QuietOnHygienicRegistrations) {
  // Includes a multi-line registration (name on its own line), a help
  // string that *mentions* a registration call, and a free-form label
  // value — none of which may fire.
  const auto findings =
      lint_source("src/obs/handles.cpp", fixture("r6_clean.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R6"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR6, SuppressionSilencesExactlyOneSite) {
  const auto findings =
      lint_source("src/obs/legacy.cpp", fixture("r6_suppressed.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R6"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR6, IgnoresRegistrationsInsideStringLiterals) {
  const std::string src =
      "const char* doc = \"call reg.counter(\\\"Bad_Name\\\", ...) to register\";\n";
  const auto findings = lint_source("src/obs/doc.cpp", src, {});
  EXPECT_EQ(count_rule(findings, "R6"), 0) << tamper::lint::format_text(findings);
}

TEST(LintR0, MalformedDirectivesAreFindingsAndSuppressNothing) {
  const auto findings =
      lint_source("src/analysis/pipeline.cpp", fixture("r0_malformed.cpp"), {});
  EXPECT_EQ(count_rule(findings, "R0"), 2) << tamper::lint::format_text(findings);
  EXPECT_GE(count_rule(findings, "R1"), 1)
      << "a reasonless directive must not suppress";
}

TEST(LintConfig, RuleFilterRestrictsOutput) {
  Config only_r5;
  only_r5.rules = {"R5"};
  const auto findings =
      lint_source("src/net/packet.h", fixture("r5_violation.h"), only_r5);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "R5") << f.message;
  EXPECT_EQ(count_rule(findings, "R5"), 2);
}

TEST(LintStripper, IgnoresCommentsStringsAndRawStrings) {
  const std::string src = R"__(
// std::rand in a comment
const char* a = "system_clock inside a string";
const char* b = R"x(random_device in a raw string)x";
/* gettimeofday in a block comment */
)__";
  const auto findings = lint_source("src/analysis/x.cpp", src, {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

TEST(LintOutput, DeterministicAndMachineReadable) {
  const auto a =
      lint_source("src/net/packet.cpp", fixture("r4_violation.cpp"), {});
  const auto b =
      lint_source("src/net/packet.cpp", fixture("r4_violation.cpp"), {});
  EXPECT_EQ(tamper::lint::format_text(a), tamper::lint::format_text(b));
  const std::string json = tamper::lint::format_json(a);
  EXPECT_NE(json.find("\"rule\": \"R4\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
}

// ---------------------------------------------------------------- R7

TEST(LintR7, FiresOnUpwardInclude) {
  const auto findings = lint_repo(load_repo("r7_fire"), {});
  EXPECT_EQ(count_rule(findings, "R7"), 1) << tamper::lint::format_text(findings);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].path, "src/net/n.h");
  EXPECT_NE(findings[0].message.find("module 'net'"), std::string::npos)
      << findings[0].message;
}

TEST(LintR7, SuppressionOnTheIncludeLineSilencesIt) {
  const auto findings = lint_repo(load_repo("r7_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R7"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR7, QuietOnDownwardInclude) {
  const auto findings = lint_repo(load_repo("r7_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

// ---------------------------------------------------------------- R8

TEST(LintR8, FiresOnLockOrderInversion) {
  const auto findings = lint_repo(load_repo("r8_fire"), {});
  EXPECT_EQ(count_rule(findings, "R8"), 1) << tamper::lint::format_text(findings);
  ASSERT_FALSE(findings.empty());
  // Both conflicting acquisition sites are named, with class-qualified nodes.
  EXPECT_NE(findings[0].message.find("Pair::a_mu_ -> Pair::b_mu_"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("Pair::b_mu_ -> Pair::a_mu_"),
            std::string::npos)
      << findings[0].message;
}

TEST(LintR8, SuppressionAtTheAnchorSiteSilencesIt) {
  const auto findings = lint_repo(load_repo("r8_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R8"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR8, QuietOnConsistentOrder) {
  const auto findings = lint_repo(load_repo("r8_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

// ---------------------------------------------------------------- R9

TEST(LintR9, FiresOnMissingEnumeratorWithDefault) {
  const auto findings = lint_repo(load_repo("r9_fire"), {});
  EXPECT_EQ(count_rule(findings, "R9"), 1) << tamper::lint::format_text(findings);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].path, "src/core/use.cpp");
  EXPECT_NE(findings[0].message.find("missing: kDataRst"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("default:"), std::string::npos)
      << "the silent default must be called out: " << findings[0].message;
}

TEST(LintR9, SuppressionAboveTheSwitchSilencesIt) {
  const auto findings = lint_repo(load_repo("r9_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R9"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR9, QuietOnExhaustiveSwitch) {
  const auto findings = lint_repo(load_repo("r9_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

// ---------------------------------------------------------------- R10

TEST(LintR10, FiresInBothDirections) {
  const auto findings = lint_repo(load_repo("r10_fire"), {});
  EXPECT_EQ(count_rule(findings, "R10"), 2) << tamper::lint::format_text(findings);
  bool undocumented = false, unregistered = false;
  for (const auto& f : findings) {
    if (f.message.find("tamper_orphan_total") != std::string::npos) {
      undocumented = true;
      EXPECT_EQ(f.path, "src/obs/export.cpp");
    }
    if (f.message.find("tamper_ghost_total") != std::string::npos) {
      unregistered = true;
      EXPECT_EQ(f.path, "DESIGN.md");
    }
  }
  EXPECT_TRUE(undocumented);
  EXPECT_TRUE(unregistered);
}

TEST(LintR10, SuppressionAtTheRegistrationSilencesIt) {
  const auto findings = lint_repo(load_repo("r10_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R10"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR10, BraceExpandedInventoryRowsMatch) {
  const auto findings = lint_repo(load_repo("r10_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

// ---------------------------------------------------------------- R11

TEST(LintR11, FiresOnMissingLadderRungWithDefault) {
  const auto findings = lint_repo(load_repo("r11_fire"), {});
  EXPECT_EQ(count_rule(findings, "R11"), 1) << tamper::lint::format_text(findings);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].path, "src/control/use.cpp");
  EXPECT_NE(findings[0].message.find("missing: kShedding"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("ladder level"), std::string::npos)
      << "the swallowed rung must be named a ladder level: " << findings[0].message;
}

TEST(LintR11, SuppressionAboveTheSwitchSilencesIt) {
  const auto findings = lint_repo(load_repo("r11_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R11"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR11, QuietOnExhaustiveSwitch) {
  const auto findings = lint_repo(load_repo("r11_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

// ---------------------------------------------------------------- R12

TEST(LintR12, FiresOnDanglingAndPrefixlessSources) {
  const auto findings = lint_repo(load_repo("r12_fire"), {});
  EXPECT_EQ(count_rule(findings, "R12"), 2) << tamper::lint::format_text(findings);
  bool dangling = false, prefixless = false;
  for (const auto& f : findings) {
    if (f.rule != "R12") continue;
    EXPECT_EQ(f.path, "src/obs/catalog.cpp");
    if (f.message.find("tamper_missing_total") != std::string::npos) dangling = true;
    if (f.message.find("\"prefixless\"") != std::string::npos) {
      prefixless = true;
      EXPECT_NE(f.message.find("agg:<metric_family>"), std::string::npos)
          << "the fix must be spelled out: " << f.message;
    }
  }
  EXPECT_TRUE(dangling);
  EXPECT_TRUE(prefixless);
}

TEST(LintR12, SuppressionAboveTheEntrySilencesIt) {
  const auto findings = lint_repo(load_repo("r12_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R12"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR12, QuietWhenEverySourceResolves) {
  const auto findings = lint_repo(load_repo("r12_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

TEST(LintR13, FiresOnRawTaxonomyParamsIncludingWrappedDecls) {
  const auto findings = lint_repo(load_repo("r13_fire"), {});
  EXPECT_EQ(count_rule(findings, "R13"), 3) << tamper::lint::format_text(findings);
  bool pop = false, epoch = false, domain = false;
  for (const auto& f : findings) {
    if (f.rule != "R13") continue;
    EXPECT_EQ(f.path, "src/fleet/api.h");
    if (f.message.find("\"pop\"") != std::string::npos) {
      pop = true;
      // The fix must be spelled out: the strong type to reach for.
      EXPECT_NE(f.message.find("common/ids.h: PopId"), std::string::npos)
          << f.message;
    }
    if (f.message.find("\"epoch\"") != std::string::npos) epoch = true;
    if (f.message.find("\"domain\"") != std::string::npos) domain = true;
  }
  EXPECT_TRUE(pop);
  EXPECT_TRUE(epoch);  // lives on the wrapped second line of its declaration
  EXPECT_TRUE(domain);
}

TEST(LintR13, PerSiteSuppressionCoversWholeDeclarations) {
  const auto findings = lint_repo(load_repo("r13_suppressed"), {});
  EXPECT_EQ(count_rule(findings, "R13"), 0) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R0"), 0);
}

TEST(LintR13, QuietWhenTaxonomyParamsCarryStrongTypes) {
  const auto findings = lint_repo(load_repo("r13_clean"), {});
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
}

TEST(LintR13, ScopedToSrcHeadersAndFiresExactlyOnce) {
  // The tree holds a raw `pop_id` in a src/ header (fires), the same
  // signature in the .cpp (implementation files are not indexed), a raw
  // `pop` in tools/ (outside src/), and a strong-typed sibling.
  const auto findings = lint_repo(load_repo("r13_scoped"), {});
  EXPECT_EQ(count_rule(findings, "R13"), 1) << tamper::lint::format_text(findings);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].path, "src/fleet/api.h");
  EXPECT_NE(findings[0].message.find("\"pop_id\""), std::string::npos);
}

// ---------------------------------------------------------------- seeded repo

TEST(LintSeeded, ExactlyOneFindingPerCrossFileRule) {
  const auto findings = lint_repo(load_repo("repo_seeded"), {});
  EXPECT_EQ(findings.size(), 4u) << tamper::lint::format_text(findings);
  EXPECT_EQ(count_rule(findings, "R7"), 1);
  EXPECT_EQ(count_rule(findings, "R8"), 1);
  EXPECT_EQ(count_rule(findings, "R9"), 1);
  EXPECT_EQ(count_rule(findings, "R10"), 1);
  const std::map<std::string, std::string> expected_path = {
      {"R7", "src/world/a.h"},
      {"R8", "src/service/spool.cpp"},
      {"R9", "src/core/classify.cpp"},
      {"R10", "src/obs/export.cpp"},
  };
  for (const auto& f : findings)
    EXPECT_EQ(f.path, expected_path.at(f.rule)) << f.rule << ": " << f.message;
}

// ---------------------------------------------------------------- parallelism

TEST(LintParallel, ByteIdenticalAcrossThreadCountsAndRuns) {
  const auto files = load_repo("repo_seeded");
  const auto baseline_run = lint_repo(files, {}, /*jobs=*/1);
  const std::string text = tamper::lint::format_text(baseline_run);
  const std::string json = tamper::lint::format_json(baseline_run);
  const std::string sarif = tamper::lint::format_sarif(baseline_run);
  for (const int jobs : {1, 2, 8}) {
    for (int run = 0; run < 2; ++run) {
      const auto again = lint_repo(files, {}, jobs);
      EXPECT_EQ(tamper::lint::format_text(again), text) << "jobs=" << jobs;
      EXPECT_EQ(tamper::lint::format_json(again), json) << "jobs=" << jobs;
      EXPECT_EQ(tamper::lint::format_sarif(again), sarif) << "jobs=" << jobs;
    }
  }
}

TEST(LintParallel, ShuffledInputOrderDoesNotChangeOutput) {
  auto files = load_repo("repo_seeded");
  const std::string text = tamper::lint::format_text(lint_repo(files, {}, 4));
  std::reverse(files.begin(), files.end());
  EXPECT_EQ(tamper::lint::format_text(lint_repo(files, {}, 4)), text);
}

// ---------------------------------------------------------------- SARIF

/// A deliberately small JSON reader — just enough structure to validate the
/// SARIF output against the 2.1.0 shape without external schema tooling.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0)
      ++pos;
  }
  bool eat(char c) {
    skip();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    failed = true;
    return false;
  }
  JsonValue parse() {
    JsonValue v;
    skip();
    if (pos >= text.size()) {
      failed = true;
      return v;
    }
    const char c = text[pos];
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      ++pos;
      skip();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return v;
      }
      while (!failed) {
        skip();
        JsonValue key = parse_string();
        if (failed || !eat(':')) break;
        v.object.emplace(key.str, parse());
        skip();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        eat('}');
        break;
      }
    } else if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      ++pos;
      skip();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return v;
      }
      while (!failed) {
        v.array.push_back(parse());
        skip();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        eat(']');
        break;
      }
    } else if (c == '"') {
      v = parse_string();
    } else if (c == 't' || c == 'f') {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = c == 't';
      pos += c == 't' ? 4 : 5;
    } else if (c == 'n') {
      pos += 4;
    } else {
      v.kind = JsonValue::Kind::kNumber;
      std::size_t end = pos;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
              text[end] == '-' || text[end] == '+' || text[end] == '.' ||
              text[end] == 'e' || text[end] == 'E'))
        ++end;
      v.number = std::stod(std::string(text.substr(pos, end - pos)));
      pos = end;
    }
    return v;
  }
  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!eat('"')) return v;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        const char esc = text[pos + 1];
        if (esc == 'n') v.str.push_back('\n');
        else if (esc == 't') v.str.push_back('\t');
        else if (esc == 'u') {
          pos += 4;  // \u00XX — fixture messages only use control escapes
          v.str.push_back('?');
        } else v.str.push_back(esc);
        pos += 2;
        continue;
      }
      v.str.push_back(text[pos++]);
    }
    if (!eat('"')) failed = true;
    return v;
  }
};

TEST(LintSarif, ValidatesAgainstThe210Shape) {
  const auto findings = lint_repo(load_repo("repo_seeded"), {});
  ASSERT_EQ(findings.size(), 4u);
  const std::string sarif = tamper::lint::format_sarif(findings);

  JsonParser parser{sarif};
  const JsonValue doc = parser.parse();
  ASSERT_FALSE(parser.failed) << "SARIF output is not well-formed JSON";
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);

  const JsonValue* schema = doc.get("$schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_NE(schema->str.find("sarif-schema-2.1.0"), std::string::npos);
  const JsonValue* version = doc.get("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->str, "2.1.0");

  const JsonValue* runs = doc.get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& run = runs->array[0];

  const JsonValue* tool = run.get("tool");
  ASSERT_NE(tool, nullptr);
  const JsonValue* driver = tool->get("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->get("name")->str, "tamperlint");
  const JsonValue* rules = driver->get("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->array.size(), 14u);  // R0..R13
  for (const JsonValue& rule : rules->array) {
    ASSERT_NE(rule.get("id"), nullptr);
    ASSERT_NE(rule.get("shortDescription"), nullptr);
    EXPECT_NE(rule.get("shortDescription")->get("text"), nullptr);
  }

  const JsonValue* results = run.get("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), findings.size());
  for (const JsonValue& result : results->array) {
    const JsonValue* rule_id = result.get("ruleId");
    ASSERT_NE(rule_id, nullptr);
    const JsonValue* rule_index = result.get("ruleIndex");
    ASSERT_NE(rule_index, nullptr);
    // ruleIndex must point at the catalog entry with the matching id.
    const int idx = static_cast<int>(rule_index->number);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(rules->array.size()));
    EXPECT_EQ(rules->array[static_cast<std::size_t>(idx)].get("id")->str,
              rule_id->str);
    EXPECT_EQ(result.get("level")->str, "error");
    ASSERT_NE(result.get("message"), nullptr);
    EXPECT_FALSE(result.get("message")->get("text")->str.empty());
    const JsonValue* locations = result.get("locations");
    ASSERT_NE(locations, nullptr);
    ASSERT_EQ(locations->array.size(), 1u);
    const JsonValue* phys = locations->array[0].get("physicalLocation");
    ASSERT_NE(phys, nullptr);
    const JsonValue* artifact = phys->get("artifactLocation");
    ASSERT_NE(artifact, nullptr);
    EXPECT_FALSE(artifact->get("uri")->str.empty());
    EXPECT_EQ(artifact->get("uriBaseId")->str, "SRCROOT");
    EXPECT_GE(phys->get("region")->get("startLine")->number, 1.0);
    const JsonValue* prints = result.get("partialFingerprints");
    ASSERT_NE(prints, nullptr);
    EXPECT_NE(prints->get("tamperlint/v1"), nullptr);
  }
}

TEST(LintSarif, FingerprintsAreStableAcrossRuns) {
  const auto files = load_repo("repo_seeded");
  EXPECT_EQ(tamper::lint::format_sarif(lint_repo(files, {})),
            tamper::lint::format_sarif(lint_repo(files, {})));
}

// ---------------------------------------------------------------- baseline

TEST(LintBaseline, RoundTripsAndDropsMatchedFindings) {
  auto findings = lint_repo(load_repo("repo_seeded"), {});
  ASSERT_EQ(findings.size(), 4u);
  const std::string serialized = tamper::lint::format_baseline(findings);

  std::vector<std::string> errors;
  const auto parsed = tamper::lint::parse_baseline(serialized, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(parsed.size(), 4u);

  const auto stale = tamper::lint::apply_baseline(findings, parsed);
  EXPECT_TRUE(findings.empty()) << tamper::lint::format_text(findings);
  EXPECT_TRUE(stale.empty());
}

TEST(LintBaseline, MatchesWithoutLineNumbersAndReportsStaleEntries) {
  auto findings = lint_repo(load_repo("repo_seeded"), {});
  ASSERT_EQ(findings.size(), 4u);
  std::vector<tamper::lint::BaselineEntry> baseline;
  // Accept only the R9 finding, plus one entry for a finding that no longer
  // exists (its message changed) — that entry must come back stale.
  for (const auto& f : findings)
    if (f.rule == "R9") baseline.push_back({f.rule, f.path, f.message});
  baseline.push_back({"R9", "src/core/classify.cpp", "an old message"});

  const auto stale = tamper::lint::apply_baseline(findings, baseline);
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_EQ(count_rule(findings, "R9"), 0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].message, "an old message");
}

TEST(LintBaseline, MalformedLinesAreErrorsNotSilentAcceptance) {
  std::vector<std::string> errors;
  const auto parsed = tamper::lint::parse_baseline(
      "# comment\nR7 src/world/a.h no tabs here\n", errors);
  EXPECT_TRUE(parsed.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("baseline line 2"), std::string::npos) << errors[0];
}

// ---------------------------------------------------------------- manifest

TEST(LintManifest, WalkFormatParseRoundTrip) {
  std::vector<std::string> errors;
  const auto walked = tamper::lint::walk_sources(
      std::string(LINT_FIXTURE_DIR) + "/r7_fire", {}, errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(walked.size(), 2u);
  EXPECT_EQ(walked[0], "src/net/n.h");
  EXPECT_EQ(walked[1], "src/tcp/t.h");

  const std::string serialized = tamper::lint::format_manifest(walked);
  EXPECT_EQ(tamper::lint::parse_manifest(serialized), walked);
}

TEST(LintManifest, FormatSortsAndDeduplicates) {
  const std::string serialized = tamper::lint::format_manifest(
      {"src/b.cpp", "src/a.cpp", "src/b.cpp"});
  const auto parsed = tamper::lint::parse_manifest(serialized);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], "src/a.cpp");
  EXPECT_EQ(parsed[1], "src/b.cpp");
}

TEST(LintCatalog, ListsTheCrossFileRules) {
  const std::string catalog = tamper::lint::rule_catalog();
  for (const char* id : {"R7", "R8", "R9", "R10", "R11", "R12", "R13"})
    EXPECT_NE(catalog.find(id), std::string::npos) << id;
}

}  // namespace
