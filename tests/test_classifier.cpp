// The heart of the reproduction: hand-built inbound packet sequences for
// every Table 1 signature, plus the classification rules around inactivity,
// retransmission collapse, order reconstruction, and stage precedence.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/classifier.h"

namespace tamper::core {
namespace {

using capture::ConnectionSample;
using capture::ObservedPacket;
using namespace net::tcpflag;

constexpr std::uint32_t kIsn = 1000;
constexpr std::uint32_t kSrvAck = 555000;  // client's ack of the server ISN

ObservedPacket pkt(std::int64_t ts, std::uint8_t flags, std::uint32_t seq,
                   std::uint32_t ack, std::uint16_t payload_len = 0) {
  ObservedPacket p;
  p.ts_sec = ts;
  p.flags = flags;
  p.seq = seq;
  p.ack = ack;
  p.payload_len = payload_len;
  p.ttl = 52;
  p.ip_id = 100;
  p.has_tcp_options = true;
  return p;
}

ObservedPacket syn(std::int64_t ts) { return pkt(ts, kSyn, kIsn, 0); }
ObservedPacket hs_ack(std::int64_t ts) { return pkt(ts, kAck, kIsn + 1, kSrvAck); }
ObservedPacket psh(std::int64_t ts, std::uint16_t len = 200) {
  return pkt(ts, kPsh | kAck, kIsn + 1, kSrvAck, len);
}
ObservedPacket psh2(std::int64_t ts, std::uint16_t len = 150) {
  return pkt(ts, kPsh | kAck, kIsn + 201, kSrvAck, len);
}
ObservedPacket resp_ack(std::int64_t ts, std::uint32_t acked) {
  return pkt(ts, kAck, kIsn + 201, kSrvAck + acked);
}
ObservedPacket fin(std::int64_t ts) {
  return pkt(ts, kFin | kAck, kIsn + 201, kSrvAck + 3000);
}
ObservedPacket rst(std::int64_t ts, std::uint32_t ack = kSrvAck) {
  return pkt(ts, kRst, kIsn + 201, ack);
}
ObservedPacket rst_ack(std::int64_t ts, std::uint32_t ack = kSrvAck) {
  return pkt(ts, kRst | kAck, kIsn + 201, ack);
}

ConnectionSample sample_of(std::vector<ObservedPacket> packets,
                           std::int64_t observation_end = 2000) {
  ConnectionSample s;
  s.client_ip = net::IpAddress::v4(11, 0, 0, 2);
  s.server_ip = net::IpAddress::v4(198, 18, 0, 1);
  s.client_port = 40000;
  s.server_port = 443;
  s.packets = std::move(packets);
  s.observation_end_sec = observation_end;
  return s;
}

Classification classify(const ConnectionSample& s) {
  return SignatureClassifier{}.classify(s);
}

// ---- Clean connections ----

TEST(Classifier, GracefulConnectionIsClean) {
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), resp_ack(1000, 1460), fin(1001)}));
  EXPECT_FALSE(c.possibly_tampered);
  EXPECT_TRUE(c.graceful);
  EXPECT_FALSE(c.signature.has_value());
}

TEST(Classifier, SlowButFinishingConnectionIsClean) {
  // 5 s pause mid-connection but a FIN handshake exists: not flagged.
  const auto c = classify(
      sample_of({syn(1000), hs_ack(1000), psh(1000), resp_ack(1006, 1460), fin(1007)}));
  EXPECT_FALSE(c.possibly_tampered);
  EXPECT_TRUE(c.graceful);
}

TEST(Classifier, TruncatedBusyConnectionIsClean) {
  // Exactly 10 packets (the cap): trailing silence says nothing.
  std::vector<ObservedPacket> packets = {syn(1000), hs_ack(1000), psh(1000)};
  for (int i = 0; i < 7; ++i)
    packets.push_back(resp_ack(1000, 1460 * (i + 1)));
  const auto c = classify(sample_of(std::move(packets), /*observation_end=*/2000));
  EXPECT_FALSE(c.possibly_tampered);
}

TEST(Classifier, EmptySampleIsClean) {
  EXPECT_FALSE(classify(sample_of({})).possibly_tampered);
}

// ---- Post-SYN ----

TEST(Classifier, SynToNothing) {
  const auto c = classify(sample_of({syn(1000)}, 1030));
  EXPECT_TRUE(c.possibly_tampered);
  EXPECT_TRUE(c.timeout);
  EXPECT_EQ(c.stage, Stage::kPostSyn);
  EXPECT_EQ(c.signature, Signature::kSynNone);
}

TEST(Classifier, RetransmittedSynStillSingleSyn) {
  const auto c = classify(sample_of({syn(1000), syn(1001), syn(1003)}, 1030));
  EXPECT_EQ(c.signature, Signature::kSynNone);  // duplicates collapse
}

TEST(Classifier, SynToRst) {
  const auto c =
      classify(sample_of({syn(1000), pkt(1000, kRst, kIsn + 1, 0)}, 1030));
  EXPECT_EQ(c.signature, Signature::kSynRst);
  EXPECT_EQ(c.rst_count, 1u);
  EXPECT_EQ(c.rst_ack_count, 0u);
}

TEST(Classifier, SynToMultipleRstsStillSynRst) {
  // "One or more RSTs after a single SYN".
  const auto c = classify(sample_of(
      {syn(1000), pkt(1000, kRst, kIsn + 1, 0), pkt(1000, kRst, kIsn + 1, 7)}, 1030));
  EXPECT_EQ(c.signature, Signature::kSynRst);
  EXPECT_EQ(c.rst_count, 2u);
}

TEST(Classifier, SynToRstAck) {
  const auto c =
      classify(sample_of({syn(1000), pkt(1000, kRst | kAck, kIsn + 1, kSrvAck)}, 1030));
  EXPECT_EQ(c.signature, Signature::kSynRstAck);
}

TEST(Classifier, SynToMixedRstBurst) {
  const auto c = classify(sample_of({syn(1000), pkt(1000, kRst, kIsn + 1, 0),
                                     pkt(1000, kRst | kAck, kIsn + 1, kSrvAck)},
                                    1030));
  EXPECT_EQ(c.signature, Signature::kSynRstRstAck);
}

// ---- Post-ACK ----

TEST(Classifier, AckToNothing) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1000)}, 1030));
  EXPECT_EQ(c.stage, Stage::kPostAck);
  EXPECT_EQ(c.signature, Signature::kAckNone);
  EXPECT_TRUE(c.timeout);
}

TEST(Classifier, AckToExactlyOneRst) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), rst(1000)}, 1030));
  EXPECT_EQ(c.signature, Signature::kAckRst);
}

TEST(Classifier, AckToTwoRsts) {
  const auto c =
      classify(sample_of({syn(1000), hs_ack(1000), rst(1000), rst(1000, kSrvAck + 1)}, 1030));
  EXPECT_EQ(c.signature, Signature::kAckRstRst);
}

TEST(Classifier, AckToOneRstAck) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), rst_ack(1000)}, 1030));
  EXPECT_EQ(c.signature, Signature::kAckRstAck);
}

TEST(Classifier, AckToTwoRstAcks) {
  const auto c = classify(
      sample_of({syn(1000), hs_ack(1000), rst_ack(1000), rst_ack(1001)}, 1030));
  EXPECT_EQ(c.signature, Signature::kAckRstAckRstAck);
}

TEST(Classifier, AckWithMixedTeardownIsUnmatched) {
  // Table 1 has no Post-ACK mixed RST/RST+ACK signature.
  const auto c =
      classify(sample_of({syn(1000), hs_ack(1000), rst(1000), rst_ack(1000)}, 1030));
  EXPECT_TRUE(c.possibly_tampered);
  EXPECT_FALSE(c.signature.has_value());
  EXPECT_EQ(c.stage, Stage::kPostAck);
}

TEST(Classifier, TwoDistinctAcksIsOtherStage) {
  // The paper's example of an unclassified sequence: SYN and two ACKs.
  auto second_ack = hs_ack(1000);
  second_ack.ack = kSrvAck + 100;
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), second_ack}, 1030));
  EXPECT_TRUE(c.possibly_tampered);
  EXPECT_EQ(c.stage, Stage::kOther);
  EXPECT_FALSE(c.signature.has_value());
}

// ---- Post-PSH ----

TEST(Classifier, PshToNothing) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), psh(1000)}, 1030));
  EXPECT_EQ(c.stage, Stage::kPostPsh);
  EXPECT_EQ(c.signature, Signature::kPshNone);
}

TEST(Classifier, PshToOneRst) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), psh(1000), rst(1000)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRst);
}

TEST(Classifier, PshToOneRstAck) {
  const auto c =
      classify(sample_of({syn(1000), hs_ack(1000), psh(1000), rst_ack(1000)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstAck);
}

TEST(Classifier, PshToMixedBurst) {
  const auto c = classify(
      sample_of({syn(1000), hs_ack(1000), psh(1000), rst(1000), rst_ack(1000)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstRstAck);
}

TEST(Classifier, PshToDoubleRstAck) {
  const auto c = classify(
      sample_of({syn(1000), hs_ack(1000), psh(1000), rst_ack(1000), rst_ack(1000)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstAckRstAck);
}

TEST(Classifier, PshToRepeatedRstSameAck) {
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 7777), rst(1000, 7777)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstEqRst);
}

TEST(Classifier, PshToRstsWithDifferentAcks) {
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 7777), rst(1000, 9237)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstNeqRst);
}

TEST(Classifier, PshToRstWithZeroAck) {
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 7777), rst(1000, 0)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstRst0);
}

TEST(Classifier, ZeroAckTakesPrecedenceOverNeq) {
  // Three RSTs: 0, x, y (x != y). Zero-ack split wins over "different acks".
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), psh(1000), rst(1000, 0),
                                     rst(1000, 100), rst(1000, 200)},
                                    1030));
  EXPECT_EQ(c.signature, Signature::kPshRstRst0);
}

TEST(Classifier, AllZeroAcksAreEqual) {
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 0), rst(1000, 0)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstEqRst);
}

TEST(Classifier, MixedPrecedenceOverAckSplits) {
  // RST+ACK present alongside multiple RSTs: mixed burst wins.
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), psh(1000), rst(1000, 0),
                                     rst(1000, 1), rst_ack(1000)},
                                    1030));
  EXPECT_EQ(c.signature, Signature::kPshRstRstAck);
}

// ---- Post-Data ----

TEST(Classifier, SecondDataPacketMovesToPostData) {
  const auto c = classify(
      sample_of({syn(1000), hs_ack(1000), psh(1000), psh2(1000), rst(1001)}, 1030));
  EXPECT_EQ(c.stage, Stage::kPostData);
  EXPECT_EQ(c.signature, Signature::kDataRst);
}

TEST(Classifier, AckAfterPshMovesToPostData) {
  // "Not immediately after the first PSH+ACK": a response ACK intervened.
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), resp_ack(1000, 1460), rst_ack(1001)}, 1030));
  EXPECT_EQ(c.stage, Stage::kPostData);
  EXPECT_EQ(c.signature, Signature::kDataRstAck);
}

TEST(Classifier, PostDataTimeoutIsUnmatched) {
  // No ⟨PSH;Data → ∅⟩ signature exists in Table 1.
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), resp_ack(1000, 1460)}, 1030));
  EXPECT_TRUE(c.possibly_tampered);
  EXPECT_EQ(c.stage, Stage::kPostData);
  EXPECT_FALSE(c.signature.has_value());
}

TEST(Classifier, PostDataMixedUsesFirstTeardownType) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1000), psh(1000), psh2(1000),
                                     rst_ack(1001), rst(1001, 5)},
                                    1030));
  EXPECT_EQ(c.stage, Stage::kPostData);
  EXPECT_EQ(c.signature, Signature::kDataRstAck);
}

// ---- FIN interactions ----

TEST(Classifier, RstAfterFinIsOtherStage) {
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), fin(1000), rst_ack(1000, kSrvAck + 3000)},
      1030));
  EXPECT_TRUE(c.possibly_tampered);  // a RST is present
  EXPECT_EQ(c.stage, Stage::kOther);
  EXPECT_FALSE(c.signature.has_value());
}

// ---- Inactivity semantics ----

TEST(Classifier, GapBelowThresholdIsClean) {
  const auto c = classify(sample_of({syn(1000), hs_ack(1002)}, 1004));
  EXPECT_FALSE(c.possibly_tampered);
}

TEST(Classifier, InternalGapCountsEvenIfTrafficResumes) {
  // SYN, ACK, 5 s silence, then data: the paper flags the inactivity.
  const auto c =
      classify(sample_of({syn(1000), hs_ack(1000), psh(1006), psh2(1006)}, 1007));
  EXPECT_TRUE(c.possibly_tampered);
  EXPECT_EQ(c.stage, Stage::kPostAck);
  EXPECT_EQ(c.signature, Signature::kAckNone);
}

TEST(Classifier, TrailingSilenceUsesObservationEnd) {
  const auto near_end = classify(sample_of({syn(1000), hs_ack(1000)}, 1002));
  EXPECT_FALSE(near_end.possibly_tampered);  // only 2 s of silence so far
  const auto past_end = classify(sample_of({syn(1000), hs_ack(1000)}, 1003));
  EXPECT_TRUE(past_end.possibly_tampered);
}

TEST(Classifier, ConfigurableInactivityThreshold) {
  ClassifierConfig config;
  config.inactivity_seconds = 10;
  SignatureClassifier strict(config);
  const auto c = strict.classify(sample_of({syn(1000), hs_ack(1000)}, 1006));
  EXPECT_FALSE(c.possibly_tampered);
}

// ---- Retransmission collapse ----

TEST(Classifier, DataRetransmissionCollapses) {
  // PSH retransmitted twice then a RST: still Post-PSH, not Post-Data.
  const auto c = classify(
      sample_of({syn(1000), hs_ack(1000), psh(1000), psh(1001), rst(1001)}, 1030));
  EXPECT_EQ(c.stage, Stage::kPostPsh);
  EXPECT_EQ(c.signature, Signature::kPshRst);
}

TEST(Classifier, IdenticalRstsAreNotCollapsed) {
  // Injector bursts repeat byte-identical RSTs; one-vs-many is significant.
  const auto c = classify(sample_of(
      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 7777), rst(1000, 7777)}, 1030));
  EXPECT_EQ(c.signature, Signature::kPshRstEqRst);
  EXPECT_EQ(c.rst_count, 2u);
}

// ---- Order reconstruction ----

TEST(Classifier, OrderPacketsReconstructsHandshakeOrder) {
  const auto s =
      sample_of({psh(1000), syn(1000), hs_ack(1000), resp_ack(1000, 100)}, 1030);
  const auto ordered = order_packets(s);
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_TRUE(ordered[0]->is_syn());
  EXPECT_TRUE(ordered[1]->is_pure_ack());
  EXPECT_TRUE(ordered[2]->is_data());
  EXPECT_TRUE(ordered[3]->is_pure_ack());
}

TEST(Classifier, ShuffleInvarianceWithinSecond) {
  // Any within-second permutation of the log yields the same classification.
  std::vector<ObservedPacket> base = {syn(1000),        hs_ack(1000), psh(1000),
                                      rst(1000, 7777),  rst(1000, 0)};
  const auto reference = classify(sample_of(base, 1030));
  ASSERT_EQ(reference.signature, Signature::kPshRstRst0);
  common::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    auto shuffled = base;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const auto c = classify(sample_of(shuffled, 1030));
    ASSERT_EQ(c.signature, reference.signature) << "trial " << trial;
    ASSERT_EQ(c.stage, reference.stage);
  }
}

TEST(Classifier, CrossSecondOrderPreserved) {
  // Packets in different seconds keep timestamp order regardless of input order.
  const auto s = sample_of({rst(1002), psh(1001), hs_ack(1000), syn(1000)}, 1030);
  const auto c = classify(s);
  EXPECT_EQ(c.signature, Signature::kPshRst);
}

// ---- Parameterized: every signature recognized under shuffle ----

struct SignatureCase {
  Signature expected;
  std::vector<ObservedPacket> packets;
};

class AllSignatures : public ::testing::TestWithParam<SignatureCase> {};

TEST_P(AllSignatures, RecognizedShuffled) {
  const auto& param = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(param.expected) + 1);
  for (int trial = 0; trial < 20; ++trial) {
    auto shuffled = param.packets;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const auto c = classify(sample_of(shuffled, 1030));
    ASSERT_TRUE(c.possibly_tampered);
    ASSERT_EQ(c.signature, param.expected) << name(param.expected);
    ASSERT_EQ(c.stage, stage_of(param.expected));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AllSignatures,
    ::testing::Values(
        SignatureCase{Signature::kSynNone, {syn(1000)}},
        SignatureCase{Signature::kSynRst, {syn(1000), pkt(1000, kRst, kIsn + 1, 0)}},
        SignatureCase{Signature::kSynRstAck,
                      {syn(1000), pkt(1000, kRst | kAck, kIsn + 1, kSrvAck)}},
        SignatureCase{Signature::kSynRstRstAck,
                      {syn(1000), pkt(1000, kRst, kIsn + 1, 0),
                       pkt(1000, kRst | kAck, kIsn + 1, kSrvAck)}},
        SignatureCase{Signature::kAckNone, {syn(1000), hs_ack(1000)}},
        SignatureCase{Signature::kAckRst, {syn(1000), hs_ack(1000), rst(1000)}},
        SignatureCase{Signature::kAckRstRst,
                      {syn(1000), hs_ack(1000), rst(1000, 5), rst(1000, 6)}},
        SignatureCase{Signature::kAckRstAck, {syn(1000), hs_ack(1000), rst_ack(1000)}},
        SignatureCase{Signature::kAckRstAckRstAck,
                      {syn(1000), hs_ack(1000), rst_ack(1000), rst_ack(1000)}},
        SignatureCase{Signature::kPshNone, {syn(1000), hs_ack(1000), psh(1000)}},
        SignatureCase{Signature::kPshRst,
                      {syn(1000), hs_ack(1000), psh(1000), rst(1000)}},
        SignatureCase{Signature::kPshRstAck,
                      {syn(1000), hs_ack(1000), psh(1000), rst_ack(1000)}},
        SignatureCase{Signature::kPshRstRstAck,
                      {syn(1000), hs_ack(1000), psh(1000), rst(1000), rst_ack(1000)}},
        SignatureCase{Signature::kPshRstAckRstAck,
                      {syn(1000), hs_ack(1000), psh(1000), rst_ack(1000), rst_ack(1000)}},
        SignatureCase{Signature::kPshRstEqRst,
                      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 9), rst(1000, 9)}},
        SignatureCase{Signature::kPshRstNeqRst,
                      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 9), rst(1000, 10)}},
        SignatureCase{Signature::kPshRstRst0,
                      {syn(1000), hs_ack(1000), psh(1000), rst(1000, 9), rst(1000, 0)}},
        SignatureCase{Signature::kDataRst,
                      {syn(1000), hs_ack(1000), psh(1000), psh2(1000), rst(1001)}},
        SignatureCase{Signature::kDataRstAck,
                      {syn(1000), hs_ack(1000), psh(1000), psh2(1000), rst_ack(1001)}}));

}  // namespace
}  // namespace tamper::core
