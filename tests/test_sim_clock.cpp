#include <gtest/gtest.h>

#include "common/sim_clock.h"

namespace tamper::common {
namespace {

TEST(SimClock, EpochIsJan1970Thursday) {
  const CivilTime ct = to_civil(0.0);
  EXPECT_EQ(ct.year, 1970);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 0);
  EXPECT_EQ(ct.weekday, 4);  // Thursday
}

TEST(SimClock, KnownDateJan2023) {
  // 2023-01-12 was a Thursday.
  const SimTime t = from_civil(2023, 1, 12);
  const CivilTime ct = to_civil(t);
  EXPECT_EQ(ct.year, 2023);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 12);
  EXPECT_EQ(ct.weekday, 4);
}

TEST(SimClock, KnownDateSept2022) {
  // 2022-09-13 was a Tuesday.
  EXPECT_EQ(to_civil(from_civil(2022, 9, 13)).weekday, 2);
}

TEST(SimClock, RoundTripWithTimeOfDay) {
  const SimTime t = from_civil(2023, 6, 30, 23, 59, 58);
  const CivilTime ct = to_civil(t);
  EXPECT_EQ(ct.hour, 23);
  EXPECT_EQ(ct.minute, 59);
  EXPECT_EQ(ct.second, 58);
}

TEST(SimClock, LeapYearFeb29) {
  const CivilTime ct = to_civil(from_civil(2024, 2, 29, 12));
  EXPECT_EQ(ct.month, 2);
  EXPECT_EQ(ct.day, 29);
}

TEST(SimClock, DayBoundaryArithmetic) {
  const SimTime t = from_civil(2023, 1, 31, 23, 0, 0) + 2 * kSecondsPerHour;
  const CivilTime ct = to_civil(t);
  EXPECT_EQ(ct.month, 2);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 1);
}

TEST(SimClock, LocalHourAppliesOffset) {
  const SimTime midnight_utc = from_civil(2023, 1, 12);
  EXPECT_NEAR(local_hour(midnight_utc, 0.0), 0.0, 1e-9);
  EXPECT_NEAR(local_hour(midnight_utc, 3.5), 3.5, 1e-9);  // Iran
  EXPECT_NEAR(local_hour(midnight_utc, -6.0), 18.0, 1e-9);
}

TEST(SimClock, LocalHourWrapsAroundDay) {
  const SimTime t = from_civil(2023, 1, 12, 22);
  EXPECT_NEAR(local_hour(t, 8.0), 6.0, 1e-9);  // 22+8=30 -> 6
}

TEST(SimClock, WeekendDetection) {
  // 2023-01-14 was a Saturday, 2023-01-16 a Monday.
  EXPECT_TRUE(is_weekend(from_civil(2023, 1, 14, 12), 0.0));
  EXPECT_TRUE(is_weekend(from_civil(2023, 1, 15, 12), 0.0));
  EXPECT_FALSE(is_weekend(from_civil(2023, 1, 16, 12), 0.0));
}

TEST(SimClock, WeekendRespectsOffset) {
  // Friday 23:00 UTC is already Saturday in UTC+8.
  EXPECT_FALSE(is_weekend(from_civil(2023, 1, 13, 23), 0.0));
  EXPECT_TRUE(is_weekend(from_civil(2023, 1, 13, 23), 8.0));
}

TEST(SimClock, FormatDate) {
  EXPECT_EQ(format_date(from_civil(2023, 1, 12)), "2023-01-12");
  EXPECT_EQ(format_datetime(from_civil(2022, 9, 13, 4, 5, 6)), "2022-09-13 04:05:06");
}

// Round-trip sweep across many dates.
struct DateCase {
  int year, month, day;
};
class CivilRoundTrip : public ::testing::TestWithParam<DateCase> {};

TEST_P(CivilRoundTrip, Holds) {
  const auto& d = GetParam();
  const CivilTime ct = to_civil(from_civil(d.year, d.month, d.day, 7, 8, 9));
  EXPECT_EQ(ct.year, d.year);
  EXPECT_EQ(ct.month, d.month);
  EXPECT_EQ(ct.day, d.day);
  EXPECT_EQ(ct.hour, 7);
}

INSTANTIATE_TEST_SUITE_P(Dates, CivilRoundTrip,
                         ::testing::Values(DateCase{1970, 1, 1}, DateCase{1999, 12, 31},
                                           DateCase{2000, 2, 29}, DateCase{2020, 2, 29},
                                           DateCase{2023, 1, 12}, DateCase{2023, 1, 26},
                                           DateCase{2022, 9, 13}, DateCase{2038, 1, 19},
                                           DateCase{2100, 3, 1}));

}  // namespace
}  // namespace tamper::common
