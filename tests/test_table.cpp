#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/table.h"

namespace tamper::common {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"A", "Long header"});
  table.add_row({"wide value", "x"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| A          | Long header |"), std::string::npos);
  EXPECT_NE(text.find("| wide value | x           |"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream out;
  table.print(out);  // must not crash; missing cells render empty
  EXPECT_NE(out.str().find("| 1 |"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable table({"name", "value"});
  table.add_row({"has,comma", "has\"quote"});
  table.add_row({"plain", "multi\nline"});
  std::ostringstream out;
  table.print_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(csv.find("plain,"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::pct(12.345), "12.3%");
  EXPECT_EQ(TextTable::pct(12.345, 2), "12.35%");
  EXPECT_EQ(TextTable::num(std::nan(""), 2), "n/a");
  EXPECT_EQ(TextTable::pct(std::nan("")), "n/a");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream out;
  print_banner(out, "Table 1");
  EXPECT_NE(out.str().find("Table 1"), std::string::npos);
  EXPECT_NE(out.str().find("===="), std::string::npos);
}

}  // namespace
}  // namespace tamper::common
