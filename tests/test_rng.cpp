#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace tamper::common {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(42);
  const std::uint64_t first = a.next();
  (void)a.next();
  a.reseed(42);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsAlwaysInRange) {
  Rng rng(9);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, GeometricMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.15);  // (1-p)/p = 3
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(37);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(Rng, PickWeightedFollowsWeights) {
  Rng rng(41);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 50000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 50000.0, 0.6, 0.02);
}

TEST(Rng, PickWeightedAllZeroFallsBackToFirst) {
  Rng rng(43);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.pick_weighted(weights), 0u);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(55);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.next(), child2.next());
  // Forking does not perturb the parent's stream.
  Rng parent2(55);
  (void)parent2.next();
  (void)parent.next();  // align
  Rng parent3(55);
  (void)parent3.fork(99);
  EXPECT_EQ(parent3.next(), Rng(55).next());
}

TEST(Rng, ForkByNameIsDeterministic) {
  Rng a(1), b(1);
  EXPECT_EQ(a.fork("geo").next(), b.fork("geo").next());
  EXPECT_NE(a.fork("geo").next(), b.fork("domains").next());
}

TEST(Fnv1a, KnownValues) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.0);
  double total = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfMonotonicallyDecreasing) {
  ZipfSampler zipf(100, 0.9);
  for (std::size_t i = 1; i < zipf.size(); ++i) EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1));
}

TEST(ZipfSampler, SampleMatchesPmf) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(3);
  std::array<int, 50> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), zipf.pmf(0), 0.01);
  EXPECT_NEAR(counts[10] / static_cast<double>(n), zipf.pmf(10), 0.005);
}

// Property sweep: below(n) stays unbiased across a range of moduli.
class RngBelowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowSweep, MeanIsCentered) {
  Rng rng(GetParam() * 7919 + 1);
  const std::uint64_t n = GetParam();
  double sum = 0;
  const int iters = 20000;
  for (int i = 0; i < iters; ++i) sum += static_cast<double>(rng.below(n));
  const double expected = static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(sum / iters, expected, std::max(1.0, expected * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngBelowSweep,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 65536, 1000000));

}  // namespace
}  // namespace tamper::common
