// Hostile-input property suite: seeded corruption campaigns driven through
// PcapReader -> ConnectionSampler -> SignatureClassifier, asserting the
// robustness contract: no crash on any input, flow-table memory stays
// bounded, and flows the faults did not touch classify exactly as in a
// fault-free run.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "analysis/pipeline.h"
#include "capture/sampler.h"
#include "core/classifier.h"
#include "fault/corruptor.h"
#include "fault/injector.h"
#include "net/pcap.h"
#include "world/world.h"

namespace tamper {
namespace {

using namespace net::tcpflag;

constexpr double kStreamStart = 1'700'000'000.25;
constexpr std::size_t kConnections = 66;

const net::IpAddress kServer = net::IpAddress::v4(198, 18, 0, 1);

/// Deterministic clean traffic: graceful, RST-tampered and lone-SYN flows
/// with unique 4-tuples, each connection's packets contiguous in time.
std::vector<net::Packet> build_stream() {
  std::vector<net::Packet> out;
  double t = kStreamStart;
  std::uint16_t ip_id = 100;
  for (std::size_t i = 0; i < kConnections; ++i) {
    const auto client = net::IpAddress::v4(0x0a000000u + static_cast<std::uint32_t>(i));
    const auto sport = static_cast<std::uint16_t>(2000 + i);
    const auto push = [&](std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                          std::size_t payload) {
      net::Packet pkt = net::make_tcp_packet(
          client, sport, kServer, 443, flags, seq, ack,
          std::vector<std::uint8_t>(payload, static_cast<std::uint8_t>('a' + i % 26)));
      pkt.timestamp = t;
      pkt.ip.ttl = 54;
      pkt.ip.ip_id = ip_id++;
      if (flags == kSyn) pkt.tcp.options.push_back(net::TcpOption::mss_opt(1460));
      out.push_back(std::move(pkt));
      t += 0.25;
    };
    switch (i % 3) {
      case 0:  // graceful request/response
        push(kSyn, 1000, 0, 0);
        push(kAck, 1001, 500, 0);
        push(kPsh | kAck, 1001, 500, 40);
        push(kAck, 1041, 700, 0);
        push(kFin | kAck, 1041, 700, 0);
        break;
      case 1:  // injected teardown after the request
        push(kSyn, 2000, 0, 0);
        push(kAck, 2001, 900, 0);
        push(kPsh | kAck, 2001, 900, 30);
        push(kRst, 2031, 0, 0);
        push(kRst, 2031, 0, 0);
        break;
      default:  // lone SYN (SYN -> nothing)
        push(kSyn, 3000, 0, 0);
        break;
    }
    t += 2.0;
  }
  return out;
}

double stream_end(const std::vector<net::Packet>& stream) {
  return stream.back().timestamp + 120.0;
}

std::string to_pcap(const std::vector<fault::TimedFrame>& frames) {
  std::ostringstream out(std::ios::binary);
  net::PcapWriter writer(out);
  for (const auto& f : frames) writer.write_raw(f.timestamp, f.bytes);
  return out.str();
}

std::vector<fault::TimedFrame> serialize_stream(const std::vector<net::Packet>& stream) {
  std::vector<fault::TimedFrame> frames;
  frames.reserve(stream.size());
  for (const auto& pkt : stream) frames.push_back({pkt.timestamp, net::serialize(pkt)});
  return frames;
}

std::string flow_key(const net::IpAddress& client, std::uint16_t client_port,
                     const net::IpAddress& server, std::uint16_t server_port) {
  return client.to_string() + ":" + std::to_string(client_port) + ">" +
         server.to_string() + ":" + std::to_string(server_port);
}

std::string flow_key(const capture::ConnectionSample& s) {
  return flow_key(s.client_ip, s.client_port, s.server_ip, s.server_port);
}

std::string verdict_of(const core::SignatureClassifier& classifier,
                       const capture::ConnectionSample& s) {
  const core::Classification c = classifier.classify(s);
  std::string v = c.possibly_tampered ? "tampered/" : "clean/";
  v += c.signature ? std::string(core::name(*c.signature)) : "-";
  v += "/";
  v += core::name(c.stage);
  v += c.timeout ? "/timeout" : "";
  v += c.graceful ? "/graceful" : "";
  return v;
}

struct RunResult {
  std::map<std::string, std::string> verdicts;          // flow key -> verdict
  std::map<std::string, std::size_t> packet_counts;     // flow key -> packets
  capture::ConnectionSampler::Stats sampler_stats;
  net::PcapReader::Stats reader_stats;
  std::size_t max_open_flows = 0;
  bool reader_ok = true;
};

/// Drive pcap bytes through the full lenient ingest path.
RunResult run_ingest(const std::string& pcap_bytes, std::size_t max_flows, double end) {
  RunResult result;
  std::istringstream in(pcap_bytes, std::ios::binary);
  net::PcapReader reader(in, net::PcapReadMode::kLenient);
  result.reader_ok = reader.ok();
  capture::ConnectionSampler::Config config;
  config.sample_one_in = 1;
  config.flow_idle_timeout = 1e9;  // idle eviction off: overload only
  config.max_flows = max_flows;
  capture::ConnectionSampler sampler(config);
  while (auto pkt = reader.next()) {
    sampler.on_packet(*pkt, pkt->timestamp);
    result.max_open_flows = std::max(result.max_open_flows, sampler.open_flows());
  }
  const core::SignatureClassifier classifier;
  for (const auto& sample : sampler.flush_all(end)) {
    result.verdicts[flow_key(sample)] = verdict_of(classifier, sample);
    result.packet_counts[flow_key(sample)] = sample.packets.size();
  }
  result.sampler_stats = sampler.stats();
  result.reader_stats = reader.stats();
  return result;
}

class FaultCampaigns : public ::testing::Test {
 protected:
  void SetUp() override {
    stream_ = build_stream();
    end_ = stream_end(stream_);
    clean_pcap_ = to_pcap(serialize_stream(stream_));
    baseline_ = run_ingest(clean_pcap_, 1 << 16, end_);
    ASSERT_EQ(baseline_.verdicts.size(), kConnections);
    ASSERT_EQ(baseline_.reader_stats.skipped_unparseable, 0u);
  }

  std::vector<net::Packet> stream_;
  double end_ = 0.0;
  std::string clean_pcap_;
  RunResult baseline_;
};

// ---- Campaign 1: byte-level file corruption (60 seeds) ------------------

TEST_F(FaultCampaigns, CorruptedPcapFilesNeverCrashTheIngestPath) {
  const std::vector<std::uint8_t> clean(clean_pcap_.begin(), clean_pcap_.end());
  std::uint64_t campaigns_with_packets = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    fault::PcapCorruptor corruptor(seed);
    const auto corrupted = corruptor.corrupt(clean);
    RunResult r;
    ASSERT_NO_THROW(r = run_ingest(std::string(corrupted.begin(), corrupted.end()),
                                   /*max_flows=*/256, end_))
        << "campaign seed " << seed;
    EXPECT_LE(r.max_open_flows, 256u) << "campaign seed " << seed;
    if (!r.verdicts.empty()) ++campaigns_with_packets;
  }
  // Most corruptions are local: the lenient reader must keep recovering
  // flows from the rest of the file, not give up wholesale.
  EXPECT_GE(campaigns_with_packets, 40u);
}

TEST_F(FaultCampaigns, CorruptorIsDeterministicPerSeed) {
  const std::vector<std::uint8_t> clean(clean_pcap_.begin(), clean_pcap_.end());
  fault::PcapCorruptor a(7), b(7), c(8);
  EXPECT_EQ(a.corrupt(clean), b.corrupt(clean));
  EXPECT_NE(a.corrupt(clean), c.corrupt(clean));  // overwhelmingly likely
  EXPECT_GT(a.summary().tail_truncations + a.summary().absurd_lengths +
                a.summary().byte_flips + a.summary().garbage_insertions +
                a.summary().global_header_truncations,
            0u);
}

// ---- Campaign 2: stream-level faults, invariance on untouched flows -----

TEST_F(FaultCampaigns, UnfaultedFlowsClassifyIdenticallyUnderStreamFaults) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    fault::FaultInjector::Config config;  // defaults: all frame faults on, no flood
    fault::FaultInjector injector(seed, config);
    const auto frames = injector.run(stream_);
    RunResult r;
    ASSERT_NO_THROW(r = run_ingest(to_pcap(frames), /*max_flows=*/1 << 16, end_))
        << "campaign seed " << seed;
    EXPECT_EQ(r.sampler_stats.flows_evicted_overload, 0u);

    std::size_t unfaulted = 0;
    for (const auto& [key, verdict] : baseline_.verdicts) {
      const net::Packet& opener = *std::find_if(
          stream_.begin(), stream_.end(), [&](const net::Packet& p) {
            return flow_key(p.src, p.tcp.src_port, p.dst, p.tcp.dst_port) == key;
          });
      if (injector.flow_is_faulted(opener.src, opener.tcp.src_port, opener.dst,
                                   opener.tcp.dst_port))
        continue;
      ++unfaulted;
      ASSERT_TRUE(r.verdicts.contains(key)) << "seed " << seed << " lost flow " << key;
      EXPECT_EQ(r.verdicts.at(key), verdict) << "seed " << seed << " flow " << key;
      EXPECT_EQ(r.packet_counts.at(key), baseline_.packet_counts.at(key))
          << "seed " << seed << " flow " << key;
    }
    EXPECT_GT(unfaulted, kConnections / 3) << "seed " << seed;
  }
}

// ---- Campaign 3: SYN floods against the flow table (5 seeds) ------------

TEST_F(FaultCampaigns, SynFloodNeverGrowsTablePastMaxFlows) {
  constexpr std::size_t kMaxFlows = 128;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    fault::FaultInjector::Config config;
    config.flow_fault_fraction = 0.0;  // only the flood, no frame mutations
    config.flood_burst_probability = 0.6;
    config.flood_burst_size = 96;
    fault::FaultInjector injector(seed, config);
    const auto frames = injector.run(stream_);
    ASSERT_GT(injector.stats().flood_syns, kMaxFlows);

    RunResult r;
    ASSERT_NO_THROW(r = run_ingest(to_pcap(frames), kMaxFlows, end_))
        << "campaign seed " << seed;
    EXPECT_LE(r.max_open_flows, kMaxFlows) << "campaign seed " << seed;
    EXPECT_GT(r.sampler_stats.flows_evicted_overload, 0u) << "campaign seed " << seed;

    // Flows that reached two packets are out of the SYN-flood eviction
    // class: the flood must not change what they classify as.
    for (const auto& [key, verdict] : baseline_.verdicts) {
      if (baseline_.packet_counts.at(key) < 2) continue;
      ASSERT_TRUE(r.verdicts.contains(key)) << "seed " << seed << " lost flow " << key;
      EXPECT_EQ(r.verdicts.at(key), verdict) << "seed " << seed << " flow " << key;
    }
  }
}

TEST(SynFloodDirect, BoundedTableAndAccounting) {
  capture::ConnectionSampler::Config config;
  config.sample_one_in = 1;
  config.max_flows = 64;
  capture::ConnectionSampler sampler(config);
  const auto flood = fault::make_syn_flood(99, 5000, kServer, 443, 1000.0);
  ASSERT_EQ(flood.size(), 5000u);
  for (const auto& syn : flood) {
    sampler.on_packet(syn, syn.timestamp);
    ASSERT_LE(sampler.open_flows(), 64u);
  }
  EXPECT_EQ(sampler.stats().flows_evicted_overload,
            sampler.stats().connections_sampled - 64);
  const auto samples = sampler.flush_all(2000.0);
  EXPECT_EQ(samples.size(), sampler.stats().connections_sampled);
}

// ---- Reader hardening units ---------------------------------------------

TEST(PcapHardening, HostileInclLenIsSkippedNotAllocated) {
  // header + good record A + record with incl_len 0xFFFFFFFF (frame bytes
  // of a normal packet) + good record C.
  net::Packet pkt = net::make_tcp_packet(net::IpAddress::v4(10, 0, 0, 1), 4000, kServer,
                                         443, kSyn, 7, 0);
  pkt.timestamp = kStreamStart;
  std::ostringstream out(std::ios::binary);
  net::PcapWriter writer(out);
  writer.write(pkt);
  writer.write(pkt);
  writer.write(pkt);
  std::string blob = out.str();
  const std::size_t frame_len = net::serialize(pkt).size();
  const std::size_t record_b = 24 + (16 + frame_len);
  for (std::size_t i = 0; i < 4; ++i) blob[record_b + 8 + i] = '\xff';  // incl_len

  {
    std::istringstream in(blob, std::ios::binary);
    net::PcapReader reader(in, net::PcapReadMode::kLenient);
    EXPECT_TRUE(reader.next().has_value());   // A
    EXPECT_TRUE(reader.next().has_value());   // C, after resync past B
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.stats().skipped_oversize, 1u);
    EXPECT_EQ(reader.stats().resyncs, 1u);
    EXPECT_EQ(reader.frames_read(), 2u);
  }
  {
    std::istringstream in(blob, std::ios::binary);
    net::PcapReader reader(in, net::PcapReadMode::kStrict);
    EXPECT_TRUE(reader.next().has_value());
    EXPECT_THROW(reader.next(), std::runtime_error);
  }
}

TEST(PcapHardening, LenientReaderReportsBadHeaderInsteadOfThrowing) {
  std::istringstream empty("", std::ios::binary);
  net::PcapReader r1(empty, net::PcapReadMode::kLenient);
  EXPECT_FALSE(r1.ok());
  EXPECT_FALSE(r1.next().has_value());

  std::istringstream junk(std::string("\x00\x01\x02\x03junkjunkjunkjunkjunk", 24),
                          std::ios::binary);
  net::PcapReader r2(junk, net::PcapReadMode::kLenient);
  EXPECT_FALSE(r2.ok());
  EXPECT_FALSE(r2.next().has_value());
  EXPECT_FALSE(r2.error().empty());
}

TEST(PacketHardening, GarbageTcpOptionLengthsRejected) {
  net::Packet pkt = net::make_tcp_packet(net::IpAddress::v4(10, 0, 0, 1), 4000, kServer,
                                         443, kSyn, 1, 0);
  pkt.tcp.options.push_back(net::TcpOption::mss_opt(1460));
  auto bytes = net::serialize(pkt);
  // data offset already covers options; plant a hostile length in the
  // option block and confirm parse() refuses rather than over-reads.
  const std::size_t l4 = static_cast<std::size_t>(bytes[0] & 0x0f) * 4;
  bytes[l4 + 21] = 0xff;  // MSS option length 4 -> 255
  EXPECT_FALSE(net::parse(bytes).has_value());
  bytes[l4 + 21] = 0x01;  // below the 2-byte minimum: must not loop forever
  EXPECT_FALSE(net::parse(bytes).has_value());
}

// ---- Pipeline degradation accounting ------------------------------------

TEST(PipelineDegraded, IngestIsNothrowAndCountsEmptySamples) {
  world::World world;
  analysis::Pipeline pipeline(world);
  capture::ConnectionSample empty;
  pipeline.ingest(empty);  // noexcept; must not crash
  EXPECT_EQ(pipeline.degraded().empty_samples, 1u);
  EXPECT_EQ(pipeline.degraded().ingest_errors, 0u);

  net::PcapReader::Stats rs;
  rs.skipped_oversize = 3;
  rs.skipped_truncated = 2;
  rs.skipped_unparseable = 5;
  pipeline.record_reader_stats(rs);
  capture::ConnectionSampler::Stats ss;
  ss.packets_malformed = 7;
  ss.flows_evicted_overload = 4;
  pipeline.record_sampler_stats(ss);
  EXPECT_EQ(pipeline.degraded().oversize_frames, 3u);
  EXPECT_EQ(pipeline.degraded().truncated_frames, 2u);
  EXPECT_EQ(pipeline.degraded().unparseable_frames, 5u);
  EXPECT_EQ(pipeline.degraded().malformed_packets, 7u);
  EXPECT_EQ(pipeline.degraded().overload_evicted, 4u);
  EXPECT_EQ(pipeline.degraded().total(), 1u + 3 + 2 + 5 + 7 + 4);
}

}  // namespace
}  // namespace tamper
