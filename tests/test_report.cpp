#include <gtest/gtest.h>

#include <sstream>

#include "analysis/injector.h"
#include "analysis/report.h"
#include "common/json.h"
#include "world/traffic.h"

namespace tamper {
namespace {

using namespace net::tcpflag;

// ---- JsonWriter ----

TEST(Json, ObjectAndArrayShapes) {
  std::ostringstream out;
  common::JsonWriter json(out, /*pretty=*/false);
  json.begin_object();
  json.kv("name", "value");
  json.kv("count", std::uint64_t{3});
  json.kv("ratio", 0.5);
  json.kv("flag", true);
  json.key("list");
  json.begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.end_array();
  json.key("nothing").null();
  json.end_object();
  EXPECT_EQ(out.str(),
            R"({"name":"value","count":3,"ratio":0.5,"flag":true,"list":[1,2],"nothing":null})");
}

TEST(Json, StringEscaping) {
  std::ostringstream out;
  common::JsonWriter json(out, false);
  json.begin_array();
  json.value("quote\" slash\\ nl\n tab\t ctrl\x01");
  json.end_array();
  EXPECT_EQ(out.str(), "[\"quote\\\" slash\\\\ nl\\n tab\\t ctrl\\u0001\"]");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  common::JsonWriter json(out, false);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(Json, EmptyContainers) {
  std::ostringstream out;
  common::JsonWriter json(out, false);
  json.begin_object();
  json.key("a");
  json.begin_array();
  json.end_array();
  json.key("o");
  json.begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(out.str(), R"({"a":[],"o":{}})");
}

TEST(Json, PrettyPrintingIndents) {
  std::ostringstream out;
  common::JsonWriter json(out, true);
  json.begin_object();
  json.kv("k", std::uint64_t{1});
  json.end_object();
  EXPECT_EQ(out.str(), "{\n  \"k\": 1\n}");
}

// ---- Radar report ----

TEST(RadarReport, ValidShapeAndAggregatesOnly) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x3e9;
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);
  pipeline.run(generator, 4000);

  std::ostringstream out;
  analysis::ReportOptions options;
  options.min_country_connections = 100;
  analysis::write_radar_report(out, pipeline, options);
  const std::string report = out.str();

  EXPECT_NE(report.find("\"schema\": \"tamper-radar/1\""), std::string::npos);
  EXPECT_NE(report.find("\"global\""), std::string::npos);
  EXPECT_NE(report.find("\"degraded_input\""), std::string::npos);
  EXPECT_NE(report.find("\"signatures\""), std::string::npos);
  EXPECT_NE(report.find("\"countries\""), std::string::npos);
  EXPECT_NE(report.find("SYNACK->NONE"), std::string::npos);
  // Privacy posture: no client addresses and no domain names leak.
  // (Client space is 11.0.0.0/8; a dotted-quad string would betray it.)
  for (const char* leak : {"\"11.", "client_ip", ".com\"", ".net\"", ".org\""})
    EXPECT_EQ(report.find(leak), std::string::npos) << leak;
  // Braces balance (cheap well-formedness check).
  EXPECT_EQ(std::count(report.begin(), report.end(), '{'),
            std::count(report.begin(), report.end(), '}'));
  EXPECT_EQ(std::count(report.begin(), report.end(), '['),
            std::count(report.begin(), report.end(), ']'));
}

// Reproducibility gate: two independent runs from the same seed must
// serialize to byte-identical reports. This is what tamperlint rule R2
// protects — any unordered-container iteration leaking into emission
// would show up here as a flaky byte diff.
TEST(RadarReport, ByteStableAcrossIdenticalRuns) {
  auto render = [] {
    world::World world;
    world::TrafficConfig traffic;
    traffic.seed = 0x5eed;
    world::TrafficGenerator generator(world, traffic);
    analysis::Pipeline pipeline(world);
    pipeline.run(generator, 3000);
    std::ostringstream out;
    analysis::ReportOptions options;
    options.min_country_connections = 50;
    options.include_timeseries = true;
    analysis::write_radar_report(out, pipeline, options);
    return out.str();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(RadarReport, AggregationFloorSuppressesSmallCountries) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x3ea;
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);
  pipeline.run(generator, 1500);

  std::ostringstream strict;
  analysis::ReportOptions high_floor;
  high_floor.min_country_connections = 1'000'000;
  high_floor.include_timeseries = false;
  analysis::write_radar_report(strict, pipeline, high_floor);
  EXPECT_NE(strict.str().find("\"countries\": []"), std::string::npos);
}

// ---- Injector distance ----

capture::ObservedPacket obs(std::uint8_t flags, std::uint8_t ttl, std::int64_t ts = 1000) {
  capture::ObservedPacket p;
  p.flags = flags;
  p.ttl = ttl;
  p.seq = flags == kSyn ? 100 : 101;
  p.ts_sec = ts;
  return p;
}

TEST(InjectorDistance, EstimatesFromTtlConstants) {
  capture::ConnectionSample sample;
  // Client: initial TTL 64, 14 hops away -> arrives with 50.
  // Injector: initial TTL 64, 6 hops from the server -> RST arrives with 58.
  sample.packets = {obs(kSyn, 50), obs(kAck, 50), obs(kRst, 58)};
  sample.observation_end_sec = 1030;
  const auto classification = core::SignatureClassifier{}.classify(sample);
  ASSERT_TRUE(classification.possibly_tampered);
  const auto distance = analysis::estimate_injector_distance(sample, classification);
  ASSERT_TRUE(distance.has_value());
  EXPECT_EQ(distance->client_hops, 14);
  EXPECT_EQ(distance->injector_hops, 6);
  EXPECT_NEAR(distance->relative_position(), 6.0 / 14.0, 1e-9);
}

TEST(InjectorDistance, HandlesDifferentInitialConstants) {
  capture::ConnectionSample sample;
  // Windows client (128) 20 hops out; injector stack at 255, 9 hops out.
  sample.packets = {obs(kSyn, 108), obs(kAck, 108), obs(kRst | kAck, 246)};
  sample.observation_end_sec = 1030;
  const auto classification = core::SignatureClassifier{}.classify(sample);
  const auto distance = analysis::estimate_injector_distance(sample, classification);
  ASSERT_TRUE(distance.has_value());
  EXPECT_EQ(distance->client_hops, 20);
  EXPECT_EQ(distance->injector_hops, 9);
}

TEST(InjectorDistance, RejectsImplausibleTtls) {
  capture::ConnectionSample sample;
  // TTL 160 is >31 below the next constant (255): randomized injector.
  sample.packets = {obs(kSyn, 50), obs(kAck, 50), obs(kRst, 160)};
  sample.observation_end_sec = 1030;
  const auto classification = core::SignatureClassifier{}.classify(sample);
  EXPECT_FALSE(analysis::estimate_injector_distance(sample, classification).has_value());
}

TEST(InjectorDistance, NoTeardownNoEstimate) {
  capture::ConnectionSample sample;
  sample.packets = {obs(kSyn, 50)};
  sample.observation_end_sec = 1030;
  const auto classification = core::SignatureClassifier{}.classify(sample);
  ASSERT_TRUE(classification.possibly_tampered);  // SYN -> nothing
  EXPECT_FALSE(analysis::estimate_injector_distance(sample, classification).has_value());
}

TEST(InjectorDistance, HopsFromInitialTtlHelper) {
  EXPECT_EQ(analysis::hops_from_initial_ttl(64), 0);
  EXPECT_EQ(analysis::hops_from_initial_ttl(50), 14);
  EXPECT_EQ(analysis::hops_from_initial_ttl(120), 8);
  EXPECT_EQ(analysis::hops_from_initial_ttl(250), 5);
  EXPECT_EQ(analysis::hops_from_initial_ttl(30), 2);   // 32-based
  EXPECT_FALSE(analysis::hops_from_initial_ttl(180).has_value());
}

TEST(InjectorDistance, OnSimulatedCensoredTraffic) {
  // Middlebox sits at hop 5 of 14 from the client, i.e. 9 hops from the
  // server vs the client's 14: relative position ~0.64.
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x1d7;
  world::TrafficGenerator generator(world, traffic);
  core::SignatureClassifier classifier;
  int estimates = 0;
  double positions = 0.0;
  generator.generate(6000, [&](world::LabeledConnection&& conn) {
    if (!conn.truth.tampered) return;
    const auto classification = classifier.classify(conn.sample);
    const auto distance = analysis::estimate_injector_distance(conn.sample, classification);
    if (!distance) return;
    ++estimates;
    positions += distance->relative_position();
  });
  ASSERT_GT(estimates, 50);
  const double mean_position = positions / estimates;
  EXPECT_GT(mean_position, 0.3);  // mid-path, not at the server
  EXPECT_LT(mean_position, 1.1);
}

}  // namespace
}  // namespace tamper
