// Strong ID suite: TaggedId laws (explicit construction, comparison, hash),
// the one "prefix:<n>" rendering, strict parse grammar (parse_id /
// parse_scope), the emap-style Inventory interner, the canonical country
// inventory, and the byte-identity proof that strong ids at the API surface
// left the partial-envelope and snapshot encodings untouched: the v3
// envelope is reconstructed field-by-field with raw writers and compared
// byte-for-byte against encode_partial().
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/pipeline.h"
#include "common/binio.h"
#include "common/ids.h"
#include "fleet/partial.h"
#include "world/countries.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper {
namespace {

using common::AsnId;
using common::CountryId;
using common::DomainId;
using common::EpochId;
using common::FlowId;
using common::PopId;
using common::ShardId;

TEST(TaggedIdTest, ComparisonDelegatesToRep) {
  const PopId a(3), b(7), c(3);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LE(a, c);
  EXPECT_GT(b, a);
  EXPECT_GE(c, a);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(PopId{}.value(), 0u);  // default is the zero id
}

TEST(TaggedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_convertible_v<PopId, ShardId>);
  static_assert(!std::is_convertible_v<std::uint32_t, PopId>);
  static_assert(!std::is_convertible_v<PopId, std::uint32_t>);
  static_assert(sizeof(PopId) == sizeof(std::uint32_t));  // zero overhead
  static_assert(sizeof(EpochId) == sizeof(std::uint64_t));
}

TEST(TaggedIdTest, HashMatchesRepAndFeedsUnorderedContainers) {
  EXPECT_EQ(std::hash<FlowId>{}(FlowId(99)), std::hash<std::uint64_t>{}(99));
  std::unordered_set<AsnId> set;
  set.insert(AsnId(13335));
  set.insert(AsnId(13335));
  set.insert(AsnId(15169));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(AsnId(13335)));
  EXPECT_FALSE(set.contains(AsnId(1)));
}

TEST(TaggedIdTest, FormatAndStreamAgree) {
  EXPECT_EQ(common::format(PopId(3)), "pop:3");
  EXPECT_EQ(common::format(AsnId(13335)), "asn:13335");
  EXPECT_EQ(common::format(EpochId(0)), "epoch:0");
  EXPECT_EQ(common::format(CountryId(12)), "country:12");
  EXPECT_EQ(common::format(DomainId(5)), "domain:5");
  EXPECT_EQ(common::format(ShardId(2)), "shard:2");
  EXPECT_EQ(common::format(FlowId(1)), "flow:1");
  std::ostringstream out;
  out << PopId(3) << ' ' << EpochId(17);
  EXPECT_EQ(out.str(), "pop:3 epoch:17");
}

TEST(ParseIdTest, AcceptsBareAndRenderedForms) {
  EXPECT_EQ(common::parse_id<PopId>("3"), PopId(3));
  EXPECT_EQ(common::parse_id<PopId>("pop:3"), PopId(3));
  EXPECT_EQ(common::parse_id<EpochId>("epoch:17"), EpochId(17));
  EXPECT_EQ(common::parse_id<EpochId>("18446744073709551615"),
            EpochId(~std::uint64_t{0}));
}

TEST(ParseIdTest, RejectsJunkSignsOverflowAndForeignPrefixes) {
  EXPECT_FALSE(common::parse_id<PopId>(""));
  EXPECT_FALSE(common::parse_id<PopId>("pop:"));
  EXPECT_FALSE(common::parse_id<PopId>("pop:x7"));
  EXPECT_FALSE(common::parse_id<PopId>("-1"));
  EXPECT_FALSE(common::parse_id<PopId>("+3"));
  EXPECT_FALSE(common::parse_id<PopId>("3 "));
  EXPECT_FALSE(common::parse_id<PopId>("0x10"));
  EXPECT_FALSE(common::parse_id<PopId>("asn:3"));     // wrong taxonomy word
  EXPECT_FALSE(common::parse_id<PopId>("4294967296"));  // > u32 rep
  EXPECT_FALSE(common::parse_id<EpochId>("18446744073709551616"));  // > u64
  EXPECT_FALSE(common::parse_id<EpochId>("184467440737095516150"));  // 21 digits
}

TEST(ParseScopeTest, GrammarIsExactlyLocalFleetPop) {
  const auto local = common::parse_scope("local");
  ASSERT_TRUE(local);
  EXPECT_EQ(local->kind, common::ScopeName::Kind::kLocal);
  EXPECT_EQ(local->str(), "local");

  const auto fleet = common::parse_scope("fleet");
  ASSERT_TRUE(fleet);
  EXPECT_EQ(fleet->kind, common::ScopeName::Kind::kFleet);
  EXPECT_EQ(fleet->str(), "fleet");

  const auto pop = common::parse_scope("pop:7");
  ASSERT_TRUE(pop);
  EXPECT_EQ(pop->kind, common::ScopeName::Kind::kPop);
  EXPECT_EQ(pop->pop, PopId(7));
  EXPECT_EQ(pop->str(), "pop:7");  // round-trips through str()
  EXPECT_EQ(*common::parse_scope(pop->str()), *pop);

  EXPECT_FALSE(common::parse_scope(""));
  EXPECT_FALSE(common::parse_scope("Local"));
  EXPECT_FALSE(common::parse_scope("pop:"));
  EXPECT_FALSE(common::parse_scope("pop:abc"));
  EXPECT_FALSE(common::parse_scope("pop7"));
  EXPECT_FALSE(common::parse_scope("shard:7"));
}

TEST(InventoryTest, InternHandsOutDenseIdsInOrder) {
  common::DomainInventory inv;
  EXPECT_TRUE(inv.empty());
  const DomainId a = inv.intern("example.com");
  const DomainId b = inv.intern("blocked.example");
  EXPECT_EQ(a, DomainId(0));
  EXPECT_EQ(b, DomainId(1));
  EXPECT_EQ(inv.intern("example.com"), a);  // idempotent
  EXPECT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv.names(), (std::vector<std::string>{"example.com", "blocked.example"}));
}

TEST(InventoryTest, ResolvesBothWaysAndRefusesUnknownIds) {
  common::DomainInventory inv({"a.example", "b.example"});
  EXPECT_EQ(inv.try_id("a.example"), DomainId(0));
  EXPECT_EQ(inv.try_id("missing.example"), std::nullopt);
  EXPECT_EQ(inv.size(), 2u);  // try_id never interns
  EXPECT_EQ(inv.name(DomainId(1)), "b.example");
  EXPECT_EQ(inv.try_name(DomainId(1)), "b.example");
  EXPECT_EQ(inv.try_name(DomainId(2)), std::nullopt);
  EXPECT_THROW(inv.name(DomainId(2)), std::out_of_range);
}

TEST(InventoryTest, SortedEnumerationIsIndependentOfInternOrder) {
  common::DomainInventory forward, reverse;
  const std::vector<std::string> names = {"zz.example", "aa.example", "mm.example"};
  for (const auto& n : names) forward.intern(n);
  for (auto it = names.rbegin(); it != names.rend(); ++it) reverse.intern(*it);

  const auto fs = forward.sorted();
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].first, "aa.example");
  EXPECT_EQ(fs[1].first, "mm.example");
  EXPECT_EQ(fs[2].first, "zz.example");
  // Same name order either way; ids differ because intern order differs.
  const auto rs = reverse.sorted();
  for (std::size_t i = 0; i < fs.size(); ++i) EXPECT_EQ(fs[i].first, rs[i].first);
  EXPECT_EQ(fs[2].second, DomainId(0));  // zz interned first going forward
  EXPECT_EQ(rs[2].second, DomainId(2));  // ...and last going in reverse
}

TEST(InventoryTest, CountryInventoryMatchesCountryIndex) {
  const common::CountryInventory& inv = world::country_inventory();
  ASSERT_FALSE(inv.empty());
  for (const auto& [code, id] : inv.sorted()) {
    EXPECT_EQ(static_cast<int>(id.value()), world::country_index(code)) << code;
    EXPECT_EQ(inv.name(id), code);
  }
  EXPECT_EQ(inv.try_id("ZZ"), std::nullopt);
}

const world::World& shared_world() {
  static const world::World kWorld{
      world::WorldConfig{.domains = {.domain_count = 2'000}, .seed = 0x1d5}};
  return kWorld;
}

void load_pipeline(analysis::Pipeline& pipeline) {
  world::TrafficConfig traffic;
  traffic.seed = 0xabcd;
  world::TrafficGenerator generator(shared_world(), traffic);
  generator.generate(400, [&](world::LabeledConnection&& conn) {
    pipeline.ingest(conn.sample);
  });
}

// The byte-identity contract from common/ids.h: strong ids live at the API
// surface only. The v3 envelope written through PartialHeader's PopId /
// EpochId fields must equal the envelope assembled from raw u32/u64 writes.
TEST(ByteIdentityTest, PartialEnvelopeV3MatchesRawFieldEncoding) {
  analysis::Pipeline pipeline(shared_world());
  load_pipeline(pipeline);
  fleet::PartialHeader header;
  header.pop = PopId(7);
  header.epoch = EpochId(465'191);
  header.sequence = 400;
  const std::string image = fleet::encode_partial(header, pipeline);

  common::BinWriter payload;
  pipeline.snapshot(payload);
  common::BinWriter raw;
  for (char c : fleet::kPartialMagic) raw.u8(static_cast<std::uint8_t>(c));
  raw.u32(fleet::kPartialVersion);
  raw.u32(7);        // pop, raw — not PopId
  raw.u64(465'191);  // epoch, raw — not EpochId
  raw.u64(400);      // sequence
  raw.u8(0);         // overload level kNormal
  raw.u64(0);        // shed_samples
  raw.i64(0);        // first_shed_ts_sec
  raw.u64(payload.bytes().size());
  std::string expected(raw.bytes().begin(), raw.bytes().end());
  expected.append(reinterpret_cast<const char*>(payload.bytes().data()),
                  payload.bytes().size());
  common::BinWriter checksum;
  checksum.u64(common::fnv1a_bytes(payload.bytes().data(), payload.bytes().size()));
  expected.append(reinterpret_cast<const char*>(checksum.bytes().data()),
                  checksum.bytes().size());

  EXPECT_EQ(image, expected);

  const fleet::DecodeResult peek = fleet::peek_partial(image);
  ASSERT_TRUE(peek.ok) << peek.error;
  EXPECT_EQ(peek.header.pop, PopId(7));
  EXPECT_EQ(peek.header.epoch, EpochId(465'191));
  EXPECT_EQ(peek.header.sequence, 400u);
}

// Snapshot streams (the payload of both partials and checkpoints) key
// aggregates on AsnId / FlowId now; the map ordering delegates to the raw
// rep, so snapshot -> restore -> snapshot is still byte-stable.
TEST(ByteIdentityTest, SnapshotRoundTripIsByteStableUnderStrongKeys) {
  analysis::Pipeline pipeline(shared_world());
  load_pipeline(pipeline);
  common::BinWriter first;
  pipeline.snapshot(first);

  analysis::Pipeline restored(shared_world());
  common::BinReader reader(first.bytes().data(), first.bytes().size());
  restored.restore(reader);
  EXPECT_TRUE(reader.exhausted());

  common::BinWriter second;
  restored.snapshot(second);
  EXPECT_EQ(first.bytes(), second.bytes());
}

}  // namespace
}  // namespace tamper
