#include <gtest/gtest.h>

#include <set>

#include "net/ip_address.h"

namespace tamper::net {
namespace {

TEST(IpAddress, V4Construction) {
  const IpAddress a = IpAddress::v4(192, 168, 1, 2);
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.v4_value(), 0xc0a80102u);
  EXPECT_EQ(a.to_string(), "192.168.1.2");
}

TEST(IpAddress, V4FromHostOrderValue) {
  EXPECT_EQ(IpAddress::v4(0x01020304).to_string(), "1.2.3.4");
}

TEST(IpAddress, V6Construction) {
  const IpAddress a = IpAddress::v6(0x20010db800000000ULL, 0x1ULL);
  EXPECT_TRUE(a.is_v6());
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

TEST(IpAddress, ParseV4) {
  const auto a = IpAddress::parse("10.0.255.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.0.255.1");
}

TEST(IpAddress, ParseV4Rejections) {
  EXPECT_FALSE(IpAddress::parse("10.0.0").has_value());
  EXPECT_FALSE(IpAddress::parse("10.0.0.256").has_value());
  EXPECT_FALSE(IpAddress::parse("10.0.0.1.2").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
}

TEST(IpAddress, ParseV6Forms) {
  EXPECT_EQ(IpAddress::parse("::")->to_string(), "::");
  EXPECT_EQ(IpAddress::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("2001:db8::1")->to_string(), "2001:db8::1");
  EXPECT_EQ(IpAddress::parse("fe80::1:2:3:4")->to_string(), "fe80::1:2:3:4");
  EXPECT_EQ(IpAddress::parse("1:2:3:4:5:6:7:8")->to_string(), "1:2:3:4:5:6:7:8");
}

TEST(IpAddress, ParseV6Rejections) {
  EXPECT_FALSE(IpAddress::parse("1:2:3").has_value());
  EXPECT_FALSE(IpAddress::parse("::1::2").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("gggg::1").has_value());
}

TEST(IpAddress, Rfc5952CompressesLongestZeroRun) {
  // Two zero runs (len 2 and len 3): the longer one is compressed.
  EXPECT_EQ(IpAddress::parse("2001:0:0:1:0:0:0:1")->to_string(), "2001:0:0:1::1");
  // A single zero group is not compressed.
  EXPECT_EQ(IpAddress::parse("2001:db8:0:1:1:1:1:1")->to_string(),
            "2001:db8:0:1:1:1:1:1");
}

TEST(IpAddress, OrderingAndEquality) {
  const IpAddress a = IpAddress::v4(1, 2, 3, 4);
  const IpAddress b = IpAddress::v4(1, 2, 3, 5);
  EXPECT_EQ(a, IpAddress::v4(1, 2, 3, 4));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(IpAddress, HashSpreads) {
  std::set<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) hashes.insert(IpAddress::v4(i).hash());
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(IpAddress, V4AndV6WithSameBytesDiffer) {
  // IPv4-mapped bytes interpreted as v6 must not compare equal to the v4.
  const IpAddress v4 = IpAddress::v4(1, 2, 3, 4);
  const IpAddress v6 = IpAddress::v6(v4.bytes());
  EXPECT_NE(v4, v6);
  EXPECT_NE(v4.hash(), v6.hash());
}

TEST(IpPrefix, ContainsV4) {
  const auto prefix = IpPrefix::parse("10.1.0.0/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(*IpAddress::parse("10.1.255.255")));
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("10.2.0.0")));
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("2001:db8::1")));
}

TEST(IpPrefix, ContainsNonByteAlignedLength) {
  const auto prefix = IpPrefix::parse("192.168.0.0/13");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(*IpAddress::parse("192.175.0.1")));   // within /13
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("192.176.0.1")));  // outside
}

TEST(IpPrefix, ContainsV6) {
  const auto prefix = IpPrefix::parse("2400:1::/32");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(*IpAddress::parse("2400:1:ffff::9")));
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("2400:2::9")));
}

TEST(IpPrefix, ZeroLengthMatchesEverythingOfFamily) {
  const IpPrefix prefix(IpAddress::v4(0), 0);
  EXPECT_TRUE(prefix.contains(IpAddress::v4(255, 255, 255, 255)));
  EXPECT_FALSE(prefix.contains(*IpAddress::parse("::1")));
}

TEST(IpPrefix, FullLengthIsExactMatch) {
  const IpPrefix prefix(IpAddress::v4(1, 2, 3, 4), 32);
  EXPECT_TRUE(prefix.contains(IpAddress::v4(1, 2, 3, 4)));
  EXPECT_FALSE(prefix.contains(IpAddress::v4(1, 2, 3, 5)));
}

TEST(IpPrefix, ParseRejections) {
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(IpPrefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(IpPrefix::parse("junk/8").has_value());
}

TEST(IpPrefix, ToStringRoundTrip) {
  EXPECT_EQ(IpPrefix::parse("10.0.0.0/8")->to_string(), "10.0.0.0/8");
  EXPECT_EQ(IpPrefix::parse("2001:db8::/32")->to_string(), "2001:db8::/32");
}

// Round-trip sweep for textual parsing/formatting.
class IpRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(IpRoundTrip, ParseFormatFixpoint) {
  const auto addr = IpAddress::parse(GetParam());
  ASSERT_TRUE(addr.has_value()) << GetParam();
  EXPECT_EQ(addr->to_string(), GetParam());
  // Formatting then parsing again is the identity.
  EXPECT_EQ(IpAddress::parse(addr->to_string()), addr);
}

INSTANTIATE_TEST_SUITE_P(Addresses, IpRoundTrip,
                         ::testing::Values("0.0.0.0", "255.255.255.255", "11.0.0.1",
                                           "198.18.0.42", "::", "::1", "2001:db8::1",
                                           "2400:44d::ffff", "1:2:3:4:5:6:7:8",
                                           "fe80::a:b:c:d"));

}  // namespace
}  // namespace tamper::net
