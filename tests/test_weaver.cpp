#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/weaver.h"
#include "world/traffic.h"

namespace tamper::core {
namespace {

using namespace net::tcpflag;
using capture::ObservedPacket;

ObservedPacket pkt(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                   std::uint16_t ipid, std::uint8_t ttl, std::uint16_t len = 0) {
  ObservedPacket p;
  p.ts_sec = 1000;
  p.flags = flags;
  p.seq = seq;
  p.ack = ack;
  p.ip_id = ipid;
  p.ttl = ttl;
  p.payload_len = len;
  return p;
}

capture::ConnectionSample sample_of(std::vector<ObservedPacket> packets) {
  capture::ConnectionSample s;
  s.ip_version = net::IpVersion::kV4;
  s.packets = std::move(packets);
  s.observation_end_sec = 1030;
  return s;
}

// A normal handshake + request prefix with a consistent stack.
std::vector<ObservedPacket> clean_prefix() {
  return {pkt(kSyn, 100, 0, 500, 52), pkt(kAck, 101, 9000, 501, 52),
          pkt(kPsh | kAck, 101, 9000, 502, 52, 200)};
}

TEST(Weaver, CleanConnectionNotFlagged) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kFin | kAck, 301, 9500, 503, 52));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_FALSE(verdict.forged_rst_detected);
  EXPECT_EQ(verdict.rst_count, 0u);
}

TEST(Weaver, GenuineClientRstNotFlagged) {
  // Endpoint reset: correct seq, client's own IP-ID counter and TTL.
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst | kAck, 301, 9000, 503, 52));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_FALSE(verdict.forged_rst_detected) << verdict.evidence.size();
}

TEST(Weaver, SeqMismatchFires) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 999999, 9000, 503, 52));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_TRUE(verdict.forged_rst_detected);
  EXPECT_TRUE(verdict.fired("SEQ"));
}

TEST(Weaver, AckDiverseFires) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 301, 9000, 503, 52));
  packets.push_back(pkt(kRst, 301, 10460, 504, 52));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_TRUE(verdict.fired("ACK-DIVERSE"));
  EXPECT_EQ(verdict.rst_count, 2u);
}

TEST(Weaver, AckZeroFires) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 301, 0, 503, 52));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_TRUE(verdict.fired("ACK-ZERO"));
}

TEST(Weaver, IpIdJumpFires) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 301, 9000, 45000, 52));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_TRUE(verdict.fired("IPID"));
}

TEST(Weaver, IpIdIgnoredOnIpv6) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 301, 9000, 45000, 52));
  auto s = sample_of(packets);
  s.ip_version = net::IpVersion::kV6;
  const auto verdict = weaver_detect(s);
  EXPECT_FALSE(verdict.fired("IPID"));
}

TEST(Weaver, TtlJumpFires) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 301, 9000, 503, 40));
  const auto verdict = weaver_detect(sample_of(packets));
  EXPECT_TRUE(verdict.fired("TTL"));
}

TEST(Weaver, ThresholdsConfigurable) {
  auto packets = clean_prefix();
  packets.push_back(pkt(kRst, 301, 9000, 600, 48));  // small-ish jumps
  WeaverConfig strict;
  strict.ipid_jump_threshold = 50;
  strict.ttl_jump_threshold = 1;
  EXPECT_TRUE(weaver_detect(sample_of(packets), strict).forged_rst_detected);
  WeaverConfig lax;
  lax.ipid_jump_threshold = 1000;
  lax.ttl_jump_threshold = 10;
  EXPECT_FALSE(weaver_detect(sample_of(packets), lax).forged_rst_detected);
}

TEST(Weaver, BlindToDropTampering) {
  // SYN, ACK, then silence (a drop-based censor): nothing to inspect.
  const auto verdict = weaver_detect(
      sample_of({pkt(kSyn, 100, 0, 500, 52), pkt(kAck, 101, 9000, 501, 52)}));
  EXPECT_FALSE(verdict.forged_rst_detected);
}

TEST(Weaver, DetectsSimulatedInjectionEndToEnd) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x3aa;
  world::TrafficGenerator generator(world, traffic);
  std::uint64_t injected = 0, detected = 0, dropped = 0, drop_detected = 0;
  generator.generate(8000, [&](world::LabeledConnection&& conn) {
    if (!conn.truth.tampered) return;
    const bool is_drop = conn.truth.method.find("blackhole") != std::string::npos;
    const auto verdict = weaver_detect(conn.sample);
    if (is_drop) {
      ++dropped;
      if (verdict.forged_rst_detected) ++drop_detected;
    } else {
      ++injected;
      if (verdict.forged_rst_detected) ++detected;
    }
  });
  ASSERT_GT(injected, 200u);
  ASSERT_GT(dropped, 50u);
  EXPECT_GT(common::percent(detected, injected), 85.0);
  EXPECT_EQ(drop_detected, 0u);
}

}  // namespace
}  // namespace tamper::core
