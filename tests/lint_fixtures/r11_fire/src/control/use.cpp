#include "control/level.h"

namespace tamper::control {

int stride(Level level) {
  switch (level) {
    case Level::kNormal:
      return 1;
    case Level::kSampleDown:
      return 4;
    default:
      return 0;
  }
}

}  // namespace tamper::control
