#pragma once
#include <cstdint>

namespace tamper::control {

enum class Level : std::uint8_t {
  kNormal,
  kSampleDown,
  kShedding,
};

}  // namespace tamper::control
