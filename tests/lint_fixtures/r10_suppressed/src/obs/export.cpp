#include "obs/metrics.h"

namespace tamper::obs {

void wire(Registry& reg) {
  // tamperlint-allow(R10): experimental family, documented on graduation
  reg.counter("tamper_orphan_total", "registered but not documented");
}

}  // namespace tamper::obs
