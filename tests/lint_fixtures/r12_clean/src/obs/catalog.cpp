#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace tamper::obs {

void wire(Registry& reg) {
  reg.counter("tamper_seen_total", "registered here");
  reg.gauge("tamper_level", "registered here too");
}

const std::vector<SeriesSpec>& catalog() {
  static const std::vector<SeriesSpec> kCatalog = {
      series_spec("seen", "agg:tamper_seen_total"),
      series_spec("level", "metric:tamper_level"),
  };
  return kCatalog;
}

}  // namespace tamper::obs
