// R13 suppressed fixture: the same raw-typed taxonomy parameters as
// r13_fire, each carrying a per-site suppression — on the line above a
// one-line declaration, and above the function name of a wrapped one
// (a suppression at the declaration start covers every parameter line).
#pragma once

#include <cstdint>
#include <string>

namespace tamper::fleet {

class Merger {
 public:
  // tamperlint-allow(R13): wire codec boundary reads the raw u32
  bool feed_pop(std::uint32_t pop, const std::string& payload);
  // tamperlint-allow(R13): envelope decode hands back the raw u64
  void note_epoch(std::uint64_t sequence,
                  std::uint64_t epoch);
  // tamperlint-allow(R13): matches domain text, not interned identity
  void pin_domain(const std::string& domain);
};

}  // namespace tamper::fleet
