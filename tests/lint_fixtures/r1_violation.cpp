// Fixture: R1 must fire on ambient time and randomness.
#include <chrono>
#include <cstdlib>
#include <random>

double jitter() {
  std::random_device rd;                                    // R1
  return static_cast<double>(rd()) / 1e9;
}

long now_unix() {
  const auto tp = std::chrono::system_clock::now();         // R1
  return std::chrono::system_clock::to_time_t(tp);          // R1
}

int roll() { return std::rand() % 6; }                      // R1
