// Fixture: deterministic code — seeded rng, simulated clock, and prose
// mentions of banned tokens inside strings/comments must not fire.
#include <cstdint>
#include <string>

// The words rand, system_clock, and time() in this comment are fine.
const std::string kNote = "wall-clock time() and std::rand are banned here";

std::uint64_t next(std::uint64_t state) {
  state ^= state << 13;
  state ^= state >> 7;
  return state ^ (state << 17);
}

struct Sample {
  double time = 0.0;
};

double sample_time(const Sample& s) { return s.time; }  // member, not ::time()
