// Fixture: R2 must fire when an emission file iterates unordered storage.
#include <ostream>
#include <string>
#include <unordered_map>

void emit(std::ostream& out,
          const std::unordered_map<std::string, int>& counts) {  // R2
  for (const auto& [key, value] : counts) out << key << value;
}
