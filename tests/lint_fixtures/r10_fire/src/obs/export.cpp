#include "obs/metrics.h"

namespace tamper::obs {

void wire(Registry& reg) {
  reg.counter("tamper_orphan_total", "registered but not documented");
}

}  // namespace tamper::obs
