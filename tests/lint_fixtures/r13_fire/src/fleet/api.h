// R13 fire fixture: cross-module header parameters named after the ID
// taxonomy but typed raw. Three findings: pop (u32), epoch (u64, on the
// wrapped second line), and domain (std::string).
#pragma once

#include <cstdint>
#include <string>

namespace tamper::fleet {

class Merger {
 public:
  bool feed_pop(std::uint32_t pop, const std::string& payload);
  void note_epoch(std::uint64_t sequence,
                  std::uint64_t epoch);
  void pin_domain(const std::string& domain);

  // Non-taxonomy names never fire, whatever the type.
  void resize(std::uint32_t count, int capacity);
};

}  // namespace tamper::fleet
