// Outside src/: tools own their argument parsing, so a raw `pop` here is
// not an R13 finding.
#pragma once

#include <cstdint>

namespace tamper::tools {

void select_pop(std::uint32_t pop);

}  // namespace tamper::tools
