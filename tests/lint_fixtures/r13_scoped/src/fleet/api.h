// R13 scoping fixture, header side: exactly one raw taxonomy parameter
// (pop_id below). The strong-typed sibling is quiet, and the .cpp and
// tools/ files in this tree never index.
#pragma once

#include <cstdint>

#include "common/ids.h"

namespace tamper::fleet {

void route(std::uint32_t pop_id);        // fires: _id form of a taxonomy word
void route_strong(common::PopId pop);    // quiet: strong type

}  // namespace tamper::fleet
