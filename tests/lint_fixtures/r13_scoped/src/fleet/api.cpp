// Implementation file: R13 indexes headers only, so this raw `pop` never
// fires — the signature is owned by api.h.
#include "fleet/api.h"

namespace tamper::fleet {

void route(std::uint32_t pop_id) { (void)pop_id; }

namespace {
void helper(std::uint32_t pop) { (void)pop; }
}  // namespace

}  // namespace tamper::fleet
