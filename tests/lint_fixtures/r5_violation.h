// Fixture: header with no include guard and a namespace dump.
#include <string>

using namespace std;  // R5

inline string shout(const string& s) { return s + "!"; }
