// Fixture: malformed directives are themselves findings (R0) and do not
// suppress anything.
#include <random>

int bad_seed() {
  // tamperlint-allow(R1)
  std::random_device rd;  // still flagged: directive has no reason
  return static_cast<int>(rd());  // tamperlint-allow(R99): unknown rule id
}
