// Fixture: R3 must fire on throwing ops inside a marked function, and
// must NOT fire on identical ops outside the marked region.
#include <map>
#include <stdexcept>
#include <string>

// tamperlint: nothrow-path
int ingest(const std::map<std::string, int>& m, const std::string& key) {
  if (m.empty()) throw std::runtime_error("empty");  // R3
  return m.at(key);                                  // R3
}

int unmarked(const std::map<std::string, int>& m, const std::string& key) {
  return m.at(key);  // fine: not a nothrow-path function
}
