// Fixture: R6 must fire on a non-snake_case metric name, a non-snake_case
// label key, and a family registered at two different sites in one file.
#include "obs/metrics.h"

void register_metrics(tamper::obs::Registry& reg) {
  reg.counter("Tamper_Ingest_Total", "capitals leak into the exposition");  // R6
  auto& shed = reg.counter_family("tamper_shed_total", "sheds by reason",
                                  {"Reason"});  // R6: label key
  shed.with({"embryonic"}).add(0);
  reg.counter("tamper_dup_total", "first registration");
  reg.counter("tamper_dup_total", "second site disagrees eventually");  // R6
}
