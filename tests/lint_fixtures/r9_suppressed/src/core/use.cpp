#include "core/sig.h"

namespace tamper::core {

int arm(Signature sig) {
  // tamperlint-allow(R9): kDataRst is handled by the caller's prefilter
  switch (sig) {
    case Signature::kSynNone:
      return 0;
    case Signature::kSynRst:
      return 1;
    default:
      return -1;
  }
}

}  // namespace tamper::core
