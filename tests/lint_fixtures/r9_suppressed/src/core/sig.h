#pragma once
#include <cstdint>

namespace tamper::core {

enum class Signature : std::uint8_t {
  kSynNone,
  kSynRst,
  kDataRst,
};

}  // namespace tamper::core
