// Fixture: ordered emission — std::map iteration is deterministic.
#include <map>
#include <ostream>
#include <string>

void emit(std::ostream& out, const std::map<std::string, int>& counts) {
  for (const auto& [key, value] : counts) out << key << value;
}
