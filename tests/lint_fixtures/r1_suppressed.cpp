// Fixture: a justified suppression silences R1 at exactly one site.
#include <random>

std::uint64_t entropy_seed() {
  // tamperlint-allow(R1): operator-requested fresh seed; recorded in the run manifest
  std::random_device rd;
  return rd();  // still flagged: the directive covers only the line above
}
