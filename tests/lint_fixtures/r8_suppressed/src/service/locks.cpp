#include "common/mutex.h"

namespace tamper::service {

class Pair {
 public:
  void forward() {
    common::MutexLock a(a_mu_);
    // tamperlint-allow(R8): backward() is only reachable during shutdown,
    common::MutexLock b(b_mu_);
    ++both_;
  }
  void backward() {
    common::MutexLock b(b_mu_);
    common::MutexLock a(a_mu_);
    ++both_;
  }

 private:
  common::Mutex a_mu_;
  common::Mutex b_mu_;
  int both_ = 0;
};

}  // namespace tamper::service
