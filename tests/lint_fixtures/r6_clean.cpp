// Fixture: hygienic metric registrations — snake_case names and label
// keys, one registration site per family, handles shared from there. The
// multi-line family call checks that R6 reads names across line breaks,
// and the label VALUE passed to with() is free-form by design.
#include "obs/metrics.h"

struct Handles {
  tamper::obs::Counter* ingested = nullptr;
  tamper::obs::Gauge* depth = nullptr;
};

Handles register_metrics(tamper::obs::Registry& reg) {
  Handles h;
  h.ingested = &reg.counter(
      "tamper_ingest_samples_total",
      "Samples ingested (help text may Say Anything, even .counter(\"X\"))");
  h.depth = &reg.gauge("tamper_queue_depth", "queued samples");
  auto& shed = reg.counter_family("tamper_queue_shed_total",
                                  "sheds by reason", {"reason"});
  shed.with({"Embryonic-Phase"}).add(0);
  auto& lat = reg.histogram("tamper_classify_seconds", "per-sample latency",
                            {0.001, 0.01, 0.1});
  lat.observe(0.002);
  return h;
}
