// Fixture: sanctioned narrowing — explicit static_cast with masking, the
// char* stream bridge, and sizeof on a parenthesized type.
#include <cstdint>
#include <istream>

std::uint16_t parse_length(long raw) {
  return static_cast<std::uint16_t>(raw & 0xffff);
}

bool read_block(std::istream& in, std::uint32_t& word) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(&word), sizeof(std::uint32_t)));
}

constexpr std::size_t kShortSize = sizeof(short);
