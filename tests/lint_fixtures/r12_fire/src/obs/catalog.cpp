#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace tamper::obs {

void wire(Registry& reg) {
  reg.counter("tamper_real_total", "a family that exists");
}

const std::vector<SeriesSpec>& catalog() {
  static const std::vector<SeriesSpec> kCatalog = {
      series_spec("good", "agg:tamper_real_total"),
      series_spec("dangling", "agg:tamper_missing_total"),
      series_spec("prefixless", "tamper_real_total"),
  };
  return kCatalog;
}

}  // namespace tamper::obs
