// Fixture: hygienic header — #pragma once, scoped using-declaration only.
#pragma once

#include <string>

namespace fixture {

using std::string;  // using-declaration is fine; using namespace is not

inline string shout(const string& s) { return s + "!"; }

}  // namespace fixture
