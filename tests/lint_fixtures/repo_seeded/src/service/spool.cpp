#include "common/mutex.h"

namespace tamper::service {

class Spool {
 public:
  void push() {
    common::MutexLock q(queue_mu_);
    common::MutexLock d(disk_mu_);
    ++depth_;
  }
  void drain() {
    common::MutexLock d(disk_mu_);
    common::MutexLock q(queue_mu_);
    --depth_;
  }

 private:
  common::Mutex queue_mu_;
  common::Mutex disk_mu_;
  int depth_ = 0;
};

}  // namespace tamper::service
