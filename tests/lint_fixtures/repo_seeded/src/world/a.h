#pragma once
#include "world/b.h"

namespace tamper::world {
int alpha();
}  // namespace tamper::world
