#pragma once
#include "world/a.h"

namespace tamper::world {
int beta();
}  // namespace tamper::world
