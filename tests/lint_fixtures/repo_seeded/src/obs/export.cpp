#include "obs/metrics.h"

namespace tamper::obs {

void wire(Registry& reg) {
  reg.counter("tamper_seeded_total", "documented in the fixture DESIGN.md");
  reg.counter("tamper_orphan_total", "deliberately left undocumented");
}

}  // namespace tamper::obs
