#include "core/sig.h"

namespace tamper::core {

int arm(Signature sig) {
  switch (sig) {
    case Signature::kSynNone:
      return 0;
    case Signature::kSynRst:
      return 1;
    default:
      return -1;
  }
}

}  // namespace tamper::core
