// R13 clean fixture: the taxonomy-named parameters carry strong types
// (common/ids.h), and the remaining raw parameters use non-taxonomy names.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.h"

namespace tamper::fleet {

class Merger {
 public:
  bool feed_pop(common::PopId pop, const std::string& payload);
  void note_epoch(std::uint64_t sequence, common::EpochId epoch);
  void pin_domain(common::DomainId domain);
  void resize(std::uint32_t count, int capacity);
};

}  // namespace tamper::fleet
