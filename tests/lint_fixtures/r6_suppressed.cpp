// Fixture: a justified suppression silences R6 at exactly one site.
#include "obs/metrics.h"

void register_metrics(tamper::obs::Registry& reg) {
  // tamperlint-allow(R6): byte-compatible with the legacy exporter's CamelCase name
  reg.counter("LegacyIngestTotal", "kept until the dashboards migrate");
  reg.counter("tamper_modern_total", "the replacement series");
}
