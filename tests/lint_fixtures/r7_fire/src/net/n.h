#pragma once
#include "tcp/t.h"

namespace tamper::net {
int parse();
}  // namespace tamper::net
