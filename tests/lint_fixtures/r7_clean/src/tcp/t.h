#pragma once
#include "net/n.h"

namespace tamper::tcp {
int track();
}  // namespace tamper::tcp
