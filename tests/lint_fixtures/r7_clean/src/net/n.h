#pragma once

namespace tamper::net {
int parse();
}  // namespace tamper::net
