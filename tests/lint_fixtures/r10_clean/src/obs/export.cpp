#include "obs/metrics.h"

namespace tamper::obs {

void wire(Registry& reg) {
  reg.counter("tamper_pushed_total", "documented below");
  reg.counter("tamper_popped_total", "documented below");
}

}  // namespace tamper::obs
