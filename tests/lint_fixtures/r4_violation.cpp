// Fixture: R4 must fire on C-style narrowing and non-bridge
// reinterpret_cast in the wire-parsing layer.
#include <cstdint>

struct Header {
  std::uint16_t length;
};

std::uint16_t parse_length(long raw) {
  return (std::uint16_t)raw;  // R4: silent truncation
}

const Header* view(const unsigned char* bytes) {
  return reinterpret_cast<const Header*>(bytes);  // R4: type-punning
}
