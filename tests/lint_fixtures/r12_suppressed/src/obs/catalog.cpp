#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace tamper::obs {

const std::vector<SeriesSpec>& catalog() {
  static const std::vector<SeriesSpec> kCatalog = {
      // tamperlint-allow(R12): the backing family is registered by a plugin
      series_spec("external", "metric:tamper_plugin_total"),
  };
  return kCatalog;
}

}  // namespace tamper::obs
