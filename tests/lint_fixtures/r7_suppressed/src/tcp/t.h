#pragma once

namespace tamper::tcp {
int track();
}  // namespace tamper::tcp
