#pragma once
// tamperlint-allow(R7): deliberate upward include, probing suppression
#include "tcp/t.h"

namespace tamper::net {
int parse();
}  // namespace tamper::net
