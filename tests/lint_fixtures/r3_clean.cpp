// Fixture: a nothrow-path function using the count-and-drop idiom.
#include <cstdint>
#include <map>
#include <string>

struct Stats {
  std::uint64_t missing = 0;
};

// tamperlint: nothrow-path
int ingest(const std::map<std::string, int>& m, const std::string& key,
           Stats& stats) noexcept {
  const auto it = m.find(key);
  if (it == m.end()) {
    ++stats.missing;
    return 0;
  }
  return it->second;
}
