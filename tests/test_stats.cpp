#include <gtest/gtest.h>

#include "common/stats.h"

namespace tamper::common {
namespace {

TEST(RunningMoments, MatchesClosedForm) {
  RunningMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningMoments, EmptyAndSingle) {
  RunningMoments m;
  EXPECT_EQ(m.variance(), 0.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_EQ(m.variance(), 0.0);
}

TEST(EmpiricalCdf, CdfAndQuantiles) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.cdf(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(100), 1.0);
  EXPECT_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.0);
  EXPECT_EQ(cdf.min(), 1.0);
  EXPECT_EQ(cdf.max(), 100.0);
}

TEST(EmpiricalCdf, UnsortedInsertOrder) {
  EmpiricalCdf cdf;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.cdf(2.5), 0.4);
}

TEST(EmpiricalCdf, EmptyThrowsOnQuantile) {
  EmpiricalCdf cdf;
  EXPECT_EQ(cdf.cdf(1.0), 0.0);
  EXPECT_THROW((void)cdf.quantile(0.5), std::out_of_range);
  EXPECT_THROW((void)cdf.min(), std::out_of_range);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 57; ++i) cdf.add(i * i % 23);
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into bin 0
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 5);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 5u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Regression, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1
  const Regression r = linear_regression(x, y);
  EXPECT_NEAR(r.slope, 2.0, 1e-12);
  EXPECT_NEAR(r.intercept, 1.0, 1e-12);
  EXPECT_NEAR(r.r2, 1.0, 1e-12);
  EXPECT_EQ(r.n, 5u);
}

TEST(Regression, DegenerateInputs) {
  EXPECT_EQ(linear_regression({}, {}).n, 0u);
  EXPECT_EQ(linear_regression({1.0}, {2.0}).slope, 0.0);
  // Vertical data (no x variance) yields slope 0 rather than NaN.
  const Regression r = linear_regression({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(r.slope, 0.0);
}

TEST(LabelCounter, CountsAndFractions) {
  LabelCounter c;
  c.add("a", 3);
  c.add("b");
  c.add("a");
  EXPECT_EQ(c.get("a"), 4u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_DOUBLE_EQ(c.fraction("a"), 0.8);
}

TEST(LabelCounter, TopOrderingWithTies) {
  LabelCounter c;
  c.add("z", 2);
  c.add("a", 2);
  c.add("m", 5);
  const auto top = c.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "m");
  EXPECT_EQ(top[1].first, "a");  // tie broken lexicographically
}

TEST(Percent, DivideByZeroGuard) {
  EXPECT_EQ(percent(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
}

}  // namespace
}  // namespace tamper::common
