#include <gtest/gtest.h>

#include "appproto/tls.h"
#include "common/rng.h"

namespace tamper::appproto {
namespace {

std::vector<std::uint8_t> hello_for(const std::string& sni, common::Rng& rng) {
  ClientHelloSpec spec;
  spec.sni = sni;
  return build_client_hello(spec, rng);
}

TEST(Tls, LooksLikeClientHello) {
  common::Rng rng(1);
  const auto hello = hello_for("example.com", rng);
  EXPECT_TRUE(looks_like_client_hello(hello));
  EXPECT_FALSE(looks_like_client_hello({}));
  const std::vector<std::uint8_t> http = {'G', 'E', 'T', ' ', '/', ' '};
  EXPECT_FALSE(looks_like_client_hello(http));
}

TEST(Tls, RecordLayerShape) {
  common::Rng rng(2);
  const auto hello = hello_for("example.com", rng);
  EXPECT_EQ(hello[0], 22);    // handshake
  EXPECT_EQ(hello[1], 0x03);  // record version major
  EXPECT_EQ(hello[5], 1);     // client_hello
  const std::size_t record_len = (hello[3] << 8) | hello[4];
  EXPECT_EQ(record_len + 5, hello.size());
}

TEST(Tls, SniRoundTrip) {
  common::Rng rng(3);
  const auto hello = hello_for("blocked-site.example.org", rng);
  EXPECT_EQ(extract_sni(hello), "blocked-site.example.org");
}

TEST(Tls, ParseFullFields) {
  common::Rng rng(4);
  ClientHelloSpec spec;
  spec.sni = "a.test";
  spec.alpn = {"h2", "http/1.1"};
  const auto hello = build_client_hello(spec, rng);
  const auto parsed = parse_client_hello(hello);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->legacy_version, 0x0303);
  EXPECT_EQ(parsed->sni, "a.test");
  ASSERT_EQ(parsed->alpn.size(), 2u);
  EXPECT_EQ(parsed->alpn[0], "h2");
  EXPECT_TRUE(parsed->offers_tls13);
  EXPECT_EQ(parsed->cipher_suite_count, 8u);
}

TEST(Tls, OmitsSniWhenEmpty) {
  common::Rng rng(5);
  ClientHelloSpec spec;
  spec.sni.clear();
  const auto hello = build_client_hello(spec, rng);
  const auto parsed = parse_client_hello(hello);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->sni.has_value());
  EXPECT_FALSE(extract_sni(hello).has_value());
}

TEST(Tls, Tls12OnlyOffer) {
  common::Rng rng(6);
  ClientHelloSpec spec;
  spec.sni = "x.test";
  spec.offer_tls13 = false;
  const auto parsed = parse_client_hello(build_client_hello(spec, rng));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->offers_tls13);
}

TEST(Tls, TruncatedAfterSniStillYieldsSni) {
  common::Rng rng(7);
  ClientHelloSpec spec;
  spec.sni = "cut-off.example";
  auto hello = build_client_hello(spec, rng);
  // The SNI extension is emitted first; cutting off the tail (ALPN etc.)
  // mimics a ClientHello split across MSS-sized packets.
  hello.resize(hello.size() - 40);
  const auto parsed = parse_client_hello(hello, /*allow_truncated=*/true);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sni, "cut-off.example");
}

TEST(Tls, TruncationRejectedWhenStrict) {
  common::Rng rng(8);
  auto hello = hello_for("strict.example", rng);
  hello.resize(hello.size() - 40);
  EXPECT_FALSE(parse_client_hello(hello, /*allow_truncated=*/false).has_value());
}

TEST(Tls, GarbageRejected) {
  std::vector<std::uint8_t> garbage(64, 0xab);
  EXPECT_FALSE(parse_client_hello(garbage).has_value());
  garbage[0] = 22;  // right content type, broken internals
  garbage[1] = 0x03;
  garbage[2] = 0x01;
  garbage[5] = 99;  // not a client_hello
  EXPECT_FALSE(parse_client_hello(garbage).has_value());
}

TEST(Tls, DeterministicGivenRngSeed) {
  common::Rng a(9), b(9);
  EXPECT_EQ(hello_for("same.example", a), hello_for("same.example", b));
}

class TlsSniSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(TlsSniSweep, RoundTrips) {
  common::Rng rng(common::fnv1a(GetParam()));
  EXPECT_EQ(extract_sni(hello_for(GetParam(), rng)), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Domains, TlsSniSweep,
    ::testing::Values("a.io", "with-dash.example.com", "xn--bcher-kva.example",
                      "very.long.subdomain.chain.of.names.example.org",
                      "brightmedia42.com", "wn.com"));

}  // namespace
}  // namespace tamper::appproto
