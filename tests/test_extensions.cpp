// Tests for the fidelity extensions layered on the base reproduction:
// server retransmission, block-page injection, residual censorship,
// capture-pipeline knobs, and the classifier's ablation switches.
#include <gtest/gtest.h>

#include "appproto/http.h"
#include "core/classifier.h"
#include "middlebox/catalog.h"
#include "middlebox/middlebox.h"
#include "tcp/session.h"
#include "world/traffic.h"

namespace tamper {
namespace {

using namespace net::tcpflag;

TEST(ServerRetransmission, ResendsUnackedResponse) {
  tcp::EndpointConfig config;
  config.addr = net::IpAddress::v4(198, 18, 0, 1);
  config.port = 443;
  config.is_client = false;
  config.isn = 90000;
  config.response_size = 500;
  config.response_retries = 2;
  tcp::TcpEndpoint server(config, common::Rng(1));
  (void)server.start(0.0);
  const auto client_ip = net::IpAddress::v4(11, 0, 0, 2);
  (void)server.on_packet(net::make_tcp_packet(client_ip, 40000, config.addr, 443, kSyn,
                                              5000, 0),
                         0.1);
  (void)server.on_packet(net::make_tcp_packet(client_ip, 40000, config.addr, 443, kAck,
                                              5001, 90001),
                         0.2);
  auto data = server.on_packet(net::make_tcp_packet(client_ip, 40000, config.addr, 443,
                                                    kPsh | kAck, 5001, 90001, {'X'}),
                               0.3);
  auto response = server.on_timer(data.timers[0].kind, data.timers[0].generation, 0.4);
  ASSERT_EQ(response.packets.size(), 2u);  // 500 B data + FIN
  ASSERT_FALSE(response.timers.empty());   // retransmit armed

  // The client never ACKs: firing the timer resends data + FIN.
  const auto& timer = response.timers.back();
  auto resend = server.on_timer(timer.kind, timer.generation, 1.4);
  ASSERT_EQ(resend.packets.size(), 2u);
  EXPECT_EQ(resend.packets[0].payload.size(), 500u);
  EXPECT_EQ(resend.packets[1].tcp.flags, kFin | kAck);

  // After the client ACKs everything, the next firing sends nothing.
  (void)server.on_packet(net::make_tcp_packet(client_ip, 40000, config.addr, 443, kAck,
                                              5002, 90001 + 500 + 1),
                         1.5);
  ASSERT_FALSE(resend.timers.empty());
  auto idle = server.on_timer(resend.timers.back().kind, resend.timers.back().generation,
                              3.4);
  EXPECT_TRUE(idle.packets.empty());
}

TEST(BlockPage, InjectedTowardClientOnly) {
  // The Iranian preset with a block page: client receives an HTTP 403, but
  // nothing payload-bearing reaches the server.
  tcp::SessionConfig session;
  middlebox::TriggerSet triggers;
  triggers.match_everything();
  middlebox::Middlebox box(middlebox::catalog::iran_rst_ack(), std::move(triggers),
                           session.geometry, common::Rng(1));

  tcp::EndpointConfig client_cfg;
  client_cfg.addr = net::IpAddress::v4(11, 0, 0, 2);
  client_cfg.port = 40000;
  client_cfg.is_client = true;
  client_cfg.isn = 5000;
  appproto::HttpRequestSpec request;
  request.host = "blocked.example";
  client_cfg.request_segments = {appproto::build_http_request(request)};

  tcp::EndpointConfig server_cfg;
  server_cfg.addr = net::IpAddress::v4(198, 18, 0, 1);
  server_cfg.port = 80;
  server_cfg.is_client = false;
  server_cfg.isn = 90000;

  tcp::TcpEndpoint client(client_cfg, common::Rng(2));
  tcp::TcpEndpoint server(server_cfg, common::Rng(3));
  client.set_peer(server_cfg.addr, server_cfg.port);
  server.set_peer(client_cfg.addr, client_cfg.port);
  common::Rng rng(4);
  const auto result = tcp::simulate_session(client, server, &box, session, rng);

  bool block_page_toward_client = false;
  for (const auto& traced : result.full_trace) {
    if (traced.dir == tcp::Direction::kServerToClient && traced.injected &&
        !traced.pkt.payload.empty()) {
      const std::string text(traced.pkt.payload.begin(), traced.pkt.payload.end());
      if (text.rfind("HTTP/1.1 403", 0) == 0) block_page_toward_client = true;
    }
  }
  EXPECT_TRUE(block_page_toward_client);

  // Server-side view stays the clean Iranian pattern: SYN, ACK, RST+ACK.
  capture::ConnectionSample sample;
  for (const auto& traced : result.server_inbound)
    sample.packets.push_back(capture::observe(traced.pkt));
  sample.observation_end_sec = static_cast<std::int64_t>(result.end_time);
  const auto verdict = core::SignatureClassifier{}.classify(sample);
  EXPECT_EQ(verdict.signature, core::Signature::kAckRstAck);
}

TEST(ResidualCensorship, RevisitsBlockedEarlier) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x0e51d;
  traffic.residual_block_seconds = 90.0;
  traffic.residual_probability = 1.0;
  traffic.residual_preset = "syn_rst";
  world::TrafficGenerator generator(world, traffic);

  const int cn = world::country_index("CN");
  common::Rng rng(9);
  const world::AsInfo& as_info = world.geo().sample_as("CN", rng);
  world::VisitPin pin;
  pin.asn = as_info.asn;
  pin.ipv6 = false;
  pin.client_ip = world.geo().sample_client_ip(as_info, false, rng);
  pin.client_kind = tcp::ClientKind::kNormal;
  pin.protocol = appproto::AppProtocol::kTls;
  pin.domain_rank = world.sample_blocked_domain(cn, rng);

  const common::SimTime t0 = common::from_civil(2023, 1, 17, 12);
  // Visit until the censor fires once.
  bool fired = false;
  for (int i = 0; i < 40 && !fired; ++i)
    fired = generator.generate_pinned(cn, t0 + i, pin).truth.tampered;
  ASSERT_TRUE(fired);

  // Within the residual window, revisits are hit by the residual preset.
  int residual_hits = 0;
  for (int i = 0; i < 10; ++i) {
    const auto conn = generator.generate_pinned(cn, t0 + 60.0 + i, pin);
    if (conn.truth.tampered && conn.truth.method == "syn_rst") ++residual_hits;
  }
  EXPECT_GT(residual_hits, 0);

  // Visits spaced beyond the 90 s window never see the residual method
  // (each firing re-arms the state, so the visits must be far apart).
  int late_residual = 0;
  for (int i = 0; i < 10; ++i) {
    const auto conn = generator.generate_pinned(cn, t0 + 3'600.0 * (i + 1), pin);
    if (conn.truth.method == "syn_rst") ++late_residual;
  }
  EXPECT_EQ(late_residual, 0);
}

TEST(CaptureKnobs, PacketBudgetRespected) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x6b;
  traffic.max_logged_packets = 4;
  world::TrafficGenerator generator(world, traffic);
  generator.generate(300, [&](world::LabeledConnection&& conn) {
    ASSERT_LE(conn.sample.packets.size(), 4u);
  });
}

TEST(CaptureKnobs, TimestampScaleChangesUnits) {
  world::World world;
  world::TrafficConfig coarse;
  coarse.seed = 0x6c;
  world::TrafficConfig fine = coarse;
  fine.timestamp_scale = 1000.0;
  world::TrafficGenerator a(world, coarse);
  world::TrafficGenerator b(world, fine);
  const auto ca = a.generate_one();
  const auto cb = b.generate_one();
  ASSERT_FALSE(ca.sample.packets.empty());
  ASSERT_FALSE(cb.sample.packets.empty());
  // Same traffic, millisecond ticks are ~1000x the second ticks.
  EXPECT_NEAR(static_cast<double>(cb.sample.packets[0].ts_sec),
              static_cast<double>(ca.sample.packets[0].ts_sec) * 1000.0, 2000.0);
}

TEST(CaptureKnobs, RawInboundKeptOnDemand) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x6d;
  traffic.keep_raw_inbound = true;
  world::TrafficGenerator generator(world, traffic);
  const auto conn = generator.generate_one();
  EXPECT_GE(conn.raw_inbound.size(), conn.sample.packets.size());
  world::TrafficConfig off = traffic;
  off.keep_raw_inbound = false;
  world::TrafficGenerator generator_off(world, off);
  EXPECT_TRUE(generator_off.generate_one().raw_inbound.empty());
}

TEST(ClassifierKnobs, ReconstructionTogglePreservesInOrderVerdicts) {
  // On an already-ordered log both variants agree; the toggle only matters
  // for scrambled input (covered by the ablation bench).
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x6e;
  world::TrafficGenerator generator(world, traffic);
  core::SignatureClassifier ordered_clf;
  core::ClassifierConfig cfg;
  cfg.reconstruct_order = false;
  core::SignatureClassifier arrival_clf(cfg);
  int disagreements = 0, total = 0;
  generator.generate(1500, [&](world::LabeledConnection&& conn) {
    if (conn.sample.packets.empty()) return;
    ++total;
    if (ordered_clf.classify(conn.sample).signature !=
        arrival_clf.classify(conn.sample).signature)
      ++disagreements;
  });
  // In-order arrival differs only for injected packets racing data.
  EXPECT_LT(static_cast<double>(disagreements) / total, 0.02);
}

}  // namespace
}  // namespace tamper
