// Full-loop integration: traffic -> pcap on disk -> re-ingest through the
// real sampler -> classify, and statistical shape checks on a small global
// scenario.
#include <gtest/gtest.h>

#include <map>

#include "analysis/pipeline.h"
#include "capture/sampler.h"
#include "core/classifier.h"
#include "middlebox/catalog.h"
#include "middlebox/middlebox.h"
#include "net/pcap.h"
#include "tcp/session.h"
#include "world/traffic.h"

namespace tamper {
namespace {

using namespace net::tcpflag;

TEST(Integration, TamperedSessionSurvivesPcapRoundTrip) {
  // Simulate a GFW-style tampered session, export the server-side capture
  // to a pcap file, read it back through the production sampler, and verify
  // the classifier reaches the same verdict on the re-ingested data.
  tcp::EndpointConfig client_cfg;
  client_cfg.addr = net::IpAddress::v4(11, 0, 0, 2);
  client_cfg.port = 40000;
  client_cfg.is_client = true;
  client_cfg.isn = 5000;
  common::Rng payload_rng(1);
  appproto::ClientHelloSpec hello;
  hello.sni = "blocked.example";
  client_cfg.request_segments = {appproto::build_client_hello(hello, payload_rng)};

  tcp::EndpointConfig server_cfg;
  server_cfg.addr = net::IpAddress::v4(198, 18, 0, 1);
  server_cfg.port = 443;
  server_cfg.is_client = false;
  server_cfg.isn = 90000;

  tcp::SessionConfig session;
  session.start_time = 1'673'510'000.0;
  middlebox::TriggerSet triggers;
  triggers.add_exact_domain("blocked.example");
  middlebox::Middlebox box(middlebox::catalog::gfw_mixed_burst(), std::move(triggers),
                           session.geometry, common::Rng(2));
  tcp::TcpEndpoint client(client_cfg, common::Rng(3));
  tcp::TcpEndpoint server(server_cfg, common::Rng(4));
  client.set_peer(server_cfg.addr, server_cfg.port);
  server.set_peer(client_cfg.addr, client_cfg.port);
  common::Rng rng(5);
  const tcp::SessionResult result = tcp::simulate_session(client, server, &box, session, rng);
  ASSERT_TRUE(box.triggered());

  // Export the inbound tap to a pcap file (full wire serialization).
  const std::string path = ::testing::TempDir() + "/gfw_session.pcap";
  std::vector<net::Packet> inbound;
  for (const auto& traced : result.server_inbound) inbound.push_back(traced.pkt);
  net::write_pcap_file(path, inbound);

  // Re-ingest through the real sampler.
  capture::ConnectionSampler::Config sampler_cfg;
  sampler_cfg.sample_one_in = 1;
  capture::ConnectionSampler sampler(sampler_cfg);
  for (const auto& pkt : net::read_pcap_file(path)) sampler.on_packet(pkt, pkt.timestamp);
  auto samples = sampler.flush_all(result.end_time);
  ASSERT_EQ(samples.size(), 1u);

  const auto classification = core::SignatureClassifier{}.classify(samples[0]);
  ASSERT_TRUE(classification.possibly_tampered);
  EXPECT_EQ(classification.signature, core::Signature::kPshRstRstAck);

  // And the DPI side still recovers the blocked domain from the capture.
  const auto* payload = samples[0].first_data_payload();
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(appproto::extract_sni(*payload), "blocked.example");
}

class GlobalScenario : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new world::World(
        world::WorldConfig{.domains = {.domain_count = 30'000}, .seed = 0x600d});
    pipeline_ = new analysis::Pipeline(*world_);
    world::TrafficConfig config;
    config.seed = 0xabc;
    world::TrafficGenerator generator(*world_, config);
    pipeline_->run(generator, 25'000);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete world_;
    pipeline_ = nullptr;
    world_ = nullptr;
  }
  static world::World* world_;
  static analysis::Pipeline* pipeline_;
};

world::World* GlobalScenario::world_ = nullptr;
analysis::Pipeline* GlobalScenario::pipeline_ = nullptr;

TEST_F(GlobalScenario, PossiblyTamperedShareNearPaper) {
  const auto& m = pipeline_->signatures();
  const double share =
      common::percent(m.possibly_tampered(), m.total_connections());
  EXPECT_GT(share, 18.0);  // paper: 25.7%
  EXPECT_LT(share, 35.0);
}

TEST_F(GlobalScenario, SignatureCoverageOfPossiblyTampered) {
  const auto& m = pipeline_->signatures();
  const double coverage = common::percent(m.matched(), m.possibly_tampered());
  EXPECT_GT(coverage, 70.0);  // paper: 86.9%
}

TEST_F(GlobalScenario, EverySignatureObserved) {
  const auto& m = pipeline_->signatures();
  for (core::Signature sig : core::all_signatures())
    EXPECT_GT(m.signature_total(sig), 0u) << core::name(sig);
}

TEST_F(GlobalScenario, CountryOrderingMatchesPaper) {
  const auto& m = pipeline_->signatures();
  auto rate = [&](const char* cc) {
    return common::percent(m.country_matches(cc), m.country_connections(cc));
  };
  // Turkmenistan far above everyone; US/DE near the bottom.
  EXPECT_GT(rate("TM"), 60.0);
  EXPECT_GT(rate("TM"), rate("RU"));
  EXPECT_GT(rate("RU"), rate("US"));
  EXPECT_GT(rate("IR"), rate("DE"));
  EXPECT_GT(rate("CN"), rate("GB"));
}

TEST_F(GlobalScenario, TurkmenistanDominatedByPostAckRst) {
  const auto& m = pipeline_->signatures();
  const std::uint64_t ack_rst = m.count("TM", core::Signature::kAckRst);
  EXPECT_GT(ack_rst, m.count("TM", core::Signature::kPshRst));
  EXPECT_GT(common::percent(ack_rst, m.country_matches("TM")), 30.0);  // small-sample noise floor
}

TEST_F(GlobalScenario, ZeroAckSignatureConcentratedInCnAndKr) {
  const auto& m = pipeline_->signatures();
  const std::uint64_t total = m.signature_total(core::Signature::kPshRstRst0);
  ASSERT_GT(total, 0u);
  const std::uint64_t cn_kr = m.count("CN", core::Signature::kPshRstRst0) +
                              m.count("KR", core::Signature::kPshRstRst0);
  EXPECT_GT(common::percent(cn_kr, total), 60.0);
}

TEST_F(GlobalScenario, EvidenceSeparatesInjectedFromClean) {
  const auto& evidence = pipeline_->evidence();
  const auto& clean = evidence.ipid_cdf(analysis::EvidenceCollector::clean_bucket());
  ASSERT_GT(clean.count(), 200u);
  EXPECT_GT(clean.cdf(1.0), 0.9);  // paper: >95% of clean <= 1
  const auto& injected =
      evidence.ipid_cdf(static_cast<std::size_t>(core::Signature::kPshRst));
  if (injected.count() > 30) {
    EXPECT_LT(injected.cdf(1.0), 0.35);
  }
}

TEST_F(GlobalScenario, KoreaRandomTtlShowsWideSpread) {
  const auto& evidence = pipeline_->evidence();
  const auto& neq =
      evidence.ttl_cdf(static_cast<std::size_t>(core::Signature::kPshRstNeqRst));
  if (neq.count() > 30) {
    EXPECT_GT(neq.quantile(0.9) - neq.quantile(0.1), 30.0);  // randomized TTLs
  }
}

TEST_F(GlobalScenario, CentralizedCountriesHomogeneousAcrossAses) {
  const auto& asns = pipeline_->asns();
  auto range = [&](const char* cc) {
    const auto top = asns.top_ases(cc, 0.8);
    double min = 1e9, max = 0;
    for (const auto& stats : top) {
      if (stats.connections < 50) continue;
      min = std::min(min, stats.match_percent());
      max = std::max(max, stats.match_percent());
    }
    return max - min;
  };
  EXPECT_LT(range("CN"), range("RU") + 15.0);
}

TEST_F(GlobalScenario, ScannerNoiseWithinPaperBounds) {
  const auto& s = pipeline_->scanner_stats();
  EXPECT_EQ(s.no_tcp_options, 0u);  // paper found none post-scrubbing
  EXPECT_LT(common::percent(s.high_ttl, s.connections), 0.3);
  if (s.syn_rst_matches > 100) {
    EXPECT_LT(common::percent(s.syn_rst_zmap, s.syn_rst_matches), 10.0);
  }
}

}  // namespace
}  // namespace tamper
