#include <gtest/gtest.h>

#include "appproto/dpi.h"
#include "appproto/http.h"
#include "appproto/tls.h"
#include "common/rng.h"

namespace tamper::appproto {
namespace {

TEST(Http, BuildContainsRequestLineAndHost) {
  HttpRequestSpec spec;
  spec.host = "example.com";
  spec.path = "/index.html";
  const auto request = build_http_request(spec);
  const std::string text(request.begin(), request.end());
  EXPECT_EQ(text.rfind("GET /index.html HTTP/1.1\r\n", 0), 0u);
  EXPECT_NE(text.find("Host: example.com\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\n"), std::string::npos);
}

TEST(Http, ParseRoundTrip) {
  HttpRequestSpec spec;
  spec.method = "POST";
  spec.host = "api.example.net";
  spec.path = "/v1/submit";
  spec.extra_headers = {{"Content-Length", "0"}};
  const auto parsed = parse_http_request(build_http_request(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/v1/submit");
  EXPECT_EQ(parsed->version, "HTTP/1.1");
  EXPECT_EQ(parsed->host, "api.example.net");
  EXPECT_EQ(parsed->headers.at("content-length"), "0");
}

TEST(Http, HeaderNamesCaseInsensitive) {
  const std::string raw = "GET / HTTP/1.1\r\nHOST: UPPER.example\r\n\r\n";
  const auto parsed =
      parse_http_request({reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host, "UPPER.example");
}

TEST(Http, HeaderValueTrimmed) {
  const std::string raw = "GET / HTTP/1.1\r\nHost:   spaced.example  \r\n\r\n";
  const auto parsed =
      parse_http_request({reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host, "spaced.example");
}

TEST(Http, TruncatedMidHeadersKeepsWhatItHas) {
  const std::string raw = "GET /x HTTP/1.1\r\nHost: partial.example\r\nUser-Ag";
  const auto parsed =
      parse_http_request({reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host, "partial.example");
}

TEST(Http, RejectsNonHttp) {
  const std::string raw = "NOTAMETHOD / HTTP/1.1\r\n\r\n";
  EXPECT_FALSE(
      parse_http_request({reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()})
          .has_value());
  EXPECT_FALSE(parse_http_request({}).has_value());
}

TEST(Http, RejectsRequestLineWithoutVersion) {
  const std::string raw = "GET /\r\n\r\n";
  EXPECT_FALSE(
      parse_http_request({reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()})
          .has_value());
}

TEST(Http, ExtractHost) {
  HttpRequestSpec spec;
  spec.host = "h.example";
  EXPECT_EQ(extract_host(build_http_request(spec)), "h.example");
}

class HttpMethodSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(HttpMethodSweep, RecognizedAndParsed) {
  HttpRequestSpec spec;
  spec.method = GetParam();
  spec.host = "m.example";
  const auto request = build_http_request(spec);
  EXPECT_TRUE(looks_like_http_request(request));
  const auto parsed = parse_http_request(request);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Methods, HttpMethodSweep,
                         ::testing::Values("GET", "POST", "HEAD", "PUT", "DELETE",
                                           "OPTIONS", "CONNECT", "PATCH", "TRACE"));

TEST(Dpi, DispatchesTls) {
  common::Rng rng(1);
  ClientHelloSpec spec;
  spec.sni = "dpi.example";
  const DpiResult result = inspect_payload(build_client_hello(spec, rng));
  EXPECT_EQ(result.protocol, AppProtocol::kTls);
  EXPECT_EQ(result.domain, "dpi.example");
  EXPECT_FALSE(result.http_path.has_value());
}

TEST(Dpi, DispatchesHttp) {
  HttpRequestSpec spec;
  spec.host = "dpi-http.example";
  spec.path = "/watched";
  const DpiResult result = inspect_payload(build_http_request(spec));
  EXPECT_EQ(result.protocol, AppProtocol::kHttp);
  EXPECT_EQ(result.domain, "dpi-http.example");
  EXPECT_EQ(result.http_path, "/watched");
  EXPECT_TRUE(result.http_user_agent.has_value());
}

TEST(Dpi, UnknownPayload) {
  const std::vector<std::uint8_t> opaque = {0x17, 0x03, 0x03, 0x00, 0x20, 0xde, 0xad};
  const DpiResult result = inspect_payload(opaque);
  EXPECT_EQ(result.protocol, AppProtocol::kUnknown);
  EXPECT_FALSE(result.domain.has_value());
  EXPECT_EQ(inspect_payload({}).protocol, AppProtocol::kUnknown);
}

}  // namespace
}  // namespace tamper::appproto
