// The §6 evasive censor: invisible to the tap, still censoring the client.
#include <gtest/gtest.h>

#include "appproto/tls.h"
#include "core/classifier.h"
#include "core/weaver.h"
#include "middlebox/evasive.h"
#include "tcp/session.h"

namespace tamper::middlebox {
namespace {

using namespace net::tcpflag;

struct EvasiveRun {
  tcp::SessionResult result;
  capture::ConnectionSample sample;
  bool triggered = false;
};

EvasiveRun run_evasive(const std::string& requested, const std::string& blocked,
                       std::uint64_t seed = 1) {
  tcp::EndpointConfig client_cfg;
  client_cfg.addr = net::IpAddress::v4(11, 0, 0, 2);
  client_cfg.port = 40000;
  client_cfg.is_client = true;
  client_cfg.isn = 5000;
  common::Rng payload_rng(seed);
  appproto::ClientHelloSpec hello;
  hello.sni = requested;
  client_cfg.request_segments = {appproto::build_client_hello(hello, payload_rng)};

  tcp::EndpointConfig server_cfg;
  server_cfg.addr = net::IpAddress::v4(198, 18, 0, 1);
  server_cfg.port = 443;
  server_cfg.is_client = false;
  server_cfg.isn = 90000;
  server_cfg.response_size = 2500;

  tcp::SessionConfig session;
  session.start_time = 1'673'700'000.0;
  TriggerSet triggers;
  triggers.add_exact_domain(blocked);
  EvasiveCensor censor(std::move(triggers), session.geometry, common::Rng(seed ^ 9));

  tcp::TcpEndpoint client(client_cfg, common::Rng(seed + 1));
  tcp::TcpEndpoint server(server_cfg, common::Rng(seed + 2));
  client.set_peer(server_cfg.addr, server_cfg.port);
  server.set_peer(client_cfg.addr, client_cfg.port);
  common::Rng rng(seed + 3);

  EvasiveRun run;
  run.result = tcp::simulate_session(client, server, &censor, session, rng);
  run.triggered = censor.triggered();
  run.sample.client_ip = client_cfg.addr;
  run.sample.server_ip = server_cfg.addr;
  run.sample.client_port = client_cfg.port;
  run.sample.server_port = server_cfg.port;
  for (const auto& traced : run.result.server_inbound) {
    if (run.sample.packets.size() >= 10) break;
    run.sample.packets.push_back(capture::observe(traced.pkt));
  }
  run.sample.observation_end_sec = static_cast<std::int64_t>(run.result.end_time);
  return run;
}

TEST(EvasiveCensor, InvisibleToPassiveDetection) {
  const EvasiveRun run = run_evasive("blocked.example", "blocked.example");
  ASSERT_TRUE(run.triggered);
  const auto verdict = core::SignatureClassifier{}.classify(run.sample);
  EXPECT_FALSE(verdict.possibly_tampered);
  EXPECT_TRUE(verdict.graceful);  // the impersonated close looks perfect
  EXPECT_FALSE(core::weaver_detect(run.sample).forged_rst_detected);
}

TEST(EvasiveCensor, ClientNeverReceivesContent) {
  const EvasiveRun run = run_evasive("blocked.example", "blocked.example");
  for (const auto& traced : run.result.full_trace) {
    if (traced.dir == tcp::Direction::kServerToClient && !traced.injected) {
      EXPECT_TRUE(traced.pkt.payload.empty());
    }
  }
}

TEST(EvasiveCensor, ServerSeesGracefulFinHandshake) {
  const EvasiveRun run = run_evasive("blocked.example", "blocked.example");
  bool fin_seen = false;
  for (const auto& pkt : run.sample.packets)
    if (pkt.has(kFin)) fin_seen = true;
  EXPECT_TRUE(fin_seen);
}

TEST(EvasiveCensor, InjectedAcksMimicClientFingerprint) {
  const EvasiveRun run = run_evasive("blocked.example", "blocked.example");
  // All inbound packets (genuine + impersonated) share a consistent TTL and
  // a near-contiguous IP-ID sequence — the mimicry that defeats Figs. 2-3.
  const auto& packets = run.sample.packets;
  ASSERT_GE(packets.size(), 4u);
  for (const auto& pkt : packets) EXPECT_EQ(pkt.ttl, packets.front().ttl);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    const std::uint16_t delta = packets[i].ip_id - packets[i - 1].ip_id;
    EXPECT_LE(delta, 3) << i;
  }
}

TEST(EvasiveCensor, DoesNotTouchUnblockedDomains) {
  const EvasiveRun run = run_evasive("innocent.example", "blocked.example");
  EXPECT_FALSE(run.triggered);
  // The real client completed the exchange and got the content.
  bool content_to_client = false;
  for (const auto& traced : run.result.full_trace) {
    if (traced.dir == tcp::Direction::kServerToClient && !traced.pkt.payload.empty())
      content_to_client = true;
  }
  EXPECT_TRUE(content_to_client);
}

TEST(WeaverOptions, MissingTimestampOptionOnRstFires) {
  capture::ConnectionSample sample;
  sample.ip_version = net::IpVersion::kV4;
  auto mk = [](std::uint8_t flags, std::uint32_t seq, std::uint32_t ack, bool options,
               std::uint16_t len = 0) {
    capture::ObservedPacket p;
    p.ts_sec = 1000;
    p.flags = flags;
    p.seq = seq;
    p.ack = ack;
    p.ttl = 52;
    p.ip_id = 500;
    p.has_tcp_options = options;
    p.payload_len = len;
    return p;
  };
  sample.packets = {mk(kSyn, 100, 0, true), mk(kAck, 101, 9000, true),
                    mk(kPsh | kAck, 101, 9000, true, 200),
                    mk(kRst, 301, 9000, false)};  // forged: no options
  sample.observation_end_sec = 1030;
  const auto verdict = core::weaver_detect(sample);
  EXPECT_TRUE(verdict.fired("OPTIONS"));

  // The genuine stack's own reset carries its options: no OPTIONS evidence.
  sample.packets.back().has_tcp_options = true;
  EXPECT_FALSE(core::weaver_detect(sample).fired("OPTIONS"));
}

}  // namespace
}  // namespace tamper::middlebox
