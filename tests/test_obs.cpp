// Observability suite: metrics registry semantics (get-or-create, runtime
// name validation, histogram bucket-boundary edges), byte-stable ordered
// emission in both formats, the Chrome-trace ring (wrap, terminator), the
// leveled logger under a ManualClock, the output validators on good and
// broken inputs, and the service-level contracts — twin identically-seeded
// supervised runs emit identical snapshot bytes, a chaos campaign's
// degradation counters agree with DegradedStats, and RunSummary is a delta
// view over registry counters (the single bookkeeping path).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/pipeline.h"
#include "common/binio.h"
#include "fault/chaos.h"
#include "obs/anomaly.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "service/supervisor.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper {
namespace {

namespace fs = std::filesystem;

const world::World& shared_world() {
  static const world::World kWorld{
      world::WorldConfig{.domains = {.domain_count = 10'000}, .seed = 0x0b5}};
  return kWorld;
}

std::vector<capture::ConnectionSample> generate_samples(std::size_t n,
                                                        std::uint64_t seed = 0xfade) {
  world::TrafficConfig traffic;
  traffic.seed = seed;
  world::TrafficGenerator generator(shared_world(), traffic);
  std::vector<capture::ConnectionSample> out;
  out.reserve(n);
  generator.generate(n, [&](world::LabeledConnection&& conn) {
    out.push_back(std::move(conn.sample));
  });
  return out;
}

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("tamper_obs_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
  fs::path path;
};

/// Value of one sample line (`series value`) in a Prometheus exposition.
double sample_value(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n')
      return std::stod(text.substr(pos + needle.size()));
    pos += needle.size();
  }
  ADD_FAILURE() << "series not found: " << series;
  return -1.0;
}

// ----------------------------------------------------------------- metrics --

TEST(MetricNames, SnakeCaseOnly) {
  EXPECT_TRUE(obs::valid_metric_name("tamper_ingest_samples_total"));
  EXPECT_TRUE(obs::valid_metric_name("x"));
  EXPECT_TRUE(obs::valid_metric_name("a1_b2"));
  EXPECT_FALSE(obs::valid_metric_name(""));
  EXPECT_FALSE(obs::valid_metric_name("Tamper_total"));
  EXPECT_FALSE(obs::valid_metric_name("1starts_with_digit"));
  EXPECT_FALSE(obs::valid_metric_name("_starts_with_underscore"));
  EXPECT_FALSE(obs::valid_metric_name("has-dash"));
  EXPECT_FALSE(obs::valid_metric_name("has.dot"));
}

TEST(MetricValues, DeterministicRendering) {
  EXPECT_EQ(obs::format_metric_value(0.0), "0");
  EXPECT_EQ(obs::format_metric_value(42.0), "42");
  EXPECT_EQ(obs::format_metric_value(-7.0), "-7");
  EXPECT_EQ(obs::format_metric_value(0.25), "0.25");
  EXPECT_EQ(obs::format_metric_value(0.00025), "0.00025");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(obs::format_metric_value(inf), "+Inf");
  EXPECT_EQ(obs::format_metric_value(-inf), "-Inf");
  EXPECT_EQ(obs::format_metric_value(std::nan("")), "NaN");
}

TEST(Counter, AddReturnsPostValueAndIncrementToIsMonotone) {
  obs::Counter c;
  EXPECT_EQ(c.add(), 1u);
  EXPECT_EQ(c.add(9), 10u);
  c.increment_to(25);
  EXPECT_EQ(c.value(), 25u);
  c.increment_to(7);  // never backwards
  EXPECT_EQ(c.value(), 25u);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1.0 -> bucket 0
  h.observe(1.0);   // == bound: inclusive -> bucket 0
  h.observe(1.0000001);  // just above -> bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.5);   // above every bound -> +Inf overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);
  EXPECT_EQ(snap.bucket_counts[1], 2u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.0000001 + 2.0 + 4.0 + 4.5);
}

TEST(Histogram, NanLandsInOverflowBucket) {
  obs::Histogram h({1.0});
  h.observe(std::nan(""));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.bucket_counts[0], 0u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.count, 1u);
}

TEST(Histogram, RejectsUnsortedOrNonFiniteBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(Registry, GetOrCreateReturnsTheSameSeries) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("obs_test_hits_total", "hits");
  // tamperlint-allow(R6): exercising get-or-create, the one sanctioned duplicate
  obs::Counter& b = reg.counter("obs_test_hits_total", "hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, MismatchedReRegistrationThrows) {
  obs::Registry reg;
  reg.counter("obs_test_mismatch_total", "original help");
  // tamperlint-allow(R6): exercising the mismatch guard itself
  EXPECT_THROW(reg.counter("obs_test_mismatch_total", "different help"),
               std::logic_error);
  // tamperlint-allow(R6): exercising the mismatch guard itself
  EXPECT_THROW(reg.gauge("obs_test_mismatch_total", "original help"),
               std::logic_error);
}

TEST(Registry, RejectsBadNamesAtRuntime) {
  obs::Registry reg;
  // tamperlint-allow(R6): the runtime guard under test wants a bad name
  EXPECT_THROW(reg.counter("Bad_Name", "capitals"), std::invalid_argument);
  // tamperlint-allow(R6): the runtime guard under test wants a bad label key
  EXPECT_THROW(reg.counter_family("obs_test_labeled_total", "help", {"Bad-Key"}),
               std::invalid_argument);
}

TEST(Registry, LabelArityIsChecked) {
  obs::Registry reg;
  auto& fam = reg.counter_family("obs_test_arity_total", "help", {"a", "b"});
  EXPECT_THROW(fam.with({"only_one"}), std::invalid_argument);
  fam.with({"x", "y"}).add();
}

TEST(Registry, PrometheusExpositionIsByteExact) {
  obs::Registry reg;
  reg.counter("obs_golden_events_total", "Events with a \\ and\nnewline").add(3);
  auto& fam = reg.counter_family("obs_golden_sheds_total", "Sheds", {"reason"});
  fam.with({"quote\"backslash\\nl\n"}).add(1);
  fam.with({"plain"}).add(2);
  reg.gauge("obs_golden_depth", "Depth").set(2.5);
  reg.histogram("obs_golden_seconds", "Latency", {0.25, 1.0}).observe(0.25);

  const std::string expected =
      "# HELP obs_golden_depth Depth\n"
      "# TYPE obs_golden_depth gauge\n"
      "obs_golden_depth 2.5\n"
      "# HELP obs_golden_events_total Events with a \\\\ and\\nnewline\n"
      "# TYPE obs_golden_events_total counter\n"
      "obs_golden_events_total 3\n"
      "# HELP obs_golden_seconds Latency\n"
      "# TYPE obs_golden_seconds histogram\n"
      "obs_golden_seconds_bucket{le=\"0.25\"} 1\n"
      "obs_golden_seconds_bucket{le=\"1\"} 1\n"
      "obs_golden_seconds_bucket{le=\"+Inf\"} 1\n"
      "obs_golden_seconds_sum 0.25\n"
      "obs_golden_seconds_count 1\n"
      "# HELP obs_golden_sheds_total Sheds\n"
      "# TYPE obs_golden_sheds_total counter\n"
      "obs_golden_sheds_total{reason=\"plain\"} 2\n"
      "obs_golden_sheds_total{reason=\"quote\\\"backslash\\\\nl\\n\"} 1\n";
  EXPECT_EQ(reg.prometheus_text(), expected);

  const auto check = obs::validate_prometheus_text(reg.prometheus_text());
  EXPECT_TRUE(check.ok) << check.error << " at line " << check.line;
  EXPECT_EQ(check.families, 4u);
}

TEST(Registry, JsonSnapshotIsStableAcrossIdenticalRegistries) {
  const auto build = [] {
    auto reg = std::make_unique<obs::Registry>();
    reg->counter("obs_twin_events_total", "events").add(7);
    reg->histogram("obs_twin_seconds", "latency", {0.5}).observe(0.1);
    reg->gauge("obs_twin_depth", "depth").set(4);
    return reg;
  };
  auto a = build();
  auto b = build();
  EXPECT_EQ(a->json_text(), b->json_text());
  EXPECT_EQ(a->prometheus_text(), b->prometheus_text());
  EXPECT_NE(a->json_text().find("\"schema\""), std::string::npos);
  EXPECT_NE(a->json_text().find("tamper-metrics/1"), std::string::npos);
}

TEST(Registry, CollectorsRefreshMirrorsBeforeEverySnapshot) {
  obs::Registry reg;
  std::uint64_t source = 5;
  obs::Counter& mirror = reg.counter("obs_mirrored_total", "mirrored");
  const auto id = reg.add_collector([&] { mirror.increment_to(source); });
  EXPECT_NE(reg.prometheus_text().find("obs_mirrored_total 5"), std::string::npos);
  source = 9;
  EXPECT_NE(reg.prometheus_text().find("obs_mirrored_total 9"), std::string::npos);
  reg.remove_collector(id);
  source = 50;
  EXPECT_NE(reg.prometheus_text().find("obs_mirrored_total 9"), std::string::npos);
}

// ------------------------------------------------------------------- trace --

TEST(Tracer, SpanRecordsThroughTheClockSeam) {
  obs::ManualClock clock;
  obs::Tracer tracer(clock, {.capacity = 8});
  clock.set_ns(5'000);
  {
    obs::Tracer::Span span(&tracer, obs::stage::kClassify, obs::stage::kCategory,
                           /*tid=*/7);
    clock.advance_ns(2'500);
  }
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.chrome_json(),
            "[\n"
            "{\"name\":\"classify\",\"cat\":\"pipeline\",\"ph\":\"X\","
            "\"ts\":5,\"dur\":2,\"pid\":1,\"tid\":7}\n"
            "]\n");
  const auto check = obs::validate_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(check.ok) << check.error << " at line " << check.line;
  EXPECT_EQ(check.samples, 1u);
}

TEST(Tracer, NullTracerSpansAreNoOps) {
  obs::Tracer::Span span(nullptr, obs::stage::kIngest, obs::stage::kCategory);
  span.finish();  // must not crash
}

TEST(Tracer, RingWrapKeepsNewestAndCountsDropped) {
  obs::ManualClock clock;
  obs::Tracer tracer(clock, {.capacity = 4});
  static constexpr const char* kNames[] = {"ingest", "sample", "classify",
                                           "aggregate", "checkpoint", "emit"};
  for (std::uint64_t i = 0; i < 6; ++i) {
    clock.set_ns(i * 1'000);
    tracer.record(kNames[i], obs::stage::kCategory, i * 1'000, i * 1'000 + 500);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::string json = tracer.chrome_json();
  EXPECT_EQ(json.find("\"name\":\"ingest\""), std::string::npos);   // dropped
  EXPECT_EQ(json.find("\"name\":\"sample\""), std::string::npos);   // dropped
  // Oldest survivor first.
  EXPECT_LT(json.find("\"name\":\"classify\""), json.find("\"name\":\"emit\""));
  const auto check = obs::validate_chrome_trace(json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.samples, 4u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.chrome_json(), "[\n]\n");
}

TEST(Validators, RejectBrokenPrometheusText) {
  // Sample without a TYPE declaration.
  auto v = obs::validate_prometheus_text("orphan_total 3\n");
  EXPECT_FALSE(v.ok);
  // Families out of ascending order.
  v = obs::validate_prometheus_text(
      "# HELP b_total b\n# TYPE b_total counter\nb_total 1\n"
      "# HELP a_total a\n# TYPE a_total counter\na_total 1\n");
  EXPECT_FALSE(v.ok);
  // Decreasing cumulative bucket counts.
  v = obs::validate_prometheus_text(
      "# HELP h_seconds h\n# TYPE h_seconds histogram\n"
      "h_seconds_bucket{le=\"1\"} 5\n"
      "h_seconds_bucket{le=\"+Inf\"} 3\n"
      "h_seconds_sum 1\nh_seconds_count 5\n");
  EXPECT_FALSE(v.ok);
  // Non-snake_case family name.
  v = obs::validate_prometheus_text("# HELP Bad b\n# TYPE Bad counter\nBad 1\n");
  EXPECT_FALSE(v.ok);
}

TEST(Validators, RejectBrokenTraces) {
  EXPECT_FALSE(obs::validate_chrome_trace("").ok);
  // Missing terminator.
  EXPECT_FALSE(obs::validate_chrome_trace("[\n").ok);
  // Trailing comma before the terminator.
  EXPECT_FALSE(
      obs::validate_chrome_trace(
          "[\n{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":0,"
          "\"pid\":1,\"tid\":0},\n]\n")
          .ok);
  // Event missing a required key.
  EXPECT_FALSE(
      obs::validate_chrome_trace("[\n{\"name\":\"a\",\"ph\":\"X\"}\n]\n").ok);
}

// --------------------------------------------------------------------- log --

TEST(Logger, TextFormatIsByteStableUnderManualClock) {
  obs::ManualClock clock;
  clock.set_ns(1'250'000'000);
  std::ostringstream out;
  obs::Logger logger(out, obs::LogLevel::kInfo, obs::Logger::Format::kText, &clock);
  logger.warn("supervisor", "worker stalled", {{"restarts", "2"}});
  logger.debug("supervisor", "invisible at info level");
  EXPECT_EQ(out.str(),
            "[     1.250000] WARN  supervisor: worker stalled restarts=2\n");
}

TEST(Logger, JsonFormatCarriesLevelComponentAndFields) {
  obs::ManualClock clock;
  clock.set_ns(42);
  std::ostringstream out;
  obs::Logger logger(out, obs::LogLevel::kDebug, obs::Logger::Format::kJson, &clock);
  logger.error("emit", "sink down", {{"attempts", "3"}});
  const std::string line = out.str();
  EXPECT_NE(line.find("\"ts_ns\""), std::string::npos);
  EXPECT_NE(line.find("\"level\""), std::string::npos);
  EXPECT_NE(line.find("error"), std::string::npos);
  EXPECT_NE(line.find("\"component\""), std::string::npos);
  EXPECT_NE(line.find("emit"), std::string::npos);
  EXPECT_NE(line.find("sink down"), std::string::npos);
  EXPECT_NE(line.find("attempts"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "one line per record";
}

TEST(Logger, ParseLogLevelRoundTrips) {
  obs::LogLevel level = obs::LogLevel::kInfo;
  EXPECT_TRUE(obs::parse_log_level("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::parse_log_level("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  EXPECT_FALSE(obs::parse_log_level("LOUD", &level));
}

// ----------------------------------------------------------------- service --

service::ServiceConfig fast_config() {
  service::ServiceConfig cfg;
  cfg.queue_capacity = 4096;
  cfg.checkpoint_every_samples = 0;
  cfg.watchdog_poll = std::chrono::milliseconds(2);
  cfg.stall_timeout = std::chrono::milliseconds(2000);
  cfg.pop_timeout = std::chrono::milliseconds(5);
  return cfg;
}

TEST(ObsService, TwinSeededRunsEmitIdenticalSnapshotBytes) {
  const auto samples = generate_samples(400);
  const auto run = [&](const std::string& tag) {
    ScratchDir dir("twin_" + tag);
    obs::ManualClock clock;
    obs::Registry reg;
    auto cfg = fast_config();
    cfg.checkpoint_path = dir.file("state.ckpt");
    cfg.checkpoint_every_samples = 100;
    cfg.metrics = &reg;
    cfg.clock = &clock;
    service::SupervisedService svc(shared_world(), cfg, nullptr);
    EXPECT_TRUE(svc.start(service::SupervisedService::Resume::kFresh));
    for (const auto& s : samples) EXPECT_TRUE(svc.submit(s));
    const auto summary = svc.stop();
    EXPECT_FALSE(summary.failed) << summary.failure;
    EXPECT_EQ(summary.ingested, samples.size());
    return std::pair{reg.prometheus_text(), reg.json_text()};
  };
  const auto [prom_a, json_a] = run("a");
  const auto [prom_b, json_b] = run("b");
  EXPECT_EQ(prom_a, prom_b) << "prometheus snapshot not byte-stable";
  EXPECT_EQ(json_a, json_b) << "json snapshot not byte-stable";
  const auto check = obs::validate_prometheus_text(prom_a);
  EXPECT_TRUE(check.ok) << check.error << " at line " << check.line;
  EXPECT_GT(check.families, 10u);
}

TEST(ObsService, ChaosDegradationCountersAgreeWithDegradedStats) {
  const auto samples = generate_samples(800);

  fault::ChaosSchedule::Config chaos_cfg;
  chaos_cfg.crash_probability = 0.02;
  fault::ChaosSchedule chaos(0x0b5c4a05, chaos_cfg);

  obs::Registry reg;
  auto cfg = fast_config();
  cfg.queue_capacity = 8;
  cfg.queue_policy = common::QueuePolicy::kShed;
  cfg.max_worker_restarts = 64;
  cfg.metrics = &reg;
  cfg.ingest_hook = [&](std::uint64_t tick) {
    chaos.ingest_tick(tick);
    // Deterministic crashes on top of the probabilistic schedule: the hook
    // tick is monotonic across restarts, so each fires exactly once and the
    // restart path is exercised no matter how short the shed-heavy run is.
    if (tick == 5 || tick == 11 || tick == 17) throw fault::InjectedCrash{};
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();
  ASSERT_FALSE(summary.failed) << summary.failure;
  ASSERT_GT(summary.queue.shed_total(), 0u) << "campaign produced no sheds";

  const std::string text = reg.prometheus_text();  // runs the mirrors
  const analysis::DegradedStats d = svc.pipeline().degraded();
  const auto cause = [&](const char* c) {
    return sample_value(text,
                        std::string("tamper_pipeline_degraded_total{cause=\"") +
                            c + "\"}");
  };
  EXPECT_EQ(cause("empty_samples"), static_cast<double>(d.empty_samples));
  EXPECT_EQ(cause("ingest_errors"), static_cast<double>(d.ingest_errors));
  EXPECT_EQ(cause("malformed_packets"), static_cast<double>(d.malformed_packets));
  EXPECT_EQ(cause("overload_evicted"), static_cast<double>(d.overload_evicted));
  EXPECT_EQ(cause("unparseable_frames"), static_cast<double>(d.unparseable_frames));
  EXPECT_EQ(cause("oversize_frames"), static_cast<double>(d.oversize_frames));
  EXPECT_EQ(cause("truncated_frames"), static_cast<double>(d.truncated_frames));
  EXPECT_EQ(cause("queue_shed_embryonic"),
            static_cast<double>(d.queue_shed_embryonic));
  EXPECT_EQ(cause("queue_shed_other"), static_cast<double>(d.queue_shed_other));

  // Single bookkeeping path: the registry counters ARE the RunSummary.
  EXPECT_EQ(sample_value(text, "tamper_worker_crashes_total"),
            static_cast<double>(summary.worker_crashes));
  EXPECT_EQ(sample_value(text, "tamper_worker_restarts_total"),
            static_cast<double>(summary.worker_restarts));
  EXPECT_EQ(sample_value(text, "tamper_ingest_samples_total"),
            static_cast<double>(summary.ingested));
  EXPECT_EQ(sample_value(text, "tamper_queue_shed_total{reason=\"embryonic\"}") +
                sample_value(text, "tamper_queue_shed_total{reason=\"forced\"}"),
            static_cast<double>(summary.queue.shed_total()));
  EXPECT_GT(summary.worker_crashes, 0u) << "campaign too tame: no crashes";
}

TEST(ObsService, SharedRegistrySurvivesReuseAndSummariesStayDeltas) {
  obs::Registry reg;
  const auto samples = generate_samples(300);
  auto cfg = fast_config();
  cfg.metrics = &reg;
  {
    service::SupervisedService first(shared_world(), cfg, nullptr);
    ASSERT_TRUE(first.start());
    for (std::size_t i = 0; i < 200; ++i) ASSERT_TRUE(first.submit(samples[i]));
    const auto s1 = first.stop();
    EXPECT_EQ(s1.ingested, 200u);
  }
  {
    service::SupervisedService second(shared_world(), cfg, nullptr);
    ASSERT_TRUE(second.start());
    for (std::size_t i = 200; i < 300; ++i) ASSERT_TRUE(second.submit(samples[i]));
    const auto s2 = second.stop();
    // The summary is a per-run delta even though the counter kept growing.
    EXPECT_EQ(s2.ingested, 100u);
    const std::string text = second.metrics().prometheus_text();
    EXPECT_EQ(sample_value(text, "tamper_ingest_samples_total"), 300.0);
  }
}

// -------------------------------------------------- timeseries & anomaly --

std::vector<std::uint8_t> ring_bytes(const obs::EpochRing& ring) {
  common::BinWriter w;
  ring.snapshot(w);
  return w.bytes();
}

TEST(TimeseriesRing, WindowWrapKeepsNewestAndRefusesStalePoints) {
  obs::EpochRing ring({.epoch_length_sec = 1, .max_epochs = 3, .max_series = 8});
  for (std::int64_t e = 0; e <= 5; ++e)
    ring.record_epoch("connections", "", obs::SeriesMerge::kSum, e,
                      static_cast<double>(10 * (e + 1)));
  EXPECT_EQ(ring.min_epoch(), 3);
  EXPECT_EQ(ring.max_epoch(), 5);
  EXPECT_EQ(ring.point_count(), 3u);
  EXPECT_EQ(ring.dropped_points(), 3u);  // epochs 0..2 trimmed by the window
  // A point older than the retained window is refused up front.
  ring.record_epoch("connections", "", obs::SeriesMerge::kSum, 1, 999.0);
  EXPECT_EQ(ring.point_count(), 3u);
  EXPECT_EQ(ring.dropped_points(), 4u);
  // Within an epoch: kSum is last-write-wins (cumulative), kMax keeps max.
  ring.record_epoch("connections", "", obs::SeriesMerge::kSum, 5, 77.0);
  ring.record_epoch("level", "", obs::SeriesMerge::kMax, 5, 3.0);
  ring.record_epoch("level", "", obs::SeriesMerge::kMax, 5, 1.0);
  const auto& series = ring.series();
  EXPECT_EQ(series.find(obs::SeriesKey{"connections", ""})->second.points.at(5), 77.0);
  EXPECT_EQ(series.find(obs::SeriesKey{"level", ""})->second.points.at(5), 3.0);
}

TEST(TimeseriesRing, SeriesCapEvictsBySortOrderDeterministically) {
  obs::EpochRing ring({.epoch_length_sec = 1, .max_epochs = 8, .max_series = 2});
  ring.record_epoch("a", "", obs::SeriesMerge::kSum, 1, 1.0);
  ring.record_epoch("c", "", obs::SeriesMerge::kSum, 1, 3.0);
  // A key past the cap in sort order is refused...
  ring.record_epoch("d", "", obs::SeriesMerge::kSum, 1, 4.0);
  EXPECT_EQ(ring.series().size(), 2u);
  EXPECT_EQ(ring.dropped_points(), 1u);
  // ...but a smaller key displaces the current last, so the surviving set is
  // always the first max_series keys regardless of arrival order.
  ring.record_epoch("b", "", obs::SeriesMerge::kSum, 1, 2.0);
  ASSERT_EQ(ring.series().size(), 2u);
  EXPECT_NE(ring.series().find(obs::SeriesKey{"a", ""}), ring.series().end());
  EXPECT_NE(ring.series().find(obs::SeriesKey{"b", ""}), ring.series().end());
}

TEST(TimeseriesRing, MergeIsOrderAndGroupingInvariant) {
  const auto make = [](std::int64_t base, double scale) {
    obs::EpochRing ring({.epoch_length_sec = 1, .max_epochs = 4, .max_series = 8});
    for (std::int64_t e = base; e < base + 3; ++e) {
      ring.record_epoch("connections", "", obs::SeriesMerge::kSum, e,
                        scale * static_cast<double>(e + 1));
      ring.record_epoch("level", "", obs::SeriesMerge::kMax, e, scale);
    }
    return ring;
  };
  const obs::EpochRing a = make(0, 1.0), b = make(2, 10.0), c = make(4, 100.0);

  obs::EpochRing left({.epoch_length_sec = 1, .max_epochs = 4, .max_series = 8});
  left.merge_from(a);
  left.merge_from(b);
  left.merge_from(c);
  obs::EpochRing right({.epoch_length_sec = 1, .max_epochs = 4, .max_series = 8});
  // Different order AND different grouping (c+b folded first).
  obs::EpochRing cb({.epoch_length_sec = 1, .max_epochs = 4, .max_series = 8});
  cb.merge_from(c);
  cb.merge_from(b);
  right.merge_from(cb);
  right.merge_from(a);
  EXPECT_EQ(ring_bytes(left), ring_bytes(right));
  // Identity: merging into a default ring reproduces the source bytes.
  obs::EpochRing identity;
  identity.merge_from(a);
  EXPECT_EQ(ring_bytes(identity), ring_bytes(a));
}

TEST(TimeseriesRing, SnapshotRestoreSnapshotIsByteStable) {
  obs::EpochRing ring({.epoch_length_sec = 60, .max_epochs = 16, .max_series = 8});
  ring.record_epoch("connections", "", obs::SeriesMerge::kSum, 3, 12.0);
  ring.record_epoch("country_matches", "xa", obs::SeriesMerge::kSum, 3, 5.0);
  ring.record_epoch("country_matches", "xb", obs::SeriesMerge::kSum, 4, 6.0);
  const auto first = ring_bytes(ring);

  obs::EpochRing restored;
  common::BinReader r(first);
  restored.restore(r);
  EXPECT_EQ(ring_bytes(restored), first);
  EXPECT_EQ(restored.config().epoch_length_sec, 60);
  EXPECT_EQ(restored.max_epoch(), 4);
}

TEST(TimeseriesRing, CursorIsAPureLookupStrategy) {
  // The sorted-run cursor must produce byte-identical ring state to plain
  // record() calls — including when the run is NOT actually sorted and the
  // cursor has to fall back.
  const std::vector<std::pair<std::string, double>> labels = {
      {"aa", 1.0}, {"ab", 2.0}, {"zz", 3.0}, {"ba", 4.0}, {"aa", 5.0}};
  obs::EpochRing plain({.epoch_length_sec = 1, .max_epochs = 4, .max_series = 4});
  obs::EpochRing cursed({.epoch_length_sec = 1, .max_epochs = 4, .max_series = 4});
  for (std::int64_t epoch = 0; epoch < 6; ++epoch) {
    obs::EpochRing::Cursor cursor(cursed);
    for (const auto& [label, value] : labels) {
      plain.record_epoch("country_matches", label, obs::SeriesMerge::kSum, epoch,
                         value * static_cast<double>(epoch + 1));
      cursor.record_epoch("country_matches", label, obs::SeriesMerge::kSum, epoch,
                          value * static_cast<double>(epoch + 1));
    }
  }
  EXPECT_EQ(ring_bytes(cursed), ring_bytes(plain));
  EXPECT_EQ(cursed.dropped_points(), plain.dropped_points());
}

obs::EpochRing steady_ring(std::int64_t epochs, double delta, double shift_at_last) {
  obs::EpochRing ring({.epoch_length_sec = 1, .max_epochs = 168, .max_series = 8});
  double total = 0.0;
  for (std::int64_t e = 0; e < epochs; ++e) {
    total += e + 1 == epochs ? shift_at_last : delta;
    ring.record_epoch("possibly_tampered", "", obs::SeriesMerge::kSum, e, total);
  }
  return ring;
}

TEST(AnomalyScan, SeededRateShiftRaisesExactlyOneEvent) {
  // Deltas of 10 for 10 epochs, then a 100 jump: one event, at the jump.
  const obs::EpochRing ring = steady_ring(11, 10.0, 100.0);
  const auto scan =
      obs::scan_anomalies(ring, obs::default_series_catalog(), obs::AnomalyConfig{});
  ASSERT_EQ(scan.events.size(), 1u) << scan.events.size() << " events";
  EXPECT_EQ(scan.events[0].family, "possibly_tampered");
  EXPECT_EQ(scan.events[0].epoch, 10);
  EXPECT_EQ(scan.events[0].delta, 100.0);
  EXPECT_GT(scan.events[0].score, obs::AnomalyConfig{}.z_threshold);
  EXPECT_EQ(scan.suppressed_degraded, 0u);
  EXPECT_EQ(scan.suppressed_gap, 0u);
  // Pure function: the same ring re-derives the identical event list.
  const auto again =
      obs::scan_anomalies(ring, obs::default_series_catalog(), obs::AnomalyConfig{});
  EXPECT_TRUE(again.events == scan.events);
}

TEST(AnomalyScan, DegradedEpochRaisesNothing) {
  const obs::EpochRing ring = steady_ring(11, 10.0, 100.0);
  const auto scan = obs::scan_anomalies(ring, obs::default_series_catalog(),
                                        obs::AnomalyConfig{}, {10});
  EXPECT_TRUE(scan.events.empty());
  EXPECT_GT(scan.suppressed_degraded, 0u);
}

TEST(AnomalyScan, EpochGapsAreSuppressedNotScored) {
  obs::EpochRing ring({.epoch_length_sec = 1, .max_epochs = 168, .max_series = 8});
  double total = 0.0;
  for (std::int64_t e = 0; e < 8; ++e) {
    total += 10.0;
    // Epoch 5 is missing: the 4 -> 6 delta spans a gap and must not score,
    // however large it looks.
    if (e == 5) continue;
    if (e == 6) total += 1000.0;
    ring.record_epoch("possibly_tampered", "", obs::SeriesMerge::kSum, e, total);
  }
  const auto scan =
      obs::scan_anomalies(ring, obs::default_series_catalog(), obs::AnomalyConfig{});
  EXPECT_TRUE(scan.events.empty());
  EXPECT_GT(scan.suppressed_gap, 0u);
}

TEST(AnomalyScan, InputNoiseDoesNotMarkTheEpochDegraded) {
  // A stray junk flow (zero packets) is noise, not coverage loss: the
  // `degraded` trends series must stay flat so the watchdog keeps scoring
  // the epoch instead of suppressing it.
  analysis::Pipeline pipeline(shared_world());
  auto samples = generate_samples(100);
  capture::ConnectionSample empty = samples.front();
  empty.packets.clear();
  pipeline.ingest(empty);
  for (const auto& s : samples) pipeline.ingest(s);
  pipeline.sample_trends();

  EXPECT_EQ(pipeline.degraded().empty_samples, 1u);
  EXPECT_EQ(pipeline.degraded().coverage_loss(), 0u);
  EXPECT_TRUE(obs::epochs_where_rising(pipeline.trends(), "degraded").empty());
  const auto scan = obs::scan_anomalies(
      pipeline.trends(), obs::default_series_catalog(), obs::AnomalyConfig{},
      obs::epochs_where_rising(pipeline.trends(), "degraded"));
  EXPECT_EQ(scan.suppressed_degraded, 0u);
}

TEST(Validators, AcceptRealTimeseriesAndRejectBroken) {
  obs::EpochRing ring({.epoch_length_sec = 3600, .max_epochs = 8, .max_series = 8});
  ring.record_epoch("connections", "", obs::SeriesMerge::kSum, 1, 10.0);
  ring.record_epoch("connections", "", obs::SeriesMerge::kSum, 2, 25.0);
  obs::TimeseriesScope scope;
  scope.name = "local";
  scope.ring = &ring;
  scope.epochs.push_back({.epoch = 1, .degraded = false});
  scope.epochs.push_back({.epoch = 2, .degraded = true});
  std::ostringstream out;
  obs::write_timeseries_json(out, {scope}, 3600, /*pretty=*/true);
  const auto good = obs::validate_timeseries_json(out.str());
  EXPECT_TRUE(good.ok) << good.error << " at line " << good.line;

  EXPECT_FALSE(obs::validate_timeseries_json("{}").ok);
  EXPECT_FALSE(obs::validate_timeseries_json(
                   "{\"schema\": \"tamper-timeseries/2\", \"epoch_length_sec\": 1, "
                   "\"scopes\": []}")
                   .ok);
  EXPECT_FALSE(obs::validate_timeseries_json(
                   "{\"schema\": \"tamper-timeseries/1\", \"epoch_length_sec\": 0, "
                   "\"scopes\": []}")
                   .ok);
  // Epochs inside a series must ascend strictly.
  EXPECT_FALSE(
      obs::validate_timeseries_json(
          "{\"schema\": \"tamper-timeseries/1\", \"epoch_length_sec\": 1, "
          "\"scopes\": [{\"scope\": \"local\", \"series\": [{\"family\": \"c\", "
          "\"label\": \"\", \"merge\": \"sum\", \"points\": [{\"epoch\": 2, "
          "\"value\": 1}, {\"epoch\": 1, \"value\": 2}]}], \"epochs\": [], "
          "\"anomalies\": []}]}")
          .ok);
}

TEST(ObsService, PrivateRegistryIsCreatedWhenNoneConfigured) {
  const auto samples = generate_samples(50);
  service::SupervisedService svc(shared_world(), fast_config(), nullptr);
  ASSERT_TRUE(svc.start());
  for (const auto& s : samples) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();
  EXPECT_EQ(summary.ingested, samples.size());
  const std::string text = svc.metrics().prometheus_text();
  EXPECT_EQ(sample_value(text, "tamper_ingest_samples_total"),
            static_cast<double>(samples.size()));
  const auto check = obs::validate_prometheus_text(text);
  EXPECT_TRUE(check.ok) << check.error << " at line " << check.line;
}

}  // namespace
}  // namespace tamper
