// Overload-control suite: OverloadController unit contracts (token
// bucket, ladder hysteresis, per-rung admission policy, circuit
// breaker), fault::OverloadGenerator determinism, and 32 seeded
// campaigns (8 seeds x 4 scenarios) driving a synchronous ingest model
// with a ManualClock. The campaigns are the PR's evidence: memory stays
// bounded (queue <= capacity, spool <= cap), every shed sample is
// counted (offered == admitted + shed, mirrored into DegradedStats),
// report staleness outside forced sink outages is <= 2 report
// intervals, and twin-seeded runs produce byte-identical metrics and
// Radar JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "control/overload.h"
#include "fault/overload.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "service/sink.h"
#include "service/supervisor.h"
#include "world/world.h"

namespace tamper {
namespace {

namespace fs = std::filesystem;

const world::World& shared_world() {
  static const world::World kWorld{
      world::WorldConfig{.domains = {.domain_count = 2'000}, .seed = 0xc0de}};
  return kWorld;
}

/// Unique scratch directory per use, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("tamper_control_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

constexpr std::uint64_t kNsPerSec = 1'000'000'000;

control::OverloadConfig base_config(const obs::ManualClock& clock) {
  control::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.clock = &clock;
  return cfg;
}

/// Drive `n` observe() calls at the given queue depth.
void observe_n(control::OverloadController& c, std::uint32_t n,
               std::size_t depth, std::size_t capacity,
               std::size_t spool = 0) {
  for (std::uint32_t i = 0; i < n; ++i) c.observe({depth, capacity, spool});
}

/// Escalate the ladder by `rungs` using pure queue pressure.
void escalate(control::OverloadController& c, const control::OverloadConfig& cfg,
              int rungs) {
  for (int r = 0; r < rungs; ++r)
    observe_n(c, cfg.escalate_after, 100, 100);
}

// ---------------------------------------------------- controller units --

TEST(OverloadController, TokenBucketRefillsFromInjectedClock) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.admit_rate_per_sec = 10.0;
  cfg.admit_burst = 2.0;
  control::OverloadController c(cfg);

  EXPECT_TRUE(c.admit(false, 100).admit);
  EXPECT_TRUE(c.admit(false, 101).admit);
  const auto refused = c.admit(false, 102);
  EXPECT_FALSE(refused.admit);
  EXPECT_EQ(refused.reason, control::DropReason::kRateLimited);

  // 100 ms at 10 tokens/s refills exactly one token.
  clock.advance_ns(100'000'000);
  EXPECT_TRUE(c.admit(false, 103).admit);
  EXPECT_FALSE(c.admit(false, 104).admit);

  const auto s = c.stats();
  EXPECT_EQ(s.offered, 5u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rate_limited, 2u);
  EXPECT_EQ(s.offered, s.admitted + s.shed_total());
}

TEST(OverloadController, BucketCapsAtBurstAcrossLongIdle) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.admit_rate_per_sec = 10.0;
  cfg.admit_burst = 3.0;
  control::OverloadController c(cfg);
  // Drain, then idle for an hour: the bucket must hold burst, not 36k.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(c.admit(false, 1).admit);
  clock.advance_ns(3600 * kNsPerSec);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += c.admit(false, 2).admit ? 1 : 0;
  EXPECT_EQ(admitted, 3);
}

TEST(OverloadController, HysteresisEscalatesOneRungPerStreak) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 4;
  control::OverloadController c(cfg);

  observe_n(c, 3, 90, 100);  // above high watermark, but streak too short
  EXPECT_EQ(c.level(), control::Level::kNormal);
  observe_n(c, 1, 90, 100);
  EXPECT_EQ(c.level(), control::Level::kSampleDown);
  // The streak resets after a transition: three more are not enough.
  observe_n(c, 3, 90, 100);
  EXPECT_EQ(c.level(), control::Level::kSampleDown);
  observe_n(c, 1, 90, 100);
  EXPECT_EQ(c.level(), control::Level::kEmbryonicShed);
  EXPECT_EQ(c.stats().escalations, 2u);
  EXPECT_EQ(c.stats().peak_level, control::Level::kEmbryonicShed);
}

TEST(OverloadController, CalmStreakDeescalatesOneRung) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 4;
  cfg.deescalate_after = 6;
  control::OverloadController c(cfg);
  escalate(c, cfg, 2);
  ASSERT_EQ(c.level(), control::Level::kEmbryonicShed);

  observe_n(c, 5, 10, 100);  // below low watermark, streak too short
  EXPECT_EQ(c.level(), control::Level::kEmbryonicShed);
  observe_n(c, 1, 10, 100);
  EXPECT_EQ(c.level(), control::Level::kSampleDown);
  EXPECT_EQ(c.stats().deescalations, 1u);
  // Peak level is sticky.
  EXPECT_EQ(c.stats().peak_level, control::Level::kEmbryonicShed);
}

TEST(OverloadController, MidBandHoldsLevelAndResetsStreaks) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 4;
  cfg.deescalate_after = 4;
  control::OverloadController c(cfg);
  escalate(c, cfg, 1);
  ASSERT_EQ(c.level(), control::Level::kSampleDown);

  // Between the watermarks (40%..75% of 100): hysteresis holds, and the
  // interleaved mid-band samples keep resetting both streaks.
  for (int i = 0; i < 50; ++i) {
    c.observe({90, 100, 0});
    c.observe({60, 100, 0});
    c.observe({10, 100, 0});
    c.observe({60, 100, 0});
  }
  EXPECT_EQ(c.level(), control::Level::kSampleDown);
  EXPECT_EQ(c.stats().escalations, 1u);
  EXPECT_EQ(c.stats().deescalations, 0u);
}

TEST(OverloadController, SpoolDepthAlsoCountsAsPressure) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 3;
  cfg.spool_high_watermark = 8;
  control::OverloadController c(cfg);
  // Queue empty, but the emitter spool is filling: still pressure.
  observe_n(c, 3, 0, 100, /*spool=*/8);
  EXPECT_EQ(c.level(), control::Level::kSampleDown);
}

TEST(OverloadController, SampleDownStrideAdmitsOneInFour) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 4;
  control::OverloadController c(cfg);
  escalate(c, cfg, 1);
  ASSERT_EQ(c.level(), control::Level::kSampleDown);

  std::uint64_t admitted = 0;
  for (int i = 0; i < 16; ++i) admitted += c.admit(false, 1).admit ? 1 : 0;
  EXPECT_EQ(admitted, 4u);
  EXPECT_EQ(c.stats().sampled_down, 12u);
}

TEST(OverloadController, EmbryonicShedRungRefusesBareSynsOnly) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 4;
  control::OverloadController c(cfg);
  escalate(c, cfg, 2);
  ASSERT_EQ(c.level(), control::Level::kEmbryonicShed);

  // Every embryonic offer is refused with the dedicated reason, no matter
  // where the stride counter stands.
  for (int i = 0; i < 16; ++i) {
    const auto d = c.admit(true, 7);
    EXPECT_FALSE(d.admit);
    EXPECT_EQ(d.reason, control::DropReason::kEmbryonicShed);
  }
  EXPECT_EQ(c.stats().embryonic_shed, 16u);
  // Non-embryonic flows still get through the rung's 1-in-8 stride.
  std::uint64_t admitted = 0;
  for (int i = 0; i < 32; ++i) admitted += c.admit(false, 8).admit ? 1 : 0;
  EXPECT_EQ(admitted, 4u);
}

TEST(OverloadController, SheddingRefusesEveryNewFlow) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 2;
  control::OverloadController c(cfg);
  escalate(c, cfg, 4);
  ASSERT_EQ(c.level(), control::Level::kShedding);

  for (int i = 0; i < 8; ++i) {
    const auto d = c.admit(i % 2 == 0, 9);
    EXPECT_FALSE(d.admit);
    EXPECT_EQ(d.reason, control::DropReason::kRejected);
    EXPECT_EQ(d.level, control::Level::kShedding);
  }
  const auto s = c.stats();
  EXPECT_EQ(s.rejected, 8u);
  EXPECT_EQ(s.admitted, 0u);
}

TEST(OverloadController, FirstShedTimestampStampedOnceForPartials) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.admit_rate_per_sec = 1.0;
  cfg.admit_burst = 1.0;
  control::OverloadController c(cfg);

  EXPECT_EQ(c.state().first_shed_ts_sec, 0);
  EXPECT_TRUE(c.admit(false, 500).admit);
  EXPECT_FALSE(c.admit(false, 512).admit);  // first shed: stamp 512
  EXPECT_FALSE(c.admit(false, 900).admit);  // later sheds keep the stamp
  const auto st = c.state();
  EXPECT_EQ(st.first_shed_ts_sec, 512);
  EXPECT_EQ(st.shed_samples, 2u);
}

TEST(OverloadController, BreakerTripsHalfOpensAndCloses) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.breaker_trip_after = 3;
  cfg.breaker_cooldown_ns = 1'000'000;
  control::OverloadController c(cfg);

  c.report_outcome(false);
  c.report_outcome(false);
  EXPECT_FALSE(c.breaker_open());  // two failures: not yet
  c.report_outcome(false);
  EXPECT_TRUE(c.breaker_open());
  EXPECT_EQ(c.stats().breaker_trips, 1u);

  // Past the cooldown the breaker half-opens for a probe.
  clock.advance_ns(cfg.breaker_cooldown_ns + 1);
  EXPECT_FALSE(c.breaker_open());
  // A failed probe re-trips immediately (no need for a fresh streak).
  c.report_outcome(false);
  EXPECT_TRUE(c.breaker_open());
  EXPECT_EQ(c.stats().breaker_trips, 2u);

  // A delivered probe closes it for good.
  clock.advance_ns(cfg.breaker_cooldown_ns + 1);
  c.report_outcome(true);
  EXPECT_FALSE(c.breaker_open());
  c.report_outcome(false);  // a single new failure must not re-trip
  EXPECT_FALSE(c.breaker_open());
}

TEST(OverloadController, MetricsMirrorStats) {
  obs::ManualClock clock;
  auto cfg = base_config(clock);
  cfg.escalate_after = 2;
  cfg.admit_rate_per_sec = 1.0;
  cfg.admit_burst = 1.0;
  control::OverloadController c(cfg);
  obs::Registry registry;
  c.set_obs(&registry);

  escalate(c, cfg, 1);
  (void)c.admit(false, 1);
  (void)c.admit(false, 2);
  c.report_outcome(false);
  c.count_report_skipped();

  const std::string text = registry.prometheus_text();
  for (const char* family :
       {"tamper_overload_level", "tamper_overload_peak_level",
        "tamper_overload_offered_total", "tamper_overload_admitted_total",
        "tamper_overload_shed_total", "tamper_overload_transitions_total",
        "tamper_overload_breaker_open", "tamper_overload_breaker_trips_total",
        "tamper_overload_reports_skipped_total"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  EXPECT_NE(text.find("tamper_overload_level 1"), std::string::npos);
  EXPECT_NE(text.find("tamper_overload_offered_total 2"), std::string::npos);
  c.set_obs(nullptr);
}

// ------------------------------------------------------ generator units --

TEST(OverloadGenerator, SameSeedSameConfigIsByteIdentical) {
  fault::OverloadGenerator::Config gc;
  gc.scenario = fault::OverloadScenario::kSynFlood;
  gc.duration_sec = 2.0;
  fault::OverloadGenerator a(42, gc);
  fault::OverloadGenerator b(42, gc);
  const auto ea = a.run();
  const auto eb = b.run();
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_GT(ea.size(), 0u);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_DOUBLE_EQ(ea[i].at, eb[i].at);
    ASSERT_EQ(ea[i].flood, eb[i].flood);
    ASSERT_EQ(ea[i].sample.packets.size(), eb[i].sample.packets.size());
    ASSERT_EQ(ea[i].sample.client_ip, eb[i].sample.client_ip);
    ASSERT_EQ(ea[i].sample.server_port, eb[i].sample.server_port);
  }
  // A different seed moves the schedule.
  fault::OverloadGenerator other(43, gc);
  const auto eo = other.run();
  bool differs = eo.size() != ea.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i)
    differs = ea[i].at != eo[i].at || !(ea[i].sample.client_ip == eo[i].sample.client_ip);
  EXPECT_TRUE(differs);
}

TEST(OverloadGenerator, RateEnvelopeMatchesScenarioShape) {
  fault::OverloadGenerator::Config gc;
  gc.base_rate_per_sec = 100.0;
  gc.overload_factor = 10.0;
  gc.scenario = fault::OverloadScenario::kSustainedRate;
  fault::OverloadGenerator sustained(1, gc);
  EXPECT_DOUBLE_EQ(sustained.rate_at(3.0), 1000.0);

  gc.scenario = fault::OverloadScenario::kBurstTrain;
  gc.burst_period_sec = 5.0;
  gc.burst_length_sec = 1.0;
  gc.burst_factor = 20.0;
  fault::OverloadGenerator burst(1, gc);
  EXPECT_DOUBLE_EQ(burst.rate_at(0.5), 2000.0);   // inside the burst
  EXPECT_DOUBLE_EQ(burst.rate_at(3.0), 100.0);    // between bursts
  EXPECT_DOUBLE_EQ(burst.rate_at(5.5), 2000.0);   // next period's burst
}

TEST(OverloadGenerator, SynFloodEmitsEmbryonicDecoysAtTheConfiguredFraction) {
  fault::OverloadGenerator::Config gc;
  gc.scenario = fault::OverloadScenario::kSynFlood;
  gc.duration_sec = 3.0;
  gc.flood_fraction = 0.9;
  fault::OverloadGenerator gen(7, gc);
  const auto events = gen.run();
  ASSERT_GT(events.size(), 100u);
  std::uint64_t floods = 0;
  for (const auto& e : events) {
    if (!e.flood) continue;
    ++floods;
    // Decoys are bare SYNs: a single packet, never a full handshake.
    EXPECT_LE(e.sample.packets.size(), 1u);
  }
  EXPECT_EQ(floods, gen.stats().flood_events);
  const double fraction =
      static_cast<double>(floods) / static_cast<double>(events.size());
  EXPECT_NEAR(fraction, 0.9, 0.05);
}

TEST(OverloadGenerator, SlowSinkStallWindowsAreDeterministic) {
  fault::OverloadGenerator::Config gc;
  gc.scenario = fault::OverloadScenario::kSlowSink;
  gc.stall_period_sec = 10.0;
  gc.stall_length_sec = 4.0;
  fault::OverloadGenerator gen(3, gc);
  EXPECT_TRUE(gen.sink_stalled_at(0.5));
  EXPECT_TRUE(gen.sink_stalled_at(3.9));
  EXPECT_FALSE(gen.sink_stalled_at(4.1));
  EXPECT_FALSE(gen.sink_stalled_at(9.9));
  EXPECT_TRUE(gen.sink_stalled_at(10.5));

  gc.scenario = fault::OverloadScenario::kSustainedRate;
  fault::OverloadGenerator other(3, gc);
  EXPECT_FALSE(other.sink_stalled_at(0.5));  // only kSlowSink stalls
}

// -------------------------------------------------- seeded campaigns --

// Synchronous single-threaded ingest model. The real SupervisedService
// runs the same components across threads, where queue depth at observe()
// time depends on scheduling — fine for wiring tests below, useless for
// byte-identical twin runs. Here the queue is modeled: it fills on
// admission and drains at a fixed service rate as a function of the
// generator's simulated time, so every observe()/admit()/emit() is a pure
// function of (seed, scenario) and twin runs must agree to the byte.
struct CampaignOutcome {
  control::OverloadStats overload;
  service::ReportEmitter::Stats emitter;
  std::string metrics_text;
  std::string radar_json;
  std::size_t max_queue_depth = 0;
  std::size_t max_spool_depth = 0;
  std::uint64_t ingested = 0;
  std::uint64_t boundaries = 0;
  std::uint64_t delivered_boundaries = 0;
  // Longest run of failed report boundaries while the sink was healthy —
  // the staleness bound. Failures inside a forced stall window are the
  // fault being injected, not a controller defect, and are excused.
  int max_healthy_failed_streak = 0;
  bool final_delivered = false;
};

constexpr std::size_t kQueueCapacity = 128;
constexpr double kServiceRatePerSec = 250.0;
constexpr std::uint64_t kReportEverySamples = 75;

CampaignOutcome run_campaign(fault::OverloadScenario scenario,
                             std::uint64_t seed, const fs::path& spool_dir) {
  fault::OverloadGenerator::Config gc;
  gc.scenario = scenario;
  gc.duration_sec = 9.0;
  gc.base_rate_per_sec = 150.0;
  fault::OverloadGenerator gen(seed, gc);
  const auto events = gen.run();

  obs::ManualClock clock;
  control::OverloadConfig oc;
  oc.enabled = true;
  oc.clock = &clock;
  oc.admit_rate_per_sec = 400.0;
  oc.admit_burst = 40.0;
  oc.escalate_after = 256;
  oc.deescalate_after = 192;
  control::OverloadController controller(oc);
  obs::Registry registry;
  controller.set_obs(&registry);

  analysis::Pipeline pipeline(shared_world());

  service::MemorySink sink;
  double sim_now = 0.0;
  sink.fail_next = [&] { return gen.sink_stalled_at(sim_now); };
  service::RetryPolicy policy;
  policy.max_attempts = 1;  // fail -> spool immediately; keeps emits pure
  policy.max_spool_depth = 4;
  service::ReportEmitter emitter(sink, policy, spool_dir.string(), seed,
                                 [](double) {});

  CampaignOutcome out;
  double queue_depth = 0.0;
  double last_t = 0.0;
  std::size_t spool_cache = 0;
  int healthy_failed_streak = 0;
  std::uint64_t report_seq = 0;

  const auto emit_boundary = [&](bool force) {
    ++out.boundaries;
    bool delivered = false;
    if (!force && controller.breaker_open()) {
      controller.count_report_skipped();
    } else {
      delivered = emitter.emit("report-" + std::to_string(++report_seq));
      controller.report_outcome(delivered);
    }
    if (delivered) {
      ++out.delivered_boundaries;
      healthy_failed_streak = 0;
    } else if (gen.sink_stalled_at(sim_now)) {
      healthy_failed_streak = 0;  // excused: the injected outage window
    } else {
      ++healthy_failed_streak;
      out.max_healthy_failed_streak =
          std::max(out.max_healthy_failed_streak, healthy_failed_streak);
    }
    spool_cache = emitter.spool_depth();
    out.max_spool_depth = std::max(out.max_spool_depth, spool_cache);
    return delivered;
  };

  for (const auto& event : events) {
    sim_now = event.at;
    clock.set_ns(static_cast<std::uint64_t>(event.at * 1e9));
    queue_depth = std::max(
        0.0, queue_depth - (event.at - last_t) * kServiceRatePerSec);
    last_t = event.at;

    controller.observe({static_cast<std::size_t>(queue_depth), kQueueCapacity,
                        spool_cache});
    const bool embryonic = event.flood || event.sample.packets.size() <= 1;
    const auto decision = controller.admit(
        embryonic, static_cast<std::int64_t>(event.at) + 1);
    pipeline.set_evidence_only(
        !control::policy_for(decision.level).parse_app_proto);
    if (!decision.admit) continue;

    queue_depth = std::min(queue_depth + 1.0,
                           static_cast<double>(kQueueCapacity));
    out.max_queue_depth = std::max(
        out.max_queue_depth, static_cast<std::size_t>(queue_depth));
    pipeline.ingest(event.sample);
    ++out.ingested;
    if (out.ingested % kReportEverySamples == 0) emit_boundary(false);
  }

  // The final report is forced: stop() must flush no matter what the
  // breaker thinks, so end-of-run staleness is zero whenever the sink is
  // reachable at all.
  sim_now = gc.duration_sec;
  clock.set_ns(static_cast<std::uint64_t>(sim_now * 1e9));
  out.final_delivered = emit_boundary(true);

  const auto os = controller.stats();
  pipeline.record_overload_stats(os.rate_limited, os.sampled_down,
                                 os.embryonic_shed, os.rejected);
  const auto es = emitter.stats();
  pipeline.record_sink_stats(es.spool_replay_failures, es.spool_dropped);

  out.overload = os;
  out.emitter = es;
  out.metrics_text = registry.prometheus_text();
  std::ostringstream radar;
  analysis::ReportOptions options;
  options.min_country_connections = 0;
  analysis::write_radar_report(radar, pipeline, options);
  out.radar_json = radar.str();
  controller.set_obs(nullptr);
  return out;
}

/// The invariants every campaign must satisfy, regardless of scenario.
void check_campaign_invariants(const CampaignOutcome& out) {
  const auto& os = out.overload;
  // Accounting identity: every offered sample is admitted or counted shed.
  EXPECT_EQ(os.offered, os.admitted + os.shed_total());
  EXPECT_EQ(os.admitted, out.ingested);
  EXPECT_EQ(os.shed_total(), os.rate_limited + os.sampled_down +
                                 os.embryonic_shed + os.rejected);
  // Every shed is visible in the report's degraded_input section.
  if (os.shed_total() > 0) {
    EXPECT_NE(out.radar_json.find("\"admission_rate_limited\": " +
                                  std::to_string(os.rate_limited)),
              std::string::npos);
    EXPECT_NE(out.radar_json.find("\"admission_sampled_down\": " +
                                  std::to_string(os.sampled_down)),
              std::string::npos);
    EXPECT_NE(out.radar_json.find("\"admission_embryonic_shed\": " +
                                  std::to_string(os.embryonic_shed)),
              std::string::npos);
    EXPECT_NE(out.radar_json.find("\"admission_rejected\": " +
                                  std::to_string(os.rejected)),
              std::string::npos);
    EXPECT_GT(os.peak_level, control::Level::kNormal);
  }
  // Bounded memory: the modeled queue never exceeds capacity and the spool
  // honors its cap.
  EXPECT_LE(out.max_queue_depth, kQueueCapacity);
  EXPECT_LE(out.max_spool_depth, 4u);
  // Staleness: outside forced sink outages, no more than 2 consecutive
  // report intervals go undelivered, and the forced final flush covers the
  // tail whenever the sink is reachable.
  EXPECT_LE(out.max_healthy_failed_streak, 2);
  EXPECT_TRUE(out.final_delivered);
  // Every report boundary is accounted: delivered, spooled/lost by the
  // emitter, or counted as breaker-skipped. Nothing vanishes.
  EXPECT_EQ(out.boundaries, out.emitter.reports + os.reports_skipped);
  // Metrics mirror the controller exactly.
  EXPECT_NE(out.metrics_text.find("tamper_overload_offered_total " +
                                  std::to_string(os.offered)),
            std::string::npos);
  EXPECT_NE(out.metrics_text.find("tamper_overload_admitted_total " +
                                  std::to_string(os.admitted)),
            std::string::npos);
}

constexpr std::uint64_t kCampaignSeeds[] = {11, 23, 37, 41, 53, 67, 79, 97};

/// Run the full campaign twice per seed (twin runs) and apply both the
/// shared invariants and a scenario-specific check.
template <typename ScenarioCheck>
void run_scenario_campaigns(fault::OverloadScenario scenario,
                            const char* tag, ScenarioCheck&& check) {
  for (const std::uint64_t seed : kCampaignSeeds) {
    SCOPED_TRACE(std::string(tag) + " seed=" + std::to_string(seed));
    ScratchDir dir_a(std::string(tag) + "_a_" + std::to_string(seed));
    ScratchDir dir_b(std::string(tag) + "_b_" + std::to_string(seed));
    const CampaignOutcome a = run_campaign(scenario, seed, dir_a.path);
    const CampaignOutcome b = run_campaign(scenario, seed, dir_b.path);
    check_campaign_invariants(a);
    // Twin-seeded runs are byte-identical: same metrics snapshot, same
    // Radar JSON. This is the determinism contract the fleet merger and
    // the paper's reproducibility claims rest on.
    EXPECT_EQ(a.metrics_text, b.metrics_text);
    EXPECT_EQ(a.radar_json, b.radar_json);
    EXPECT_EQ(a.overload.offered, b.overload.offered);
    EXPECT_EQ(a.ingested, b.ingested);
    check(a);
  }
}

TEST(OverloadCampaigns, SustainedRateShedsAndClimbsTheLadder) {
  run_scenario_campaigns(
      fault::OverloadScenario::kSustainedRate, "sustained",
      [](const CampaignOutcome& out) {
        // 10x offered load against a 400/s bucket: heavy rate limiting and
        // at least one escalation driven by queue pressure.
        EXPECT_GT(out.overload.rate_limited, 0u);
        EXPECT_GE(out.overload.escalations, 1u);
        EXPECT_GE(out.overload.peak_level, control::Level::kSampleDown);
        EXPECT_GT(out.delivered_boundaries, 0u);
      });
}

TEST(OverloadCampaigns, BurstTrainEscalatesThenRecovers) {
  run_scenario_campaigns(
      fault::OverloadScenario::kBurstTrain, "burst",
      [](const CampaignOutcome& out) {
        // Bursts push the ladder up; the calm gaps bring it back down —
        // hysteresis must allow recovery, not just escalation.
        EXPECT_GE(out.overload.escalations, 1u);
        EXPECT_GE(out.overload.deescalations, 1u);
        EXPECT_GT(out.delivered_boundaries, 0u);
      });
}

TEST(OverloadCampaigns, SynFloodShedsEmbryonicDecoys) {
  run_scenario_campaigns(
      fault::OverloadScenario::kSynFlood, "synflood",
      [](const CampaignOutcome& out) {
        // Once the ladder reaches kEmbryonicShed the bare-SYN decoys are
        // refused with their own reason code.
        EXPECT_GE(out.overload.peak_level, control::Level::kEmbryonicShed);
        EXPECT_GT(out.overload.embryonic_shed, 0u);
        EXPECT_GT(out.delivered_boundaries, 0u);
      });
}

TEST(OverloadCampaigns, SlowSinkTripsBreakerAndRecovers) {
  run_scenario_campaigns(
      fault::OverloadScenario::kSlowSink, "slowsink",
      [](const CampaignOutcome& out) {
        // Moderate offered load, stalling sink: this campaign exercises
        // the breaker and the spool cap instead of the admission gate.
        EXPECT_EQ(out.overload.rate_limited, 0u);
        EXPECT_GE(out.overload.breaker_trips, 1u);
        EXPECT_GT(out.emitter.spooled, 0u);
        // Delivery resumed after the stall windows.
        EXPECT_GT(out.delivered_boundaries, 0u);
        EXPECT_TRUE(out.final_delivered);
      });
}

// ---------------------------------------------- service-level wiring --

std::vector<capture::ConnectionSample> overload_samples(std::size_t n) {
  fault::OverloadGenerator::Config gc;
  gc.scenario = fault::OverloadScenario::kSustainedRate;
  gc.duration_sec = 1.0;
  gc.base_rate_per_sec = static_cast<double>(n);
  gc.overload_factor = 2.0;
  fault::OverloadGenerator gen(0xabcd, gc);
  auto events = gen.run();
  std::vector<capture::ConnectionSample> out;
  out.reserve(n);
  for (auto& e : events) {
    if (out.size() == n) break;
    out.push_back(std::move(e.sample));
  }
  return out;
}

TEST(OverloadService, FrozenBucketShedsAndReportsDegradedInput) {
  obs::ManualClock clock;  // never advanced: the bucket cannot refill
  service::ServiceConfig cfg;
  cfg.queue_capacity = 64;
  cfg.checkpoint_every_samples = 0;
  cfg.overload.enabled = true;
  cfg.overload.admit_rate_per_sec = 1000.0;
  cfg.overload.admit_burst = 8.0;
  cfg.overload.clock = &clock;
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());

  const auto samples = overload_samples(100);
  ASSERT_EQ(samples.size(), 100u);
  std::uint64_t accepted = 0;
  for (const auto& s : samples) accepted += svc.submit(s) ? 1 : 0;
  const auto summary = svc.stop();

  EXPECT_EQ(summary.overload.offered, 100u);
  EXPECT_EQ(summary.overload.admitted, 8u);
  EXPECT_EQ(summary.overload.rate_limited, 92u);
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(summary.ingested, 8u);

  // stop() folds the controller stats into DegradedStats, so the shed
  // load is visible in the Radar report next to the aggregates it thinned.
  std::ostringstream radar;
  analysis::ReportOptions options;
  options.min_country_connections = 0;
  analysis::write_radar_report(radar, svc.pipeline(), options);
  EXPECT_NE(radar.str().find("\"admission_rate_limited\": 92"),
            std::string::npos);
}

TEST(OverloadService, BreakerSkipsPeriodicReportsButFinalFlushStillRuns) {
  service::MemorySink sink;
  sink.fail_next = [] { return true; };  // the sink is down for the run
  service::RetryPolicy policy;
  policy.max_attempts = 1;
  service::ReportEmitter emitter(sink, policy, "", 1, [](double) {});

  service::ServiceConfig cfg;
  cfg.checkpoint_every_samples = 0;
  cfg.report_every_samples = 10;
  cfg.overload.enabled = true;
  cfg.overload.breaker_trip_after = 2;
  // A cooldown far longer than the run: once tripped, the breaker stays
  // open, so every later periodic report must be counted as skipped.
  cfg.overload.breaker_cooldown_ns = 3'600'000'000'000ULL;
  service::SupervisedService svc(shared_world(), cfg, &emitter);
  ASSERT_TRUE(svc.start());
  for (const auto& s : overload_samples(100)) ASSERT_TRUE(svc.submit(s));
  const auto summary = svc.stop();

  EXPECT_EQ(summary.ingested, 100u);
  EXPECT_GE(summary.overload.breaker_trips, 1u);
  EXPECT_GE(summary.overload.reports_skipped, 1u);
  // The forced final report bypasses the breaker: it was attempted (and
  // lost to the dead sink with no spool dir — counted, not silent).
  const auto es = emitter.stats();
  EXPECT_GE(es.reports, 2u);
  EXPECT_GE(es.lost, 1u);
  // Skipped + emitted covers every report boundary the service crossed.
  EXPECT_EQ(es.reports + summary.overload.reports_skipped,
            11u);  // 10 periodic boundaries + the final flush
}

TEST(OverloadService, EvidenceOnlyRungDisablesAppProtoParsing) {
  obs::ManualClock clock;
  service::ServiceConfig cfg;
  cfg.queue_capacity = 16;
  cfg.checkpoint_every_samples = 0;
  cfg.overload.enabled = true;
  cfg.overload.clock = &clock;
  // Trip straight to kEvidenceOnly with spool pressure: the watermark
  // inputs come from submit(), so drive them via a fake spool cache is
  // not possible here — instead use a tiny escalate_after and saturate
  // the queue faster than the worker drains it.
  cfg.overload.escalate_after = 1;
  cfg.overload.high_watermark = 0.0;  // every observe is pressure
  service::SupervisedService svc(shared_world(), cfg, nullptr);
  ASSERT_TRUE(svc.start());
  const auto samples = overload_samples(30);
  for (const auto& s : samples) (void)svc.submit(s);
  // With every observe a pressure tick and escalate_after=1, the ladder
  // tops out quickly; kEvidenceOnly and above turn DPI off.
  EXPECT_GE(svc.overload_level(), control::Level::kEvidenceOnly);
  EXPECT_TRUE(svc.pipeline().evidence_only());
  const auto summary = svc.stop();
  EXPECT_GE(summary.overload.escalations, 3u);
}

}  // namespace
}  // namespace tamper
