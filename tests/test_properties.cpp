// Property-based tests: invariants that must hold for arbitrary inputs,
// swept across seeds with TEST_P.
#include <gtest/gtest.h>

#include "analysis/evidence.h"
#include "capture/sampler.h"
#include "common/rng.h"
#include "core/classifier.h"
#include "core/weaver.h"
#include "world/traffic.h"

namespace tamper {
namespace {

using namespace net::tcpflag;

// ---- Classifier total robustness: random packet soup never crashes and
// ---- always yields internally consistent verdicts.

class ClassifierSoup : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierSoup, InvariantsHoldOnArbitraryInput) {
  common::Rng rng(GetParam());
  core::SignatureClassifier classifier;
  for (int trial = 0; trial < 400; ++trial) {
    capture::ConnectionSample sample;
    sample.ip_version = rng.chance(0.3) ? net::IpVersion::kV6 : net::IpVersion::kV4;
    const std::size_t count = rng.below(11);
    const std::int64_t base_ts = 1'000'000 + static_cast<std::int64_t>(rng.below(1000));
    for (std::size_t i = 0; i < count; ++i) {
      capture::ObservedPacket pkt;
      pkt.ts_sec = base_ts + static_cast<std::int64_t>(rng.below(12));
      pkt.flags = static_cast<std::uint8_t>(rng.below(256));
      pkt.seq = static_cast<std::uint32_t>(rng.next());
      pkt.ack = rng.chance(0.2) ? 0 : static_cast<std::uint32_t>(rng.next());
      pkt.payload_len = static_cast<std::uint16_t>(rng.below(1500));
      pkt.ttl = static_cast<std::uint8_t>(rng.below(256));
      pkt.ip_id = static_cast<std::uint16_t>(rng.below(65536));
      sample.packets.push_back(pkt);
    }
    sample.observation_end_sec = base_ts + static_cast<std::int64_t>(rng.below(60));

    const core::Classification c = classifier.classify(sample);
    // Invariant 1: a signature implies possibly-tampered.
    if (c.signature) {
      ASSERT_TRUE(c.possibly_tampered);
    }
    // Invariant 2: the signature's stage equals the reported stage.
    if (c.signature) {
      ASSERT_EQ(core::stage_of(*c.signature), c.stage);
    }
    // Invariant 3: the ∅ signatures imply an empty tear-down set, and any
    // RST-bearing signature implies a non-empty one.
    if (c.signature == core::Signature::kSynNone ||
        c.signature == core::Signature::kAckNone ||
        c.signature == core::Signature::kPshNone) {
      ASSERT_EQ(c.rst_count + c.rst_ack_count, 0u);
    } else if (c.signature) {
      ASSERT_GT(c.rst_count + c.rst_ack_count, 0u);
    }
    // Invariant 4: empty samples are clean.
    if (sample.packets.empty()) {
      ASSERT_FALSE(c.possibly_tampered);
    }
    // Invariant 5: evidence extraction never throws on the same input.
    (void)analysis::evidence_deltas(sample, c);
    (void)core::weaver_detect(sample);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierSoup, ::testing::Range<std::uint64_t>(1, 9));

// ---- Duplicate-log robustness: duplicating any non-RST packet of a real
// ---- capture never changes the verdict (retransmission collapse).

class DuplicationInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DuplicationInvariance, VerdictStable) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = GetParam() * 7 + 3;
  world::TrafficGenerator generator(world, traffic);
  core::SignatureClassifier classifier;
  common::Rng rng(GetParam());
  int checked = 0;
  generator.generate(400, [&](world::LabeledConnection&& conn) {
    if (conn.sample.packets.empty() || conn.sample.packets.size() >= 10) return;
    const auto reference = classifier.classify(conn.sample).signature;
    auto duplicated = conn.sample;
    const std::size_t pick = rng.below(duplicated.packets.size());
    if (duplicated.packets[pick].is_rst()) return;  // RST bursts are meaningful
    duplicated.packets.push_back(duplicated.packets[pick]);
    ASSERT_EQ(classifier.classify(duplicated).signature, reference) << checked;
    ++checked;
  });
  EXPECT_GT(checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicationInvariance,
                         ::testing::Range<std::uint64_t>(1, 5));

// ---- Session invariants across random scenario seeds.

class SessionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionProperties, TapObeysPhysics) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = GetParam() * 13 + 1;
  traffic.keep_raw_inbound = true;
  world::TrafficGenerator generator(world, traffic);
  generator.generate(300, [&](world::LabeledConnection&& conn) {
    // Timestamps are monotone at the tap (FIFO path).
    for (std::size_t i = 1; i < conn.raw_inbound.size(); ++i)
      ASSERT_GE(conn.raw_inbound[i].timestamp, conn.raw_inbound[i - 1].timestamp);
    for (const auto& pkt : conn.raw_inbound) {
      ASSERT_GE(pkt.ip.ttl, 1);  // TTL never hits zero in delivery
      ASSERT_EQ(pkt.dst.version(), conn.sample.server_ip.version());
    }
    // The first observed packet of a flow is the client's SYN.
    if (!conn.sample.packets.empty()) {
      ASSERT_TRUE(conn.sample.packets.front().has(kSyn));
    }
    // Quantized timestamps never precede the wire timestamps' second.
    if (!conn.raw_inbound.empty() && !conn.sample.packets.empty()) {
      ASSERT_LE(conn.sample.packets.front().ts_sec,
                static_cast<std::int64_t>(conn.raw_inbound.front().timestamp));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionProperties, ::testing::Range<std::uint64_t>(1, 5));

// ---- Determinism: the whole pipeline is a pure function of its seeds.

TEST(Determinism, EndToEndBitExactAcrossRuns) {
  auto run = [] {
    world::WorldConfig world_cfg;
    world_cfg.seed = 777;
    world::World world(world_cfg);
    world::TrafficConfig traffic;
    traffic.seed = 888;
    world::TrafficGenerator generator(world, traffic);
    core::SignatureClassifier classifier;
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    generator.generate(2000, [&](world::LabeledConnection&& conn) {
      const auto c = classifier.classify(conn.sample);
      hash ^= common::mix64((c.signature ? 1 + static_cast<std::uint64_t>(*c.signature)
                                         : 0) ^
                            (conn.sample.packets.size() << 8) ^
                            common::fnv1a(conn.truth.country));
      hash *= 0x100000001b3ULL;
    });
    return hash;
  };
  EXPECT_EQ(run(), run());
}

// ---- Sampler salt independence: different salts sample different flows.

TEST(SamplerSalt, ChangesSampledSet) {
  capture::ConnectionSampler::Config a_cfg;
  a_cfg.sample_one_in = 4;
  a_cfg.hash_salt = 1;
  capture::ConnectionSampler::Config b_cfg = a_cfg;
  b_cfg.hash_salt = 2;
  capture::ConnectionSampler a(a_cfg), b(b_cfg);
  common::Rng rng(5);
  int differs = 0;
  for (int i = 0; i < 4000; ++i) {
    net::Packet syn = net::make_tcp_packet(
        net::IpAddress::v4(static_cast<std::uint32_t>(rng.next())),
        static_cast<std::uint16_t>(rng.below(60000) + 1024),
        net::IpAddress::v4(198, 18, 0, 1), 443, kSyn, 1, 0);
    const auto before_a = a.stats().connections_sampled;
    const auto before_b = b.stats().connections_sampled;
    a.on_packet(syn, 1.0);
    b.on_packet(syn, 1.0);
    if ((a.stats().connections_sampled != before_a) !=
        (b.stats().connections_sampled != before_b))
      ++differs;
  }
  EXPECT_GT(differs, 500);  // decisions are salt-dependent per flow
}

}  // namespace
}  // namespace tamper
