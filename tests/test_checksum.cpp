#include <gtest/gtest.h>

#include <array>

#include "net/checksum.h"

namespace tamper::net {
namespace {

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3: {0x0001, 0xf203, 0xf4f5, 0xf6f7}.
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03,
                                            0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum_fold(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300.
  EXPECT_EQ(checksum_fold(data), 0x0402);
}

TEST(Checksum, EmptyBuffer) {
  EXPECT_EQ(checksum_fold({}), 0);
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, CarryFolding) {
  const std::array<std::uint8_t, 4> data = {0xff, 0xff, 0x00, 0x01};
  EXPECT_EQ(checksum_fold(data), 0x0000 + 0x0001);  // ffff+0001 wraps to 0001
}

TEST(Checksum, InitialValueAccumulates) {
  const std::array<std::uint8_t, 2> data = {0x00, 0x10};
  EXPECT_EQ(checksum_fold(data, 0x20), 0x30);
}

TEST(TcpChecksum, ValidatesKnownV4Segment) {
  // Hand-checked minimal TCP header between 10.0.0.1 and 10.0.0.2.
  const IpAddress src = IpAddress::v4(10, 0, 0, 1);
  const IpAddress dst = IpAddress::v4(10, 0, 0, 2);
  std::array<std::uint8_t, 20> seg = {
      0x04, 0xd2, 0x00, 0x50,              // ports 1234 -> 80
      0x00, 0x00, 0x00, 0x01,              // seq
      0x00, 0x00, 0x00, 0x00,              // ack
      0x50, 0x02, 0xff, 0xff,              // offset 5, SYN, window
      0x00, 0x00, 0x00, 0x00,              // checksum placeholder, urg
  };
  const std::uint16_t sum = tcp_checksum(src, dst, seg);
  seg[16] = static_cast<std::uint8_t>(sum >> 8);
  seg[17] = static_cast<std::uint8_t>(sum);
  // A segment containing its own correct checksum verifies to zero.
  EXPECT_EQ(tcp_checksum(src, dst, seg), 0);
}

TEST(TcpChecksum, V6PseudoHeader) {
  const IpAddress src = *IpAddress::parse("2001:db8::1");
  const IpAddress dst = *IpAddress::parse("2001:db8::2");
  std::array<std::uint8_t, 21> seg{};
  seg[13] = 0x10;  // ACK
  seg[20] = 0x41;  // one payload byte
  const std::uint16_t sum = tcp_checksum(src, dst, seg);
  seg[16] = static_cast<std::uint8_t>(sum >> 8);
  seg[17] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(tcp_checksum(src, dst, seg), 0);
}

TEST(TcpChecksum, SensitiveToAddressChange) {
  std::array<std::uint8_t, 20> seg{};
  const std::uint16_t a =
      tcp_checksum(IpAddress::v4(1, 2, 3, 4), IpAddress::v4(5, 6, 7, 8), seg);
  const std::uint16_t b =
      tcp_checksum(IpAddress::v4(1, 2, 3, 5), IpAddress::v4(5, 6, 7, 8), seg);
  EXPECT_NE(a, b);
}

TEST(TcpChecksum, SensitiveToPayloadChange) {
  std::array<std::uint8_t, 24> seg{};
  const IpAddress src = IpAddress::v4(1, 2, 3, 4);
  const IpAddress dst = IpAddress::v4(5, 6, 7, 8);
  const std::uint16_t a = tcp_checksum(src, dst, seg);
  seg[23] = 0x01;
  EXPECT_NE(a, tcp_checksum(src, dst, seg));
}

}  // namespace
}  // namespace tamper::net
