// The Packet value type used throughout the simulator, plus wire
// serialization/parsing so that packets can round-trip through pcap files
// (and real captures can be ingested by the classifier).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "net/headers.h"
#include "net/ip_address.h"

namespace tamper::net {

/// A TCP/IP packet on the simulated (or real) wire.
struct Packet {
  common::SimTime timestamp = 0.0;  ///< capture/emission time, epoch seconds
  IpAddress src;
  IpAddress dst;
  IpFields ip;
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t payload_size() const noexcept { return payload.size(); }
  /// Human-readable one-liner for debugging ("1.2.3.4:1234 > 5.6.7.8:443 PSH+ACK ...").
  [[nodiscard]] std::string summary() const;
};

/// Serialize to raw IP bytes (IPv4 or IPv6 header + TCP header + payload)
/// with correct lengths and checksums.
[[nodiscard]] std::vector<std::uint8_t> serialize(const Packet& pkt);

/// Result of parsing raw IP bytes.
struct ParseResult {
  Packet packet;
  bool ip_checksum_ok = true;   ///< always true for IPv6 (no header checksum)
  bool tcp_checksum_ok = true;
};

/// Parse raw IP bytes (auto-detects v4/v6 from the version nibble).
/// Returns nullopt for malformed or non-TCP input.
[[nodiscard]] std::optional<ParseResult> parse(std::span<const std::uint8_t> bytes,
                                               common::SimTime timestamp = 0.0);

// ---- Packet construction helpers used by endpoints and middleboxes ----

[[nodiscard]] Packet make_tcp_packet(const IpAddress& src, std::uint16_t sport,
                                     const IpAddress& dst, std::uint16_t dport,
                                     std::uint8_t flags, std::uint32_t seq,
                                     std::uint32_t ack,
                                     std::vector<std::uint8_t> payload = {});

}  // namespace tamper::net
