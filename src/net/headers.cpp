#include "net/headers.h"

namespace tamper::net {

std::string flags_to_string(std::uint8_t flags) {
  static constexpr struct {
    std::uint8_t bit;
    const char* name;
  } kNames[] = {
      {tcpflag::kSyn, "SYN"}, {tcpflag::kFin, "FIN"}, {tcpflag::kRst, "RST"},
      {tcpflag::kPsh, "PSH"}, {tcpflag::kAck, "ACK"}, {tcpflag::kUrg, "URG"},
      {tcpflag::kEce, "ECE"}, {tcpflag::kCwr, "CWR"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if (flags & bit) {
      if (!out.empty()) out += '+';
      out += name;
    }
  }
  if (out.empty()) out = "NONE";
  return out;
}

TcpOption TcpOption::mss_opt(std::uint16_t mss) {
  TcpOption o;
  o.kind = TcpOptionKind::kMss;
  o.mss = mss;
  return o;
}

TcpOption TcpOption::window_scale_opt(std::uint8_t shift) {
  TcpOption o;
  o.kind = TcpOptionKind::kWindowScale;
  o.window_scale = shift;
  return o;
}

TcpOption TcpOption::sack_permitted_opt() {
  TcpOption o;
  o.kind = TcpOptionKind::kSackPermitted;
  return o;
}

TcpOption TcpOption::timestamps_opt(std::uint32_t value, std::uint32_t echo) {
  TcpOption o;
  o.kind = TcpOptionKind::kTimestamps;
  o.ts_value = value;
  o.ts_echo = echo;
  return o;
}

TcpOption TcpOption::nop_opt() {
  TcpOption o;
  o.kind = TcpOptionKind::kNop;
  return o;
}

namespace {
std::size_t option_size(const TcpOption& o) {
  switch (o.kind) {
    case TcpOptionKind::kEnd:
    case TcpOptionKind::kNop:
      return 1;
    case TcpOptionKind::kMss:
      return 4;
    case TcpOptionKind::kWindowScale:
      return 3;
    case TcpOptionKind::kSackPermitted:
      return 2;
    case TcpOptionKind::kTimestamps:
      return 10;
    case TcpOptionKind::kSack:
      return 2 + o.raw.size();
  }
  return 1;
}
}  // namespace

std::size_t TcpHeader::options_wire_size() const {
  std::size_t total = 0;
  for (const auto& o : options) total += option_size(o);
  return (total + 3) & ~std::size_t{3};
}

std::optional<std::uint16_t> TcpHeader::mss() const noexcept {
  for (const auto& o : options)
    if (o.kind == TcpOptionKind::kMss) return o.mss;
  return std::nullopt;
}

bool TcpHeader::sack_permitted() const noexcept {
  for (const auto& o : options)
    if (o.kind == TcpOptionKind::kSackPermitted) return true;
  return false;
}

std::optional<std::uint32_t> TcpHeader::timestamp_value() const noexcept {
  for (const auto& o : options)
    if (o.kind == TcpOptionKind::kTimestamps) return o.ts_value;
  return std::nullopt;
}

}  // namespace tamper::net
