// Protocol header value types: TCP flags, TCP options, and the IPv4/IPv6 +
// TCP header fields libtamper models. These are *parsed* representations;
// wire encoding/decoding lives in net/packet.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tamper::net {

/// TCP flag bits, RFC 9293 layout (low byte of offset/flags word).
namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
inline constexpr std::uint8_t kUrg = 0x20;
inline constexpr std::uint8_t kEce = 0x40;
inline constexpr std::uint8_t kCwr = 0x80;
}  // namespace tcpflag

/// Readable rendering such as "SYN", "PSH+ACK", "RST+ACK".
[[nodiscard]] std::string flags_to_string(std::uint8_t flags);

enum class TcpOptionKind : std::uint8_t {
  kEnd = 0,
  kNop = 1,
  kMss = 2,
  kWindowScale = 3,
  kSackPermitted = 4,
  kSack = 5,
  kTimestamps = 8,
};

/// A single decoded TCP option.
struct TcpOption {
  TcpOptionKind kind = TcpOptionKind::kNop;
  // Interpretation depends on kind; unused fields stay zero.
  std::uint16_t mss = 0;
  std::uint8_t window_scale = 0;
  std::uint32_t ts_value = 0;
  std::uint32_t ts_echo = 0;
  /// Raw payload for kinds without dedicated fields (e.g. SACK blocks).
  std::vector<std::uint8_t> raw;

  [[nodiscard]] static TcpOption mss_opt(std::uint16_t mss);
  [[nodiscard]] static TcpOption window_scale_opt(std::uint8_t shift);
  [[nodiscard]] static TcpOption sack_permitted_opt();
  [[nodiscard]] static TcpOption timestamps_opt(std::uint32_t value, std::uint32_t echo);
  [[nodiscard]] static TcpOption nop_opt();
};

/// Parsed TCP header (without payload).
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t urgent_pointer = 0;
  std::vector<TcpOption> options;

  [[nodiscard]] bool has(std::uint8_t flag_bits) const noexcept {
    return (flags & flag_bits) == flag_bits;
  }
  [[nodiscard]] bool is_syn() const noexcept {
    return has(tcpflag::kSyn) && !has(tcpflag::kAck);
  }
  [[nodiscard]] bool is_syn_ack() const noexcept {
    return has(tcpflag::kSyn) && has(tcpflag::kAck);
  }
  [[nodiscard]] bool is_rst() const noexcept { return has(tcpflag::kRst); }
  /// Size of the encoded options block in bytes, padded to a 4-byte multiple.
  [[nodiscard]] std::size_t options_wire_size() const;
  [[nodiscard]] std::size_t header_size() const { return 20 + options_wire_size(); }

  [[nodiscard]] std::optional<std::uint16_t> mss() const noexcept;
  [[nodiscard]] bool sack_permitted() const noexcept;
  [[nodiscard]] std::optional<std::uint32_t> timestamp_value() const noexcept;
};

/// Fields of the IP layer that the tampering analyses care about.
/// For IPv6, `ttl` carries the Hop Limit and `ip_id` is zero.
struct IpFields {
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
  std::uint8_t dscp = 0;
  bool dont_fragment = true;
};

}  // namespace tamper::net
