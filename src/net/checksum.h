// RFC 1071 Internet checksum, with the TCP pseudo-header forms for both IP
// families. Used when serializing packets to wire format and to validate
// parsed captures.
#pragma once

#include <cstdint>
#include <span>

#include "net/ip_address.h"

namespace tamper::net {

/// One's-complement sum of 16-bit words over `data` (odd tail zero-padded),
/// folded to 16 bits; caller decides when to take the final complement.
[[nodiscard]] std::uint16_t checksum_fold(std::span<const std::uint8_t> data,
                                          std::uint32_t initial = 0) noexcept;

/// Plain Internet checksum of a buffer (e.g. an IPv4 header).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// TCP checksum including the v4/v6 pseudo-header. `segment` is the TCP
/// header + payload with the checksum field zeroed.
[[nodiscard]] std::uint16_t tcp_checksum(const IpAddress& src, const IpAddress& dst,
                                         std::span<const std::uint8_t> segment) noexcept;

}  // namespace tamper::net
