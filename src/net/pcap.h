// Classic pcap (libpcap savefile) reader and writer.
//
// Implemented from the published format rather than linking libpcap:
// 24-byte global header (magic 0xa1b2c3d4 microseconds / 0xa1b23c4d
// nanoseconds, either byte order) followed by 16-byte-per-record frames.
// We write LINKTYPE_RAW (101): record payloads are bare IPv4/IPv6 packets,
// which matches net::serialize()/net::parse(). The reader also accepts
// LINKTYPE_ETHERNET captures and skips the 14-byte MAC header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "net/packet.h"

namespace tamper::net {

inline constexpr std::uint32_t kLinktypeRaw = 101;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

/// Streams packets into a pcap savefile.
class PcapWriter {
 public:
  /// Writes the global header immediately. Stream must outlive the writer.
  explicit PcapWriter(std::ostream& out, std::uint32_t linktype = kLinktypeRaw,
                      std::uint32_t snaplen = 65535);

  /// Serializes and appends one packet record.
  void write(const Packet& pkt);
  /// Appends a pre-serialized raw IP frame.
  void write_raw(common::SimTime timestamp, std::span<const std::uint8_t> frame);

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint32_t linktype_;
  std::uint64_t count_ = 0;
};

/// How the reader reacts to corrupt input.
///   kStrict:  throw std::runtime_error on a bad global header or an
///             implausible record length (legacy behaviour).
///   kLenient: never throw after construction succeeds; skip corrupt
///             records, attempt to resync on the next plausible record
///             header, and account every skip by cause. A bad global
///             header leaves the reader in a failed state (`ok() == false`)
///             instead of throwing.
enum class PcapReadMode : std::uint8_t { kStrict, kLenient };

/// Pulls packets out of a pcap savefile; tolerates both byte orders and
/// microsecond/nanosecond timestamp variants.
class PcapReader {
 public:
  /// Hard ceiling on a single record allocation regardless of the snaplen
  /// the (possibly hostile) global header claims.
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 26;
  /// How far past a corrupt record the lenient reader scans for the next
  /// plausible record header before giving up.
  static constexpr std::size_t kResyncWindowBytes = 1u << 20;

  /// Reads and validates the global header. Strict mode throws
  /// std::runtime_error on a bad magic number; lenient mode records the
  /// failure (`ok()`, `error()`) and yields no packets. Stream must outlive
  /// the reader.
  explicit PcapReader(std::istream& in, PcapReadMode mode = PcapReadMode::kStrict);

  /// Next parseable TCP/IP packet, skipping non-IP or truncated frames.
  /// nullopt at end of file.
  [[nodiscard]] std::optional<Packet> next();

  [[nodiscard]] std::uint32_t linktype() const noexcept { return linktype_; }
  [[nodiscard]] std::uint64_t frames_read() const noexcept { return stats_.frames_read; }
  /// All skipped frames, regardless of cause.
  [[nodiscard]] std::uint64_t frames_skipped() const noexcept {
    return stats_.skipped_unparseable + stats_.skipped_oversize + stats_.skipped_truncated;
  }

  /// Per-cause accounting of degraded input.
  struct Stats {
    std::uint64_t frames_read = 0;
    std::uint64_t skipped_unparseable = 0;  ///< non-IP ethertype or parse() failure
    std::uint64_t skipped_oversize = 0;     ///< incl_len beyond snaplen/hard cap
    std::uint64_t skipped_truncated = 0;    ///< short frame body or partial header
    std::uint64_t resyncs = 0;              ///< successful scans to a new record
    std::uint64_t resync_failures = 0;      ///< gave up: no plausible header found
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// False when a lenient reader could not validate the global header.
  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  /// Largest incl_len we will honour: the global header's snaplen (with a
  /// floor so lying-small snaplens don't reject legitimate frames) bounded
  /// by kMaxRecordBytes.
  [[nodiscard]] std::uint32_t record_cap() const noexcept;
  /// Scan forward for the next plausible record header (lenient mode).
  [[nodiscard]] bool resync();
  [[nodiscard]] bool plausible_record(const unsigned char* hdr) const noexcept;

  std::istream& in_;
  PcapReadMode mode_;
  std::uint32_t linktype_ = kLinktypeRaw;
  std::uint32_t snaplen_ = 65535;
  bool swap_ = false;
  bool nanos_ = false;
  bool exhausted_ = false;
  bool have_good_secs_ = false;
  std::uint32_t last_good_secs_ = 0;
  Stats stats_;
  std::string error_;
};

/// Convenience: write all packets to a file path.
void write_pcap_file(const std::string& path, const std::vector<Packet>& packets);

/// Convenience: read every TCP/IP packet from a file path.
[[nodiscard]] std::vector<Packet> read_pcap_file(const std::string& path);

}  // namespace tamper::net
