// Classic pcap (libpcap savefile) reader and writer.
//
// Implemented from the published format rather than linking libpcap:
// 24-byte global header (magic 0xa1b2c3d4 microseconds / 0xa1b23c4d
// nanoseconds, either byte order) followed by 16-byte-per-record frames.
// We write LINKTYPE_RAW (101): record payloads are bare IPv4/IPv6 packets,
// which matches net::serialize()/net::parse(). The reader also accepts
// LINKTYPE_ETHERNET captures and skips the 14-byte MAC header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "net/packet.h"

namespace tamper::net {

inline constexpr std::uint32_t kLinktypeRaw = 101;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

/// Streams packets into a pcap savefile.
class PcapWriter {
 public:
  /// Writes the global header immediately. Stream must outlive the writer.
  explicit PcapWriter(std::ostream& out, std::uint32_t linktype = kLinktypeRaw,
                      std::uint32_t snaplen = 65535);

  /// Serializes and appends one packet record.
  void write(const Packet& pkt);
  /// Appends a pre-serialized raw IP frame.
  void write_raw(common::SimTime timestamp, std::span<const std::uint8_t> frame);

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint32_t linktype_;
  std::uint64_t count_ = 0;
};

/// Pulls packets out of a pcap savefile; tolerates both byte orders and
/// microsecond/nanosecond timestamp variants.
class PcapReader {
 public:
  /// Reads and validates the global header; throws std::runtime_error on a
  /// bad magic number. Stream must outlive the reader.
  explicit PcapReader(std::istream& in);

  /// Next parseable TCP/IP packet, skipping non-IP or truncated frames.
  /// nullopt at end of file.
  [[nodiscard]] std::optional<Packet> next();

  [[nodiscard]] std::uint32_t linktype() const noexcept { return linktype_; }
  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t frames_skipped() const noexcept { return skipped_; }

 private:
  std::istream& in_;
  std::uint32_t linktype_ = kLinktypeRaw;
  bool swap_ = false;
  bool nanos_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Convenience: write all packets to a file path.
void write_pcap_file(const std::string& path, const std::vector<Packet>& packets);

/// Convenience: read every TCP/IP packet from a file path.
[[nodiscard]] std::vector<Packet> read_pcap_file(const std::string& path);

}  // namespace tamper::net
