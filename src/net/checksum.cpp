#include "net/checksum.h"

#include <array>

namespace tamper::net {

std::uint16_t checksum_fold(std::span<const std::uint8_t> data,
                            std::uint32_t initial) noexcept {
  std::uint64_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(~checksum_fold(data) & 0xffff);
}

std::uint16_t tcp_checksum(const IpAddress& src, const IpAddress& dst,
                           std::span<const std::uint8_t> segment) noexcept {
  std::uint32_t pseudo = 0;
  const auto len = static_cast<std::uint32_t>(segment.size());
  if (src.is_v4()) {
    // src(4) + dst(4) + zero(1) + proto(1) + tcp length(2)
    std::array<std::uint8_t, 12> ph{};
    const std::uint32_t s = src.v4_value();
    const std::uint32_t d = dst.v4_value();
    ph[0] = static_cast<std::uint8_t>(s >> 24);
    ph[1] = static_cast<std::uint8_t>(s >> 16);
    ph[2] = static_cast<std::uint8_t>(s >> 8);
    ph[3] = static_cast<std::uint8_t>(s);
    ph[4] = static_cast<std::uint8_t>(d >> 24);
    ph[5] = static_cast<std::uint8_t>(d >> 16);
    ph[6] = static_cast<std::uint8_t>(d >> 8);
    ph[7] = static_cast<std::uint8_t>(d);
    ph[8] = 0;
    ph[9] = 6;  // TCP
    ph[10] = static_cast<std::uint8_t>(len >> 8);
    ph[11] = static_cast<std::uint8_t>(len);
    pseudo = checksum_fold(ph);
  } else {
    // RFC 8200 pseudo-header: src(16) + dst(16) + length(4) + zeros(3) + next(1)
    std::array<std::uint8_t, 40> ph{};
    const auto& sb = src.bytes();
    const auto& db = dst.bytes();
    for (std::size_t i = 0; i < 16; ++i) {
      ph[i] = sb[i];
      ph[16 + i] = db[i];
    }
    ph[32] = static_cast<std::uint8_t>(len >> 24);
    ph[33] = static_cast<std::uint8_t>(len >> 16);
    ph[34] = static_cast<std::uint8_t>(len >> 8);
    ph[35] = static_cast<std::uint8_t>(len);
    ph[39] = 6;  // TCP
    pseudo = checksum_fold(ph);
  }
  return static_cast<std::uint16_t>(~checksum_fold(segment, pseudo) & 0xffff);
}

}  // namespace tamper::net
