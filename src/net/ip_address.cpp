#include "net/ip_address.h"

#include <charconv>
#include <cstdio>

#include "common/rng.h"

namespace tamper::net {

IpAddress IpAddress::v4(std::uint32_t host_order) noexcept {
  IpAddress a;
  a.version_ = IpVersion::kV4;
  a.bytes_[10] = 0xff;
  a.bytes_[11] = 0xff;
  a.bytes_[12] = static_cast<std::uint8_t>(host_order >> 24);
  a.bytes_[13] = static_cast<std::uint8_t>(host_order >> 16);
  a.bytes_[14] = static_cast<std::uint8_t>(host_order >> 8);
  a.bytes_[15] = static_cast<std::uint8_t>(host_order);
  return a;
}

IpAddress IpAddress::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept {
  return v4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
            std::uint32_t{d});
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& bytes) noexcept {
  IpAddress a;
  a.version_ = IpVersion::kV6;
  a.bytes_ = bytes;
  return a;
}

IpAddress IpAddress::v6(std::uint64_t hi, std::uint64_t lo) noexcept {
  std::array<std::uint8_t, 16> b{};
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  return v6(b);
}

std::uint32_t IpAddress::v4_value() const noexcept {
  return (std::uint32_t{bytes_[12]} << 24) | (std::uint32_t{bytes_[13]} << 16) |
         (std::uint32_t{bytes_[14]} << 8) | std::uint32_t{bytes_[15]};
}

namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  std::array<std::uint8_t, 4> parts{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    unsigned value = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    parts[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return IpAddress::v4(parts[0], parts[1], parts[2], parts[3]);
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Split on "::" (at most once), then parse colon-separated 16-bit groups.
  std::array<std::uint16_t, 8> groups{};
  const auto parse_groups = [](std::string_view part, std::uint16_t* out,
                               int max_groups) -> int {
    if (part.empty()) return 0;
    int count = 0;
    std::size_t pos = 0;
    while (true) {
      if (count >= max_groups) return -1;
      unsigned value = 0;
      const auto* begin = part.data() + pos;
      const auto* end = part.data() + part.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value, 16);
      if (ec != std::errc{} || value > 0xffff || ptr == begin) return -1;
      out[count++] = static_cast<std::uint16_t>(value);
      pos = static_cast<std::size_t>(ptr - part.data());
      if (pos == part.size()) return count;
      if (part[pos] != ':') return -1;
      ++pos;
      if (pos == part.size()) return -1;  // trailing single colon
    }
  };

  const std::size_t dc = text.find("::");
  std::array<std::uint16_t, 8> head{}, tail{};
  int head_n = 0, tail_n = 0;
  if (dc == std::string_view::npos) {
    head_n = parse_groups(text, head.data(), 8);
    if (head_n != 8) return std::nullopt;
    groups = head;
  } else {
    if (text.find("::", dc + 1) != std::string_view::npos) return std::nullopt;
    head_n = parse_groups(text.substr(0, dc), head.data(), 8);
    tail_n = parse_groups(text.substr(dc + 2), tail.data(), 8);
    if (head_n < 0 || tail_n < 0 || head_n + tail_n > 7) return std::nullopt;
    for (int i = 0; i < head_n; ++i) groups[static_cast<std::size_t>(i)] = head[static_cast<std::size_t>(i)];
    for (int i = 0; i < tail_n; ++i)
      groups[static_cast<std::size_t>(8 - tail_n + i)] = tail[static_cast<std::size_t>(i)];
  }
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(2 * i)] = static_cast<std::uint8_t>(groups[static_cast<std::size_t>(i)] >> 8);
    bytes[static_cast<std::size_t>(2 * i + 1)] = static_cast<std::uint8_t>(groups[static_cast<std::size_t>(i)]);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", bytes_[12], bytes_[13], bytes_[14],
                  bytes_[15]);
    return buf;
  }
  // RFC 5952: compress the longest run of zero groups (length >= 2).
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 8; ++i)
    groups[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>((bytes_[static_cast<std::size_t>(2 * i)] << 8) |
                                   bytes_[static_cast<std::size_t>(2 * i + 1)]);
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;
  std::string out;
  int i = 0;
  while (i < 8) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::uint64_t IpAddress::hash() const noexcept {
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | bytes_[static_cast<std::size_t>(i)];
    lo = (lo << 8) | bytes_[static_cast<std::size_t>(8 + i)];
  }
  return common::mix64(hi ^ common::mix64(lo ^ (is_v4() ? 0x04 : 0x06)));
}

IpPrefix::IpPrefix(IpAddress base, int length) noexcept : base_(base), length_(length) {
  const int max_len = base.is_v4() ? 32 : 128;
  if (length_ < 0) length_ = 0;
  if (length_ > max_len) length_ = max_len;
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) {
  const std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = 0;
  const auto tail = text.substr(slash + 1);
  const auto [ptr, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), length);
  if (ec != std::errc{} || ptr != tail.data() + tail.size()) return std::nullopt;
  const int max_len = addr->is_v4() ? 32 : 128;
  if (length < 0 || length > max_len) return std::nullopt;
  return IpPrefix(*addr, length);
}

bool IpPrefix::contains(const IpAddress& addr) const noexcept {
  if (addr.version() != base_.version()) return false;
  // For v4 the significant bytes start at offset 12 in the mapped layout.
  const int offset_bits = base_.is_v4() ? 96 : 0;
  const int total = offset_bits + length_;
  const auto& a = addr.bytes();
  const auto& b = base_.bytes();
  int bit = offset_bits;
  while (bit < total) {
    const int byte = bit / 8;
    const int remaining = total - bit;
    if (remaining >= 8 && bit % 8 == 0) {
      if (a[static_cast<std::size_t>(byte)] != b[static_cast<std::size_t>(byte)]) return false;
      bit += 8;
    } else {
      const int shift = 7 - (bit % 8);
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << shift);
      if ((a[static_cast<std::size_t>(byte)] & mask) != (b[static_cast<std::size_t>(byte)] & mask))
        return false;
      ++bit;
    }
  }
  return true;
}

std::string IpPrefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace tamper::net
