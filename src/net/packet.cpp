#include "net/packet.h"

#include <cstdio>

#include "net/checksum.h"

namespace tamper::net {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) | b[off + 3];
}

void encode_options(std::vector<std::uint8_t>& out, const std::vector<TcpOption>& options) {
  const std::size_t start = out.size();
  for (const auto& o : options) {
    switch (o.kind) {
      case TcpOptionKind::kEnd:
        out.push_back(0);
        break;
      case TcpOptionKind::kNop:
        out.push_back(1);
        break;
      case TcpOptionKind::kMss:
        out.push_back(2);
        out.push_back(4);
        put16(out, o.mss);
        break;
      case TcpOptionKind::kWindowScale:
        out.push_back(3);
        out.push_back(3);
        out.push_back(o.window_scale);
        break;
      case TcpOptionKind::kSackPermitted:
        out.push_back(4);
        out.push_back(2);
        break;
      case TcpOptionKind::kTimestamps:
        out.push_back(8);
        out.push_back(10);
        put32(out, o.ts_value);
        put32(out, o.ts_echo);
        break;
      case TcpOptionKind::kSack:
        out.push_back(5);
        out.push_back(static_cast<std::uint8_t>(2 + o.raw.size()));
        out.insert(out.end(), o.raw.begin(), o.raw.end());
        break;
    }
  }
  while ((out.size() - start) % 4 != 0) out.push_back(0);  // pad with EOL
}

bool decode_options(std::span<const std::uint8_t> block, std::vector<TcpOption>& out) {
  // A TCP options block is at most 40 bytes, so no well-formed segment
  // carries more options than this; anything past it is hostile garbage.
  constexpr std::size_t kMaxOptions = 64;
  std::size_t i = 0;
  while (i < block.size()) {
    if (out.size() >= kMaxOptions) return false;
    const std::uint8_t kind = block[i];
    if (kind == 0) break;  // End of option list
    if (kind == 1) {
      out.push_back(TcpOption::nop_opt());
      ++i;
      continue;
    }
    if (i + 1 >= block.size()) return false;
    // The attacker controls this length byte: every use below must stay
    // inside `block`, and a length under the 2-byte kind+len preamble
    // would loop forever.
    const std::uint8_t len = block[i + 1];
    if (len < 2 || i + len > block.size()) return false;
    TcpOption o;
    switch (static_cast<TcpOptionKind>(kind)) {
      case TcpOptionKind::kMss:
        if (len != 4) return false;
        o = TcpOption::mss_opt(get16(block, i + 2));
        break;
      case TcpOptionKind::kWindowScale:
        if (len != 3) return false;
        o = TcpOption::window_scale_opt(block[i + 2]);
        break;
      case TcpOptionKind::kSackPermitted:
        if (len != 2) return false;
        o = TcpOption::sack_permitted_opt();
        break;
      case TcpOptionKind::kTimestamps:
        if (len != 10) return false;
        o = TcpOption::timestamps_opt(get32(block, i + 2), get32(block, i + 6));
        break;
      case TcpOptionKind::kSack:
        o.kind = TcpOptionKind::kSack;
        o.raw.assign(block.begin() + static_cast<std::ptrdiff_t>(i + 2),
                     block.begin() + static_cast<std::ptrdiff_t>(i + len));
        break;
      default:
        // Unknown option: preserve raw bytes so round-trips don't lose data.
        o.kind = static_cast<TcpOptionKind>(kind);
        o.raw.assign(block.begin() + static_cast<std::ptrdiff_t>(i + 2),
                     block.begin() + static_cast<std::ptrdiff_t>(i + len));
        break;
    }
    out.push_back(std::move(o));
    i += len;
  }
  return true;
}

}  // namespace

std::string Packet::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s:%u > %s:%u %s seq=%u ack=%u len=%zu ttl=%u id=%u",
                src.to_string().c_str(), tcp.src_port, dst.to_string().c_str(),
                tcp.dst_port, flags_to_string(tcp.flags).c_str(), tcp.seq, tcp.ack,
                payload.size(), ip.ttl, ip.ip_id);
  return buf;
}

std::vector<std::uint8_t> serialize(const Packet& pkt) {
  // Build the TCP segment first (checksum needs the pseudo-header).
  std::vector<std::uint8_t> seg;
  seg.reserve(pkt.tcp.header_size() + pkt.payload.size());
  put16(seg, pkt.tcp.src_port);
  put16(seg, pkt.tcp.dst_port);
  put32(seg, pkt.tcp.seq);
  put32(seg, pkt.tcp.ack);
  const std::size_t header_len = pkt.tcp.header_size();
  seg.push_back(static_cast<std::uint8_t>((header_len / 4) << 4));
  seg.push_back(pkt.tcp.flags);
  put16(seg, pkt.tcp.window);
  put16(seg, 0);  // checksum placeholder
  put16(seg, pkt.tcp.urgent_pointer);
  encode_options(seg, pkt.tcp.options);
  seg.insert(seg.end(), pkt.payload.begin(), pkt.payload.end());
  const std::uint16_t tcp_sum = tcp_checksum(pkt.src, pkt.dst, seg);
  seg[16] = static_cast<std::uint8_t>(tcp_sum >> 8);
  seg[17] = static_cast<std::uint8_t>(tcp_sum);

  std::vector<std::uint8_t> out;
  if (pkt.src.is_v4()) {
    out.reserve(20 + seg.size());
    out.push_back(0x45);  // version 4, IHL 5 (we never emit IP options)
    out.push_back(static_cast<std::uint8_t>(pkt.ip.dscp << 2));
    put16(out, static_cast<std::uint16_t>(20 + seg.size()));
    put16(out, pkt.ip.ip_id);
    put16(out, pkt.ip.dont_fragment ? 0x4000 : 0x0000);
    out.push_back(pkt.ip.ttl);
    out.push_back(6);  // TCP
    put16(out, 0);     // header checksum placeholder
    const std::uint32_t s = pkt.src.v4_value();
    const std::uint32_t d = pkt.dst.v4_value();
    put32(out, s);
    put32(out, d);
    const std::uint16_t ip_sum = internet_checksum({out.data(), 20});
    out[10] = static_cast<std::uint8_t>(ip_sum >> 8);
    out[11] = static_cast<std::uint8_t>(ip_sum);
  } else {
    out.reserve(40 + seg.size());
    out.push_back(0x60);  // version 6, traffic class upper nibble 0
    out.push_back(static_cast<std::uint8_t>(pkt.ip.dscp << 2));
    put16(out, 0);  // flow label low bits
    put16(out, static_cast<std::uint16_t>(seg.size()));
    out.push_back(6);  // next header: TCP
    out.push_back(pkt.ip.ttl);
    const auto& sb = pkt.src.bytes();
    const auto& db = pkt.dst.bytes();
    out.insert(out.end(), sb.begin(), sb.end());
    out.insert(out.end(), db.begin(), db.end());
  }
  out.insert(out.end(), seg.begin(), seg.end());
  return out;
}

std::optional<ParseResult> parse(std::span<const std::uint8_t> bytes,
                                 common::SimTime timestamp) {
  if (bytes.size() < 20) return std::nullopt;
  ParseResult result;
  Packet& pkt = result.packet;
  pkt.timestamp = timestamp;

  std::size_t l4_offset = 0;
  const std::uint8_t version = bytes[0] >> 4;
  if (version == 4) {
    const std::size_t ihl = static_cast<std::size_t>(bytes[0] & 0x0f) * 4;
    if (ihl < 20 || bytes.size() < ihl) return std::nullopt;
    const std::uint16_t total_len = get16(bytes, 2);
    if (total_len < ihl || total_len > bytes.size()) return std::nullopt;
    if (bytes[9] != 6) return std::nullopt;  // not TCP
    pkt.ip.dscp = static_cast<std::uint8_t>(bytes[1] >> 2);
    pkt.ip.ip_id = get16(bytes, 4);
    pkt.ip.dont_fragment = (bytes[6] & 0x40) != 0;
    pkt.ip.ttl = bytes[8];
    pkt.src = IpAddress::v4(get32(bytes, 12));
    pkt.dst = IpAddress::v4(get32(bytes, 16));
    result.ip_checksum_ok = checksum_fold(bytes.first(ihl)) == 0xffff;
    l4_offset = ihl;
    bytes = bytes.first(total_len);
  } else if (version == 6) {
    if (bytes.size() < 40) return std::nullopt;
    const std::uint16_t payload_len = get16(bytes, 4);
    if (bytes.size() < 40u + payload_len) return std::nullopt;
    if (bytes[6] != 6) return std::nullopt;  // extension headers unsupported
    pkt.ip.dscp = static_cast<std::uint8_t>(((bytes[0] & 0x0f) << 2) | (bytes[1] >> 6));
    pkt.ip.ip_id = 0;
    pkt.ip.ttl = bytes[7];
    std::array<std::uint8_t, 16> sb{}, db{};
    for (std::size_t i = 0; i < 16; ++i) {
      sb[i] = bytes[8 + i];
      db[i] = bytes[24 + i];
    }
    pkt.src = IpAddress::v6(sb);
    pkt.dst = IpAddress::v6(db);
    l4_offset = 40;
    bytes = bytes.first(40u + payload_len);
  } else {
    return std::nullopt;
  }

  const auto seg = bytes.subspan(l4_offset);
  if (seg.size() < 20) return std::nullopt;
  TcpHeader& tcp = pkt.tcp;
  tcp.src_port = get16(seg, 0);
  tcp.dst_port = get16(seg, 2);
  tcp.seq = get32(seg, 4);
  tcp.ack = get32(seg, 8);
  const std::size_t data_offset = static_cast<std::size_t>(seg[12] >> 4) * 4;
  if (data_offset < 20 || data_offset > seg.size()) return std::nullopt;
  tcp.flags = seg[13];
  tcp.window = get16(seg, 14);
  tcp.urgent_pointer = get16(seg, 18);
  if (!decode_options(seg.subspan(20, data_offset - 20), tcp.options)) return std::nullopt;
  pkt.payload.assign(seg.begin() + static_cast<std::ptrdiff_t>(data_offset), seg.end());
  result.tcp_checksum_ok = tcp_checksum(pkt.src, pkt.dst, seg) == 0;
  return result;
}

Packet make_tcp_packet(const IpAddress& src, std::uint16_t sport, const IpAddress& dst,
                       std::uint16_t dport, std::uint8_t flags, std::uint32_t seq,
                       std::uint32_t ack, std::vector<std::uint8_t> payload) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.tcp.src_port = sport;
  pkt.tcp.dst_port = dport;
  pkt.tcp.flags = flags;
  pkt.tcp.seq = seq;
  pkt.tcp.ack = ack;
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace tamper::net
