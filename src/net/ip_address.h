// IP addresses (IPv4 and IPv6) as a single value type.
//
// Stored as 16 bytes in network order; IPv4 addresses occupy the last 4 bytes
// (IPv4-mapped layout, ::ffff:a.b.c.d) so that one representation serves both
// families while remembering which family the address belongs to.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace tamper::net {

enum class IpVersion : std::uint8_t { kV4 = 4, kV6 = 6 };

class IpAddress {
 public:
  /// Default: IPv4 0.0.0.0.
  constexpr IpAddress() noexcept = default;

  [[nodiscard]] static IpAddress v4(std::uint32_t host_order) noexcept;
  [[nodiscard]] static IpAddress v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                    std::uint8_t d) noexcept;
  [[nodiscard]] static IpAddress v6(const std::array<std::uint8_t, 16>& bytes) noexcept;
  /// Build an IPv6 address from two 64-bit halves (host order).
  [[nodiscard]] static IpAddress v6(std::uint64_t hi, std::uint64_t lo) noexcept;

  /// Parse dotted-quad or RFC-4291 textual IPv6 (including "::" compression).
  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);

  [[nodiscard]] IpVersion version() const noexcept { return version_; }
  [[nodiscard]] bool is_v4() const noexcept { return version_ == IpVersion::kV4; }
  [[nodiscard]] bool is_v6() const noexcept { return version_ == IpVersion::kV6; }

  /// Host-order 32-bit value; only meaningful for IPv4 addresses.
  [[nodiscard]] std::uint32_t v4_value() const noexcept;
  /// Raw 16 bytes (IPv4-mapped for v4 addresses), network order.
  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }

  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit hash (used for flow keys and geo lookups).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend bool operator==(const IpAddress&, const IpAddress&) noexcept = default;
  friend std::strong_ordering operator<=>(const IpAddress&, const IpAddress&) noexcept = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
  IpVersion version_ = IpVersion::kV4;
};

/// CIDR prefix; matches addresses of the same family sharing `length` leading bits.
class IpPrefix {
 public:
  IpPrefix() noexcept = default;
  IpPrefix(IpAddress base, int length) noexcept;

  [[nodiscard]] static std::optional<IpPrefix> parse(std::string_view text);

  [[nodiscard]] bool contains(const IpAddress& addr) const noexcept;
  [[nodiscard]] const IpAddress& base() const noexcept { return base_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] std::string to_string() const;

 private:
  IpAddress base_;
  int length_ = 0;
};

}  // namespace tamper::net

template <>
struct std::hash<tamper::net::IpAddress> {
  std::size_t operator()(const tamper::net::IpAddress& a) const noexcept {
    return static_cast<std::size_t>(a.hash());
  }
};
