#include "net/pcap.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace tamper::net {

namespace {

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;

void put_u16le(std::ostream& out, std::uint16_t v) {
  const std::array<char, 2> b{static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(b.data(), b.size());
}

void put_u32le(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> b{
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out.write(b.data(), b.size());
}

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
}

bool read_u32(std::istream& in, bool swap, std::uint32_t& out) {
  std::array<unsigned char, 4> b{};
  if (!in.read(reinterpret_cast<char*>(b.data()), 4)) return false;
  out = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
  if (swap) out = swap32(out);
  return true;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t linktype, std::uint32_t snaplen)
    : out_(out), linktype_(linktype) {
  put_u32le(out_, kMagicMicros);
  put_u16le(out_, 2);  // version major
  put_u16le(out_, 4);  // version minor
  put_u32le(out_, 0);  // thiszone
  put_u32le(out_, 0);  // sigfigs
  put_u32le(out_, snaplen);
  put_u32le(out_, linktype_);
}

void PcapWriter::write(const Packet& pkt) {
  write_raw(pkt.timestamp, serialize(pkt));
}

void PcapWriter::write_raw(common::SimTime timestamp, std::span<const std::uint8_t> frame) {
  const double floor_s = std::floor(timestamp);
  const auto secs = static_cast<std::uint32_t>(floor_s);
  const auto micros =
      static_cast<std::uint32_t>(std::min(999999.0, (timestamp - floor_s) * 1e6));
  put_u32le(out_, secs);
  put_u32le(out_, micros);
  put_u32le(out_, static_cast<std::uint32_t>(frame.size()));  // captured length
  put_u32le(out_, static_cast<std::uint32_t>(frame.size()));  // original length
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  ++count_;
}

PcapReader::PcapReader(std::istream& in, PcapReadMode mode) : in_(in), mode_(mode) {
  const auto fail = [this](const char* what) {
    if (mode_ == PcapReadMode::kStrict) throw std::runtime_error(what);
    error_ = what;
    exhausted_ = true;
  };
  std::uint32_t magic = 0;
  if (!read_u32(in_, false, magic)) {
    fail("pcap: empty stream");
    return;
  }
  if (magic == kMagicMicros) {
    swap_ = false;
    nanos_ = false;
  } else if (magic == kMagicNanos) {
    swap_ = false;
    nanos_ = true;
  } else if (swap32(magic) == kMagicMicros) {
    swap_ = true;
    nanos_ = false;
  } else if (swap32(magic) == kMagicNanos) {
    swap_ = true;
    nanos_ = true;
  } else {
    fail("pcap: bad magic number");
    return;
  }
  std::uint32_t tmp = 0;
  read_u32(in_, swap_, tmp);  // version
  read_u32(in_, swap_, tmp);  // thiszone
  read_u32(in_, swap_, tmp);  // sigfigs
  read_u32(in_, swap_, snaplen_);
  if (!read_u32(in_, swap_, linktype_)) fail("pcap: truncated header");
}

std::uint32_t PcapReader::record_cap() const noexcept {
  // Honour the header's snaplen, but never trust it past the hard cap and
  // never let a lying-small (or zero) snaplen reject ordinary frames.
  return std::min(kMaxRecordBytes, std::max(snaplen_, 65535u));
}

bool PcapReader::plausible_record(const unsigned char* hdr) const noexcept {
  const auto u32 = [&](std::size_t off) {
    std::uint32_t v = static_cast<std::uint32_t>(hdr[off]) |
                      (static_cast<std::uint32_t>(hdr[off + 1]) << 8) |
                      (static_cast<std::uint32_t>(hdr[off + 2]) << 16) |
                      (static_cast<std::uint32_t>(hdr[off + 3]) << 24);
    return swap_ ? swap32(v) : v;
  };
  const std::uint32_t secs = u32(0);
  const std::uint32_t caplen = u32(8);
  const std::uint32_t origlen = u32(12);
  if (caplen == 0 || caplen > record_cap()) return false;
  if (origlen < caplen || origlen > kMaxRecordBytes) return false;
  if (have_good_secs_) {
    // Timestamps near the last good record: ±1 year of drift allowed.
    constexpr std::uint32_t kYear = 365u * 86400u;
    const std::uint32_t lo = last_good_secs_ > kYear ? last_good_secs_ - kYear : 0;
    if (secs < lo || secs > last_good_secs_ + kYear) return false;
  }
  return true;
}

bool PcapReader::resync() {
  // The stream is positioned just past a corrupt 16-byte record header.
  // Scan forward for the next offset whose bytes look like a record header
  // whose *following* record header (or EOF) is also plausible.
  in_.clear();
  const std::streampos scan_start = in_.tellg();
  if (scan_start == std::streampos(-1)) {
    exhausted_ = true;
    ++stats_.resync_failures;
    return false;
  }
  std::vector<unsigned char> window(kResyncWindowBytes);
  in_.read(reinterpret_cast<char*>(window.data()),
           static_cast<std::streamsize>(window.size()));
  const std::size_t got = static_cast<std::size_t>(in_.gcount());
  if (got >= 16) {
    for (std::size_t off = 0; off + 16 <= got; ++off) {
      if (!plausible_record(window.data() + off)) continue;
      const auto u32 = [&](std::size_t o) {
        std::uint32_t v = static_cast<std::uint32_t>(window[off + o]) |
                          (static_cast<std::uint32_t>(window[off + o + 1]) << 8) |
                          (static_cast<std::uint32_t>(window[off + o + 2]) << 16) |
                          (static_cast<std::uint32_t>(window[off + o + 3]) << 24);
        return swap_ ? swap32(v) : v;
      };
      const std::size_t next_hdr = off + 16 + u32(8);
      // Confirm with the following record when it is inside the window;
      // a record running past the window (or to EOF) is accepted as-is.
      if (next_hdr + 16 <= got && !plausible_record(window.data() + next_hdr)) continue;
      in_.clear();
      in_.seekg(scan_start + static_cast<std::streamoff>(off));
      ++stats_.resyncs;
      return true;
    }
  }
  exhausted_ = true;
  ++stats_.resync_failures;
  return false;
}

std::optional<Packet> PcapReader::next() {
  while (!exhausted_) {
    std::uint32_t secs = 0, subsecs = 0, caplen = 0, origlen = 0;
    if (!read_u32(in_, swap_, secs)) return std::nullopt;
    if (!read_u32(in_, swap_, subsecs) || !read_u32(in_, swap_, caplen) ||
        !read_u32(in_, swap_, origlen)) {
      ++stats_.skipped_truncated;  // partial trailing record header
      return std::nullopt;
    }
    if (caplen > record_cap()) {
      // Hostile incl_len: never allocate it. Strict treats the file as
      // corrupt; lenient skips and hunts for the next record boundary.
      if (mode_ == PcapReadMode::kStrict)
        throw std::runtime_error("pcap: implausible record length");
      ++stats_.skipped_oversize;
      if (!resync()) return std::nullopt;
      continue;
    }
    std::vector<std::uint8_t> frame(caplen);
    if (!in_.read(reinterpret_cast<char*>(frame.data()),
                  static_cast<std::streamsize>(caplen))) {
      ++stats_.skipped_truncated;
      return std::nullopt;
    }
    ++stats_.frames_read;
    const double ts = static_cast<double>(secs) +
                      static_cast<double>(subsecs) * (nanos_ ? 1e-9 : 1e-6);

    std::span<const std::uint8_t> ip_bytes{frame};
    if (linktype_ == kLinktypeEthernet) {
      if (frame.size() < 14) {
        ++stats_.skipped_unparseable;
        continue;
      }
      const std::uint16_t ethertype = static_cast<std::uint16_t>((frame[12] << 8) | frame[13]);
      if (ethertype != 0x0800 && ethertype != 0x86dd) {
        ++stats_.skipped_unparseable;
        continue;
      }
      ip_bytes = ip_bytes.subspan(14);
    }
    auto parsed = parse(ip_bytes, ts);
    if (!parsed) {
      ++stats_.skipped_unparseable;
      continue;
    }
    have_good_secs_ = true;
    last_good_secs_ = secs;
    return std::move(parsed->packet);
  }
  return std::nullopt;
}

void write_pcap_file(const std::string& path, const std::vector<Packet>& packets) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot open for writing: " + path);
  PcapWriter writer(out);
  for (const auto& pkt : packets) writer.write(pkt);
}

std::vector<Packet> read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for reading: " + path);
  PcapReader reader(in);
  std::vector<Packet> out;
  while (auto pkt = reader.next()) out.push_back(std::move(*pkt));
  return out;
}

}  // namespace tamper::net
