// Strong ID types for the identifiers the pipeline keys everything on:
// countries, ASNs, domains, flows, PoPs, shards, and epochs.
//
// The fleet work mixes these raw ints and strings across module
// boundaries, where a swapped (pop, epoch) argument pair silently
// corrupts merges that are otherwise proven byte-identical. Each ID here
// is a tagged wrapper over its wire representation — explicit
// construction, no implicit conversions, zero overhead (a PopId is one
// u32 in memory and in a register) — so the compiler rejects the swap.
// tamperlint rule R13 (src/lint/repo_rules.cpp) enforces the taxonomy:
// a cross-module header parameter named after one of these IDs but typed
// as a raw int/string is a finding.
//
// Serialization stays raw on purpose: wire formats (fleet/partial.h),
// checkpoints, and Radar JSON read and write `.value()` so every byte is
// identical to the pre-refactor encodings. The strong types live at the
// API surface, not in the encodings.
//
// The Inventory template is the emap-style interner: names in, dense ids
// out, deterministic both ways (ids are dense in intern order; sorted()
// enumerates by name). world/countries.h builds the canonical
// CountryId inventory from its fixed country table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tamper::common {

/// Tagged, explicitly-constructed wrapper over an integral representation.
/// Distinct Tag types never convert into each other or into raw ints; the
/// only way in is the explicit constructor and the only way out is value().
template <class Tag, class Rep>
class TaggedId {
 public:
  using rep_type = Rep;
  using tag_type = Tag;

  constexpr TaggedId() noexcept = default;
  constexpr explicit TaggedId(Rep value) noexcept : value_(value) {}

  /// The raw representation — for serialization, indexing, and arithmetic
  /// at the boundaries where bytes must stay identical.
  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  [[nodiscard]] friend constexpr bool operator==(TaggedId a, TaggedId b) noexcept {
    return a.value_ == b.value_;
  }
  [[nodiscard]] friend constexpr bool operator!=(TaggedId a, TaggedId b) noexcept {
    return a.value_ != b.value_;
  }
  [[nodiscard]] friend constexpr bool operator<(TaggedId a, TaggedId b) noexcept {
    return a.value_ < b.value_;
  }
  [[nodiscard]] friend constexpr bool operator<=(TaggedId a, TaggedId b) noexcept {
    return a.value_ <= b.value_;
  }
  [[nodiscard]] friend constexpr bool operator>(TaggedId a, TaggedId b) noexcept {
    return a.value_ > b.value_;
  }
  [[nodiscard]] friend constexpr bool operator>=(TaggedId a, TaggedId b) noexcept {
    return a.value_ >= b.value_;
  }

 private:
  Rep value_{};
};

// The taxonomy. Tag names double as the render prefix ("pop:3", "asn:13335")
// so log fields, timeseries scopes, and CLI output spell a PoP the same way.
struct CountryTag { static constexpr const char* kName = "country"; };
struct AsnTag     { static constexpr const char* kName = "asn"; };
struct DomainTag  { static constexpr const char* kName = "domain"; };
struct FlowTag    { static constexpr const char* kName = "flow"; };
struct PopTag     { static constexpr const char* kName = "pop"; };
struct ShardTag   { static constexpr const char* kName = "shard"; };
struct EpochTag   { static constexpr const char* kName = "epoch"; };

using CountryId = TaggedId<CountryTag, std::uint32_t>;  ///< dense index into a country inventory
using AsnId = TaggedId<AsnTag, std::uint32_t>;          ///< the AS number itself
using DomainId = TaggedId<DomainTag, std::uint32_t>;    ///< dense index into a domain inventory
using FlowId = TaggedId<FlowTag, std::uint64_t>;        ///< flow pair-hash (aggregates.h OverlapMatrix)
using PopId = TaggedId<PopTag, std::uint32_t>;          ///< fleet point-of-presence ordinal
using ShardId = TaggedId<ShardTag, std::uint32_t>;      ///< intra-PoP worker shard ordinal
using EpochId = TaggedId<EpochTag, std::uint64_t>;      ///< capture-time epoch ordinal

/// "pop:3", "epoch:17", ... — the one rendering used everywhere a strong ID
/// reaches human-facing text (structured logs, status tables, scope names).
template <class Tag, class Rep>
[[nodiscard]] std::string format(TaggedId<Tag, Rep> id) {
  return std::string(Tag::kName) + ":" + std::to_string(id.value());
}

template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& out, TaggedId<Tag, Rep> id) {
  return out << Tag::kName << ':' << id.value();
}

namespace internal {
/// Strict decimal parse (no sign, no leading '+', no trailing junk, must
/// fit in u64). CLI ID parsing funnels through this so "pop:x7" and ""
/// fail loudly instead of strtoull-style silently reading 0.
[[nodiscard]] inline std::optional<std::uint64_t> parse_decimal_u64(
    std::string_view text) {
  if (text.empty() || text.size() > 20) return std::nullopt;
  std::uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (out > (~std::uint64_t{0} - digit) / 10) return std::nullopt;
    out = out * 10 + digit;
  }
  return out;
}
}  // namespace internal

/// Parse an ID from CLI text: either the bare number ("3") or the rendered
/// form ("pop:3" for PopId). Rejects anything else — unknown prefixes,
/// signs, empty strings, overflow.
template <class Id>
[[nodiscard]] std::optional<Id> parse_id(std::string_view text) {
  const std::string_view prefix = Id::tag_type::kName;
  if (text.size() > prefix.size() + 1 && text.substr(0, prefix.size()) == prefix &&
      text[prefix.size()] == ':')
    text.remove_prefix(prefix.size() + 1);
  const auto raw = internal::parse_decimal_u64(text);
  if (!raw) return std::nullopt;
  using Rep = typename Id::rep_type;
  if (*raw > static_cast<std::uint64_t>(~Rep{0})) return std::nullopt;
  return Id(static_cast<Rep>(*raw));
}

/// A timeseries emission scope name: "local", "fleet", or "pop:<id>" —
/// the grammar of obs::TimeseriesScope::name and `tamperscope trends
/// --scope`. Parsed strictly so CLI typos fail instead of matching nothing.
struct ScopeName {
  enum class Kind : std::uint8_t { kLocal = 0, kFleet = 1, kPop = 2 };
  Kind kind = Kind::kLocal;
  PopId pop{};  ///< meaningful only when kind == kPop

  [[nodiscard]] std::string str() const {
    switch (kind) {
      case Kind::kFleet: return "fleet";
      case Kind::kPop: return format(pop);
      case Kind::kLocal: break;
    }
    return "local";
  }
  [[nodiscard]] bool operator==(const ScopeName& o) const noexcept {
    return kind == o.kind && (kind != Kind::kPop || pop == o.pop);
  }
};

[[nodiscard]] inline std::optional<ScopeName> parse_scope(std::string_view text) {
  if (text == "local") return ScopeName{ScopeName::Kind::kLocal, PopId{}};
  if (text == "fleet") return ScopeName{ScopeName::Kind::kFleet, PopId{}};
  if (text.size() > 4 && text.substr(0, 4) == "pop:") {
    const auto pop = parse_id<PopId>(text.substr(4));
    if (!pop) return std::nullopt;
    return ScopeName{ScopeName::Kind::kPop, *pop};
  }
  return std::nullopt;
}

/// emap-style interner: names in, dense ids out, deterministic both ways.
/// Ids are dense in intern order (so an inventory built from a fixed table
/// reproduces the table's indices); sorted() enumerates by name for
/// deterministic iteration independent of intern order.
template <class Id>
class Inventory {
 public:
  using rep_type = typename Id::rep_type;

  Inventory() = default;
  /// Intern a whole table in order: ids 0..n-1 match the table's indices.
  explicit Inventory(const std::vector<std::string>& names) {
    for (const std::string& n : names) intern(n);
  }

  /// The id for `name`, interning it if new. Ids are dense: the k-th
  /// distinct name ever interned gets id k.
  Id intern(std::string_view name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const Id id(static_cast<rep_type>(names_.size()));
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// The id for `name` if already interned; nullopt otherwise (never interns).
  [[nodiscard]] std::optional<Id> try_id(std::string_view name) const {
    const auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  /// The name for `id` if it was handed out by this inventory.
  [[nodiscard]] std::optional<std::string_view> try_name(Id id) const {
    const auto i = static_cast<std::size_t>(id.value());
    if (i >= names_.size()) return std::nullopt;
    return std::string_view(names_[i]);
  }

  /// The name for `id`; throws std::out_of_range on an unknown id.
  [[nodiscard]] const std::string& name(Id id) const {
    const auto i = static_cast<std::size_t>(id.value());
    if (i >= names_.size())
      throw std::out_of_range("unknown " + format(id) + " (inventory holds " +
                              std::to_string(names_.size()) + ")");
    return names_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }

  /// Names in id order (intern order) — the dense table view.
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  /// (name, id) pairs sorted by name — the deterministic enumeration for
  /// reports and round-trip tests, independent of intern order.
  [[nodiscard]] std::vector<std::pair<std::string, Id>> sorted() const {
    std::vector<std::pair<std::string, Id>> out;
    out.reserve(index_.size());
    for (const auto& [name, id] : index_) out.emplace_back(name, id);
    return out;
  }

 private:
  std::vector<std::string> names_;  ///< id -> name, dense
  /// name -> id; std::map keeps sorted() allocation-free to build and the
  /// transparent comparator lets intern()/try_id() probe with string views.
  std::map<std::string, Id, std::less<>> index_;
};

using CountryInventory = Inventory<CountryId>;
using DomainInventory = Inventory<DomainId>;

}  // namespace tamper::common

template <class Tag, class Rep>
struct std::hash<tamper::common::TaggedId<Tag, Rep>> {
  [[nodiscard]] std::size_t operator()(
      tamper::common::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
