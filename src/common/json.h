// Minimal streaming JSON writer (no external dependencies) used by the
// report exporter and the CLI. Emits RFC 8259-conformant output: proper
// string escaping, no trailing commas, and non-finite numbers as null.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace tamper::common {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true)
      : out_(out), pretty_(pretty) {}

  JsonWriter& begin_object() {
    element_prefix();
    out_ << '{';
    stack_.push_back({true, 0});
    return *this;
  }
  JsonWriter& end_object() {
    const bool had_items = !stack_.empty() && stack_.back().count > 0;
    stack_.pop_back();
    if (had_items) newline_indent();
    out_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    element_prefix();
    out_ << '[';
    stack_.push_back({false, 0});
    return *this;
  }
  JsonWriter& end_array() {
    const bool had_items = !stack_.empty() && stack_.back().count > 0;
    stack_.pop_back();
    if (had_items) newline_indent();
    out_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    element_prefix();
    write_string(name);
    out_ << (pretty_ ? ": " : ":");
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    element_prefix();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v) {
    element_prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    element_prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    element_prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& null() {
    element_prefix();
    out_ << "null";
    return *this;
  }

  // Convenience for "key": value pairs.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

 private:
  struct Frame {
    bool is_object;
    std::size_t count;
  };

  void element_prefix();
  void newline_indent();
  void write_string(std::string_view s);

  std::ostream& out_;
  bool pretty_;
  bool pending_key_ = false;
  std::vector<Frame> stack_;
};

}  // namespace tamper::common
