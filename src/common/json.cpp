#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace tamper::common {

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value directly follows its key
  }
  if (stack_.empty()) return;
  Frame& frame = stack_.back();
  if (frame.count > 0) out_ << ',';
  ++frame.count;
  newline_indent();
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::write_string(std::string_view s) {
  out_ << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\r':
        out_ << "\\r";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << static_cast<char>(c);
        }
    }
  }
  out_ << '"';
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ << buf;
  return *this;
}

}  // namespace tamper::common
