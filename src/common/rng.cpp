#include "common/rng.h"

#include <algorithm>
#include <cassert>

namespace tamper::common {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * std::cos(theta);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return ~0ULL;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction for large lambda.
  const double v = normal(lambda, std::sqrt(lambda));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::size_t Rng::pick_weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double cumulative = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    cumulative += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = cumulative;
  }
  const double total = cdf_.back();
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

}  // namespace tamper::common
