// Simulated wall-clock time.
//
// Experiments run on a virtual timeline measured in seconds since the Unix
// epoch (double precision: microsecond resolution over the simulated ranges).
// The world model needs calendar arithmetic — local hour-of-day for diurnal
// load curves and day-of-week for weekend effects — implemented here without
// depending on the host timezone database.
#pragma once

#include <cstdint>
#include <string>

namespace tamper::common {

/// Seconds since 1970-01-01T00:00:00Z on the simulated timeline.
using SimTime = double;

constexpr double kSecondsPerMinute = 60.0;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;

/// Calendar date/time split of a SimTime (UTC unless an offset was applied).
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1-12
  int day = 1;     ///< 1-31
  int hour = 0;    ///< 0-23
  int minute = 0;  ///< 0-59
  int second = 0;  ///< 0-59
  int weekday = 4; ///< 0=Sunday .. 6=Saturday (1970-01-01 was a Thursday)
};

/// Convert epoch seconds to civil time (proleptic Gregorian, no leap seconds).
[[nodiscard]] CivilTime to_civil(SimTime t) noexcept;

/// Convert a UTC civil date to epoch seconds.
[[nodiscard]] SimTime from_civil(int year, int month, int day, int hour = 0,
                                 int minute = 0, int second = 0) noexcept;

/// Local hour-of-day (fractional) for a zone at fixed UTC offset.
[[nodiscard]] double local_hour(SimTime t, double utc_offset_hours) noexcept;

/// True when the local day is Saturday or Sunday.
[[nodiscard]] bool is_weekend(SimTime t, double utc_offset_hours) noexcept;

/// "YYYY-MM-DD" for the UTC date containing t.
[[nodiscard]] std::string format_date(SimTime t);

/// "YYYY-MM-DD HH:MM:SS" UTC.
[[nodiscard]] std::string format_datetime(SimTime t);

}  // namespace tamper::common
