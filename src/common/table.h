// Plain-text table and CSV rendering for experiment harnesses.
//
// Every bench binary prints its table/figure data through TextTable so the
// output format is uniform and directly comparable with the paper's rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tamper::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string num(std::uint64_t v);
  /// "12.34%" with guard for NaN.
  [[nodiscard]] static std::string pct(double v, int precision = 1);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used between experiment blocks in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace tamper::common
