// Streaming statistics used by the analysis layer: running moments,
// empirical CDFs, fixed-bin histograms, counters keyed by label, and
// ordinary least squares for the Fig. 7 regression slopes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tamper::common {

/// Welford running mean / variance.
class RunningMoments {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Collects samples and answers quantile / CDF queries (exact, sorts lazily).
class EmpiricalCdf {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;
  /// Value at quantile q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  /// (x, F(x)) pairs at `points` evenly spaced quantiles, for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Samples in ascending order — for serialization; order is not semantic.
  [[nodiscard]] std::vector<double> sorted_samples() const;
  /// Replace contents (restore path; pair of sorted_samples()).
  void assign(std::vector<double> samples) {
    samples_ = std::move(samples);
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp to
/// the edge bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double bin_low(std::size_t i) const noexcept;
  [[nodiscard]] double bin_high(std::size_t i) const noexcept;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares y = slope * x + intercept.
struct Regression {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
  std::size_t n = 0;
};
[[nodiscard]] Regression linear_regression(const std::vector<double>& x,
                                           const std::vector<double>& y);

/// Counter over string labels with stable iteration order.
class LabelCounter {
 public:
  void add(const std::string& label, std::uint64_t count = 1) {
    counts_[label] += count;
    total_ += count;
  }
  [[nodiscard]] std::uint64_t get(const std::string& label) const {
    const auto it = counts_.find(label);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] double fraction(const std::string& label) const {
    return total_ == 0 ? 0.0 : static_cast<double>(get(label)) / static_cast<double>(total_);
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& items() const noexcept {
    return counts_;
  }
  /// Labels sorted by descending count (ties broken lexicographically).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t k) const;

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percentage helper with divide-by-zero guard.
[[nodiscard]] inline double percent(std::uint64_t part, std::uint64_t whole) noexcept {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace tamper::common
