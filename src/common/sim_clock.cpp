#include "common/sim_clock.h"

#include <cmath>
#include <cstdio>

namespace tamper::common {
namespace {

// Howard Hinnant's days-from-civil / civil-from-days algorithms.
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
                       static_cast<unsigned>(d) - 1u;                    // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;         // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

CivilTime to_civil(SimTime t) noexcept {
  const auto total = static_cast<std::int64_t>(std::floor(t));
  std::int64_t days = total / 86400;
  std::int64_t rem = total % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / 3600);
  ct.minute = static_cast<int>((rem % 3600) / 60);
  ct.second = static_cast<int>(rem % 60);
  // 1970-01-01 (day 0) was a Thursday (weekday 4).
  ct.weekday = static_cast<int>(((days % 7) + 11) % 7);
  return ct;
}

SimTime from_civil(int year, int month, int day, int hour, int minute, int second) noexcept {
  return static_cast<SimTime>(days_from_civil(year, month, day)) * kSecondsPerDay +
         hour * kSecondsPerHour + minute * kSecondsPerMinute + second;
}

double local_hour(SimTime t, double utc_offset_hours) noexcept {
  const double shifted = t + utc_offset_hours * kSecondsPerHour;
  double day_fraction = std::fmod(shifted, kSecondsPerDay);
  if (day_fraction < 0) day_fraction += kSecondsPerDay;
  return day_fraction / kSecondsPerHour;
}

bool is_weekend(SimTime t, double utc_offset_hours) noexcept {
  const CivilTime ct = to_civil(t + utc_offset_hours * kSecondsPerHour);
  return ct.weekday == 0 || ct.weekday == 6;
}

std::string format_date(SimTime t) {
  const CivilTime ct = to_civil(t);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", ct.year, ct.month, ct.day);
  return buf;
}

std::string format_datetime(SimTime t) {
  const CivilTime ct = to_civil(t);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", ct.year, ct.month,
                ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

}  // namespace tamper::common
