// Bounded MPSC queue with an explicit backpressure contract.
//
// The streaming service puts this between capture (producers) and analysis
// (one worker): a load spike must translate into either producer blocking
// or accounted shedding — never unbounded memory. Two policies:
//
//   * kBlock — push() waits for space (or for close()).
//   * kShed  — push() never waits. When full it sheds one item, preferring
//     queued items the `shed_first` predicate marks as low-value (the
//     service marks embryonic single-SYN samples, the shape a flood leaves
//     behind) so real connections survive overload. Every shed is counted
//     and the service folds the counts into DegradedStats.
//
// Locking: one Mutex guards all mutable state; the capability annotations
// below make that discipline compile-time checked under Clang
// -Wthread-safety (see common/thread_annotations.h).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tamper::common {

enum class QueuePolicy : std::uint8_t {
  kBlock,  ///< push blocks until space is available
  kShed,   ///< push sheds (low-value-first) instead of blocking
};

/// Cumulative queue counters (namespace-scope so non-template consumers —
/// Pipeline::record_queue_stats — can take them without the element type).
struct BoundedQueueStats {
  std::uint64_t pushed = 0;            ///< items accepted into the queue
  std::uint64_t popped = 0;
  std::uint64_t shed_low_value = 0;    ///< sheds chosen by shed_first
  std::uint64_t shed_other = 0;        ///< sheds with no low-value candidate
  std::uint64_t push_waits = 0;        ///< kBlock: pushes that had to wait
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_low_value + shed_other;
  }
};

template <typename T>
class BoundedQueue {
 public:
  using Stats = BoundedQueueStats;

  BoundedQueue(std::size_t capacity, QueuePolicy policy,
               std::function<bool(const T&)> shed_first = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        policy_(policy),
        shed_first_(std::move(shed_first)) {}

  /// Returns false only when the queue is closed (item not enqueued).
  bool push(T item) TAMPER_EXCLUDES(mu_) {
    UniqueLock lock(mu_);
    if (policy_ == QueuePolicy::kBlock) {
      if (items_.size() >= capacity_ && !closed_) ++stats_.push_waits;
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
      if (closed_) return false;
    } else if (items_.size() >= capacity_) {
      if (closed_) return false;
      shed_one(std::move(item));
      not_empty_.notify_one();
      return true;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushed;
    not_empty_.notify_one();
    return true;
  }

  /// Wait up to `timeout` for an item; empty optional on timeout or when
  /// the queue is closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_wait(std::chrono::duration<Rep, Period> timeout)
      TAMPER_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() { return pop_wait(std::chrono::seconds(0)); }

  /// Reject future pushes and wake all waiters; queued items stay poppable.
  void close() TAMPER_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const TAMPER_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const TAMPER_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] Stats stats() const TAMPER_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  /// Called with the lock held and the queue full: make room for `incoming`
  /// by shedding the lowest-value item (queued low-value first, then the
  /// incoming item if it is itself low-value, then the oldest queued item).
  void shed_one(T incoming) TAMPER_REQUIRES(mu_) {
    if (shed_first_) {
      for (auto it = items_.begin(); it != items_.end(); ++it) {
        if (shed_first_(*it)) {
          items_.erase(it);
          ++stats_.shed_low_value;
          items_.push_back(std::move(incoming));
          ++stats_.pushed;
          return;
        }
      }
      if (shed_first_(incoming)) {
        ++stats_.shed_low_value;  // incoming itself is the low-value victim
        return;
      }
    }
    items_.pop_front();
    ++stats_.shed_other;
    items_.push_back(std::move(incoming));
    ++stats_.pushed;
  }

  const std::size_t capacity_;
  const QueuePolicy policy_;
  const std::function<bool(const T&)> shed_first_;

  mutable Mutex mu_;
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> items_ TAMPER_GUARDED_BY(mu_);
  Stats stats_ TAMPER_GUARDED_BY(mu_);
  bool closed_ TAMPER_GUARDED_BY(mu_) = false;
};

}  // namespace tamper::common
