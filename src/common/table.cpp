#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace tamper::common {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::num(double v, int precision) {
  if (std::isnan(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::pct(double v, int precision) {
  if (std::isnan(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 == header_.size() ? " |" : " | ");
    }
    os << '\n';
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace tamper::common
