// Deterministic pseudo-random number generation for simulation.
//
// All randomness in libtamper flows through Rng so that every experiment is
// exactly reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via splitmix64 (the construction recommended by the
// xoshiro authors), which is fast, has a 2^256-1 period, and — unlike
// std::mt19937 distributions — gives identical streams on every platform
// because we implement the distributions ourselves.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>
#include <string_view>
#include <vector>

namespace tamper::common {

/// splitmix64 step; used for seeding and hashing small integers.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (for hashing ids into streams).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// FNV-1a over a string, for deriving stream seeds from names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic xoshiro256** engine with self-contained distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8badf00ddeadbeefULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const noexcept {
    return Rng(mix64(state_[0] ^ mix64(salt ^ 0xa5a5a5a5a5a5a5a5ULL)));
  }
  [[nodiscard]] Rng fork(std::string_view name) const noexcept { return fork(fnv1a(name)); }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (no cached spare: keeps stream simple).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Exponential with given rate (lambda).
  [[nodiscard]] double exponential(double rate) noexcept {
    return -std::log1p(-uniform()) / rate;
  }

  /// Geometric: number of failures before first success, p in (0,1].
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Poisson (Knuth for small lambda, normal approx for large).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;

  /// Pick an index with probability proportional to weights[i].
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights) noexcept;

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks [0, n) with precomputed CDF; O(log n) sample.
/// Used for domain popularity: rank 0 is the most popular domain.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of a single rank.
  [[nodiscard]] double pmf(std::size_t rank) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace tamper::common
