// Annotated locking primitives for Clang thread-safety analysis.
//
// std::mutex and std::lock_guard carry no capability attributes, so code
// using them is invisible to -Wthread-safety: every GUARDED_BY access would
// be (or worse, would never be) flagged. Concurrent code in this repo uses
// these thin wrappers instead — identical codegen, but the analysis can see
// every acquire and release. Condition waits use std::condition_variable_any
// with UniqueLock; waits are written as explicit `while (!pred) cv.wait(l)`
// loops rather than predicate lambdas, because a lambda body is analyzed as
// a separate unannotated function and would spuriously trip the analysis.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace tamper::common {

/// std::mutex with capability annotations. Satisfies Lockable, so the std
/// RAII helpers still work — but prefer MutexLock/UniqueLock, which are the
/// annotated forms the analysis understands.
class TAMPER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TAMPER_ACQUIRE() { mu_.lock(); }
  void unlock() TAMPER_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TAMPER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard: holds the mutex for its whole scope.
class TAMPER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TAMPER_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TAMPER_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated std::unique_lock: relockable, usable with
/// std::condition_variable_any (which needs lock()/unlock()).
class TAMPER_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) TAMPER_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~UniqueLock() TAMPER_RELEASE() {
    if (owned_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() TAMPER_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() TAMPER_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }
  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }

 private:
  Mutex& mu_;
  bool owned_;
};

}  // namespace tamper::common
