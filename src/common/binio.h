// Little-endian binary serialization for checkpoint payloads.
//
// Deliberately tiny: fixed-width integers, IEEE doubles (bit-cast), and
// length-prefixed strings. BinReader throws BinUnderrun on any read past
// the end of the buffer, so a truncated payload surfaces as one typed
// exception the checkpoint loader turns into a clean refusal — never as
// garbage state in an aggregator.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tamper::common {

class BinUnderrun : public std::runtime_error {
 public:
  BinUnderrun() : std::runtime_error("binary payload truncated") {}
};

class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    for (char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    if constexpr (std::endian::native == std::endian::little) {
      buf_.insert(buf_.end(), b, b + n);
    } else {
      for (std::size_t i = n; i > 0; --i) buf_.push_back(b[i - 1]);
    }
  }
  std::vector<std::uint8_t> buf_;
};

class BinReader {
 public:
  BinReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit BinReader(const std::vector<std::uint8_t>& bytes)
      : BinReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return load<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return load<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return load<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    if (n > remaining()) throw BinUnderrun();
    const std::uint8_t* p = take(static_cast<std::size_t>(n));
    return std::string(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  template <typename T>
  [[nodiscard]] T load() {
    const std::uint8_t* p = take(sizeof(T));
    T v;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, p, sizeof(T));
    } else {
      std::uint8_t swapped[sizeof(T)];
      for (std::size_t i = 0; i < sizeof(T); ++i) swapped[i] = p[sizeof(T) - 1 - i];
      std::memcpy(&v, swapped, sizeof(T));
    }
    return v;
  }
  [[nodiscard]] const std::uint8_t* take(std::size_t n) {
    if (n > remaining()) throw BinUnderrun();
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// FNV-1a over a byte buffer (checkpoint payload checksums).
[[nodiscard]] constexpr std::uint64_t fnv1a_bytes(const std::uint8_t* data,
                                                 std::size_t size) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tamper::common
