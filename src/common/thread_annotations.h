// Clang thread-safety-analysis capability macros (no-ops elsewhere).
//
// These turn the repo's locking conventions into compile-time contracts:
// a member annotated TAMPER_GUARDED_BY(mu_) cannot be touched without
// holding mu_, and a function annotated TAMPER_REQUIRES(mu_) cannot be
// called without it. The analysis only understands annotated lock types,
// so concurrent code uses common::Mutex / common::MutexLock /
// common::UniqueLock (see common/mutex.h) instead of the std primitives.
//
// Enforced as -Werror=thread-safety by the `lint` CI job (Clang build with
// -DTAMPER_THREAD_SAFETY=ON); GCC builds compile the macros away.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TAMPER_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TAMPER_THREAD_ANNOTATION
#define TAMPER_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define TAMPER_CAPABILITY(name) TAMPER_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define TAMPER_SCOPED_CAPABILITY TAMPER_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be accessed while holding `mu`.
#define TAMPER_GUARDED_BY(mu) TAMPER_THREAD_ANNOTATION(guarded_by(mu))

/// Pointer member whose *pointee* is protected by `mu`.
#define TAMPER_PT_GUARDED_BY(mu) TAMPER_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function that must be called with the listed capabilities held.
#define TAMPER_REQUIRES(...) \
  TAMPER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the listed capabilities NOT held.
#define TAMPER_EXCLUDES(...) TAMPER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (and does not release it).
#define TAMPER_ACQUIRE(...) \
  TAMPER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define TAMPER_RELEASE(...) \
  TAMPER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define TAMPER_TRY_ACQUIRE(result, ...) \
  TAMPER_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis).
#define TAMPER_ASSERT_CAPABILITY(...) \
  TAMPER_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Function returning a reference to the capability protecting its result.
#define TAMPER_RETURN_CAPABILITY(mu) TAMPER_THREAD_ANNOTATION(lock_returned(mu))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the locking is correct but inexpressible.
#define TAMPER_NO_THREAD_SAFETY_ANALYSIS \
  TAMPER_THREAD_ANNOTATION(no_thread_safety_analysis)
