#include "common/stats.h"

#include <cmath>
#include <stdexcept>

namespace tamper::common {

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) throw std::out_of_range("EmpiricalCdf::quantile on empty set");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1 == 0 ? 1 : points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

std::vector<double> EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::out_of_range("EmpiricalCdf::min on empty set");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::out_of_range("EmpiricalCdf::max on empty set");
  ensure_sorted();
  return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_high(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

Regression linear_regression(const std::vector<double>& x, const std::vector<double>& y) {
  Regression r;
  r.n = std::min(x.size(), y.size());
  if (r.n < 2) return r;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < r.n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(r.n);
  const double my = sy / static_cast<double>(r.n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < r.n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return r;
  r.slope = sxy / sxx;
  r.intercept = my - r.slope * mx;
  r.r2 = syy <= 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return r;
}

std::vector<std::pair<std::string, std::uint64_t>> LabelCounter::top(std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> v(counts_.begin(), counts_.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (v.size() > k) v.resize(k);
  return v;
}

}  // namespace tamper::common
