#include "obs/validate.h"

#include <cstdlib>
#include <map>
#include <vector>

#include "obs/metrics.h"

namespace tamper::obs {

namespace {

struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  bool next(std::string_view* line) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      *line = text.substr(pos);
      pos = text.size();
    } else {
      *line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    ++line_no;
    return true;
  }
};

Validation fail(std::size_t line, std::string error) {
  Validation v;
  v.ok = false;
  v.line = line;
  v.error = std::move(error);
  return v;
}

bool parse_sample_value(std::string_view v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  if (v.empty()) return false;
  const std::string buf(v);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

/// Parses `{k="v",...}` starting at text[pos] == '{'. On success advances
/// pos past the closing brace and appends the pairs. Handles \\ \" \n
/// escapes inside values.
bool parse_label_block(std::string_view text, std::size_t* pos,
                       std::vector<std::pair<std::string, std::string>>* out) {
  std::size_t i = *pos + 1;  // past '{'
  while (i < text.size() && text[i] != '}') {
    std::size_t key_start = i;
    while (i < text.size() && text[i] != '=') ++i;
    if (i >= text.size()) return false;
    const std::string key(text.substr(key_start, i - key_start));
    if (!valid_metric_name(key)) return false;
    ++i;  // '='
    if (i >= text.size() || text[i] != '"') return false;
    ++i;  // '"'
    std::string value;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        if (i + 1 >= text.size()) return false;
        const char esc = text[i + 1];
        if (esc == '\\') value += '\\';
        else if (esc == '"') value += '"';
        else if (esc == 'n') value += '\n';
        else return false;
        i += 2;
      } else {
        value += text[i++];
      }
    }
    if (i >= text.size()) return false;
    ++i;  // closing '"'
    out->emplace_back(key, value);
    if (i < text.size() && text[i] == ',') ++i;
  }
  if (i >= text.size()) return false;
  *pos = i + 1;  // past '}'
  return true;
}

}  // namespace

Validation validate_prometheus_text(std::string_view text) {
  Validation result;
  LineCursor cursor{text};
  std::map<std::string, std::string> family_type;  // name → counter/gauge/histogram
  std::string last_declared;  // ordering check
  // Histogram cumulative-monotonicity: the last _bucket line's series
  // identity (base name + labels minus `le`) and cumulative value.
  std::string last_bucket_series;
  double last_bucket_value = 0.0;

  std::string_view line;
  while (cursor.next(&line)) {
    if (line.empty()) continue;
    if (line.front() == '#') {
      // "# HELP name text" / "# TYPE name kind" / other comments.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos)
          return fail(cursor.line_no, "malformed TYPE line");
        const std::string fname(rest.substr(0, sp));
        const std::string kind(rest.substr(sp + 1));
        if (!valid_metric_name(fname))
          return fail(cursor.line_no, "family name not snake_case: " + fname);
        if (kind != "counter" && kind != "gauge" && kind != "histogram")
          return fail(cursor.line_no, "unknown metric type: " + kind);
        if (family_type.count(fname) != 0)
          return fail(cursor.line_no, "family declared twice: " + fname);
        if (!last_declared.empty() && fname <= last_declared)
          return fail(cursor.line_no,
                      "families out of order: " + fname + " after " + last_declared);
        last_declared = fname;
        family_type.emplace(fname, kind);
      } else if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string fname(sp == std::string_view::npos ? rest
                                                             : rest.substr(0, sp));
        if (!valid_metric_name(fname))
          return fail(cursor.line_no, "HELP for invalid name: " + fname);
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    std::string sample_name(line.substr(0, pos));
    if (!valid_metric_name(sample_name))
      return fail(cursor.line_no, "sample name not snake_case: " + sample_name);

    // Resolve the owning family: exact match, or histogram suffix.
    std::string base = sample_name;
    bool is_bucket = false;
    auto it = family_type.find(base);
    if (it == family_type.end()) {
      for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
        if (base.size() > suffix.size() &&
            std::string_view(base).substr(base.size() - suffix.size()) == suffix) {
          std::string stripped = base.substr(0, base.size() - suffix.size());
          auto hit = family_type.find(stripped);
          if (hit != family_type.end() && hit->second == "histogram") {
            it = hit;
            is_bucket = suffix == "_bucket";
            base = std::move(stripped);
            break;
          }
        }
      }
    }
    if (it == family_type.end())
      return fail(cursor.line_no, "sample without TYPE declaration: " + sample_name);
    if (it->second == "histogram" && base == sample_name)
      return fail(cursor.line_no,
                  "bare histogram sample (want _bucket/_sum/_count): " + sample_name);

    std::vector<std::pair<std::string, std::string>> labels;
    if (pos < line.size() && line[pos] == '{') {
      if (!parse_label_block(line, &pos, &labels))
        return fail(cursor.line_no, "malformed label block");
    }
    if (pos >= line.size() || line[pos] != ' ')
      return fail(cursor.line_no, "missing sample value");
    const std::string_view value = line.substr(pos + 1);
    if (!parse_sample_value(value))
      return fail(cursor.line_no, "unparseable sample value: " + std::string(value));

    if (is_bucket) {
      std::string le;
      std::string series = base;
      for (const auto& [k, v] : labels) {
        if (k == "le") le = v;
        else series += "|" + k + "=" + v;
      }
      if (le.empty())
        return fail(cursor.line_no, "_bucket sample without le label");
      const double bucket_value = std::strtod(std::string(value).c_str(), nullptr);
      if (series == last_bucket_series && bucket_value < last_bucket_value)
        return fail(cursor.line_no,
                    "histogram cumulative bucket counts decreased in " + base);
      last_bucket_series = std::move(series);
      last_bucket_value = bucket_value;
    } else {
      last_bucket_series.clear();
    }
    ++result.samples;
  }
  result.families = family_type.size();
  return result;
}

Validation validate_chrome_trace(std::string_view text) {
  Validation result;
  LineCursor cursor{text};
  std::string_view line;
  if (!cursor.next(&line) || line != "[")
    return fail(cursor.line_no, "trace must open with a '[' line");

  bool closed = false;
  bool prev_had_comma = false;
  bool any_event = false;
  while (cursor.next(&line)) {
    if (line == "]") {
      if (any_event && prev_had_comma)
        return fail(cursor.line_no, "trailing comma before ']' terminator");
      closed = true;
      break;
    }
    std::string_view body = line;
    prev_had_comma = !body.empty() && body.back() == ',';
    if (prev_had_comma) body.remove_suffix(1);
    if (body.size() < 2 || body.front() != '{' || body.back() != '}')
      return fail(cursor.line_no, "event line is not a one-line JSON object");
    for (const std::string_view key :
         {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
          "\"pid\":", "\"tid\":"}) {
      if (body.find(key) == std::string_view::npos)
        return fail(cursor.line_no,
                    "event missing required key " + std::string(key));
    }
    any_event = true;
    ++result.samples;
  }
  if (!closed) return fail(cursor.line_no, "missing ']' terminator line");
  if (cursor.next(&line) && !line.empty())
    return fail(cursor.line_no, "content after ']' terminator");
  return result;
}

}  // namespace tamper::obs
