#include "obs/validate.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "obs/metrics.h"

namespace tamper::obs {

namespace {

struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  bool next(std::string_view* line) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      *line = text.substr(pos);
      pos = text.size();
    } else {
      *line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    ++line_no;
    return true;
  }
};

Validation fail(std::size_t line, std::string error) {
  Validation v;
  v.ok = false;
  v.line = line;
  v.error = std::move(error);
  return v;
}

bool parse_sample_value(std::string_view v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  if (v.empty()) return false;
  const std::string buf(v);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

/// Parses `{k="v",...}` starting at text[pos] == '{'. On success advances
/// pos past the closing brace and appends the pairs. Handles \\ \" \n
/// escapes inside values.
bool parse_label_block(std::string_view text, std::size_t* pos,
                       std::vector<std::pair<std::string, std::string>>* out) {
  std::size_t i = *pos + 1;  // past '{'
  while (i < text.size() && text[i] != '}') {
    std::size_t key_start = i;
    while (i < text.size() && text[i] != '=') ++i;
    if (i >= text.size()) return false;
    const std::string key(text.substr(key_start, i - key_start));
    if (!valid_metric_name(key)) return false;
    ++i;  // '='
    if (i >= text.size() || text[i] != '"') return false;
    ++i;  // '"'
    std::string value;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        if (i + 1 >= text.size()) return false;
        const char esc = text[i + 1];
        if (esc == '\\') value += '\\';
        else if (esc == '"') value += '"';
        else if (esc == 'n') value += '\n';
        else return false;
        i += 2;
      } else {
        value += text[i++];
      }
    }
    if (i >= text.size()) return false;
    ++i;  // closing '"'
    out->emplace_back(key, value);
    if (i < text.size() && text[i] == ',') ++i;
  }
  if (i >= text.size()) return false;
  *pos = i + 1;  // past '}'
  return true;
}

}  // namespace

Validation validate_prometheus_text(std::string_view text) {
  Validation result;
  LineCursor cursor{text};
  std::map<std::string, std::string> family_type;  // name → counter/gauge/histogram
  std::string last_declared;  // ordering check
  // Histogram cumulative-monotonicity: the last _bucket line's series
  // identity (base name + labels minus `le`) and cumulative value.
  std::string last_bucket_series;
  double last_bucket_value = 0.0;

  std::string_view line;
  while (cursor.next(&line)) {
    if (line.empty()) continue;
    if (line.front() == '#') {
      // "# HELP name text" / "# TYPE name kind" / other comments.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos)
          return fail(cursor.line_no, "malformed TYPE line");
        const std::string fname(rest.substr(0, sp));
        const std::string kind(rest.substr(sp + 1));
        if (!valid_metric_name(fname))
          return fail(cursor.line_no, "family name not snake_case: " + fname);
        if (kind != "counter" && kind != "gauge" && kind != "histogram")
          return fail(cursor.line_no, "unknown metric type: " + kind);
        if (family_type.count(fname) != 0)
          return fail(cursor.line_no, "family declared twice: " + fname);
        if (!last_declared.empty() && fname <= last_declared)
          return fail(cursor.line_no,
                      "families out of order: " + fname + " after " + last_declared);
        last_declared = fname;
        family_type.emplace(fname, kind);
      } else if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string fname(sp == std::string_view::npos ? rest
                                                             : rest.substr(0, sp));
        if (!valid_metric_name(fname))
          return fail(cursor.line_no, "HELP for invalid name: " + fname);
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    std::string sample_name(line.substr(0, pos));
    if (!valid_metric_name(sample_name))
      return fail(cursor.line_no, "sample name not snake_case: " + sample_name);

    // Resolve the owning family: exact match, or histogram suffix.
    std::string base = sample_name;
    bool is_bucket = false;
    auto it = family_type.find(base);
    if (it == family_type.end()) {
      for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
        if (base.size() > suffix.size() &&
            std::string_view(base).substr(base.size() - suffix.size()) == suffix) {
          std::string stripped = base.substr(0, base.size() - suffix.size());
          auto hit = family_type.find(stripped);
          if (hit != family_type.end() && hit->second == "histogram") {
            it = hit;
            is_bucket = suffix == "_bucket";
            base = std::move(stripped);
            break;
          }
        }
      }
    }
    if (it == family_type.end())
      return fail(cursor.line_no, "sample without TYPE declaration: " + sample_name);
    if (it->second == "histogram" && base == sample_name)
      return fail(cursor.line_no,
                  "bare histogram sample (want _bucket/_sum/_count): " + sample_name);

    std::vector<std::pair<std::string, std::string>> labels;
    if (pos < line.size() && line[pos] == '{') {
      if (!parse_label_block(line, &pos, &labels))
        return fail(cursor.line_no, "malformed label block");
    }
    if (pos >= line.size() || line[pos] != ' ')
      return fail(cursor.line_no, "missing sample value");
    const std::string_view value = line.substr(pos + 1);
    if (!parse_sample_value(value))
      return fail(cursor.line_no, "unparseable sample value: " + std::string(value));

    if (is_bucket) {
      std::string le;
      std::string series = base;
      for (const auto& [k, v] : labels) {
        if (k == "le") le = v;
        else series += "|" + k + "=" + v;
      }
      if (le.empty())
        return fail(cursor.line_no, "_bucket sample without le label");
      const double bucket_value = std::strtod(std::string(value).c_str(), nullptr);
      if (series == last_bucket_series && bucket_value < last_bucket_value)
        return fail(cursor.line_no,
                    "histogram cumulative bucket counts decreased in " + base);
      last_bucket_series = std::move(series);
      last_bucket_value = bucket_value;
    } else {
      last_bucket_series.clear();
    }
    ++result.samples;
  }
  result.families = family_type.size();
  return result;
}

Validation validate_chrome_trace(std::string_view text) {
  Validation result;
  LineCursor cursor{text};
  std::string_view line;
  if (!cursor.next(&line) || line != "[")
    return fail(cursor.line_no, "trace must open with a '[' line");

  bool closed = false;
  bool prev_had_comma = false;
  bool any_event = false;
  while (cursor.next(&line)) {
    if (line == "]") {
      if (any_event && prev_had_comma)
        return fail(cursor.line_no, "trailing comma before ']' terminator");
      closed = true;
      break;
    }
    std::string_view body = line;
    prev_had_comma = !body.empty() && body.back() == ',';
    if (prev_had_comma) body.remove_suffix(1);
    if (body.size() < 2 || body.front() != '{' || body.back() != '}')
      return fail(cursor.line_no, "event line is not a one-line JSON object");
    for (const std::string_view key :
         {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
          "\"pid\":", "\"tid\":"}) {
      if (body.find(key) == std::string_view::npos)
        return fail(cursor.line_no,
                    "event missing required key " + std::string(key));
    }
    any_event = true;
    ++result.samples;
  }
  if (!closed) return fail(cursor.line_no, "missing ']' terminator line");
  if (cursor.next(&line) && !line.empty())
    return fail(cursor.line_no, "content after ']' terminator");
  return result;
}

// -------------------------------------------------------- timeseries JSON

namespace {

/// Minimal JSON document model for the structural checks below. Objects
/// keep their keys sorted (duplicate keys are a parse error), which is all
/// the validator needs — it never re-emits.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Recursive-descent JSON parser, tracking the 1-based line for errors.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool parse(JsonValue* out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return error("content after the document");
    return true;
  }

  [[nodiscard]] const std::string& error_text() const noexcept { return error_; }
  [[nodiscard]] std::size_t error_line() const noexcept { return line_; }

 private:
  bool error(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return error("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return error("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\n') return error("unterminated string");
      if (c == '\\') {
        if (pos_ >= text_.size()) return error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
            // Validated but passed through verbatim; the formats under
            // check never need the decoded code point.
            out->append("\\u").append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default: return error("unknown escape");
        }
        continue;
      }
      out->push_back(c);
    }
    return error("unterminated string");
  }

  bool number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return error("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return error("malformed number");
    return true;
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') return error("expected ':'");
        ++pos_;
        JsonValue child;
        if (!value(&child)) return false;
        if (!out->object.emplace(std::move(key), std::move(child)).second)
          return error("duplicate object key");
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue child;
        if (!value(&child)) return false;
        out->array.push_back(std::move(child));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    out->kind = JsonValue::Kind::kNumber;
    return number(&out->number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::string error_;
};

[[nodiscard]] bool finite_number(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber && std::isfinite(v->number);
}

[[nodiscard]] bool integer_number(const JsonValue* v) {
  return finite_number(v) && v->number == std::floor(v->number);
}

[[nodiscard]] bool is_string(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}

[[nodiscard]] bool is_bool(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kBool;
}

[[nodiscard]] const JsonValue* get_array(const JsonValue& parent, const std::string& key) {
  const JsonValue* v = parent.get(key);
  return v != nullptr && v->kind == JsonValue::Kind::kArray ? v : nullptr;
}

}  // namespace

Validation validate_timeseries_json(std::string_view text) {
  Validation result;
  JsonValue doc;
  JsonParser parser(text);
  if (!parser.parse(&doc))
    return fail(parser.error_line(), "JSON parse error: " + parser.error_text());
  if (doc.kind != JsonValue::Kind::kObject)
    return fail(1, "document is not a JSON object");

  const JsonValue* schema = doc.get("schema");
  if (!is_string(schema) || schema->string != "tamper-timeseries/1")
    return fail(1, "missing or wrong \"schema\" (want tamper-timeseries/1)");
  const JsonValue* epoch_len = doc.get("epoch_length_sec");
  if (!integer_number(epoch_len) || epoch_len->number <= 0)
    return fail(1, "\"epoch_length_sec\" must be a positive integer");
  const JsonValue* scopes = get_array(doc, "scopes");
  if (scopes == nullptr) return fail(1, "missing \"scopes\" array");

  std::string prev_scope;
  for (const JsonValue& scope : scopes->array) {
    if (scope.kind != JsonValue::Kind::kObject)
      return fail(1, "scope entry is not an object");
    const JsonValue* scope_name = scope.get("scope");
    if (!is_string(scope_name) || scope_name->string.empty())
      return fail(1, "scope missing a non-empty \"scope\" name");
    const std::string where = "scope \"" + scope_name->string + "\"";

    const JsonValue* series = get_array(scope, "series");
    if (series == nullptr) return fail(1, where + " missing \"series\" array");
    std::string prev_family, prev_label;
    bool have_prev_series = false;
    for (const JsonValue& s : series->array) {
      if (s.kind != JsonValue::Kind::kObject)
        return fail(1, where + ": series entry is not an object");
      const JsonValue* family = s.get("family");
      const JsonValue* label = s.get("label");
      const JsonValue* merge = s.get("merge");
      if (!is_string(family) || family->string.empty())
        return fail(1, where + ": series missing \"family\"");
      if (!is_string(label))
        return fail(1, where + ": series missing \"label\"");
      if (!is_string(merge) || (merge->string != "sum" && merge->string != "max"))
        return fail(1, where + ": series \"merge\" must be sum or max");
      if (have_prev_series &&
          (family->string < prev_family ||
           (family->string == prev_family && label->string <= prev_label)))
        return fail(1, where + ": series not in ascending (family, label) order");
      prev_family = family->string;
      prev_label = label->string;
      have_prev_series = true;
      const JsonValue* points = get_array(s, "points");
      if (points == nullptr)
        return fail(1, where + ": series missing \"points\" array");
      bool have_prev_epoch = false;
      double prev_epoch = 0;
      for (const JsonValue& p : points->array) {
        if (p.kind != JsonValue::Kind::kObject)
          return fail(1, where + ": point is not an object");
        const JsonValue* epoch = p.get("epoch");
        const JsonValue* value = p.get("value");
        if (!integer_number(epoch))
          return fail(1, where + ": point \"epoch\" must be an integer");
        if (!finite_number(value))
          return fail(1, where + ": point \"value\" must be a finite number");
        if (have_prev_epoch && epoch->number <= prev_epoch)
          return fail(1, where + ": point epochs not strictly ascending");
        prev_epoch = epoch->number;
        have_prev_epoch = true;
        ++result.samples;
      }
      ++result.families;
    }

    const JsonValue* epochs = get_array(scope, "epochs");
    if (epochs == nullptr) return fail(1, where + " missing \"epochs\" array");
    bool have_prev_note = false;
    double prev_note_epoch = 0;
    for (const JsonValue& note : epochs->array) {
      if (note.kind != JsonValue::Kind::kObject)
        return fail(1, where + ": epoch note is not an object");
      const JsonValue* epoch = note.get("epoch");
      if (!integer_number(epoch))
        return fail(1, where + ": epoch note missing integer \"epoch\"");
      for (const char* key : {"pops_reporting", "pops_expected", "pops_shedding"})
        if (!integer_number(note.get(key)) || note.get(key)->number < 0)
          return fail(1, where + ": epoch note missing counter \"" +
                             std::string(key) + "\"");
      if (!is_bool(note.get("degraded")))
        return fail(1, where + ": epoch note missing boolean \"degraded\"");
      if (note.get("pops_reporting")->number > note.get("pops_expected")->number)
        return fail(1, where + ": pops_reporting exceeds pops_expected");
      if (have_prev_note && epoch->number <= prev_note_epoch)
        return fail(1, where + ": epoch notes not strictly ascending");
      prev_note_epoch = epoch->number;
      have_prev_note = true;
    }

    const JsonValue* anomalies = get_array(scope, "anomalies");
    if (anomalies == nullptr) return fail(1, where + " missing \"anomalies\" array");
    for (const JsonValue& event : anomalies->array) {
      if (event.kind != JsonValue::Kind::kObject)
        return fail(1, where + ": anomaly is not an object");
      if (!is_string(event.get("family")) || !is_string(event.get("label")))
        return fail(1, where + ": anomaly missing \"family\"/\"label\"");
      if (!integer_number(event.get("epoch")))
        return fail(1, where + ": anomaly missing integer \"epoch\"");
      for (const char* key : {"delta", "expected", "score"})
        if (!finite_number(event.get(key)))
          return fail(1, where + ": anomaly missing finite \"" +
                             std::string(key) + "\"");
    }
    prev_scope = scope_name->string;
  }
  return result;
}

}  // namespace tamper::obs
