#include "obs/clock.h"

namespace tamper::obs {

const Clock& monotonic_clock() {
  static const MonotonicClock kClock;
  return kClock;
}

}  // namespace tamper::obs
