#include "obs/timeseries.h"

#include <algorithm>

#include "common/json.h"

namespace tamper::obs {

std::string_view name(SeriesMerge merge) noexcept {
  switch (merge) {
    case SeriesMerge::kSum: return "sum";
    case SeriesMerge::kMax: return "max";
  }
  return "unknown";
}

SeriesSpec series_spec(const char* family, const char* source, SeriesMerge merge,
                       bool watch, const char* label_key) {
  SeriesSpec spec;
  spec.family = family;
  spec.source = source;
  spec.merge = merge;
  spec.watch = watch;
  spec.label_key = label_key;
  return spec;
}

// The sampling catalog. Every entry references the metric family backing
// it (tamperlint R12 verifies the reference resolves): "agg:" families are
// mirrored into the registry by Pipeline::sample_trends from the
// classification aggregates — which are checkpoint-restored, so a resumed
// PoP re-records identical points; "metric:" families are read from the
// registry (absent families are skipped, so a run without overload control
// simply has no overload series).
const std::vector<SeriesSpec>& default_series_catalog() {
  static const std::vector<SeriesSpec> kCatalog = {
      series_spec("connections", "agg:tamper_class_connections_total",
                  SeriesMerge::kSum, /*watch=*/true),
      series_spec("possibly_tampered", "agg:tamper_class_possibly_tampered_total",
                  SeriesMerge::kSum, /*watch=*/true),
      series_spec("signature_matched", "agg:tamper_class_matched_total",
                  SeriesMerge::kSum, /*watch=*/false),
      series_spec("signature_matches", "agg:tamper_class_signature_matches_total",
                  SeriesMerge::kSum, /*watch=*/true, "signature"),
      series_spec("country_connections", "agg:tamper_class_country_connections_total",
                  SeriesMerge::kSum, /*watch=*/false, "country"),
      series_spec("country_matches", "agg:tamper_class_country_matches_total",
                  SeriesMerge::kSum, /*watch=*/true, "country"),
      series_spec("degraded", "agg:tamper_pipeline_degraded_total",
                  SeriesMerge::kSum, /*watch=*/false),
      series_spec("overload_level", "metric:tamper_overload_level",
                  SeriesMerge::kMax, /*watch=*/false),
      series_spec("overload_shed", "metric:tamper_overload_shed_total",
                  SeriesMerge::kSum, /*watch=*/false),
  };
  return kCatalog;
}

// ---------------------------------------------------------------- EpochRing

EpochRing::EpochRing(EpochRingConfig config) : config_(config) {
  if (config_.epoch_length_sec <= 0) config_.epoch_length_sec = 1;
  if (config_.max_epochs == 0) config_.max_epochs = 1;
  if (config_.max_series == 0) config_.max_series = 1;
}

std::int64_t EpochRing::epoch_of(std::int64_t ts_sec) const noexcept {
  return ts_sec <= 0 ? 0 : ts_sec / config_.epoch_length_sec;
}

void EpochRing::record(std::string_view family, std::string_view label,
                       SeriesMerge merge, std::int64_t ts_sec, double value) {
  record_epoch(family, label, merge, epoch_of(ts_sec), value);
}

void EpochRing::record_epoch(std::string_view family, std::string_view label,
                             SeriesMerge merge, std::int64_t epoch, double value) {
  record_at(series_.lower_bound(SeriesKeyLess::View{family, label}), family, label,
            merge, epoch, value);
}

EpochRing::SeriesMap::iterator EpochRing::record_at(SeriesMap::iterator pos,
                                                    std::string_view family,
                                                    std::string_view label,
                                                    SeriesMerge merge,
                                                    std::int64_t epoch,
                                                    double value) {
  ++recorded_points_;
  // A point older than the retained window would be trimmed immediately;
  // refuse it up front so the drop is attributed to the record, not the trim.
  if (!series_.empty() &&
      epoch + static_cast<std::int64_t>(config_.max_epochs) <= max_epoch_) {
    ++dropped_points_;
    return series_.end();
  }
  // Heterogeneous probe: no key strings are built unless this is a brand
  // new series (steady-state rollups re-record existing keys).
  const SeriesKeyLess::View key{family, label};
  if (pos == series_.end() || SeriesKeyLess{}(key, pos->first)) {
    if (series_.size() >= config_.max_series) {
      // Cap by sort order: a key past the cap is refused, and merge_from's
      // trim applies the same rule, so capacity pressure is deterministic.
      auto last = std::prev(series_.end());
      if (!SeriesKeyLess{}(key, last->first)) {
        ++dropped_points_;
        return series_.end();
      }
    }
    pos = series_.emplace_hint(pos, SeriesKey{std::string(family), std::string(label)},
                               SeriesData{merge, {}});
  }
  // try_emplace probes before allocating: re-recording an existing
  // (key, epoch) — every rollup after the epoch's first — costs no node.
  auto [point, inserted] = pos->second.points.try_emplace(epoch, value);
  if (!inserted) {
    point->second = merge == SeriesMerge::kMax ? std::max(point->second, value)
                                               : value;  // cumulative: latest wins
  }
  // Trim only when the window can actually move (max_epoch_ advanced) or
  // the series cap was exceeded by this insert — a rollup records hundreds
  // of points into the same epoch, and a full-ring sweep per point would
  // dominate the sampling cost (the ≤2% overhead contract, DESIGN.md §12).
  // trim() only ever erases series other than `pos` (pos just gained the
  // newest point, so it is neither emptied by the window cut nor the
  // cap-excess last key it was inserted in front of).
  const bool first = series_.size() == 1 && pos->second.points.size() == 1;
  const bool advanced = first || epoch > max_epoch_;
  if (advanced) max_epoch_ = epoch;
  if (advanced || series_.size() > config_.max_series) trim();
  return pos;
}

void EpochRing::Cursor::record_epoch(std::string_view family, std::string_view label,
                                     SeriesMerge merge, std::int64_t epoch,
                                     double value) {
  auto& series = ring_->series_;
  const SeriesKeyLess::View key{family, label};
  bool positioned = false;
  if (valid_) {
    // Fast path: in an ascending run the previous landing spot is at or just
    // before the target, so lower_bound(key) is a step or two forward. Bound
    // the walk; anything unexpected falls back to a full descent.
    auto it = hint_;
    int steps = 0;
    while (it != series.end() && SeriesKeyLess{}(it->first, key)) {
      ++it;
      if (++steps > 4) break;
    }
    if (steps <= 4 && (it == series.end() || !SeriesKeyLess{}(it->first, key)) &&
        (it == series.begin() || SeriesKeyLess{}(std::prev(it)->first, key))) {
      hint_ = it;  // exactly lower_bound(key): first node not less than key
      positioned = true;
    }
  }
  if (!positioned) hint_ = series.lower_bound(key);
  hint_ = ring_->record_at(hint_, family, label, merge, epoch, value);
  valid_ = hint_ != series.end();
}

void EpochRing::merge_from(const EpochRing& other) {
  if (other.series_.empty()) return;
  // The identity ring adopts the data's epoch width, so a default-built
  // merger target dumps fleet epochs at the PoPs' configured length.
  if (series_.empty()) config_.epoch_length_sec = other.config_.epoch_length_sec;
  for (const auto& [key, data] : other.series_) {
    auto it = series_.find(key);
    if (it == series_.end()) {
      series_.emplace(key, data);
      continue;
    }
    for (const auto& [epoch, value] : data.points) {
      auto [point, inserted] = it->second.points.emplace(epoch, value);
      if (!inserted) {
        point->second = it->second.merge == SeriesMerge::kMax
                            ? std::max(point->second, value)
                            : point->second + value;
      }
    }
  }
  max_epoch_ = std::max(max_epoch_, other.max_epoch_);
  trim();
}

void EpochRing::trim() {
  if (series_.empty()) return;
  // Epoch window: keep the newest max_epochs epochs. Confluent under any
  // merge order because max_epoch_ only grows with the union.
  const std::int64_t floor =
      max_epoch_ - static_cast<std::int64_t>(config_.max_epochs) + 1;
  for (auto it = series_.begin(); it != series_.end();) {
    auto& points = it->second.points;
    const auto cut = points.lower_bound(floor);
    if (cut != points.begin()) {
      dropped_points_ += static_cast<std::uint64_t>(
          std::distance(points.begin(), cut));
      points.erase(points.begin(), cut);
    }
    it = points.empty() ? series_.erase(it) : std::next(it);
  }
  // Series cap: keep the first max_series keys in sort order. A key dropped
  // here ranks past the cap in every superset union too, so intermediate
  // merge states converge to the same final set.
  while (series_.size() > config_.max_series) {
    auto last = std::prev(series_.end());
    dropped_points_ += last->second.points.size();
    series_.erase(last);
  }
}

void EpochRing::snapshot(common::BinWriter& w) const {
  w.i64(config_.epoch_length_sec);
  w.u32(static_cast<std::uint32_t>(series_.size()));
  for (const auto& [key, data] : series_) {
    w.str(key.family);
    w.str(key.label);
    w.u8(static_cast<std::uint8_t>(data.merge));
    w.u32(static_cast<std::uint32_t>(data.points.size()));
    for (const auto& [epoch, value] : data.points) {
      w.i64(epoch);
      w.f64(value);
    }
  }
}

void EpochRing::restore(common::BinReader& r) {
  series_.clear();
  config_.epoch_length_sec = r.i64();
  if (config_.epoch_length_sec <= 0) config_.epoch_length_sec = 1;
  const std::uint32_t nseries = r.u32();
  bool any = false;
  for (std::uint32_t i = 0; i < nseries; ++i) {
    SeriesKey key;
    key.family = r.str();
    key.label = r.str();
    SeriesData data;
    const std::uint8_t merge = r.u8();
    data.merge = merge == static_cast<std::uint8_t>(SeriesMerge::kMax)
                     ? SeriesMerge::kMax
                     : SeriesMerge::kSum;
    const std::uint32_t npoints = r.u32();
    for (std::uint32_t p = 0; p < npoints; ++p) {
      const std::int64_t epoch = r.i64();
      const double value = r.f64();
      data.points.emplace(epoch, value);
      max_epoch_ = any ? std::max(max_epoch_, epoch) : epoch;
      any = true;
    }
    if (!data.points.empty()) series_.emplace(std::move(key), std::move(data));
  }
  trim();
}

std::int64_t EpochRing::min_epoch() const noexcept {
  bool any = false;
  std::int64_t lo = 0;
  for (const auto& [key, data] : series_) {
    if (data.points.empty()) continue;
    const std::int64_t first = data.points.begin()->first;
    lo = any ? std::min(lo, first) : first;
    any = true;
  }
  return lo;
}

std::size_t EpochRing::point_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, data] : series_) n += data.points.size();
  return n;
}

// ----------------------------------------------------- tamper-timeseries/1

void write_timeseries_scope_fields(common::JsonWriter& json,
                                   const TimeseriesScope& scope) {
  json.key("series");
  json.begin_array();
  if (scope.ring != nullptr) {
    for (const auto& [key, data] : scope.ring->series()) {
      json.begin_object();
      json.kv("family", key.family);
      json.kv("label", key.label);
      json.kv("merge", name(data.merge));
      json.key("points");
      json.begin_array();
      for (const auto& [epoch, value] : data.points) {
        json.begin_object();
        json.kv("epoch", epoch);
        json.kv("value", value);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
  }
  json.end_array();
  json.key("epochs");
  json.begin_array();
  for (const EpochCoverageNote& note : scope.epochs) {
    json.begin_object();
    json.kv("epoch", note.epoch);
    json.kv("pops_reporting", static_cast<std::uint64_t>(note.pops_reporting));
    json.kv("pops_expected", static_cast<std::uint64_t>(note.pops_expected));
    json.kv("pops_shedding", static_cast<std::uint64_t>(note.pops_shedding));
    json.kv("degraded", note.degraded);
    json.end_object();
  }
  json.end_array();
  json.key("anomalies");
  json.begin_array();
  for (const AnomalyEvent& event : scope.anomalies) {
    json.begin_object();
    json.kv("family", event.family);
    json.kv("label", event.label);
    json.kv("epoch", event.epoch);
    json.kv("delta", event.delta);
    json.kv("expected", event.expected);
    json.kv("score", event.score);
    json.end_object();
  }
  json.end_array();
}

void write_timeseries_json(std::ostream& out,
                           const std::vector<TimeseriesScope>& scopes,
                           std::int64_t epoch_length_sec, bool pretty) {
  common::JsonWriter json(out, pretty);
  json.begin_object();
  json.kv("schema", "tamper-timeseries/1");
  json.kv("epoch_length_sec", epoch_length_sec);
  json.key("scopes");
  json.begin_array();
  for (const TimeseriesScope& scope : scopes) {
    json.begin_object();
    json.kv("scope", scope.name);
    write_timeseries_scope_fields(json, scope);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace tamper::obs
