// Ring-buffered per-stage span tracing.
//
// Each pipeline stage (ingest → sample → classify → aggregate → checkpoint
// → emit) records complete spans ("ph":"X") into a fixed-capacity ring that
// is pre-allocated at construction — recording never allocates, so it is
// safe inside Pipeline::ingest's nothrow path. When the ring is full the
// oldest events are overwritten and counted in dropped(); a bounded trace
// of the most recent activity is what an operator wants from a long-running
// watch anyway.
//
// Span names and categories are `const char*` and must point at static
// storage (string literals / the stage:: constants below): the ring stores
// the pointers verbatim.
//
// Emission is the Chrome trace-event JSON array format — one event per
// line, closed with a `]` terminator — loadable in Perfetto or
// chrome://tracing. Timestamps come from the obs::Clock seam in integer
// microseconds, so a ManualClock makes whole trace files byte-stable.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace tamper::obs {

/// Canonical stage names so instrumentation sites and tests agree.
namespace stage {
inline constexpr const char* kIngest = "ingest";
inline constexpr const char* kSample = "sample";
inline constexpr const char* kClassify = "classify";
inline constexpr const char* kAggregate = "aggregate";
inline constexpr const char* kCheckpoint = "checkpoint";
inline constexpr const char* kEmit = "emit";
inline constexpr const char* kCategory = "pipeline";
}  // namespace stage

/// One complete span. POD so the ring is a flat pre-allocated vector.
struct TraceEvent {
  const char* name = "";  ///< static storage only
  const char* cat = "";   ///< static storage only
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  struct Config {
    std::size_t capacity = 4096;  ///< events kept; older ones are dropped
  };

  explicit Tracer(const Clock& clock) : Tracer(clock, Config{}) {}
  Tracer(const Clock& clock, Config config);

  /// Record a complete span [start_ns, end_ns). Never allocates, never
  /// throws; drops the oldest event when the ring is full.
  void record(const char* name, const char* cat, std::uint64_t start_ns,
              std::uint64_t end_ns, std::uint32_t tid = 0) noexcept
      TAMPER_EXCLUDES(mu_);

  /// RAII span: stamps the start on construction, records on destruction
  /// (or explicit finish()). A null tracer makes every operation a no-op,
  /// so call sites can hold `Tracer*` without branching.
  class Span {
   public:
    Span(Tracer* tracer, const char* name, const char* cat,
         std::uint32_t tid = 0) noexcept
        : tracer_(tracer), name_(name), cat_(cat), tid_(tid) {
      if (tracer_ != nullptr) start_ns_ = tracer_->clock().now_ns();
    }
    ~Span() { finish(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void finish() noexcept {
      if (tracer_ == nullptr) return;
      tracer_->record(name_, cat_, start_ns_, tracer_->clock().now_ns(), tid_);
      tracer_ = nullptr;
    }

   private:
    Tracer* tracer_;
    const char* name_;
    const char* cat_;
    std::uint64_t start_ns_ = 0;
    std::uint32_t tid_;
  };

  [[nodiscard]] const Clock& clock() const noexcept { return *clock_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const TAMPER_EXCLUDES(mu_);
  /// Events lost to ring wrap-around since construction / clear().
  [[nodiscard]] std::uint64_t dropped() const TAMPER_EXCLUDES(mu_);
  void clear() TAMPER_EXCLUDES(mu_);

  /// Chrome trace-event JSON: `[`, one event object per line, `]`.
  void write_chrome_json(std::ostream& out) const TAMPER_EXCLUDES(mu_);
  [[nodiscard]] std::string chrome_json() const TAMPER_EXCLUDES(mu_);

 private:
  const Clock* clock_;
  const std::size_t capacity_;
  mutable common::Mutex mu_;
  std::vector<TraceEvent> ring_ TAMPER_GUARDED_BY(mu_);  ///< pre-allocated
  std::size_t next_ TAMPER_GUARDED_BY(mu_) = 0;          ///< next write slot
  std::size_t count_ TAMPER_GUARDED_BY(mu_) = 0;         ///< filled slots
  std::uint64_t dropped_ TAMPER_GUARDED_BY(mu_) = 0;
};

}  // namespace tamper::obs
