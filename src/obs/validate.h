// Validators for the two observability output formats.
//
// These are deliberately small, dependency-free parsers — the "tiny parser
// check" the CI obs smoke job runs over real `tamperscope watch` output,
// also exercised directly by tests/test_obs.cpp. They check structure, not
// semantics: a passing file is syntactically loadable by Prometheus /
// Perfetto and obeys this repo's ordering contract (families sorted by
// name), but no particular metric values.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tamper::obs {

struct Validation {
  bool ok = true;
  std::string error;        ///< first problem found, empty when ok
  std::size_t line = 0;     ///< 1-based line of the problem (0 when ok)
  std::size_t samples = 0;  ///< sample lines (prometheus) / events (trace)
  std::size_t families = 0; ///< TYPE-declared families (prometheus only)
};

/// Prometheus text exposition v0.0.4: every sample belongs to a family
/// declared by a preceding # TYPE line; names are snake_case; label blocks
/// are well-formed; histogram series expose _bucket/_sum/_count with
/// non-decreasing cumulative bucket counts; families appear in strictly
/// ascending name order (the registry's byte-stability contract).
[[nodiscard]] Validation validate_prometheus_text(std::string_view text);

/// Chrome trace-event JSON as Tracer emits it: a `[` line, zero or more
/// one-per-line complete-span objects with name/cat/ph/ts/dur/pid/tid keys
/// and correct comma placement, closed by a `]` terminator line.
[[nodiscard]] Validation validate_chrome_trace(std::string_view text);

/// "tamper-timeseries/1" JSON (obs/timeseries.h): a full JSON parse (tiny
/// recursive-descent, no dependencies) plus the format's structural
/// contract — schema stamp, positive epoch_length_sec, scopes each with
/// sorted series (family/label/merge/points with strictly ascending epochs
/// and finite values), ascending epoch coverage notes, and well-formed
/// anomaly events. `samples` counts points, `families` distinct series.
[[nodiscard]] Validation validate_timeseries_json(std::string_view text);

}  // namespace tamper::obs
