// Longitudinal telemetry: a fixed-capacity epoch ring of cumulative
// series samples, the catalog describing what gets sampled, and the
// "tamper-timeseries/1" JSON emission.
//
// The paper's headline artifact is longitudinal — per-signature and
// per-country tampering rates tracked over weeks (Figs. 6 and 9) — so the
// live service keeps a bounded history of its own aggregates instead of
// relying on pcap replay. The design constraints are the repo's usual
// ones, applied to history:
//
//   * Deterministic. Values are sampled at checkpoint/report boundaries
//     from state that is itself a pure function of the ingested stream
//     (aggregates, degraded accounting), keyed by epochs derived from
//     capture timestamps (latest_ts_sec / epoch_length) — never from wall
//     time. Twin-seeded runs produce byte-identical rings; the fleet chaos
//     campaigns byte-compare merged rings against a no-fault baseline.
//   * Mergeable. The ring is a commutative monoid like every aggregator
//     in analysis/aggregates.h: merge_from() is associative, commutative
//     and confluent under the capacity trims (any key or epoch dropped at
//     an intermediate merge is provably dropped by the final trim too), so
//     the fleet merger can fold per-PoP rings in any arrival order or
//     grouping and serialize identical bytes.
//   * Bounded. max_epochs caps history depth (oldest epochs trimmed as the
//     newest advances) and max_series caps key cardinality (ties broken by
//     sort order); every refused point is counted, never silently lost.
//
// Within one ring a point is last-write-wins per (key, epoch) for kSum
// series (values are cumulative, so the latest sample inside an epoch is
// the epoch's value) and max-combine for kMax series (the overload ladder
// level peaks, it does not accumulate). Across rings — the fleet merge —
// kSum points add (per-PoP cumulative counts sum to the fleet count) and
// kMax points max.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/binio.h"
#include "common/json.h"

namespace tamper::obs {

/// How a series combines across rings (the fleet merge).
enum class SeriesMerge : std::uint8_t { kSum = 0, kMax = 1 };

[[nodiscard]] std::string_view name(SeriesMerge merge) noexcept;

/// One catalog entry: a series family, where its values come from, and how
/// it federates. `source` is machine-checked by tamperlint R12:
///   "agg:<metric_family>"    — sampled straight off a pipeline aggregate
///                              whose registry mirror is <metric_family>
///   "metric:<metric_family>" — read from the obs registry (label-summed
///                              for counters, summed for gauges)
/// Either way the named metric family must exist somewhere in src/ or
/// tools/, so a series can never dangle from the documented surface.
struct SeriesSpec {
  std::string family;
  std::string source;
  SeriesMerge merge = SeriesMerge::kSum;
  bool watch = false;      ///< anomaly watchdog scans this family
  std::string label_key;   ///< "" for unlabeled series
};

/// Catalog-entry constructor. Always register specs through this free
/// function with literal family/source strings — tamperlint R12 reads the
/// two literals at each call site and verifies the source references a
/// registered metric family.
[[nodiscard]] SeriesSpec series_spec(const char* family, const char* source,
                                     SeriesMerge merge = SeriesMerge::kSum,
                                     bool watch = false,
                                     const char* label_key = "");

/// The default sampling catalog (see timeseries.cpp for the entries and
/// DESIGN.md §12 for the rationale). Order is fixed; sampling iterates it
/// deterministically.
[[nodiscard]] const std::vector<SeriesSpec>& default_series_catalog();

struct EpochRingConfig {
  std::int64_t epoch_length_sec = 3600;  ///< capture-time epoch width
  std::size_t max_epochs = 168;          ///< history depth (one week hourly)
  std::size_t max_series = 512;          ///< distinct (family, label) keys
};

struct SeriesKey {
  std::string family;
  std::string label;  ///< "" when the family is unlabeled

  [[nodiscard]] bool operator<(const SeriesKey& o) const noexcept {
    return family != o.family ? family < o.family : label < o.label;
  }
  [[nodiscard]] bool operator==(const SeriesKey& o) const noexcept {
    return family == o.family && label == o.label;
  }
};

/// Transparent comparator so record() can probe the series map with string
/// views: family names exceed the small-string capacity, and a rollup
/// records hundreds of points, so a per-record key allocation would
/// dominate the sampling cost (the ≤2% overhead contract, DESIGN.md §12).
struct SeriesKeyLess {
  using is_transparent = void;
  [[nodiscard]] static bool lt(std::string_view af, std::string_view al,
                               std::string_view bf, std::string_view bl) noexcept {
    return af != bf ? af < bf : al < bl;
  }
  struct View {
    std::string_view family;
    std::string_view label;
  };
  bool operator()(const SeriesKey& a, const SeriesKey& b) const noexcept {
    return lt(a.family, a.label, b.family, b.label);
  }
  bool operator()(const SeriesKey& a, const View& b) const noexcept {
    return lt(a.family, a.label, b.family, b.label);
  }
  bool operator()(const View& a, const SeriesKey& b) const noexcept {
    return lt(a.family, a.label, b.family, b.label);
  }
};

struct SeriesData {
  SeriesMerge merge = SeriesMerge::kSum;
  std::map<std::int64_t, double> points;  ///< epoch -> value, sorted
};

/// A deterministic rate-shift event (see obs/anomaly.h for the scan).
/// Defined here so the timeseries emission can carry anomalies without the
/// writer depending on the detector.
struct AnomalyEvent {
  std::string family;
  std::string label;
  std::int64_t epoch = 0;
  double delta = 0.0;     ///< observed per-epoch delta
  double expected = 0.0;  ///< EWMA prediction at that point
  double score = 0.0;     ///< robust z-score

  [[nodiscard]] bool operator==(const AnomalyEvent& o) const noexcept {
    return family == o.family && label == o.label && epoch == o.epoch &&
           delta == o.delta && expected == o.expected && score == o.score;
  }
};

/// The epoch ring. Single-writer like the pipeline aggregators: the worker
/// thread records and merges; snapshots happen on the same thread (or after
/// the worker is joined). No internal locking.
class EpochRing {
 public:
  explicit EpochRing(EpochRingConfig config = {});

  [[nodiscard]] const EpochRingConfig& config() const noexcept { return config_; }

  /// The epoch a capture timestamp falls in (clamped at 0: the generated
  /// worlds never predate the epoch origin).
  [[nodiscard]] std::int64_t epoch_of(std::int64_t ts_sec) const noexcept;

  /// Record the cumulative value of (family, label) as of capture time
  /// `ts_sec`. Within an epoch, kSum overwrites (cumulative: latest wins)
  /// and kMax keeps the max. Points older than the retained window or
  /// beyond the series cap are counted in dropped_points() and discarded.
  void record(std::string_view family, std::string_view label, SeriesMerge merge,
              std::int64_t ts_sec, double value);
  /// Same, keyed by epoch directly (merge paths and tests).
  // tamperlint-allow(R13): obs rings do signed epoch arithmetic (offsets, clamps)
  void record_epoch(std::string_view family, std::string_view label,
                    SeriesMerge merge, std::int64_t epoch, double value);

  class Cursor;

  /// Fold another ring in: union of keys and epochs, kSum points add, kMax
  /// points max, then the capacity trims. Associative, commutative, and
  /// identity on a default-constructed ring — the fleet-merge contract.
  void merge_from(const EpochRing& other);

  /// Byte-stable serialization (sorted walk). The epoch length rides along
  /// as data so an offline reader interprets epochs without the config; the
  /// capacity limits and drop counters are process-local and do not.
  void snapshot(common::BinWriter& w) const;
  /// Replace all contents from a snapshot() payload. Throws
  /// common::BinUnderrun on truncation.
  void restore(common::BinReader& r);

  using SeriesMap = std::map<SeriesKey, SeriesData, SeriesKeyLess>;

  [[nodiscard]] bool empty() const noexcept { return series_.empty(); }
  /// Newest / oldest epoch holding a point. Meaningless when empty().
  [[nodiscard]] std::int64_t max_epoch() const noexcept { return max_epoch_; }
  [[nodiscard]] std::int64_t min_epoch() const noexcept;
  [[nodiscard]] const SeriesMap& series() const noexcept { return series_; }
  [[nodiscard]] std::size_t point_count() const noexcept;
  [[nodiscard]] std::uint64_t recorded_points() const noexcept {
    return recorded_points_;
  }
  [[nodiscard]] std::uint64_t dropped_points() const noexcept {
    return dropped_points_;
  }

 private:
  void trim();
  /// record_epoch with the lower_bound already in hand (`pos` must be
  /// series_.lower_bound({family, label})). Returns the series iterator the
  /// point landed in, or series_.end() if the point was dropped.
  // tamperlint-allow(R13): internal hinted-insert path; epoch stays signed here
  SeriesMap::iterator record_at(SeriesMap::iterator pos, std::string_view family,
                                std::string_view label, SeriesMerge merge,
                                std::int64_t epoch, double value);

  EpochRingConfig config_;
  SeriesMap series_;
  std::int64_t max_epoch_ = 0;  ///< valid only when !series_.empty()
  std::uint64_t recorded_points_ = 0;  ///< process-local, not serialized
  std::uint64_t dropped_points_ = 0;   ///< process-local, not serialized
};

/// Sorted-run recorder. The trends rollup records each labeled family as an
/// ascending run of keys (label sources are sorted maps), so consecutive
/// records land on adjacent series nodes; the cursor steps an iterator
/// forward instead of paying a full tree descent per record (the ≤2%
/// overhead contract, DESIGN.md §12). Purely a lookup strategy: the
/// resulting ring state is byte-identical to plain record() calls, and
/// out-of-order keys just fall back to a fresh lower_bound.
class EpochRing::Cursor {
 public:
  explicit Cursor(EpochRing& ring) : ring_(&ring) {}

  void record(std::string_view family, std::string_view label, SeriesMerge merge,
              std::int64_t ts_sec, double value) {
    record_epoch(family, label, merge, ring_->epoch_of(ts_sec), value);
  }
  // tamperlint-allow(R13): cursor mirrors EpochRing's signed epoch domain
  void record_epoch(std::string_view family, std::string_view label,
                    SeriesMerge merge, std::int64_t epoch, double value);

 private:
  EpochRing* ring_;
  SeriesMap::iterator hint_{};
  bool valid_ = false;
};

/// Per-epoch coverage annotation for one emission scope, so a reader never
/// mistakes a degraded epoch (PoPs missing or shedding) for a real rate
/// drop. A single-service scope reports 1/1 with degraded mirroring its
/// own degraded-input accounting.
struct EpochCoverageNote {
  std::int64_t epoch = 0;
  std::uint32_t pops_reporting = 1;
  std::uint32_t pops_expected = 1;
  std::uint32_t pops_shedding = 0;
  bool degraded = false;
};

/// One scope of the "tamper-timeseries/1" document: "fleet", "pop:<id>",
/// or "local" for a single service.
struct TimeseriesScope {
  std::string name;
  const EpochRing* ring = nullptr;
  std::vector<EpochCoverageNote> epochs;   ///< sorted by epoch
  std::vector<AnomalyEvent> anomalies;     ///< sorted (family, label, epoch)
};

/// Emit one scope's series/epochs/anomalies fields into an already-open
/// JSON object — shared by the standalone document writer below and the
/// Radar report's "trends" block.
void write_timeseries_scope_fields(common::JsonWriter& json,
                                   const TimeseriesScope& scope);

/// Emit the "tamper-timeseries/1" JSON document: byte-stable (sorted maps
/// all the way down), validated by obs/validate.h and tools/obscheck.
void write_timeseries_json(std::ostream& out,
                           const std::vector<TimeseriesScope>& scopes,
                           std::int64_t epoch_length_sec, bool pretty = true);

}  // namespace tamper::obs
