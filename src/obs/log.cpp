#include "obs/log.h"

#include <cinttypes>
#include <cstdio>

#include "common/json.h"

namespace tamper::obs {

std::string_view name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

bool parse_log_level(std::string_view text, LogLevel* out) noexcept {
  if (text == "debug") *out = LogLevel::kDebug;
  else if (text == "info") *out = LogLevel::kInfo;
  else if (text == "warn") *out = LogLevel::kWarn;
  else if (text == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

namespace {

/// Fixed-width upper-case tag so text lines column-align.
const char* text_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void Logger::log_impl(LogLevel level, std::string_view component,
                      std::string_view message, const LogField* fields,
                      std::size_t n) {
  if (!enabled(level)) return;
  const std::uint64_t ts_ns = clock_->now_ns();

  common::MutexLock lock(mu_);
  if (format_ == Format::kText) {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "[%13.6f] ",
                  static_cast<double>(ts_ns) * 1e-9);
    out_ << stamp << text_tag(level) << ' ' << component << ": " << message;
    for (std::size_t i = 0; i < n; ++i)
      out_ << ' ' << fields[i].key << '=' << fields[i].value;
    out_ << '\n';
  } else {
    common::JsonWriter json(out_, /*pretty=*/false);
    json.begin_object();
    json.kv("ts_ns", ts_ns);
    json.kv("level", name(level));
    json.kv("component", component);
    json.kv("msg", message);
    if (n > 0) {
      json.key("fields");
      json.begin_object();
      for (std::size_t i = 0; i < n; ++i)
        json.kv(fields[i].key, std::string_view(fields[i].value));
      json.end_object();
    }
    json.end_object();
    out_ << '\n';
  }
  out_.flush();
}

}  // namespace tamper::obs
