#include "obs/anomaly.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace tamper::obs {

namespace {

[[nodiscard]] std::string event_key(const AnomalyEvent& e) {
  return e.family + "|" + e.label + "|" + std::to_string(e.epoch);
}

[[nodiscard]] std::string format_score(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

AnomalyScan scan_anomalies(const EpochRing& ring,
                           const std::vector<SeriesSpec>& catalog,
                           const AnomalyConfig& config,
                           const std::set<std::int64_t>& degraded_epochs) {
  std::map<std::string, bool> watched;
  for (const SeriesSpec& spec : catalog) watched.emplace(spec.family, spec.watch);

  AnomalyScan scan;
  for (const auto& [key, data] : ring.series()) {
    const auto spec = watched.find(key.family);
    if (spec == watched.end() || !spec->second) continue;
    if (data.merge != SeriesMerge::kSum) continue;  // deltas need cumulative

    bool have_prev = false;
    std::int64_t prev_epoch = 0;
    double prev_value = 0.0;
    double ewma = 0.0;
    double dev = 0.0;
    std::size_t deltas_seen = 0;
    for (const auto& [epoch, value] : data.points) {
      if (!have_prev) {
        have_prev = true;
        prev_epoch = epoch;
        prev_value = value;
        continue;
      }
      ++scan.points_scanned;
      if (epoch != prev_epoch + 1) {
        // A gap means the delta spans unknown time; neither score it nor
        // let it pollute the baseline.
        ++scan.suppressed_gap;
        prev_epoch = epoch;
        prev_value = value;
        continue;
      }
      if (degraded_epochs.count(epoch) != 0 || degraded_epochs.count(prev_epoch) != 0) {
        ++scan.suppressed_degraded;
        prev_epoch = epoch;
        prev_value = value;
        continue;
      }
      const double delta = value - prev_value;
      const double residual = std::fabs(delta - ewma);
      if (deltas_seen >= config.warmup_epochs) {
        const double scale = std::max(dev, config.min_deviation);
        const double score = residual / scale;
        if (score >= config.z_threshold)
          scan.events.push_back({key.family, key.label, epoch, delta, ewma, score});
      }
      if (deltas_seen == 0) {
        ewma = delta;
        dev = 0.0;
      } else {
        dev = config.alpha * residual + (1.0 - config.alpha) * dev;
        ewma = config.alpha * delta + (1.0 - config.alpha) * ewma;
      }
      ++deltas_seen;
      prev_epoch = epoch;
      prev_value = value;
    }
  }
  // Ring iteration is already (family, label) sorted with epochs ascending
  // inside each series, so the event list is born sorted.
  return scan;
}

std::set<std::int64_t> epochs_where_rising(const EpochRing& ring,
                                           std::string_view family) {
  std::set<std::int64_t> rising;
  for (const auto& [key, data] : ring.series()) {
    if (key.family != family) continue;
    bool have_prev = false;
    double prev_value = 0.0;
    for (const auto& [epoch, value] : data.points) {
      if (have_prev && value > prev_value) rising.insert(epoch);
      have_prev = true;
      prev_value = value;
    }
  }
  return rising;
}

AnomalyWatchdog::AnomalyWatchdog(AnomalyConfig config) : config_(config) {}

void AnomalyWatchdog::set_obs(Registry* metrics, Logger* logger) {
  logger_ = logger;
  if (metrics == nullptr) {
    events_c_ = scanned_c_ = suppressed_degraded_c_ = suppressed_gap_c_ = nullptr;
    exemplars_g_ = nullptr;
    return;
  }
  events_c_ = &metrics->counter("tamper_anomaly_events_total",
                                "Rate-shift anomaly events detected (high-water "
                                "across rescans)");
  scanned_c_ = &metrics->counter("tamper_anomaly_points_scanned_total",
                                 "Per-epoch deltas evaluated by the watchdog "
                                 "(high-water across rescans)");
  auto& suppressed = metrics->counter_family(
      "tamper_anomaly_suppressed_total",
      "Deltas the watchdog refused to score (high-water across rescans)",
      {"reason"});
  suppressed_degraded_c_ = &suppressed.with({"degraded"});
  suppressed_gap_c_ = &suppressed.with({"gap"});
  exemplars_g_ = &metrics->gauge("tamper_anomaly_exemplars",
                                 "Anomaly exemplars held in the bounded ring");
}

const AnomalyScan& AnomalyWatchdog::rescan(const EpochRing& ring,
                                           const std::vector<SeriesSpec>& catalog,
                                           const std::set<std::int64_t>& degraded_epochs) {
  last_ = scan_anomalies(ring, catalog, config_, degraded_epochs);
  if (events_c_ != nullptr) {
    // Monotone mirrors: a rescan republishes totals, never re-adds them,
    // so a resumed service that re-derives the same events stays exact.
    events_c_->increment_to(last_.events.size());
    scanned_c_->increment_to(last_.points_scanned);
    suppressed_degraded_c_->increment_to(last_.suppressed_degraded);
    suppressed_gap_c_->increment_to(last_.suppressed_gap);
  }
  if (exemplars_g_ != nullptr)
    exemplars_g_->set(static_cast<double>(
        std::min(last_.events.size(), config_.max_exemplars)));
  if (logger_ != nullptr) {
    for (const AnomalyEvent& event : last_.events) {
      const std::string key = event_key(event);
      if (logged_.count(key) != 0) continue;
      logged_.insert(key);
      logger_->warn("anomaly", "rate shift detected",
                    {{"series", event.label.empty()
                                    ? event.family
                                    : event.family + "{" + event.label + "}"},
                     {"epoch", std::to_string(event.epoch)},
                     {"delta", format_score(event.delta)},
                     {"expected", format_score(event.expected)},
                     {"score", format_score(event.score)}});
    }
  }
  return last_;
}

std::vector<AnomalyEvent> AnomalyWatchdog::exemplars() const {
  const std::size_t n = std::min(last_.events.size(), config_.max_exemplars);
  return {last_.events.end() - static_cast<std::ptrdiff_t>(n), last_.events.end()};
}

}  // namespace tamper::obs
