// Rate-shift watchdog over the epoch ring: "this rate just shifted,
// there, then" — without replaying pcaps.
//
// The detector is the lightweight per-window scheme of carrier-grade
// passive monitors (cf. Scheitle et al., PAPERS.md): per-epoch deltas of
// each watched cumulative series are tracked with an EWMA mean and an EWMA
// absolute deviation, and a delta whose robust z-score
//
//     |delta - ewma| / max(ewma_abs_dev, min_deviation)
//
// crosses the threshold after the warmup becomes an AnomalyEvent. The scan
// is a pure function of (ring, degraded epochs, config):
//
//   * Deterministic — same ring, same events, byte for byte; twin-seeded
//     runs and resumed checkpoints re-derive identical event lists.
//   * Idempotent    — rescans publish through monotone `increment_to`
//     counters, so re-running after a crash-resume never double-counts.
//   * Coverage-aware — a delta touching a degraded or missing epoch is
//     suppressed (and counted), never scored: a PoP dropping out of the
//     merge must not read as a tampering-rate collapse.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace tamper::obs {

struct AnomalyConfig {
  double alpha = 0.3;           ///< EWMA weight for mean and deviation
  double z_threshold = 4.0;     ///< robust z-score that fires an event
  double min_deviation = 4.0;   ///< deviation floor (quiet series stay quiet)
  std::size_t warmup_epochs = 3;  ///< deltas scored only after this many
  std::size_t max_exemplars = 16; ///< bounded context ring (newest kept)
};

struct AnomalyScan {
  std::vector<AnomalyEvent> events;        ///< sorted (family, label, epoch)
  std::uint64_t points_scanned = 0;        ///< deltas evaluated or suppressed
  std::uint64_t suppressed_degraded = 0;   ///< deltas skipped: degraded epoch
  std::uint64_t suppressed_gap = 0;        ///< deltas skipped: missing epoch
};

/// Scan the watched families of `ring` (per `catalog`; series absent from
/// the catalog are not scanned). `degraded_epochs` holds epochs whose
/// coverage is degraded — locally (degraded-input accounting moved) or in
/// the fleet sense (PoPs missing/shedding per Merger::coverage).
[[nodiscard]] AnomalyScan scan_anomalies(const EpochRing& ring,
                                         const std::vector<SeriesSpec>& catalog,
                                         const AnomalyConfig& config,
                                         const std::set<std::int64_t>& degraded_epochs = {});

/// Epochs where the ring's cumulative `family` series rose — the local
/// degraded-epoch set when that family tracks degraded-input totals.
[[nodiscard]] std::set<std::int64_t> epochs_where_rising(const EpochRing& ring,
                                                         std::string_view family);

/// The resident watchdog: re-runs the scan at report boundaries, publishes
/// tamper_anomaly_* metrics idempotently, and logs each event the first
/// time it appears. Single-caller (the service worker thread), like the
/// ring itself.
class AnomalyWatchdog {
 public:
  explicit AnomalyWatchdog(AnomalyConfig config = {});

  /// Attach the registry (registers the tamper_anomaly_* families) and an
  /// optional logger for first-seen event lines. Both must outlive the
  /// watchdog.
  void set_obs(Registry* metrics, Logger* logger = nullptr);

  /// Rescan and publish. Returns the fresh scan (also kept, see last()).
  const AnomalyScan& rescan(const EpochRing& ring,
                            const std::vector<SeriesSpec>& catalog,
                            const std::set<std::int64_t>& degraded_epochs = {});

  [[nodiscard]] const AnomalyScan& last() const noexcept { return last_; }
  [[nodiscard]] const AnomalyConfig& config() const noexcept { return config_; }
  /// The newest max_exemplars events of the last scan, oldest first.
  [[nodiscard]] std::vector<AnomalyEvent> exemplars() const;

 private:
  AnomalyConfig config_;
  AnomalyScan last_;
  std::set<std::string> logged_;  ///< (family|label|epoch) keys already logged
  Logger* logger_ = nullptr;
  Counter* events_c_ = nullptr;
  Counter* scanned_c_ = nullptr;
  Counter* suppressed_degraded_c_ = nullptr;
  Counter* suppressed_gap_c_ = nullptr;
  Gauge* exemplars_g_ = nullptr;
};

}  // namespace tamper::obs
