#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace tamper::obs {

namespace internal {

/// Thin pass-through so family emission can use the shared JsonWriter
/// without metrics.h exposing it.
class JsonCursor {
 public:
  explicit JsonCursor(common::JsonWriter& writer) : w(writer) {}
  common::JsonWriter& w;
};

}  // namespace internal

namespace {

[[nodiscard]] bool lower_alpha(char c) noexcept { return c >= 'a' && c <= 'z'; }
[[nodiscard]] bool snake_char(char c) noexcept {
  return lower_alpha(c) || (c >= '0' && c <= '9') || c == '_';
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
void write_escaped_label(std::ostream& out, std::string_view v) {
  for (const char c : v) {
    if (c == '\\') out << "\\\\";
    else if (c == '"') out << "\\\"";
    else if (c == '\n') out << "\\n";
    else out << c;
  }
}

/// Prometheus HELP escaping: backslash and newline only.
void write_escaped_help(std::ostream& out, std::string_view v) {
  for (const char c : v) {
    if (c == '\\') out << "\\\\";
    else if (c == '\n') out << "\\n";
    else out << c;
  }
}

void write_label_block(std::ostream& out, const std::vector<std::string>& keys,
                       const std::vector<std::string>& values,
                       std::string_view extra_key = {}, std::string_view extra_value = {}) {
  if (keys.empty() && extra_key.empty()) return;
  out << '{';
  bool first = true;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!first) out << ',';
    first = false;
    out << keys[i] << "=\"";
    write_escaped_label(out, values[i]);
    out << '"';
  }
  if (!extra_key.empty()) {
    if (!first) out << ',';
    out << extra_key << "=\"" << extra_value << '"';
  }
  out << '}';
}

void write_family_header(std::ostream& out, const internal::FamilyBase& fam) {
  out << "# HELP " << fam.metric_name() << ' ';
  write_escaped_help(out, fam.help());
  out << '\n';
  out << "# TYPE " << fam.metric_name() << ' ' << name(fam.kind()) << '\n';
}

void write_labels_json(common::JsonWriter& json, const std::vector<std::string>& values) {
  json.key("labels");
  json.begin_array();
  for (const auto& v : values) json.value(v);
  json.end_array();
}

}  // namespace

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty() || !lower_alpha(name.front())) return false;
  return std::all_of(name.begin(), name.end(), snake_char);
}

std::string format_metric_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  return buf;
}

std::string_view name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]))
      throw std::invalid_argument("histogram bounds must be finite (+Inf is implicit)");
    if (i > 0 && bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("histogram bounds must be strictly ascending");
  }
  common::MutexLock lock(mu_);
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) noexcept {
  common::MutexLock lock(mu_);
  // First bound >= v (inclusive upper bounds, the `le` convention). NaN
  // compares false against every bound, which would make lower_bound pick
  // bucket 0; route it to the +Inf overflow bucket explicitly.
  const std::size_t idx =
      std::isnan(v) ? bounds_.size()
                    : static_cast<std::size_t>(
                          std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  ++counts_[idx];
  ++count_;
  sum_ += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  common::MutexLock lock(mu_);
  return Snapshot{counts_, count_, sum_};
}

// ----------------------------------------------------------------- Families

namespace internal {

void FamilyBase::check_arity(const std::vector<std::string>& label_values) const {
  if (label_values.size() != label_keys_.size())
    throw std::invalid_argument("metric family " + name_ + " takes " +
                                std::to_string(label_keys_.size()) +
                                " label value(s), got " +
                                std::to_string(label_values.size()));
}

}  // namespace internal

Counter& CounterFamily::with(std::vector<std::string> label_values) {
  check_arity(label_values);
  common::MutexLock lock(mu_);
  auto& slot = series_[std::move(label_values)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& GaugeFamily::with(std::vector<std::string> label_values) {
  check_arity(label_values);
  common::MutexLock lock(mu_);
  auto& slot = series_[std::move(label_values)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& HistogramFamily::with(std::vector<std::string> label_values) {
  check_arity(label_values);
  common::MutexLock lock(mu_);
  auto& slot = series_[std::move(label_values)];
  if (!slot) slot = std::make_unique<Histogram>(bounds_);
  return *slot;
}

void CounterFamily::write_prometheus(std::ostream& out) const {
  write_family_header(out, *this);
  common::MutexLock lock(mu_);
  for (const auto& [labels, counter] : series_) {
    out << name_;
    write_label_block(out, label_keys_, labels);
    out << ' ' << counter->value() << '\n';
  }
}

void GaugeFamily::write_prometheus(std::ostream& out) const {
  write_family_header(out, *this);
  common::MutexLock lock(mu_);
  for (const auto& [labels, gauge] : series_) {
    out << name_;
    write_label_block(out, label_keys_, labels);
    out << ' ' << format_metric_value(gauge->value()) << '\n';
  }
}

void HistogramFamily::write_prometheus(std::ostream& out) const {
  write_family_header(out, *this);
  common::MutexLock lock(mu_);
  for (const auto& [labels, histogram] : series_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      cumulative += snap.bucket_counts[i];
      const std::string le = i < bounds_.size()
                                 ? format_metric_value(bounds_[i])
                                 : std::string("+Inf");
      out << name_ << "_bucket";
      write_label_block(out, label_keys_, labels, "le", le);
      out << ' ' << cumulative << '\n';
    }
    out << name_ << "_sum";
    write_label_block(out, label_keys_, labels);
    out << ' ' << format_metric_value(snap.sum) << '\n';
    out << name_ << "_count";
    write_label_block(out, label_keys_, labels);
    out << ' ' << snap.count << '\n';
  }
}

void CounterFamily::write_json(internal::JsonCursor& json) const {
  common::MutexLock lock(mu_);
  for (const auto& [labels, counter] : series_) {
    json.w.begin_object();
    write_labels_json(json.w, labels);
    json.w.kv("value", counter->value());
    json.w.end_object();
  }
}

void GaugeFamily::write_json(internal::JsonCursor& json) const {
  common::MutexLock lock(mu_);
  for (const auto& [labels, gauge] : series_) {
    json.w.begin_object();
    write_labels_json(json.w, labels);
    json.w.kv("value", gauge->value());
    json.w.end_object();
  }
}

void HistogramFamily::write_json(internal::JsonCursor& json) const {
  common::MutexLock lock(mu_);
  for (const auto& [labels, histogram] : series_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    json.w.begin_object();
    write_labels_json(json.w, labels);
    json.w.kv("count", snap.count);
    json.w.kv("sum", snap.sum);
    json.w.key("buckets");
    json.w.begin_array();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      cumulative += snap.bucket_counts[i];
      json.w.begin_object();
      if (i < bounds_.size())
        json.w.kv("le", bounds_[i]);
      else
        json.w.kv("le", "+Inf");
      json.w.kv("count", cumulative);
      json.w.end_object();
    }
    json.w.end_array();
    json.w.end_object();
  }
}

bool CounterFamily::accumulate_total(double* out) const {
  common::MutexLock lock(mu_);
  double total = 0.0;
  for (const auto& [labels, counter] : series_)
    total += static_cast<double>(counter->value());
  *out = total;
  return true;
}

bool GaugeFamily::accumulate_total(double* out) const {
  common::MutexLock lock(mu_);
  double total = 0.0;
  for (const auto& [labels, gauge] : series_) total += gauge->value();
  *out = total;
  return true;
}

std::vector<double> duration_buckets() {
  return {0.00025, 0.001, 0.004, 0.016, 0.0625, 0.25, 1.0, 4.0};
}

// ----------------------------------------------------------------- Registry

internal::FamilyBase& Registry::family(MetricKind kind, std::string_view name,
                                       std::string_view help,
                                       std::vector<std::string> label_keys,
                                       std::vector<double> bounds) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("metric name must be snake_case: " + std::string(name));
  for (const auto& key : label_keys)
    if (!valid_metric_name(key))
      throw std::invalid_argument("label name must be snake_case: " + key);

  common::MutexLock lock(mu_);
  const auto it = families_.find(name);
  if (it != families_.end()) {
    internal::FamilyBase& existing = *it->second;
    const bool same_kind = existing.kind() == kind;
    const bool same_shape = existing.help() == help && existing.label_keys() == label_keys;
    bool same_bounds = true;
    if (kind == MetricKind::kHistogram && same_kind)
      same_bounds = static_cast<HistogramFamily&>(existing).bounds() == bounds;
    if (!same_kind || !same_shape || !same_bounds)
      throw std::logic_error("metric family re-registered with a different "
                             "kind/help/labels/bounds: " +
                             std::string(name));
    return existing;
  }

  std::unique_ptr<internal::FamilyBase> fam;
  switch (kind) {
    case MetricKind::kCounter:
      fam = std::make_unique<CounterFamily>(kind, std::string(name), std::string(help),
                                            std::move(label_keys));
      break;
    case MetricKind::kGauge:
      fam = std::make_unique<GaugeFamily>(kind, std::string(name), std::string(help),
                                          std::move(label_keys));
      break;
    case MetricKind::kHistogram:
      fam = std::make_unique<HistogramFamily>(std::string(name), std::string(help),
                                              std::move(label_keys), std::move(bounds));
      break;
  }
  internal::FamilyBase& ref = *fam;
  families_.emplace(std::string(name), std::move(fam));
  return ref;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return counter_family(name, help, {}).with();
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return gauge_family(name, help, {}).with();
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  return histogram_family(name, help, {}, std::move(bounds)).with();
}

CounterFamily& Registry::counter_family(std::string_view name, std::string_view help,
                                        std::vector<std::string> label_keys) {
  return static_cast<CounterFamily&>(
      family(MetricKind::kCounter, name, help, std::move(label_keys), {}));
}

GaugeFamily& Registry::gauge_family(std::string_view name, std::string_view help,
                                    std::vector<std::string> label_keys) {
  return static_cast<GaugeFamily&>(
      family(MetricKind::kGauge, name, help, std::move(label_keys), {}));
}

HistogramFamily& Registry::histogram_family(std::string_view name, std::string_view help,
                                            std::vector<std::string> label_keys,
                                            std::vector<double> bounds) {
  return static_cast<HistogramFamily&>(
      family(MetricKind::kHistogram, name, help, std::move(label_keys), std::move(bounds)));
}

Registry::CollectorId Registry::add_collector(std::function<void()> fn) {
  common::MutexLock lock(mu_);
  const CollectorId id = next_collector_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void Registry::remove_collector(CollectorId id) {
  common::MutexLock lock(mu_);
  collectors_.erase(id);
}

void Registry::collect() {
  std::vector<std::function<void()>> fns;
  {
    common::MutexLock lock(mu_);
    fns.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) fns.push_back(fn);
  }
  // Outside the lock: collectors touch registry handles (and take mu_
  // themselves via with()/counter()).
  for (const auto& fn : fns) fn();
}

void Registry::write_prometheus(std::ostream& out) {
  collect();
  common::MutexLock lock(mu_);
  for (const auto& [name, fam] : families_) fam->write_prometheus(out);
}

void Registry::write_json(std::ostream& out, bool pretty) {
  collect();
  common::JsonWriter json(out, pretty);
  internal::JsonCursor cursor(json);
  common::MutexLock lock(mu_);
  json.begin_object();
  json.kv("schema", "tamper-metrics/1");
  json.key("families");
  json.begin_array();
  for (const auto& [fname, fam] : families_) {
    json.begin_object();
    json.kv("name", fam->metric_name());
    json.kv("type", name(fam->kind()));
    json.kv("help", fam->help());
    json.key("label_keys");
    json.begin_array();
    for (const auto& key : fam->label_keys()) json.value(key);
    json.end_array();
    json.key("series");
    json.begin_array();
    fam->write_json(cursor);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

bool Registry::read_family_total(std::string_view name, double* out) {
  common::MutexLock lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end()) return false;
  return it->second->accumulate_total(out);
}

std::string Registry::prometheus_text() {
  std::ostringstream out;
  write_prometheus(out);
  return out.str();
}

std::string Registry::json_text(bool pretty) {
  std::ostringstream out;
  write_json(out, pretty);
  return out.str();
}

}  // namespace tamper::obs
