// Observability clock seam.
//
// Every timestamp the observability layer emits — trace-event spans, log
// lines, duration histograms, heartbeat-age gauges — flows through this
// interface instead of an ambient clock call. Production wires
// MonotonicClock (std::chrono::steady_clock relative to process start, so
// the numbers are small and monotone); tests wire ManualClock, advanced by
// hand, which keeps metric snapshots and trace files byte-stable across
// identically-seeded runs and keeps the layer compliant with lint rule R1
// (no ambient wall-clock outside sanctioned sources — steady_clock measures
// elapsed time, never calendar time, and only this seam may read it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tamper::obs {

/// Monotone nanosecond clock. Implementations must be safe to call from
/// any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary fixed origin (monotone, never wall time).
  [[nodiscard]] virtual std::uint64_t now_ns() const noexcept = 0;
  /// Convenience: the same instant in seconds.
  [[nodiscard]] double now_seconds() const noexcept {
    return static_cast<double>(now_ns()) * 1e-9;
  }
};

/// Production clock: steady_clock, rebased to the instant this object was
/// constructed so emitted timestamps start near zero.
class MonotonicClock final : public Clock {
 public:
  MonotonicClock() : origin_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Test clock: starts at zero, advances only when told to. Thread-safe so a
/// worker thread can read while the test driver advances.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return ns_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta) noexcept {
    ns_.fetch_add(delta, std::memory_order_relaxed);
  }
  void advance_seconds(double s) noexcept {
    advance_ns(static_cast<std::uint64_t>(s * 1e9));
  }
  void set_ns(std::uint64_t ns) noexcept { ns_.store(ns, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> ns_{0};
};

/// Process-wide default production clock (lazily constructed, never freed).
[[nodiscard]] const Clock& monotonic_clock();

}  // namespace tamper::obs
