// Deterministic metrics registry.
//
// Labeled counter / gauge / fixed-bucket-histogram families, modelled on
// the Prometheus data model but with two hard extra requirements from this
// repo's contracts:
//
//   * Emission is strictly ordered and byte-stable (lint rule R2): families
//     iterate by name, series by label values, buckets by bound — all
//     std::map / sorted vectors, never unordered containers. Two registries
//     holding the same values emit identical bytes, which is what lets the
//     test suite diff whole snapshots across identically-seeded runs.
//   * Hot-path updates are lock-free: Counter and Gauge are single atomics
//     with relaxed ordering, so instrumented code pays one fetch_add per
//     event. Registration and Histogram::observe take annotated
//     common::Mutex locks (registration is startup-time, histogram
//     observations are per-checkpoint/per-report, never per-packet).
//
// Registration is get-or-create: asking for an existing family with the
// same kind/help/labels returns it; a mismatch throws std::logic_error at
// startup rather than silently forking a family. Metric and label names
// must be snake_case ([a-z][a-z0-9_]*) — enforced here at runtime and by
// tamperlint rule R6 statically.
//
// Snapshots come in two formats from the same ordered walk:
//   * write_json()        — "tamper-metrics/1" JSON document
//   * write_prometheus()  — text exposition format version 0.0.4
//
// Gauges whose truth lives elsewhere (queue depth, spool depth, heartbeat
// age) are refreshed by collector callbacks registered with
// add_collector(); every snapshot runs the collectors first, outside the
// registry lock, so collectors may freely touch registry handles.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tamper::obs {

/// snake_case: [a-z][a-z0-9_]*. The rule for metric AND label names.
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;

/// Deterministic decimal rendering shared by both emission formats:
/// integral values print without a fraction, everything else as %.9g;
/// non-finite values as +Inf / -Inf / NaN (Prometheus spellings).
[[nodiscard]] std::string format_metric_value(double v);

/// Monotone event counter. Lock-free; safe from any thread.
class Counter {
 public:
  /// Returns the post-increment value (the service uses it for cadence).
  std::uint64_t add(std::uint64_t n = 1) noexcept {
    return v_.fetch_add(n, std::memory_order_relaxed) + n;
  }
  /// Monotone set, for mirroring an external cumulative counter (queue and
  /// emitter stats). Never moves the value backwards.
  void increment_to(std::uint64_t total) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < total &&
           !v_.compare_exchange_weak(cur, total, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time measurement. Lock-free; safe from any thread.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: upper bounds are set at registration and an
/// implicit +Inf bucket catches the overflow. A value lands in the first
/// bucket whose bound is >= it (inclusive upper bounds, the Prometheus
/// `le` convention).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept TAMPER_EXCLUDES(mu_);

  struct Snapshot {
    std::vector<std::uint64_t> bucket_counts;  ///< per-bucket, bounds then +Inf
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const TAMPER_EXCLUDES(mu_);
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  const std::vector<double> bounds_;  ///< ascending, finite
  mutable common::Mutex mu_;
  std::vector<std::uint64_t> counts_ TAMPER_GUARDED_BY(mu_);  ///< bounds + overflow
  std::uint64_t count_ TAMPER_GUARDED_BY(mu_) = 0;
  double sum_ TAMPER_GUARDED_BY(mu_) = 0.0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
[[nodiscard]] std::string_view name(MetricKind kind) noexcept;

namespace internal {

class JsonCursor;  // emission helper, defined in metrics.cpp

/// Common family state + the ordered emission walk. Series handles are
/// stable for the life of the registry (unique_ptr in a std::map).
class FamilyBase {
 public:
  FamilyBase(MetricKind kind, std::string name, std::string help,
             std::vector<std::string> label_keys)
      : kind_(kind),
        name_(std::move(name)),
        help_(std::move(help)),
        label_keys_(std::move(label_keys)) {}
  virtual ~FamilyBase() = default;

  [[nodiscard]] MetricKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& metric_name() const noexcept { return name_; }
  [[nodiscard]] const std::string& help() const noexcept { return help_; }
  [[nodiscard]] const std::vector<std::string>& label_keys() const noexcept {
    return label_keys_;
  }

  virtual void write_prometheus(std::ostream& out) const = 0;
  virtual void write_json(JsonCursor& json) const = 0;

  /// Sum of all series values, for read-back sampling (timeseries rollups).
  /// Counter and gauge families report true; histograms have no single
  /// scalar reading and report false.
  virtual bool accumulate_total(double* /*out*/) const { return false; }

 protected:
  void check_arity(const std::vector<std::string>& label_values) const;

  const MetricKind kind_;
  const std::string name_;
  const std::string help_;
  const std::vector<std::string> label_keys_;
};

}  // namespace internal

class CounterFamily final : public internal::FamilyBase {
 public:
  using FamilyBase::FamilyBase;
  /// The series for these label values (created on first use).
  Counter& with(std::vector<std::string> label_values = {}) TAMPER_EXCLUDES(mu_);
  void write_prometheus(std::ostream& out) const override TAMPER_EXCLUDES(mu_);
  void write_json(internal::JsonCursor& json) const override TAMPER_EXCLUDES(mu_);
  bool accumulate_total(double* out) const override TAMPER_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_;
  std::map<std::vector<std::string>, std::unique_ptr<Counter>> series_
      TAMPER_GUARDED_BY(mu_);
};

class GaugeFamily final : public internal::FamilyBase {
 public:
  using FamilyBase::FamilyBase;
  Gauge& with(std::vector<std::string> label_values = {}) TAMPER_EXCLUDES(mu_);
  void write_prometheus(std::ostream& out) const override TAMPER_EXCLUDES(mu_);
  void write_json(internal::JsonCursor& json) const override TAMPER_EXCLUDES(mu_);
  bool accumulate_total(double* out) const override TAMPER_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_;
  std::map<std::vector<std::string>, std::unique_ptr<Gauge>> series_
      TAMPER_GUARDED_BY(mu_);
};

class HistogramFamily final : public internal::FamilyBase {
 public:
  HistogramFamily(std::string name, std::string help,
                  std::vector<std::string> label_keys, std::vector<double> bounds)
      : FamilyBase(MetricKind::kHistogram, std::move(name), std::move(help),
                   std::move(label_keys)),
        bounds_(std::move(bounds)) {}
  Histogram& with(std::vector<std::string> label_values = {}) TAMPER_EXCLUDES(mu_);
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  void write_prometheus(std::ostream& out) const override TAMPER_EXCLUDES(mu_);
  void write_json(internal::JsonCursor& json) const override TAMPER_EXCLUDES(mu_);

 private:
  const std::vector<double> bounds_;
  mutable common::Mutex mu_;
  std::map<std::vector<std::string>, std::unique_ptr<Histogram>> series_
      TAMPER_GUARDED_BY(mu_);
};

/// Sensible default bounds (seconds) for the duration histograms.
[[nodiscard]] std::vector<double> duration_buckets();

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Unlabeled conveniences: the family's single default series.
  Counter& counter(std::string_view name, std::string_view help)
      TAMPER_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view help) TAMPER_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds) TAMPER_EXCLUDES(mu_);

  // Labeled families.
  CounterFamily& counter_family(std::string_view name, std::string_view help,
                                std::vector<std::string> label_keys)
      TAMPER_EXCLUDES(mu_);
  GaugeFamily& gauge_family(std::string_view name, std::string_view help,
                            std::vector<std::string> label_keys)
      TAMPER_EXCLUDES(mu_);
  HistogramFamily& histogram_family(std::string_view name, std::string_view help,
                                    std::vector<std::string> label_keys,
                                    std::vector<double> bounds)
      TAMPER_EXCLUDES(mu_);

  /// Collector callbacks refresh mirrored gauges/counters before every
  /// snapshot. They run outside the registry lock and may use any registry
  /// handle. remove_collector() before destroying captured state.
  using CollectorId = std::uint64_t;
  CollectorId add_collector(std::function<void()> fn) TAMPER_EXCLUDES(mu_);
  void remove_collector(CollectorId id) TAMPER_EXCLUDES(mu_);

  /// Prometheus text exposition format, version 0.0.4. Runs collectors.
  void write_prometheus(std::ostream& out) TAMPER_EXCLUDES(mu_);
  /// "tamper-metrics/1" JSON snapshot. Runs collectors.
  void write_json(std::ostream& out, bool pretty = true) TAMPER_EXCLUDES(mu_);

  [[nodiscard]] std::string prometheus_text() TAMPER_EXCLUDES(mu_);
  [[nodiscard]] std::string json_text(bool pretty = true) TAMPER_EXCLUDES(mu_);

  /// Run the collectors without emitting — refreshes mirrored gauges so a
  /// subsequent read_family_total sees current values.
  void refresh() TAMPER_EXCLUDES(mu_) { collect(); }

  /// Read the summed value of a counter/gauge family (all series added).
  /// Returns false when the family is absent or is a histogram. Does NOT
  /// run collectors — call refresh() first when mirrored state matters.
  [[nodiscard]] bool read_family_total(std::string_view name, double* out)
      TAMPER_EXCLUDES(mu_);

 private:
  internal::FamilyBase& family(MetricKind kind, std::string_view name,
                               std::string_view help,
                               std::vector<std::string> label_keys,
                               std::vector<double> bounds) TAMPER_EXCLUDES(mu_);
  void collect() TAMPER_EXCLUDES(mu_);

  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<internal::FamilyBase>, std::less<>> families_
      TAMPER_GUARDED_BY(mu_);
  std::map<CollectorId, std::function<void()>> collectors_ TAMPER_GUARDED_BY(mu_);
  CollectorId next_collector_ TAMPER_GUARDED_BY(mu_) = 0;
};

}  // namespace tamper::obs
