// Leveled structured logger.
//
// Replaces the ad-hoc `std::cerr <<` prints in service/ and the CLI with
// one sink that carries a level, a component tag, and optional key=value
// fields. Two formats over the same call sites:
//
//   text:  [     1.250000] WARN  supervisor: worker stalled restarts=2
//   json:  {"ts_ns":1250000000,"level":"warn","component":"supervisor",
//           "msg":"worker stalled","fields":{"restarts":"2"}}
//
// Timestamps come from the obs::Clock seam (monotone, relative to process
// start) — not wall time, keeping the layer inside lint rule R1 and log
// output byte-stable under a ManualClock. A mutex serializes whole lines so
// concurrent threads never interleave. Field values are preformatted
// strings; callers stringify numbers at the call site, which keeps this
// header small and the call sites explicit.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace tamper::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

[[nodiscard]] std::string_view name(LogLevel level) noexcept;
/// "debug"/"info"/"warn"/"error" → level; false on anything else.
[[nodiscard]] bool parse_log_level(std::string_view text, LogLevel* out) noexcept;

struct LogField {
  std::string_view key;
  std::string value;
};

class Logger {
 public:
  enum class Format : std::uint8_t { kText, kJson };

  explicit Logger(std::ostream& out, LogLevel min_level = LogLevel::kInfo,
                  Format format = Format::kText,
                  const Clock* clock = &monotonic_clock())
      : out_(out), min_level_(min_level), format_(format), clock_(clock) {}

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= min_level_;
  }
  [[nodiscard]] LogLevel min_level() const noexcept { return min_level_; }
  [[nodiscard]] Format format() const noexcept { return format_; }

  void log(LogLevel level, std::string_view component, std::string_view message,
           std::initializer_list<LogField> fields = {}) TAMPER_EXCLUDES(mu_) {
    log_impl(level, component, message, fields.begin(), fields.size());
  }
  /// Overload for call sites that build the field list dynamically (e.g.
  /// the supervisor appending its fleet PoP id to every line).
  void log(LogLevel level, std::string_view component, std::string_view message,
           const std::vector<LogField>& fields) TAMPER_EXCLUDES(mu_) {
    log_impl(level, component, message, fields.data(), fields.size());
  }

  void debug(std::string_view component, std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kDebug, component, message, fields);
  }
  void info(std::string_view component, std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kInfo, component, message, fields);
  }
  void warn(std::string_view component, std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kWarn, component, message, fields);
  }
  void error(std::string_view component, std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kError, component, message, fields);
  }

 private:
  void log_impl(LogLevel level, std::string_view component,
                std::string_view message, const LogField* fields,
                std::size_t n) TAMPER_EXCLUDES(mu_);

  std::ostream& out_;
  const LogLevel min_level_;
  const Format format_;
  const Clock* clock_;
  common::Mutex mu_;  ///< serializes whole lines
};

}  // namespace tamper::obs
