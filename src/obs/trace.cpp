#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace tamper::obs {

Tracer::Tracer(const Clock& clock, Config config)
    : clock_(&clock), capacity_(config.capacity == 0 ? 1 : config.capacity) {
  common::MutexLock lock(mu_);
  ring_.resize(capacity_);
}

void Tracer::record(const char* name, const char* cat, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint32_t tid) noexcept {
  const std::uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  common::MutexLock lock(mu_);
  ring_[next_] = TraceEvent{name, cat, start_ns, dur, tid};
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_)
    ++count_;
  else
    ++dropped_;
}

std::size_t Tracer::size() const {
  common::MutexLock lock(mu_);
  return count_;
}

std::uint64_t Tracer::dropped() const {
  common::MutexLock lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  common::MutexLock lock(mu_);
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "[\n";
  {
    common::MutexLock lock(mu_);
    // Oldest-first: when the ring has wrapped the oldest event sits at
    // next_, otherwise at 0.
    const std::size_t first = count_ == capacity_ ? next_ : 0;
    for (std::size_t i = 0; i < count_; ++i) {
      const TraceEvent& ev = ring_[(first + i) % capacity_];
      char line[256];
      // Span names/categories are static identifiers (stage::k*), never
      // user data, so no JSON string escaping is needed here.
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                    ",\"pid\":1,\"tid\":%u}",
                    ev.name, ev.cat, ev.ts_ns / 1000, ev.dur_ns / 1000,
                    ev.tid);
      out << line;
      if (i + 1 < count_) out << ',';
      out << '\n';
    }
  }
  out << "]\n";
}

std::string Tracer::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

}  // namespace tamper::obs
