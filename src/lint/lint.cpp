#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

namespace tamper::lint {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool ident_char(char c) noexcept {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Blank out the contents of string/char literals and (unless
/// `keep_comments`) comments, preserving line structure. Token rules run on
/// the everything-stripped form so they never fire on prose or test strings;
/// the directive scanner runs on the comments-kept form, because directives
/// live in comments but must not fire on string literals that merely mention
/// the directive syntax. `keep_strings` preserves string-literal contents
/// instead (R6 reads metric names out of them); all three forms are
/// position-aligned with the source, so structure found in one form can be
/// read out of another.
[[nodiscard]] std::string strip_literals(std::string_view src, bool keep_comments,
                                         bool keep_strings = false) {
  std::string out(src.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw } state = State::kCode;
  std::string raw_delim;  // raw-string closing delimiter: ")delim\""
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          if (keep_comments) out[i] = c;
          state = State::kLine;
        } else if (c == '/' && next == '*') {
          if (keep_comments) {
            out[i] = c;
            out[i + 1] = next;
          }
          state = State::kBlock;
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim = ")";
          raw_delim.append(src.substr(i + 2, p - (i + 2)));
          raw_delim.push_back('"');
          out[i] = 'R';
          if (i + 1 < src.size()) out[i + 1] = '"';
          i += 1;
          state = State::kRaw;
        } else if (c == '"') {
          out[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out[i] = '\'';
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLine:
        if (keep_comments && c != '\n') out[i] = c;
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlock:
        if (keep_comments && c != '\n') out[i] = c;
        if (c == '*' && next == '/') {
          if (keep_comments && i + 1 < src.size()) out[i + 1] = next;
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (keep_strings) {
            out[i] = c;
            if (i + 1 < src.size() && src[i + 1] != '\n') out[i + 1] = src[i + 1];
          }
          ++i;
          if (i < src.size() && src[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          out[i] = '"';
          state = State::kCode;
        } else if (keep_strings && c != '\n') {
          out[i] = c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

[[nodiscard]] std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Position of `word` in `line` at identifier boundaries, or npos.
[[nodiscard]] std::size_t find_word(std::string_view line, std::string_view word,
                                    std::size_t from = 0) {
  while (from < line.size()) {
    const std::size_t pos = line.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

[[nodiscard]] bool path_contains(const std::string& path, std::string_view fragment) {
  return path.find(fragment) != std::string::npos;
}

[[nodiscard]] bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

[[nodiscard]] bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

[[nodiscard]] std::string trimmed(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

constexpr std::string_view kAllowDirective = "tamperlint-allow(";
constexpr std::string_view kNothrowMarker = "tamperlint: nothrow-path";

[[nodiscard]] bool known_rule(std::string_view id) {
  return id.size() == 2 && id[0] == 'R' && id[1] >= '1' && id[1] <= '6';
}

/// Per-line suppression state parsed from the raw text.
struct Directives {
  /// suppressed[line] holds rule ids suppressed on that 0-based line.
  std::vector<std::vector<std::string>> suppressed;
  std::vector<Finding> malformed;  ///< R0 findings
};

[[nodiscard]] Directives parse_directives(const std::string& path,
                                          const std::vector<std::string>& commented,
                                          const std::vector<std::string>& stripped) {
  Directives d;
  d.suppressed.resize(commented.size() + 1);
  for (std::size_t i = 0; i < commented.size(); ++i) {
    const std::size_t at = commented[i].find(kAllowDirective);
    if (at == std::string::npos) continue;
    const std::size_t id_begin = at + kAllowDirective.size();
    const std::size_t close = commented[i].find(')', id_begin);
    const std::string id =
        close == std::string::npos ? "" : commented[i].substr(id_begin, close - id_begin);
    std::string reason;
    if (close != std::string::npos) {
      const std::size_t colon = commented[i].find(':', close);
      if (colon != std::string::npos) reason = trimmed(commented[i].substr(colon + 1));
    }
    if (!known_rule(id) || reason.empty()) {
      d.malformed.push_back(
          {"R0", path, static_cast<int>(i + 1),
           "malformed suppression (want `// tamperlint-allow(R1..R6): reason`); "
           "it suppresses nothing"});
      continue;
    }
    d.suppressed[i].push_back(id);
    // A directive alone on its line covers the next line instead.
    if (trimmed(stripped[i]).empty() && i + 1 < d.suppressed.size())
      d.suppressed[i + 1].push_back(id);
  }
  return d;
}

/// 0-based inclusive line ranges of functions marked nothrow-path.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> nothrow_regions(
    const std::vector<std::string>& commented, const std::vector<std::string>& stripped) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (std::size_t i = 0; i < commented.size(); ++i) {
    if (commented[i].find(kNothrowMarker) == std::string::npos) continue;
    // Find the function's opening brace, then walk to its close.
    int depth = 0;
    bool open_seen = false;
    std::size_t begin = i;
    for (std::size_t j = i; j < stripped.size(); ++j) {
      for (const char c : stripped[j]) {
        if (c == '{') {
          if (!open_seen) begin = j;
          open_seen = true;
          ++depth;
        } else if (c == '}') {
          if (open_seen && --depth == 0) {
            regions.emplace_back(begin, j);
            j = stripped.size();  // break outer
            break;
          }
        }
      }
      if (open_seen && depth == 0) break;
    }
  }
  return regions;
}

struct FileLinter {
  const std::string& path;
  const Config& config;
  const std::vector<std::string>& commented;
  const std::vector<std::string>& stripped;
  const Directives& directives;
  std::vector<Finding>& out;

  [[nodiscard]] bool rule_enabled(std::string_view id) const {
    if (config.rules.empty()) return true;
    return std::find(config.rules.begin(), config.rules.end(), id) != config.rules.end();
  }

  void report(std::string_view rule, std::size_t line0, std::string message) const {
    const auto& sup = directives.suppressed[line0];
    if (std::find(sup.begin(), sup.end(), rule) != sup.end()) return;
    out.push_back({std::string(rule), path, static_cast<int>(line0 + 1), std::move(message)});
  }

  // R1 — determinism: no ambient time or randomness.
  void rule_determinism() const {
    for (const auto& fragment : config.determinism_allowlist)
      if (path_contains(path, fragment)) return;
    static constexpr std::string_view kBanned[] = {
        "rand",        "srand",     "random_device", "system_clock",
        "gettimeofday", "localtime", "gmtime",        "mktime",
        "clock_gettime", "std::time",
    };
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const std::string& line = stripped[i];
      for (const auto token : kBanned) {
        if (find_word(line, token) == std::string_view::npos) continue;
        report("R1", i,
               "nondeterminism: `" + std::string(token) +
                   "` outside common/sim_clock and common/rng; derive time from "
                   "SimClock and randomness from a seeded Rng");
        break;  // one R1 finding per line is enough
      }
      // Bare C `time(...)` call (std::time is caught above; member access
      // like `.time(` is someone else's accessor, not the libc call).
      std::size_t pos = 0;
      while ((pos = find_word(line, "time", pos)) != std::string_view::npos) {
        const char before = pos > 0 ? line[pos - 1] : '\0';
        std::size_t after = pos + 4;
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(' && before != '.' &&
            before != ':' && before != '>') {
          report("R1", i,
                 "nondeterminism: wall-clock `time()` call; use the simulated "
                 "clock (common/sim_clock)");
          break;
        }
        pos += 4;
      }
    }
  }

  // R2 — ordered emission: no unordered containers in emission files.
  void rule_ordered_emission() const {
    const bool emission =
        std::any_of(config.emission_paths.begin(), config.emission_paths.end(),
                    [&](const std::string& f) { return path_contains(path, f); });
    if (!emission) return;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      for (const std::string_view token : {"unordered_map", "unordered_set"}) {
        if (find_word(stripped[i], token) == std::string_view::npos) continue;
        report("R2", i,
               "report/JSON emission path touches " + std::string(token) +
                   "; iteration order leaks into output — emit from std::map or "
                   "sorted keys");
        break;
      }
    }
  }

  // R3 — nothrow-path functions must not contain throwing ops.
  void rule_nothrow_path() const {
    for (const auto& [begin, end] : nothrow_regions(commented, stripped)) {
      for (std::size_t i = begin; i <= end && i < stripped.size(); ++i) {
        const std::string& line = stripped[i];
        if (find_word(line, "throw") != std::string_view::npos)
          report("R3", i, "throw inside a nothrow-path function; count the failure "
                          "into DegradedStats and drop the sample instead");
        if (line.find(".at(") != std::string::npos ||
            line.find("->at(") != std::string::npos)
          report("R3", i, "throwing accessor .at() inside a nothrow-path function; "
                          "use find()/bounds-checked access");
        if (line.find("std::sto") != std::string::npos)
          report("R3", i, "throwing conversion std::sto* inside a nothrow-path "
                          "function; use std::from_chars");
      }
    }
  }

  // R4 — checked narrowing in the wire-parsing layer.
  void rule_checked_narrowing() const {
    if (!path_contains(path, config.net_path)) return;
    static constexpr std::string_view kNarrow[] = {
        "std::uint8_t",  "std::uint16_t", "std::int8_t",  "std::int16_t",
        "uint8_t",       "uint16_t",      "int8_t",       "int16_t",
        "unsigned char", "signed char",   "unsigned short", "short", "char",
    };
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const std::string& line = stripped[i];
      for (std::size_t pos = 0; pos < line.size(); ++pos) {
        if (line[pos] != '(') continue;
        std::size_t p = pos + 1;
        while (p < line.size() && line[p] == ' ') ++p;
        for (const auto type : kNarrow) {
          if (line.compare(p, type.size(), type) != 0) continue;
          std::size_t q = p + type.size();
          if (q < line.size() && ident_char(line[q])) break;  // longer identifier
          while (q < line.size() && line[q] == ' ') ++q;
          if (q >= line.size() || line[q] != ')') break;  // not `(type)`
          ++q;
          while (q < line.size() && line[q] == ' ') ++q;
          if (q >= line.size()) break;
          const char f = line[q];
          const bool cast_like = ident_char(f) || f == '(' || f == '~' || f == '-';
          // sizeof(T)/alignof(T) parenthesize a type, not a cast.
          std::size_t w = pos;
          while (w > 0 && line[w - 1] == ' ') --w;
          std::size_t ws = w;
          while (ws > 0 && ident_char(line[ws - 1])) --ws;
          const std::string word_before = line.substr(ws, w - ws);
          if (cast_like && word_before != "sizeof" && word_before != "alignof") {
            report("R4", i,
                   "C-style narrowing cast in net parser; use static_cast with "
                   "explicit masking or a binio checked read");
          }
          break;
        }
      }
      const std::size_t rc = find_word(line, "reinterpret_cast");
      if (rc != std::string_view::npos) {
        const std::size_t args = line.find('<', rc);
        const std::string target =
            args == std::string::npos
                ? ""
                : trimmed(line.substr(args + 1, line.find('>', args) - args - 1));
        if (target != "char*" && target != "const char*" && target != "char *" &&
            target != "const char *") {
          report("R4", i,
                 "reinterpret_cast in net parser (only the char* stream-I/O "
                 "bridge is sanctioned); parse through binio instead");
        }
      }
    }
  }

  // R6 — metric hygiene: metric and label names snake_case; each family
  // registered at most once per file (register once, share the handle).
  //
  // Registration sites are calls like `reg.counter("name", ...)` or
  // `metrics->histogram_family("name", "help", {"label"}, ...)`. Structure
  // (call tokens, quotes, parens) is found in the fully-stripped form, where
  // literal contents are blanked so the quote after an opening `"` is always
  // the close; the names themselves are read out of the position-aligned
  // strings-kept form. Names passed as variables cannot be checked and are
  // skipped.
  void rule_metric_hygiene(std::string_view stripped_text,
                           std::string_view strings_text) const {
    static constexpr std::string_view kCalls[] = {
        "counter(",        "gauge(",        "histogram(",
        "counter_family(", "gauge_family(", "histogram_family("};
    const auto line0_of = [&](std::size_t pos) {
      return static_cast<std::size_t>(std::count(
          stripped_text.begin(),
          stripped_text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
    };
    const auto snake = [](std::string_view s) {
      if (s.empty() || s[0] < 'a' || s[0] > 'z') return false;
      return std::all_of(s.begin(), s.end(), [](char ch) {
        return (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch == '_';
      });
    };

    struct Hit {
      std::size_t pos;  ///< just past the call's `(` in the stripped text
      bool family;
    };
    std::vector<Hit> hits;
    for (const std::string_view token : kCalls) {
      std::size_t from = 0, p = 0;
      while ((p = stripped_text.find(token, from)) != std::string_view::npos) {
        from = p + 1;
        if (p == 0) continue;
        const char before = stripped_text[p - 1];  // `.counter(` or `->counter(`
        if (before != '.' && before != '>') continue;
        hits.push_back({p + token.size(), token.find("_family") != std::string_view::npos});
      }
    }
    std::sort(hits.begin(), hits.end(),
              [](const Hit& a, const Hit& b) { return a.pos < b.pos; });

    std::vector<std::pair<std::string, std::size_t>> seen;  // name -> first line0
    for (const Hit& hit : hits) {
      std::size_t p = hit.pos;
      while (p < stripped_text.size() &&
             std::isspace(static_cast<unsigned char>(stripped_text[p])) != 0)
        ++p;
      if (p >= stripped_text.size() || stripped_text[p] != '"') continue;
      const std::size_t close = stripped_text.find('"', p + 1);
      if (close == std::string_view::npos) continue;
      const std::string name(strings_text.substr(p + 1, close - p - 1));
      const std::size_t line0 = line0_of(p);
      if (!snake(name))
        report("R6", line0,
               "metric name \"" + name +
                   "\" is not snake_case ([a-z][a-z0-9_]*); Prometheus exposition "
                   "and the JSON snapshot require stable lowercase names");
      const auto prior = std::find_if(seen.begin(), seen.end(),
                                      [&](const auto& e) { return e.first == name; });
      if (prior == seen.end()) {
        seen.emplace_back(name, line0);
      } else if (prior->second != line0) {
        report("R6", line0,
               "metric family \"" + name + "\" registered more than once in this "
                   "file (first at line " + std::to_string(prior->second + 1) +
                   "); register once and share the handle");
      }
      if (!hit.family) continue;
      // Label keys are the string literals inside the call's brace list
      // (histogram bounds are numeric braces and contribute none).
      int paren = 1, brace = 0;
      std::size_t q = close + 1;
      while (q < stripped_text.size() && paren > 0) {
        const char c = stripped_text[q];
        if (c == '"') {
          const std::size_t lit_close = stripped_text.find('"', q + 1);
          if (lit_close == std::string_view::npos) break;
          if (brace > 0) {
            const std::string key(strings_text.substr(q + 1, lit_close - q - 1));
            if (!snake(key))
              report("R6", line0_of(q),
                     "label key \"" + key +
                         "\" is not snake_case ([a-z][a-z0-9_]*)");
          }
          q = lit_close + 1;
          continue;
        }
        if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        ++q;
      }
    }
  }

  // R5 — header hygiene.
  void rule_header_hygiene(std::string_view content) const {
    if (!is_header(path)) return;
    if (content.find("#pragma once") == std::string_view::npos)
      report("R5", 0, "header is missing #pragma once");
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const std::size_t pos = find_word(stripped[i], "using");
      if (pos == std::string_view::npos) continue;
      if (find_word(stripped[i], "namespace", pos) != std::string_view::npos)
        report("R5", i, "`using namespace` in a header leaks into every includer");
    }
  }
};

}  // namespace

std::vector<Finding> lint_source(std::string path, std::string_view content,
                                 const Config& config) {
  std::replace(path.begin(), path.end(), '\\', '/');
  const std::string stripped_text = strip_literals(content, /*keep_comments=*/false);
  const std::vector<std::string> stripped = split_lines(stripped_text);
  const std::vector<std::string> commented =
      split_lines(strip_literals(content, /*keep_comments=*/true));
  const Directives directives = parse_directives(path, commented, stripped);

  std::vector<Finding> out;
  FileLinter linter{path, config, commented, stripped, directives, out};
  if (linter.rule_enabled("R0"))
    out.insert(out.end(), directives.malformed.begin(), directives.malformed.end());
  if (linter.rule_enabled("R1")) linter.rule_determinism();
  if (linter.rule_enabled("R2")) linter.rule_ordered_emission();
  if (linter.rule_enabled("R3")) linter.rule_nothrow_path();
  if (linter.rule_enabled("R4")) linter.rule_checked_narrowing();
  if (linter.rule_enabled("R5")) linter.rule_header_hygiene(content);
  if (linter.rule_enabled("R6"))
    linter.rule_metric_hygiene(
        stripped_text,
        strip_literals(content, /*keep_comments=*/false, /*keep_strings=*/true));

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Config& config, std::vector<std::string>& errors) {
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        errors.push_back(p + ": " + ec.message());
        continue;
      }
      for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
        const std::string name = it->path().filename().string();
        if (it->is_directory()) {
          const bool excluded =
              name.rfind("build", 0) == 0 ||
              std::find(config.exclude_dirs.begin(), config.exclude_dirs.end(), name) !=
                  config.exclude_dirs.end();
          if (excluded) it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && is_source_file(it->path()))
          files.push_back(it->path().string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      errors.push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      errors.push_back(file + ": unreadable");
      continue;
    }
    const std::string content((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    auto file_findings = lint_source(file, content, config);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string format_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& f : findings)
    out << f.path << ':' << f.line << ": " << f.rule << ": " << f.message << '\n';
  return out.str();
}

namespace {
void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}
}  // namespace

std::string format_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"rule\": ";
    json_escape(out, f.rule);
    out << ", \"path\": ";
    json_escape(out, f.path);
    out << ", \"line\": " << f.line << ", \"message\": ";
    json_escape(out, f.message);
    out << '}' << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

std::string rule_catalog() {
  return
      "R0  directive hygiene — malformed tamperlint-allow comments\n"
      "R1  determinism      — no wall-clock/ambient randomness outside "
      "common/sim_clock, common/rng\n"
      "R2  ordered emission — no unordered containers in report/JSON emission "
      "files\n"
      "R3  nothrow path     — no throw/.at()/std::sto* in `// tamperlint: "
      "nothrow-path` functions\n"
      "R4  checked narrowing— no C-style narrowing casts or reinterpret_cast "
      "in src/net/\n"
      "R5  header hygiene   — #pragma once required; `using namespace` "
      "forbidden in headers\n"
      "R6  metric hygiene   — metric/label names snake_case; each metric "
      "family registered once per file\n";
}

}  // namespace tamper::lint
