#include "lint/lint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>

#include "lint/index.h"
#include "lint/text.h"

namespace tamper::lint {

namespace {

namespace fs = std::filesystem;

using internal::find_word;
using internal::ident_char;
using internal::split_lines;
using internal::strip_literals;
using internal::trimmed;

[[nodiscard]] bool path_contains(const std::string& path, std::string_view fragment) {
  return path.find(fragment) != std::string::npos;
}

[[nodiscard]] bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

[[nodiscard]] bool is_source_file_path(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp") || path.ends_with(".cc") ||
         path.ends_with(".cpp") || path.ends_with(".cxx");
}

[[nodiscard]] bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

constexpr std::string_view kAllowDirective = "tamperlint-allow(";
constexpr std::string_view kNothrowMarker = "tamperlint: nothrow-path";

[[nodiscard]] bool known_rule(std::string_view id) {
  if (id.size() < 2 || id.size() > 3 || id[0] != 'R') return false;
  int n = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return false;
    n = n * 10 + (id[i] - '0');
  }
  return n >= 1 && n <= 13;
}

/// Per-line suppression state parsed from the raw text.
struct Directives {
  /// suppressed[line] holds rule ids suppressed on that 0-based line.
  std::vector<std::vector<std::string>> suppressed;
  std::vector<Finding> malformed;  ///< R0 findings
};

[[nodiscard]] Directives parse_directives(const std::string& path,
                                          const std::vector<std::string>& commented,
                                          const std::vector<std::string>& stripped) {
  Directives d;
  d.suppressed.resize(commented.size() + 1);
  for (std::size_t i = 0; i < commented.size(); ++i) {
    const std::size_t at = commented[i].find(kAllowDirective);
    if (at == std::string::npos) continue;
    const std::size_t id_begin = at + kAllowDirective.size();
    const std::size_t close = commented[i].find(')', id_begin);
    const std::string id =
        close == std::string::npos ? "" : commented[i].substr(id_begin, close - id_begin);
    std::string reason;
    if (close != std::string::npos) {
      const std::size_t colon = commented[i].find(':', close);
      if (colon != std::string::npos) reason = trimmed(commented[i].substr(colon + 1));
    }
    if (!known_rule(id) || reason.empty()) {
      d.malformed.push_back(
          {"R0", path, static_cast<int>(i + 1),
           "malformed suppression (want `// tamperlint-allow(R1..R13): reason`); "
           "it suppresses nothing"});
      continue;
    }
    d.suppressed[i].push_back(id);
    // A directive alone on its line covers the next line instead.
    if (trimmed(stripped[i]).empty() && i + 1 < d.suppressed.size())
      d.suppressed[i + 1].push_back(id);
  }
  return d;
}

/// 0-based inclusive line ranges of functions marked nothrow-path.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> nothrow_regions(
    const std::vector<std::string>& commented, const std::vector<std::string>& stripped) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (std::size_t i = 0; i < commented.size(); ++i) {
    if (commented[i].find(kNothrowMarker) == std::string::npos) continue;
    // Find the function's opening brace, then walk to its close.
    int depth = 0;
    bool open_seen = false;
    std::size_t begin = i;
    for (std::size_t j = i; j < stripped.size(); ++j) {
      for (const char c : stripped[j]) {
        if (c == '{') {
          if (!open_seen) begin = j;
          open_seen = true;
          ++depth;
        } else if (c == '}') {
          if (open_seen && --depth == 0) {
            regions.emplace_back(begin, j);
            j = stripped.size();  // break outer
            break;
          }
        }
      }
      if (open_seen && depth == 0) break;
    }
  }
  return regions;
}

struct FileLinter {
  const std::string& path;
  const Config& config;
  const std::vector<std::string>& commented;
  const std::vector<std::string>& stripped;
  const Directives& directives;
  std::vector<Finding>& out;

  [[nodiscard]] bool rule_enabled(std::string_view id) const {
    if (config.rules.empty()) return true;
    return std::find(config.rules.begin(), config.rules.end(), id) != config.rules.end();
  }

  void report(std::string_view rule, std::size_t line0, std::string message) const {
    const auto& sup = directives.suppressed[line0];
    if (std::find(sup.begin(), sup.end(), rule) != sup.end()) return;
    out.push_back({std::string(rule), path, static_cast<int>(line0 + 1), std::move(message)});
  }

  // R1 — determinism: no ambient time or randomness.
  void rule_determinism() const {
    for (const auto& fragment : config.determinism_allowlist)
      if (path_contains(path, fragment)) return;
    static constexpr std::string_view kBanned[] = {
        "rand",        "srand",     "random_device", "system_clock",
        "gettimeofday", "localtime", "gmtime",        "mktime",
        "clock_gettime", "std::time",
    };
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const std::string& line = stripped[i];
      for (const auto token : kBanned) {
        if (find_word(line, token) == std::string_view::npos) continue;
        report("R1", i,
               "nondeterminism: `" + std::string(token) +
                   "` outside common/sim_clock and common/rng; derive time from "
                   "SimClock and randomness from a seeded Rng");
        break;  // one R1 finding per line is enough
      }
      // Bare C `time(...)` call (std::time is caught above; member access
      // like `.time(` is someone else's accessor, not the libc call).
      std::size_t pos = 0;
      while ((pos = find_word(line, "time", pos)) != std::string_view::npos) {
        const char before = pos > 0 ? line[pos - 1] : '\0';
        std::size_t after = pos + 4;
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(' && before != '.' &&
            before != ':' && before != '>') {
          report("R1", i,
                 "nondeterminism: wall-clock `time()` call; use the simulated "
                 "clock (common/sim_clock)");
          break;
        }
        pos += 4;
      }
    }
  }

  // R2 — ordered emission: no unordered containers in emission files.
  void rule_ordered_emission() const {
    const bool emission =
        std::any_of(config.emission_paths.begin(), config.emission_paths.end(),
                    [&](const std::string& f) { return path_contains(path, f); });
    if (!emission) return;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      for (const std::string_view token : {"unordered_map", "unordered_set"}) {
        if (find_word(stripped[i], token) == std::string_view::npos) continue;
        report("R2", i,
               "report/JSON emission path touches " + std::string(token) +
                   "; iteration order leaks into output — emit from std::map or "
                   "sorted keys");
        break;
      }
    }
  }

  // R3 — nothrow-path functions must not contain throwing ops.
  void rule_nothrow_path() const {
    for (const auto& [begin, end] : nothrow_regions(commented, stripped)) {
      for (std::size_t i = begin; i <= end && i < stripped.size(); ++i) {
        const std::string& line = stripped[i];
        if (find_word(line, "throw") != std::string_view::npos)
          report("R3", i, "throw inside a nothrow-path function; count the failure "
                          "into DegradedStats and drop the sample instead");
        if (line.find(".at(") != std::string::npos ||
            line.find("->at(") != std::string::npos)
          report("R3", i, "throwing accessor .at() inside a nothrow-path function; "
                          "use find()/bounds-checked access");
        if (line.find("std::sto") != std::string::npos)
          report("R3", i, "throwing conversion std::sto* inside a nothrow-path "
                          "function; use std::from_chars");
      }
    }
  }

  // R4 — checked narrowing in the wire-parsing layer.
  void rule_checked_narrowing() const {
    if (!path_contains(path, config.net_path)) return;
    static constexpr std::string_view kNarrow[] = {
        "std::uint8_t",  "std::uint16_t", "std::int8_t",  "std::int16_t",
        "uint8_t",       "uint16_t",      "int8_t",       "int16_t",
        "unsigned char", "signed char",   "unsigned short", "short", "char",
    };
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const std::string& line = stripped[i];
      for (std::size_t pos = 0; pos < line.size(); ++pos) {
        if (line[pos] != '(') continue;
        std::size_t p = pos + 1;
        while (p < line.size() && line[p] == ' ') ++p;
        for (const auto type : kNarrow) {
          if (line.compare(p, type.size(), type) != 0) continue;
          std::size_t q = p + type.size();
          if (q < line.size() && ident_char(line[q])) break;  // longer identifier
          while (q < line.size() && line[q] == ' ') ++q;
          if (q >= line.size() || line[q] != ')') break;  // not `(type)`
          ++q;
          while (q < line.size() && line[q] == ' ') ++q;
          if (q >= line.size()) break;
          const char f = line[q];
          const bool cast_like = ident_char(f) || f == '(' || f == '~' || f == '-';
          // sizeof(T)/alignof(T) parenthesize a type, not a cast.
          std::size_t w = pos;
          while (w > 0 && line[w - 1] == ' ') --w;
          std::size_t ws = w;
          while (ws > 0 && ident_char(line[ws - 1])) --ws;
          const std::string word_before = line.substr(ws, w - ws);
          if (cast_like && word_before != "sizeof" && word_before != "alignof") {
            report("R4", i,
                   "C-style narrowing cast in net parser; use static_cast with "
                   "explicit masking or a binio checked read");
          }
          break;
        }
      }
      const std::size_t rc = find_word(line, "reinterpret_cast");
      if (rc != std::string_view::npos) {
        const std::size_t args = line.find('<', rc);
        const std::string target =
            args == std::string::npos
                ? ""
                : trimmed(line.substr(args + 1, line.find('>', args) - args - 1));
        if (target != "char*" && target != "const char*" && target != "char *" &&
            target != "const char *") {
          report("R4", i,
                 "reinterpret_cast in net parser (only the char* stream-I/O "
                 "bridge is sanctioned); parse through binio instead");
        }
      }
    }
  }

  // R6 — metric hygiene: metric and label names snake_case; each family
  // registered at most once per file (register once, share the handle).
  // Structure (call tokens, quotes, parens) comes from the fully-stripped
  // form; names are read out of the position-aligned strings-kept form.
  void rule_metric_hygiene(std::string_view stripped_text,
                           std::string_view strings_text) const {
    const auto snake = [](std::string_view s) {
      if (s.empty() || s[0] < 'a' || s[0] > 'z') return false;
      return std::all_of(s.begin(), s.end(), [](char ch) {
        return (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch == '_';
      });
    };

    std::vector<std::pair<std::string, std::size_t>> seen;  // name -> first line0
    for (const internal::MetricSite& site : internal::metric_sites(stripped_text,
                                                                   strings_text)) {
      const std::size_t line0 = site.line0;
      if (!snake(site.name))
        report("R6", line0,
               "metric name \"" + site.name +
                   "\" is not snake_case ([a-z][a-z0-9_]*); Prometheus exposition "
                   "and the JSON snapshot require stable lowercase names");
      const auto prior = std::find_if(seen.begin(), seen.end(),
                                      [&](const auto& e) { return e.first == site.name; });
      if (prior == seen.end()) {
        seen.emplace_back(site.name, line0);
      } else if (prior->second != line0) {
        report("R6", line0,
               "metric family \"" + site.name + "\" registered more than once in this "
                   "file (first at line " + std::to_string(prior->second + 1) +
                   "); register once and share the handle");
      }
      if (!site.family) continue;
      // Label keys are the string literals inside the call's brace list
      // (histogram bounds are numeric braces and contribute none).
      int paren = 1, brace = 0;
      std::size_t q = site.name_end + 1;
      while (q < stripped_text.size() && paren > 0) {
        const char c = stripped_text[q];
        if (c == '"') {
          const std::size_t lit_close = stripped_text.find('"', q + 1);
          if (lit_close == std::string_view::npos) break;
          if (brace > 0) {
            const std::string key(strings_text.substr(q + 1, lit_close - q - 1));
            if (!snake(key))
              report("R6", internal::line_of(stripped_text, q),
                     "label key \"" + key +
                         "\" is not snake_case ([a-z][a-z0-9_]*)");
          }
          q = lit_close + 1;
          continue;
        }
        if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        ++q;
      }
    }
  }

  // R5 — header hygiene.
  void rule_header_hygiene(std::string_view content) const {
    if (!is_header(path)) return;
    if (content.find("#pragma once") == std::string_view::npos)
      report("R5", 0, "header is missing #pragma once");
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const std::size_t pos = find_word(stripped[i], "using");
      if (pos == std::string_view::npos) continue;
      if (find_word(stripped[i], "namespace", pos) != std::string_view::npos)
        report("R5", i, "`using namespace` in a header leaks into every includer");
    }
  }
};

/// Per-file work shared by lint_source and lint_repo: run the per-file
/// rules and (when `index` is non-null) extract the structural index with
/// the suppression map attached.
[[nodiscard]] std::vector<Finding> lint_one(const std::string& path,
                                            std::string_view content,
                                            const Config& config, FileIndex* index) {
  const std::string stripped_text = strip_literals(content, /*keep_comments=*/false);
  const std::string strings_text =
      strip_literals(content, /*keep_comments=*/false, /*keep_strings=*/true);
  const std::vector<std::string> stripped = split_lines(stripped_text);
  const std::vector<std::string> commented =
      split_lines(strip_literals(content, /*keep_comments=*/true));
  const Directives directives = parse_directives(path, commented, stripped);

  std::vector<Finding> out;
  FileLinter linter{path, config, commented, stripped, directives, out};
  if (linter.rule_enabled("R0"))
    out.insert(out.end(), directives.malformed.begin(), directives.malformed.end());
  if (linter.rule_enabled("R1")) linter.rule_determinism();
  if (linter.rule_enabled("R2")) linter.rule_ordered_emission();
  if (linter.rule_enabled("R3")) linter.rule_nothrow_path();
  if (linter.rule_enabled("R4")) linter.rule_checked_narrowing();
  if (linter.rule_enabled("R5")) linter.rule_header_hygiene(content);
  if (linter.rule_enabled("R6")) linter.rule_metric_hygiene(stripped_text, strings_text);

  if (index != nullptr) {
    *index = index_file(path, stripped_text, strings_text);
    index->suppressed = directives.suppressed;
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace

std::vector<Finding> lint_source(std::string path, std::string_view content,
                                 const Config& config) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return lint_one(path, content, config, nullptr);
}

std::vector<Finding> lint_repo(const std::vector<SourceFile>& files,
                               const Config& config, int jobs) {
  // Deterministic order: sort by path up front; every downstream stage
  // (index merge, graph walks, final sort) sees the same sequence no
  // matter how many threads scanned.
  std::vector<const SourceFile*> ordered;
  ordered.reserve(files.size());
  for (const SourceFile& f : files) ordered.push_back(&f);
  std::sort(ordered.begin(), ordered.end(),
            [](const SourceFile* a, const SourceFile* b) { return a->path < b->path; });

  struct Slot {
    std::vector<Finding> findings;
    FileIndex index;
    bool indexed = false;
  };
  std::vector<Slot> slots(ordered.size());

  unsigned n = jobs > 0 ? static_cast<unsigned>(jobs)
                        : std::max(1u, std::thread::hardware_concurrency());
  n = std::min<unsigned>({n, 16u, static_cast<unsigned>(std::max<std::size_t>(
                                      ordered.size(), 1))});

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= ordered.size()) return;
      std::string path = ordered[i]->path;
      std::replace(path.begin(), path.end(), '\\', '/');
      if (!is_source_file_path(path)) continue;  // docs feed R10 only
      slots[i].findings = lint_one(path, ordered[i]->content, config, &slots[i].index);
      slots[i].indexed = true;
    }
  };
  if (n <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Serial merge in path order, then the cross-file pass.
  std::vector<Finding> findings;
  RepoIndex repo;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    findings.insert(findings.end(), std::make_move_iterator(slots[i].findings.begin()),
                    std::make_move_iterator(slots[i].findings.end()));
    if (slots[i].indexed) repo.files.push_back(std::move(slots[i].index));
    std::string path = ordered[i]->path;
    std::replace(path.begin(), path.end(), '\\', '/');
    if (!config.metric_doc_path.empty() && repo.doc_path.empty() &&
        (path == config.metric_doc_path || path.ends_with("/" + config.metric_doc_path))) {
      repo.doc_path = path;
      repo.doc_lines = split_lines(ordered[i]->content);
    }
  }
  const std::vector<Finding> cross = repo_rule_findings(repo, config);
  findings.insert(findings.end(), cross.begin(), cross.end());

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return findings;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Config& config, std::vector<std::string>& errors) {
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        errors.push_back(p + ": " + ec.message());
        continue;
      }
      for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
        const std::string name = it->path().filename().string();
        if (it->is_directory()) {
          const bool excluded =
              name.rfind("build", 0) == 0 ||
              std::find(config.exclude_dirs.begin(), config.exclude_dirs.end(), name) !=
                  config.exclude_dirs.end();
          if (excluded) it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && is_source_file(it->path()))
          files.push_back(it->path().string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      errors.push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      errors.push_back(file + ": unreadable");
      continue;
    }
    sources.push_back({file, std::string((std::istreambuf_iterator<char>(in)),
                                         std::istreambuf_iterator<char>())});
  }
  return lint_repo(sources, config, /*jobs=*/1);
}

std::string format_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& f : findings)
    out << f.path << ':' << f.line << ": " << f.rule << ": " << f.message << '\n';
  return out.str();
}

namespace {
void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}
}  // namespace

std::string format_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"rule\": ";
    json_escape(out, f.rule);
    out << ", \"path\": ";
    json_escape(out, f.path);
    out << ", \"line\": " << f.line << ", \"message\": ";
    json_escape(out, f.message);
    out << '}' << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

std::string rule_catalog() {
  return
      "R0  directive hygiene — malformed tamperlint-allow comments\n"
      "R1  determinism      — no wall-clock/ambient randomness outside "
      "common/sim_clock, common/rng\n"
      "R2  ordered emission — no unordered containers in report/JSON emission "
      "files\n"
      "R3  nothrow path     — no throw/.at()/std::sto* in `// tamperlint: "
      "nothrow-path` functions\n"
      "R4  checked narrowing— no C-style narrowing casts or reinterpret_cast "
      "in src/net/\n"
      "R5  header hygiene   — #pragma once required; `using namespace` "
      "forbidden in headers\n"
      "R6  metric hygiene   — metric/label names snake_case; each metric "
      "family registered once per file\n"
      "R7  layering         — module includes follow the allowed-edge table; "
      "include graph acyclic\n"
      "R8  lock order       — the MutexLock/UniqueLock acquisition graph is "
      "cycle-free (no static deadlock)\n"
      "R9  taxonomy exhaustiveness — switches over Signature/Stage cover every "
      "enumerator (no silent default)\n"
      "R10 metric–doc drift — registered metric families and the DESIGN.md "
      "inventory agree exactly\n"
      "R11 ladder exhaustiveness — switches over control::Level cover every "
      "rung (no silent default)\n"
      "R12 series–metric linkage — series_spec sources resolve to a "
      "registered metric family (no dangling telemetry)\n"
      "R13 strong ID parameters — ID-taxonomy parameter names in src/ "
      "headers use common/ids.h types, never raw ints/strings\n";
}

}  // namespace tamper::lint
