// The gate's workflow files: the finding baseline (tools/tamperlint.baseline)
// that lets a new rule land enforcing only new findings, and the source
// manifest (tools/tamperlint.manifest) that makes file discovery explicit —
// the gate lints exactly the listed files, so build trees and generated
// files can never leak into a scan.
//
// Baseline format, one entry per line, tab-separated (line numbers are
// deliberately absent so unrelated edits don't churn the file):
//
//   <rule>\t<path>\t<message>
//
// `#` starts a comment — every retained entry should carry one explaining
// why the finding is accepted. Manifest format: one repo-relative path per
// line, sorted, `#` comments allowed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.h"

namespace tamper::lint {

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string message;
};

/// Parse baseline text; malformed lines append to `errors` (they never
/// silently accept findings).
[[nodiscard]] std::vector<BaselineEntry> parse_baseline(
    std::string_view text, std::vector<std::string>& errors);

/// Remove findings matched by the baseline (rule+path+message equality;
/// line is ignored). Returns the stale entries that matched nothing — a
/// stale entry means the finding was fixed and the baseline should shrink.
[[nodiscard]] std::vector<BaselineEntry> apply_baseline(
    std::vector<Finding>& findings, const std::vector<BaselineEntry>& baseline);

/// Serialize findings as a baseline file (sorted, deduplicated).
[[nodiscard]] std::string format_baseline(const std::vector<Finding>& findings);

/// Parse a manifest: repo-relative paths, blank lines and `#` comments
/// skipped.
[[nodiscard]] std::vector<std::string> parse_manifest(std::string_view text);

/// Serialize a manifest (sorted, deduplicated, trailing newline).
[[nodiscard]] std::string format_manifest(std::vector<std::string> paths);

/// Walk the standard source directories (src tools tests bench examples)
/// under `root`, honoring Config::exclude_dirs and the always-on `build*`
/// skip. Returns sorted root-relative paths with forward slashes.
[[nodiscard]] std::vector<std::string> walk_sources(const std::string& root,
                                                    const Config& config,
                                                    std::vector<std::string>& errors);

}  // namespace tamper::lint
