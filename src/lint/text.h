// Internal text-analysis helpers shared by the per-file rules (lint.cpp)
// and the repo-index pass (index.cpp). Everything here is pure: string in,
// structure out, no filesystem.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tamper::lint::internal {

[[nodiscard]] bool ident_char(char c) noexcept;

/// Blank out the contents of string/char literals and (unless
/// `keep_comments`) comments, preserving line structure. Token rules run on
/// the everything-stripped form so they never fire on prose or test strings;
/// the directive scanner runs on the comments-kept form, because directives
/// live in comments but must not fire on string literals that merely mention
/// the directive syntax. `keep_strings` preserves string-literal contents
/// instead (metric-name rules read names out of them); all three forms are
/// position-aligned with the source, so structure found in one form can be
/// read out of another.
[[nodiscard]] std::string strip_literals(std::string_view src, bool keep_comments,
                                         bool keep_strings = false);

[[nodiscard]] std::vector<std::string> split_lines(std::string_view text);

/// Position of `word` in `line` at identifier boundaries, or npos.
[[nodiscard]] std::size_t find_word(std::string_view line, std::string_view word,
                                    std::size_t from = 0);

[[nodiscard]] std::string trimmed(std::string_view s);

/// 0-based line number of byte offset `pos` in `text`.
[[nodiscard]] std::size_t line_of(std::string_view text, std::size_t pos);

/// A metric-family registration site: a call like `reg.counter("name", ...)`
/// or `metrics->histogram_family("name", help, {"label"}, ...)`. `pos` is
/// the offset just past the opening quote of the name in the stripped text
/// (positions are shared across the aligned forms).
struct MetricSite {
  std::string name;
  std::size_t line0 = 0;  ///< 0-based line of the name literal
  std::size_t name_pos = 0;
  std::size_t name_end = 0;  ///< offset of the closing quote
  bool family = false;
};

/// All registration sites, in text order. Structure is found in the
/// fully-stripped form; names are read out of the aligned strings-kept form.
/// Names passed as variables cannot be seen and are skipped.
[[nodiscard]] std::vector<MetricSite> metric_sites(std::string_view stripped_text,
                                                   std::string_view strings_text);

/// A timeseries catalog entry: a call to the free function
/// `series_spec("family", "source", ...)`. Only the two leading string
/// literals are read; calls passing variables are skipped.
struct SeriesSite {
  std::string family;
  std::string source;     ///< "agg:<metric>" / "metric:<metric>" by contract
  std::size_t line0 = 0;  ///< 0-based line of the call
};

/// All series_spec call sites, in text order (tamperlint R12 input).
[[nodiscard]] std::vector<SeriesSite> series_sites(std::string_view stripped_text,
                                                   std::string_view strings_text);

}  // namespace tamper::lint::internal
