#include "lint/baseline.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "lint/text.h"

namespace tamper::lint {

namespace {

namespace fs = std::filesystem;

using internal::trimmed;

[[nodiscard]] bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(std::string_view text,
                                          std::vector<std::string>& errors) {
  std::vector<BaselineEntry> entries;
  std::size_t lineno = 0;
  for (const std::string& raw : internal::split_lines(text)) {
    ++lineno;
    const std::string line = trimmed(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 = tab1 == std::string::npos ? std::string::npos
                                                       : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      errors.push_back("baseline line " + std::to_string(lineno) +
                       ": want <rule>\\t<path>\\t<message>");
      continue;
    }
    entries.push_back({line.substr(0, tab1), line.substr(tab1 + 1, tab2 - tab1 - 1),
                       line.substr(tab2 + 1)});
  }
  return entries;
}

std::vector<BaselineEntry> apply_baseline(std::vector<Finding>& findings,
                                          const std::vector<BaselineEntry>& baseline) {
  std::vector<bool> used(baseline.size(), false);
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const BaselineEntry& e = baseline[i];
      if (e.rule == f.rule && e.path == f.path && e.message == f.message) {
        matched = true;
        used[i] = true;
        break;
      }
    }
    if (!matched) kept.push_back(std::move(f));
  }
  findings = std::move(kept);
  std::vector<BaselineEntry> stale;
  for (std::size_t i = 0; i < baseline.size(); ++i)
    if (!used[i]) stale.push_back(baseline[i]);
  return stale;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  for (const Finding& f : findings) {
    std::string msg = f.message;
    std::replace(msg.begin(), msg.end(), '\t', ' ');
    std::replace(msg.begin(), msg.end(), '\n', ' ');
    lines.push_back(f.rule + "\t" + f.path + "\t" + msg);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  std::ostringstream out;
  out << "# tamperlint baseline — accepted pre-existing findings.\n"
      << "# Format: <rule>\\t<path>\\t<message>. Annotate every entry with a\n"
      << "# comment explaining why it is accepted; delete entries as the\n"
      << "# findings are fixed (stale entries are reported on every run).\n";
  for (const std::string& line : lines) out << line << '\n';
  return out.str();
}

std::vector<std::string> parse_manifest(std::string_view text) {
  std::vector<std::string> paths;
  for (const std::string& raw : internal::split_lines(text)) {
    const std::string line = trimmed(raw);
    if (line.empty() || line[0] == '#') continue;
    paths.push_back(line);
  }
  return paths;
}

std::string format_manifest(std::vector<std::string> paths) {
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  std::ostringstream out;
  out << "# tamperlint source manifest — the gate lints exactly these files.\n"
      << "# Regenerate after adding/removing sources:\n"
      << "#   tamperlint --root . --write-manifest=tools/tamperlint.manifest\n";
  for (const std::string& p : paths) out << p << '\n';
  return out.str();
}

std::vector<std::string> walk_sources(const std::string& root, const Config& config,
                                      std::vector<std::string>& errors) {
  std::vector<std::string> out;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, fs::directory_options::skip_permission_denied,
                                        ec);
    if (ec) {
      errors.push_back(dir.string() + ": " + ec.message());
      continue;
    }
    for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory()) {
        const bool excluded =
            name.rfind("build", 0) == 0 ||
            std::find(config.exclude_dirs.begin(), config.exclude_dirs.end(), name) !=
                config.exclude_dirs.end();
        if (excluded) it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !is_source_file(it->path())) continue;
      std::string rel = fs::path(it->path()).lexically_relative(root).generic_string();
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tamper::lint
