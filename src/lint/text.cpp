#include "lint/text.h"

#include <algorithm>
#include <cctype>

namespace tamper::lint::internal {

bool ident_char(char c) noexcept {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

std::string strip_literals(std::string_view src, bool keep_comments,
                           bool keep_strings) {
  std::string out(src.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw } state = State::kCode;
  std::string raw_delim;  // raw-string closing delimiter: ")delim\""
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          if (keep_comments) out[i] = c;
          state = State::kLine;
        } else if (c == '/' && next == '*') {
          if (keep_comments) {
            out[i] = c;
            out[i + 1] = next;
          }
          state = State::kBlock;
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim.clear();
          raw_delim.push_back(')');
          raw_delim.append(src.substr(i + 2, p - (i + 2)));
          raw_delim.push_back('"');
          out[i] = 'R';
          if (i + 1 < src.size()) out[i + 1] = '"';
          i += 1;
          state = State::kRaw;
        } else if (c == '"') {
          out[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out[i] = '\'';
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLine:
        if (keep_comments && c != '\n') out[i] = c;
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlock:
        if (keep_comments && c != '\n') out[i] = c;
        if (c == '*' && next == '/') {
          if (keep_comments && i + 1 < src.size()) out[i + 1] = next;
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (keep_strings) {
            out[i] = c;
            if (i + 1 < src.size() && src[i + 1] != '\n') out[i + 1] = src[i + 1];
          }
          ++i;
          if (i < src.size() && src[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          out[i] = '"';
          state = State::kCode;
        } else if (keep_strings && c != '\n') {
          out[i] = c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::size_t find_word(std::string_view line, std::string_view word, std::size_t from) {
  while (from < line.size()) {
    const std::size_t pos = line.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

std::string trimmed(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::size_t line_of(std::string_view text, std::size_t pos) {
  return static_cast<std::size_t>(
      std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

std::vector<MetricSite> metric_sites(std::string_view stripped_text,
                                     std::string_view strings_text) {
  static constexpr std::string_view kCalls[] = {
      "counter(",        "gauge(",        "histogram(",
      "counter_family(", "gauge_family(", "histogram_family("};
  struct Hit {
    std::size_t pos;  ///< just past the call's `(` in the stripped text
    bool family;
  };
  std::vector<Hit> hits;
  for (const std::string_view token : kCalls) {
    std::size_t from = 0, p = 0;
    while ((p = stripped_text.find(token, from)) != std::string_view::npos) {
      from = p + 1;
      if (p == 0) continue;
      const char before = stripped_text[p - 1];  // `.counter(` or `->counter(`
      if (before != '.' && before != '>') continue;
      hits.push_back({p + token.size(), token.find("_family") != std::string_view::npos});
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.pos < b.pos; });

  std::vector<MetricSite> sites;
  for (const Hit& hit : hits) {
    std::size_t p = hit.pos;
    while (p < stripped_text.size() &&
           std::isspace(static_cast<unsigned char>(stripped_text[p])) != 0)
      ++p;
    if (p >= stripped_text.size() || stripped_text[p] != '"') continue;
    const std::size_t close = stripped_text.find('"', p + 1);
    if (close == std::string_view::npos) continue;
    MetricSite site;
    site.name = std::string(strings_text.substr(p + 1, close - p - 1));
    site.line0 = line_of(stripped_text, p);
    site.name_pos = p + 1;
    site.name_end = close;
    site.family = hit.family;
    sites.push_back(std::move(site));
  }
  return sites;
}

std::vector<SeriesSite> series_sites(std::string_view stripped_text,
                                     std::string_view strings_text) {
  static constexpr std::string_view kCall = "series_spec(";
  std::vector<SeriesSite> sites;
  std::size_t from = 0, p = 0;
  while ((p = stripped_text.find(kCall, from)) != std::string_view::npos) {
    from = p + 1;
    // A free function (possibly namespace-qualified): the preceding char
    // must not be an identifier char, so `my_series_spec(` never matches.
    if (p > 0 && ident_char(stripped_text[p - 1])) continue;
    // Read the two leading quoted literals (family, then source). The
    // stripped form blanks literal contents but keeps the quotes, so the
    // structure scan cannot be fooled by commas or parens inside them.
    std::size_t q = p + kCall.size();
    std::string literals[2];
    bool ok = true;
    for (std::string& out : literals) {
      while (q < stripped_text.size() &&
             (std::isspace(static_cast<unsigned char>(stripped_text[q])) != 0 ||
              stripped_text[q] == ','))
        ++q;
      if (q >= stripped_text.size() || stripped_text[q] != '"') {
        ok = false;  // a variable argument: nothing to check statically
        break;
      }
      const std::size_t close = stripped_text.find('"', q + 1);
      if (close == std::string_view::npos) {
        ok = false;
        break;
      }
      out = std::string(strings_text.substr(q + 1, close - q - 1));
      q = close + 1;
    }
    if (!ok) continue;
    sites.push_back({std::move(literals[0]), std::move(literals[1]), line_of(stripped_text, p)});
  }
  return sites;
}

}  // namespace tamper::lint::internal
