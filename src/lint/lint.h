// tamperlint — repo-specific static checks for libtamper's contracts.
//
// A deliberately small token/line-level linter (no libclang): each rule
// encodes an invariant the paper's reproducibility or the service's
// robustness depends on, with a per-site suppression syntax so exceptions
// are always visible and justified in the diff:
//
//   R1  determinism  — no wall-clock or ambient randomness (time(),
//       std::rand, random_device, chrono::system_clock) outside the
//       sanctioned sources (common/sim_clock, common/rng). All randomness
//       flows from seeds; all time flows from the simulated clock.
//   R2  ordered emission — report/JSON emission files must not touch
//       unordered containers; iteration order would leak into the output
//       and break byte-stable reports.
//   R3  nothrow path — functions marked `// tamperlint: nothrow-path`
//       must not contain throw statements or the classic throwing ops
//       (.at(), std::sto*); the ingest contract is "count and drop",
//       never propagate.
//   R4  checked narrowing — src/net/ parsers must not use C-style
//       narrowing casts or reinterpret_cast (except the char* stream-I/O
//       bridge); narrowing goes through static_cast or binio helpers,
//       where it is explicit and greppable.
//   R5  header hygiene — headers use #pragma once and never
//       `using namespace`.
//   R6  metric hygiene — metric and label names passed to the obs
//       registry (counter/gauge/histogram and their _family forms) are
//       snake_case, and each family is registered at most once per file;
//       duplicated registration means two call sites disagree about help
//       text or buckets sooner or later — register once, share the handle.
//
// Suppression:  // tamperlint-allow(R3): <non-empty reason>
// on the offending line, or alone on the line directly above it. A
// malformed directive (missing reason, unknown rule) is itself reported
// as R0 and suppresses nothing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tamper::lint {

struct Finding {
  std::string rule;     ///< "R0".."R6"
  std::string path;     ///< as given (normalized to forward slashes)
  int line = 0;         ///< 1-based
  std::string message;
};

struct Config {
  /// R1: path fragments whose files may use ambient time/randomness (the
  /// sanctioned sources of both).
  std::vector<std::string> determinism_allowlist = {
      "src/common/sim_clock",
      "src/common/rng",
  };
  /// R2: path fragments of report/JSON emission files.
  std::vector<std::string> emission_paths = {
      "src/analysis/report.",
      "src/common/json.",
      "src/common/table.",
      "src/obs/log.",
      "src/obs/metrics.",
      "src/obs/trace.",
      "src/obs/validate.",
      "tools/tamperscope",
  };
  /// R4: path fragment of the wire-parsing layer.
  std::string net_path = "src/net/";
  /// Rules to run; empty means all.
  std::vector<std::string> rules;
  /// Directory names skipped during tree walks ("build*" is always
  /// skipped).
  std::vector<std::string> exclude_dirs = {".git", "lint_fixtures"};
};

/// Lint one in-memory source file. `path` decides which rules apply.
[[nodiscard]] std::vector<Finding> lint_source(std::string path,
                                               std::string_view content,
                                               const Config& config);

/// Lint files and/or directory trees (recursing, skipping excluded dirs).
/// Unreadable paths append to `errors`.
[[nodiscard]] std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                              const Config& config,
                                              std::vector<std::string>& errors);

/// Human-readable one-line-per-finding form (with suppression hint).
[[nodiscard]] std::string format_text(const std::vector<Finding>& findings);

/// Machine-readable form: a JSON array of finding objects.
[[nodiscard]] std::string format_json(const std::vector<Finding>& findings);

/// The rule catalog (id + one-line summary), for --list-rules.
[[nodiscard]] std::string rule_catalog();

}  // namespace tamper::lint
