// tamperlint — repo-specific static checks for libtamper's contracts.
//
// A deliberately small linter (no libclang) in two passes. Pass A runs
// token/line-level rules over each file independently; pass B builds a
// repo-wide structural index (include graph, enum definitions, switch
// sites, lock-acquisition nestings, metric registrations) and evaluates
// cross-file rules over it. Each rule encodes an invariant the paper's
// reproducibility or the service's robustness depends on, with a per-site
// suppression syntax so exceptions are always visible and justified in the
// diff:
//
//   R1  determinism  — no wall-clock or ambient randomness (time(),
//       std::rand, random_device, chrono::system_clock) outside the
//       sanctioned sources (common/sim_clock, common/rng). All randomness
//       flows from seeds; all time flows from the simulated clock.
//   R2  ordered emission — report/JSON emission files must not touch
//       unordered containers; iteration order would leak into the output
//       and break byte-stable reports.
//   R3  nothrow path — functions marked `// tamperlint: nothrow-path`
//       must not contain throw statements or the classic throwing ops
//       (.at(), std::sto*); the ingest contract is "count and drop",
//       never propagate.
//   R4  checked narrowing — src/net/ parsers must not use C-style
//       narrowing casts or reinterpret_cast (except the char* stream-I/O
//       bridge); narrowing goes through static_cast or binio helpers,
//       where it is explicit and greppable.
//   R5  header hygiene — headers use #pragma once and never
//       `using namespace`.
//   R6  metric hygiene — metric and label names passed to the obs
//       registry (counter/gauge/histogram and their _family forms) are
//       snake_case, and each family is registered at most once per file;
//       duplicated registration means two call sites disagree about help
//       text or buckets sooner or later — register once, share the handle.
//
// Cross-file rules (need the whole file set, evaluated by lint_repo):
//
//   R7  layering — module includes must follow the allowed-edge table in
//       Config::layering (common at the bottom, tools at the top) and the
//       include graph must be acyclic; an upward or sideways include is an
//       architecture regression even when it happens to link.
//   R8  lock order — the static acquisition graph of MutexLock/UniqueLock
//       nestings must be cycle-free across the whole repo; a cycle is a
//       potential deadlock TSan only reports when the interleaving fires.
//   R9  taxonomy exhaustiveness — every switch over the signature/stage
//       taxonomy enums (Config::taxonomy_enums) covers every enumerator;
//       a silent default: swallowing a newly added signature corrupts the
//       measurement, not just the code.
//   R10 metric–doc drift — every metric family registered in src/ or
//       tools/ appears in DESIGN.md's metric inventory table and vice
//       versa, so the documented surface IS the exported surface.
//   R11 ladder exhaustiveness — every switch over the overload-control
//       enums (Config::control_enums, i.e. control::Level) covers every
//       enumerator; a default: that silently maps an unhandled ladder
//       level to "no policy change" would defeat the degradation
//       contract exactly when a new level is added.
//   R12 series–metric linkage — every timeseries catalog entry
//       (`series_spec("family", "source", ...)` call site) names a source
//       of the form "agg:<metric>" or "metric:<metric>" whose metric
//       family is registered somewhere in the scanned prefixes; a dangling
//       source is a series that samples a surface that does not exist.
//   R13 strong ID parameters — a parameter in a src/ header whose name is
//       one of the ID-taxonomy words (Config::id_taxonomy: pop, asn,
//       country, epoch, flow, shard, domain, or their _id forms) must not
//       have a raw int/string type (Config::id_raw_types); the strong
//       types in common/ids.h exist so a swapped (pop, epoch) argument
//       pair is a compile error, not a silently corrupted merge. Wire
//       codecs and other genuine raw-representation boundaries carry
//       per-site suppressions.
//
// Suppression:  // tamperlint-allow(R3): <non-empty reason>
// on the offending line, or alone on the line directly above it. A
// malformed directive (missing reason, unknown rule) is itself reported
// as R0 and suppresses nothing.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tamper::lint {

struct Finding {
  std::string rule;     ///< "R0".."R13"
  std::string path;     ///< as given (normalized to forward slashes)
  int line = 0;         ///< 1-based
  std::string message;
};

struct Config {
  /// R1: path fragments whose files may use ambient time/randomness (the
  /// sanctioned sources of both).
  std::vector<std::string> determinism_allowlist = {
      "src/common/sim_clock",
      "src/common/rng",
  };
  /// R2: path fragments of report/JSON emission files.
  std::vector<std::string> emission_paths = {
      "src/analysis/report.",
      "src/common/json.",
      "src/common/table.",
      "src/obs/log.",
      "src/obs/metrics.",
      "src/obs/timeseries.",
      "src/obs/trace.",
      "src/obs/validate.",
      "tools/tamperscope",
  };
  /// R4: path fragment of the wire-parsing layer.
  std::string net_path = "src/net/";
  /// Rules to run; empty means all.
  std::vector<std::string> rules;
  /// Directory names skipped during tree walks ("build*" is always
  /// skipped).
  std::vector<std::string> exclude_dirs = {".git", "lint_fixtures"};

  /// R7: the allowed-edge table. A file in module M (src/M/..., or the
  /// top-level directory name for tools/tests/bench/examples) may include
  /// its own module plus the listed ones; "*" means anything. Modules not
  /// listed here are unchecked (fixture trees, vendored code).
  std::vector<std::pair<std::string, std::vector<std::string>>> layering = {
      {"common", {}},
      {"lint", {}},
      {"net", {"common"}},
      {"appproto", {"common"}},
      {"obs", {"common"}},
      {"control", {"obs", "common"}},
      {"tcp", {"net", "common"}},
      {"capture", {"net", "common"}},
      {"fault", {"capture", "net", "common"}},
      {"core", {"capture", "net", "common"}},
      {"middlebox", {"tcp", "appproto", "net", "common"}},
      {"world", {"middlebox", "tcp", "appproto", "capture", "net", "common"}},
      {"analysis",
       {"world", "core", "middlebox", "tcp", "appproto", "capture", "obs", "net",
        "common"}},
      {"service",
       {"control", "analysis", "world", "core", "middlebox", "tcp", "appproto",
        "capture", "obs", "net", "common"}},
      {"fleet",
       {"service", "control", "fault", "analysis", "world", "core", "middlebox",
        "tcp", "appproto", "capture", "obs", "net", "common"}},
      {"tools", {"*"}},
      {"tests", {"*"}},
      {"bench", {"*"}},
      {"examples", {"*"}},
  };
  /// R9: enum names whose switches must be exhaustive.
  std::vector<std::string> taxonomy_enums = {"Signature", "Stage"};
  /// R11: overload-control enum names whose switches must be exhaustive
  /// (same machinery as R9, separate rule id so suppressions stay honest).
  std::vector<std::string> control_enums = {"Level"};
  /// R10: path (suffix-matched within the linted file set) of the metric
  /// inventory doc, path prefixes whose registrations must be documented,
  /// and the family-name prefix the inventory covers.
  std::string metric_doc_path = "DESIGN.md";
  std::vector<std::string> metric_scan_prefixes = {"src/", "tools/"};
  std::string metric_prefix = "tamper_";

  /// R13: parameter names (exact word, or "<word>_id") that denote a
  /// pipeline identifier and therefore demand the matching strong type
  /// from common/ids.h.
  std::vector<std::string> id_taxonomy = {"pop",  "asn",   "country", "epoch",
                                          "flow", "shard", "domain"};
  /// R13: the raw core types (cv-qualifiers and &/* stripped) that fire
  /// when paired with an ID-taxonomy parameter name.
  std::vector<std::string> id_raw_types = {
      "int",           "unsigned",      "unsigned int",  "long",
      "unsigned long", "long long",     "unsigned long long",
      "short",         "unsigned short",
      "std::int8_t",   "std::int16_t",  "std::int32_t",  "std::int64_t",
      "std::uint8_t",  "std::uint16_t", "std::uint32_t", "std::uint64_t",
      "int8_t",        "int16_t",       "int32_t",       "int64_t",
      "uint8_t",       "uint16_t",      "uint32_t",      "uint64_t",
      "std::size_t",   "size_t",        "std::string",   "std::string_view",
  };
};

/// One file of the repo, already read into memory.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Lint one in-memory source file (per-file rules R0–R6 only). `path`
/// decides which rules apply.
[[nodiscard]] std::vector<Finding> lint_source(std::string path,
                                               std::string_view content,
                                               const Config& config);

/// Lint a whole file set: per-file rules on every C++ source (in parallel
/// across `jobs` threads; 0 means hardware concurrency) plus the cross-file
/// rules R7–R13 over the merged index. Output is deterministic — sorted by
/// (path, line, rule, message) and byte-identical for every thread count.
/// Non-C++ entries (the metric-inventory doc) contribute only to R10.
[[nodiscard]] std::vector<Finding> lint_repo(const std::vector<SourceFile>& files,
                                             const Config& config, int jobs = 0);

/// Lint files and/or directory trees (recursing, skipping excluded dirs).
/// Unreadable paths append to `errors`. Runs the full rule set via
/// lint_repo over the discovered files.
[[nodiscard]] std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                              const Config& config,
                                              std::vector<std::string>& errors);

/// Human-readable one-line-per-finding form (with suppression hint).
[[nodiscard]] std::string format_text(const std::vector<Finding>& findings);

/// Machine-readable form: a JSON array of finding objects.
[[nodiscard]] std::string format_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 (static-analysis results interchange format), suitable for
/// GitHub code scanning upload. Artifact URIs are the finding paths
/// relative to the repo root (uriBaseId SRCROOT); fingerprints are stable
/// across line drift so re-runs dedupe.
[[nodiscard]] std::string format_sarif(const std::vector<Finding>& findings);

/// The rule catalog (id + one-line summary), for --list-rules.
[[nodiscard]] std::string rule_catalog();

}  // namespace tamper::lint
