#include "lint/index.h"

#include <algorithm>
#include <cctype>

#include "lint/text.h"

namespace tamper::lint {

namespace {

using internal::find_word;
using internal::ident_char;
using internal::line_of;
using internal::trimmed;

[[nodiscard]] std::size_t skip_spaces(std::string_view text, std::size_t p) {
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t' || text[p] == '\n'))
    ++p;
  return p;
}

[[nodiscard]] std::string read_ident(std::string_view text, std::size_t p) {
  std::size_t e = p;
  while (e < text.size() && ident_char(text[e])) ++e;
  return std::string(text.substr(p, e - p));
}

/// Offset just past the matching closer for the opener at `p`, or npos.
[[nodiscard]] std::size_t match(std::string_view text, std::size_t p, char open,
                                char close) {
  int depth = 0;
  for (; p < text.size(); ++p) {
    if (text[p] == open) ++depth;
    else if (text[p] == close && --depth == 0) return p + 1;
  }
  return std::string_view::npos;
}

void extract_includes(const std::vector<std::string>& strings_lines, FileIndex& out) {
  for (std::size_t i = 0; i < strings_lines.size(); ++i) {
    const std::string t = trimmed(strings_lines[i]);
    if (t.empty() || t[0] != '#') continue;
    std::size_t p = 1;
    while (p < t.size() && (t[p] == ' ' || t[p] == '\t')) ++p;
    if (t.compare(p, 7, "include") != 0) continue;
    const std::size_t open = t.find('"', p + 7);
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = t.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.includes.push_back(
        {t.substr(open + 1, close - open - 1), static_cast<int>(i + 1)});
  }
}

void extract_enums(std::string_view stripped, FileIndex& out) {
  std::size_t pos = 0, p = 0;
  while ((p = find_word(stripped, "enum", pos)) != std::string_view::npos) {
    pos = p + 4;
    std::size_t q = skip_spaces(stripped, p + 4);
    for (const std::string_view kw : {"class", "struct"}) {
      if (stripped.compare(q, kw.size(), kw) == 0 && q + kw.size() < stripped.size() &&
          !ident_char(stripped[q + kw.size()]))
        q = skip_spaces(stripped, q + kw.size());
    }
    const std::string name = read_ident(stripped, q);
    if (name.empty()) continue;  // anonymous enum: nothing to switch over by name
    q = skip_spaces(stripped, q + name.size());
    if (q < stripped.size() && stripped[q] == ':') {
      // underlying type; scan forward to the body (or a fwd-decl `;`)
      while (q < stripped.size() && stripped[q] != '{' && stripped[q] != ';') ++q;
    }
    if (q >= stripped.size() || stripped[q] != '{') continue;  // forward declaration
    const std::size_t end = match(stripped, q, '{', '}');
    if (end == std::string_view::npos) continue;
    EnumDef def;
    def.name = name;
    def.line = static_cast<int>(line_of(stripped, p) + 1);
    // Split the body on top-level commas; each part's leading identifier is
    // the enumerator (initializers like `= 1 << 2` follow it).
    std::string_view body = stripped.substr(q + 1, end - q - 2);
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const char c = i < body.size() ? body[i] : ',';
      if (c == '(' || c == '{') ++depth;
      else if (c == ')' || c == '}') --depth;
      else if (c == ',' && depth == 0) {
        const std::string part = trimmed(body.substr(start, i - start));
        start = i + 1;
        if (part.empty()) continue;
        const std::string enumerator = read_ident(part, 0);
        if (!enumerator.empty()) def.enumerators.push_back(enumerator);
      }
    }
    out.enums.push_back(std::move(def));
  }
}

void extract_switches(std::string_view stripped, FileIndex& out) {
  std::size_t pos = 0, p = 0;
  while ((p = find_word(stripped, "switch", pos)) != std::string_view::npos) {
    pos = p + 6;
    std::size_t q = skip_spaces(stripped, p + 6);
    if (q >= stripped.size() || stripped[q] != '(') continue;
    const std::size_t cond_end = match(stripped, q, '(', ')');
    if (cond_end == std::string_view::npos) continue;
    q = skip_spaces(stripped, cond_end);
    if (q >= stripped.size() || stripped[q] != '{') continue;
    const std::size_t end = match(stripped, q, '{', '}');
    if (end == std::string_view::npos) continue;
    const std::string_view body = stripped.substr(q + 1, end - q - 2);

    SwitchSite site;
    site.line = static_cast<int>(line_of(stripped, p) + 1);
    std::size_t bp = 0, c = 0;
    while ((c = find_word(body, "case", bp)) != std::string_view::npos) {
      bp = c + 4;
      // Label runs to the first `:` that is not part of a `::`.
      std::size_t colon = c + 4;
      while (colon < body.size()) {
        if (body[colon] == ':' &&
            (colon + 1 >= body.size() || body[colon + 1] != ':') &&
            (colon == 0 || body[colon - 1] != ':'))
          break;
        ++colon;
      }
      if (colon >= body.size()) break;
      const std::string label = trimmed(body.substr(c + 4, colon - c - 4));
      if (label.empty()) continue;
      CaseLabel parsed;
      const std::size_t sep = label.rfind("::");
      if (sep != std::string::npos) {
        parsed.enumerator = label.substr(sep + 2);
        const std::size_t prev = label.rfind("::", sep - 1);
        parsed.enum_name =
            prev == std::string::npos
                ? trimmed(label.substr(0, sep))
                : label.substr(prev + 2, sep - prev - 2);
      } else {
        parsed.enumerator = label;
      }
      if (!parsed.enumerator.empty() && ident_char(parsed.enumerator[0]))
        site.labels.push_back(std::move(parsed));
    }
    std::size_t d = 0;
    while ((d = find_word(body, "default", d)) != std::string_view::npos) {
      const std::size_t after = skip_spaces(body, d + 7);
      if (after < body.size() && body[after] == ':') {
        site.has_default = true;
        break;
      }
      d += 7;
    }
    out.switches.push_back(std::move(site));
  }
}

/// Lexical scopes for lock tracking. Lambda bodies are separate functions
/// whose execution is deferred, so locks held at the definition site are not
/// ordered before locks the body takes: each lambda starts a fresh context.
struct ScopeFrame {
  char kind;              ///< 'n'amespace, 'c'lass, 'l'ambda, 'b'lock
  std::string cls;        ///< enclosing class name ("" when none)
  std::size_t lock_floor; ///< index into the active-lock stack visible here
};

[[nodiscard]] bool looks_like_lambda(std::string_view stmt) {
  const std::size_t rb = stmt.rfind(']');
  if (rb == std::string_view::npos) return false;
  const std::size_t lb = stmt.rfind('[', rb);
  if (lb == std::string_view::npos) return false;
  for (std::size_t i = lb + 1; i < rb; ++i) {
    const char c = stmt[i];
    if (!(ident_char(c) || c == ' ' || c == '&' || c == '=' || c == ',' ||
          c == '.' || c == '*'))
      return false;
  }
  const std::string tail = trimmed(stmt.substr(rb + 1));
  return tail.empty() || tail[0] == '(';
}

/// Class named by a block-opening statement, or "" when it opens something
/// else. Handles `class X {`, `struct X : Base {`, attribute macros between
/// keyword and name, and out-of-line member definitions `Ret X::f(...)`.
[[nodiscard]] std::string class_of_opener(std::string_view stmt,
                                          const std::string& inherited) {
  if (find_word(stmt, "namespace") != std::string_view::npos) return "";
  const bool is_class = find_word(stmt, "class") != std::string_view::npos ||
                        find_word(stmt, "struct") != std::string_view::npos;
  if (is_class && find_word(stmt, "enum") == std::string_view::npos) {
    // Name is the last identifier before the base-clause `:` (if any).
    std::string_view head = stmt;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (stmt[i] == ':' && (i + 1 >= stmt.size() || stmt[i + 1] != ':') &&
          (i == 0 || stmt[i - 1] != ':')) {
        head = stmt.substr(0, i);
        break;
      }
    }
    std::string last, prev;
    for (std::size_t i = 0; i < head.size();) {
      if (ident_char(head[i])) {
        std::size_t e = i;
        while (e < head.size() && ident_char(head[e])) ++e;
        prev = last;
        last = std::string(head.substr(i, e - i));
        i = e;
      } else {
        ++i;
      }
    }
    if (last == "final") last = prev;
    if (!last.empty() && !(last[0] >= '0' && last[0] <= '9')) return last;
    return inherited;
  }
  // Out-of-line member definition: `... Class::method(...)`.
  std::size_t p = 0;
  while ((p = stmt.find("::", p)) != std::string_view::npos) {
    std::size_t b = p;
    while (b > 0 && ident_char(stmt[b - 1])) --b;
    std::size_t e = p + 2;
    std::string member = read_ident(stmt, e);
    std::size_t after = skip_spaces(stmt, e + member.size());
    if (b < p && !member.empty() && after < stmt.size() && stmt[after] == '(')
      return std::string(stmt.substr(b, p - b));
    p += 2;
  }
  return inherited;
}

void extract_lock_nestings(std::string_view stripped, FileIndex& out) {
  struct ActiveLock {
    std::size_t depth;
    std::string node;
  };
  std::vector<ScopeFrame> scopes;
  std::vector<ActiveLock> locks;
  std::size_t stmt_start = 0;

  const auto current_cls = [&]() -> std::string {
    return scopes.empty() ? "" : scopes.back().cls;
  };
  const auto current_floor = [&]() -> std::size_t {
    return scopes.empty() ? 0 : scopes.back().lock_floor;
  };

  const auto scan_locks = [&](std::string_view stmt, std::size_t stmt_off) {
    for (const std::string_view kw : {"MutexLock", "UniqueLock"}) {
      std::size_t from = 0, w = 0;
      while ((w = find_word(stmt, kw, from)) != std::string_view::npos) {
        from = w + kw.size();
        std::size_t p = skip_spaces(stmt, w + kw.size());
        const std::string var = read_ident(stmt, p);
        if (var.empty()) continue;  // `MutexLock(` — a declaration, not a site
        p = skip_spaces(stmt, p + var.size());
        if (p >= stmt.size() || stmt[p] != '(') continue;
        const std::size_t close = match(stmt, p, '(', ')');
        if (close == std::string_view::npos) continue;
        const std::string expr = trimmed(stmt.substr(p + 1, close - p - 2));
        if (expr.empty() || expr.find("Mutex") != std::string::npos) continue;
        const bool bare =
            std::all_of(expr.begin(), expr.end(), [](char c) { return ident_char(c); });
        const std::string cls = current_cls();
        const std::string node = bare && !cls.empty() ? cls + "::" + expr : expr;
        const int line = static_cast<int>(line_of(stripped, stmt_off + w) + 1);
        for (std::size_t i = current_floor(); i < locks.size(); ++i)
          out.lock_nestings.push_back({locks[i].node, node, line});
        locks.push_back({scopes.size(), node});
      }
    }
  };

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == ';') {
      scan_locks(stripped.substr(stmt_start, i - stmt_start), stmt_start);
      stmt_start = i + 1;
    } else if (c == '{') {
      const std::string stmt(
          trimmed(stripped.substr(stmt_start, i - stmt_start)));
      ScopeFrame frame;
      if (looks_like_lambda(stmt)) {
        frame = {'l', current_cls(), locks.size()};
      } else if (find_word(stmt, "namespace") != std::string_view::npos) {
        frame = {'n', "", current_floor()};
      } else {
        frame = {'b', class_of_opener(stmt, current_cls()), current_floor()};
      }
      scopes.push_back(std::move(frame));
      stmt_start = i + 1;
    } else if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      while (!locks.empty() && locks.back().depth > scopes.size()) locks.pop_back();
      stmt_start = i + 1;
    }
  }
}

[[nodiscard]] bool keyword_before_paren(const std::string& name) {
  static constexpr std::string_view kKeywords[] = {
      "if",       "for",      "while",    "switch",        "catch",
      "return",   "sizeof",   "alignof",  "alignas",       "decltype",
      "noexcept", "operator", "new",      "static_assert", "delete",
      "throw",    "typeid",   "assert",   "defined",       "co_await",
      "co_return", "co_yield", "requires"};
  return std::find(std::begin(kKeywords), std::end(kKeywords), name) !=
         std::end(kKeywords);
}

[[nodiscard]] bool type_keyword(std::string_view tok) {
  static constexpr std::string_view kTypes[] = {
      "const", "volatile", "unsigned", "signed", "int",  "long",
      "short", "char",     "bool",     "float",  "double", "void",
      "auto",  "struct",   "class",    "enum",   "typename"};
  return std::find(std::begin(kTypes), std::end(kTypes), tok) != std::end(kTypes);
}

[[nodiscard]] std::string collapse_ws(std::string_view text) {
  std::string out;
  bool in_space = false;
  for (char c : text) {
    const bool space = c == ' ' || c == '\t' || c == '\n';
    if (space) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

/// Split a parameter list on top-level commas. Tracks (), {}, [] and <>
/// depth; `<` adjacent to another `<`, `=` or after `-` is a shift/compare/
/// arrow, not a template bracket (declaration contexts make this reliable).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_params(
    std::string_view body) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  int depth = 0, angle = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    const char c = i < body.size() ? body[i] : ',';
    const char prev = i > 0 ? body[i - 1] : '\0';
    const char next = i + 1 < body.size() ? body[i + 1] : '\0';
    if (c == '(' || c == '{' || c == '[') ++depth;
    else if (c == ')' || c == '}' || c == ']') --depth;
    else if (c == '<' && prev != '<' && next != '<' && next != '=') ++angle;
    else if (c == '>' && prev != '-' && next != '=' && angle > 0) --angle;
    else if (c == ',' && depth == 0 && angle == 0) {
      parts.emplace_back(start, i);
      start = i + 1;
    }
  }
  return parts;
}

/// Exported function declarations — headers only (index_file gates on the
/// extension). The scan is token-level: a candidate is `name(...)` followed
/// by a declaration tail (`;`, `{`, `const`, `noexcept`, `override`, `->`,
/// an attribute macro, ...), and survives only if every parameter is
/// declaration-shaped (a type followed by a name, a type-like single token,
/// `void`, or `...`). Call expressions fail the parameter test — their
/// arguments are plain identifiers, literals, or member accesses — so
/// inline member-function bodies do not pollute the index.
void extract_function_decls(std::string_view stripped, FileIndex& out) {
  for (std::size_t p = 0; p < stripped.size(); ++p) {
    if (stripped[p] != '(') continue;
    std::size_t e = p;
    while (e > 0 && (stripped[e - 1] == ' ' || stripped[e - 1] == '\t' ||
                     stripped[e - 1] == '\n'))
      --e;
    if (e == 0 || !ident_char(stripped[e - 1])) continue;
    std::size_t b = e;
    while (b > 0 && ident_char(stripped[b - 1])) --b;
    const std::string name(stripped.substr(b, e - b));
    if (name[0] >= '0' && name[0] <= '9') continue;
    if (keyword_before_paren(name)) continue;
    // `x.f(` / `p->f(` are member calls, never declarations.
    if (b > 0 && (stripped[b - 1] == '.' || stripped[b - 1] == '>')) continue;
    const std::size_t close = match(stripped, p, '(', ')');
    if (close == std::string_view::npos) continue;

    const std::size_t q = skip_spaces(stripped, close);
    bool tail_ok = false;
    if (q < stripped.size()) {
      const char t = stripped[q];
      if (t == ';' || t == '{' || t == ':' || t == '=') {
        tail_ok = true;
      } else if (t == '-' && q + 1 < stripped.size() && stripped[q + 1] == '>') {
        tail_ok = true;
      } else {
        const std::string kw = read_ident(stripped, q);
        tail_ok = kw == "const" || kw == "noexcept" || kw == "override" ||
                  kw == "final" ||
                  (!kw.empty() && std::all_of(kw.begin(), kw.end(), [](char c) {
                    return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
                  }));  // attribute macros (TAMPER_EXCLUDES, ...)
      }
    }
    if (!tail_ok) continue;

    const std::string_view body = stripped.substr(p + 1, close - p - 2);
    FunctionDecl decl;
    decl.name = name;
    decl.line = static_cast<int>(line_of(stripped, b) + 1);
    bool decl_like = true;
    for (const auto& [ps, pe] : split_params(body)) {
      std::string_view part = body.substr(ps, pe - ps);
      // Strip a default argument: the first top-level `=` that is not part
      // of a two-character operator ends the declarator.
      int depth = 0;
      for (std::size_t i = 0; i < part.size(); ++i) {
        const char c = part[i];
        if (c == '(' || c == '{' || c == '[' || c == '<') ++depth;
        else if (c == ')' || c == '}' || c == ']' || c == '>') --depth;
        else if (c == '=' && depth == 0 && (i + 1 >= part.size() || part[i + 1] != '=') &&
                 (i == 0 || (part[i - 1] != '=' && part[i - 1] != '!' &&
                             part[i - 1] != '<' && part[i - 1] != '>'))) {
          part = part.substr(0, i);
          break;
        }
      }
      const std::string text = trimmed(part);
      if (text.empty()) {
        if (body.find(',') != std::string_view::npos) decl_like = false;
        continue;  // `()` — a zero-parameter declaration
      }
      if (text == "void" || text == "...") continue;
      if (text.find('"') != std::string::npos || text.find("->") != std::string::npos ||
          (text[0] >= '0' && text[0] <= '9')) {
        decl_like = false;  // literal or member-access argument: a call
        break;
      }
      // Trailing identifier = the parameter name (if declaration-shaped).
      std::size_t ne = text.size();
      std::size_t nb = ne;
      while (nb > 0 && ident_char(text[nb - 1])) --nb;
      const std::string tail_ident = text.substr(nb, ne - nb);
      const std::string head = trimmed(text.substr(0, nb));
      const bool named = !tail_ident.empty() && !type_keyword(tail_ident) &&
                         !(tail_ident[0] >= '0' && tail_ident[0] <= '9') && !head.empty();
      if (text.find('.') != std::string::npos) {
        decl_like = false;  // member access (".." already excluded above)
        break;
      }
      if (text.find('(') != std::string::npos) {
        // Function-typed parameters (std::function<...> cb) are fine; a
        // nested call (`g(x)`, `static_cast<T>(x)`) has no trailing name.
        if (!named || text.find('<') == std::string::npos) {
          decl_like = false;
          break;
        }
      }
      if (!named) {
        // Single token: must be type-like to be an unnamed parameter.
        const std::string tok = head.empty() ? tail_ident : collapse_ws(text);
        const bool type_like =
            type_keyword(tok) || tok.find("::") != std::string::npos ||
            tok.find('<') != std::string::npos ||
            (!tok.empty() && (tok.back() == '&' || tok.back() == '*')) ||
            (tok.size() > 2 && tok.compare(tok.size() - 2, 2, "_t") == 0);
        if (!type_like) {
          decl_like = false;  // plain identifier: a call argument
          break;
        }
        decl.params.push_back(
            {collapse_ws(text), "",
             static_cast<int>(line_of(stripped, p + 1 + ps) + 1)});
        continue;
      }
      std::size_t name_off = p + 1 + ps + nb;
      decl.params.push_back({collapse_ws(head), tail_ident,
                             static_cast<int>(line_of(stripped, name_off) + 1)});
    }
    if (decl_like) out.functions.push_back(std::move(decl));
  }
}

}  // namespace

FileIndex index_file(const std::string& path, std::string_view stripped_text,
                     std::string_view strings_text) {
  FileIndex out;
  out.path = path;
  extract_includes(internal::split_lines(strings_text), out);
  extract_enums(stripped_text, out);
  extract_switches(stripped_text, out);
  extract_lock_nestings(stripped_text, out);
  for (const auto& site : internal::metric_sites(stripped_text, strings_text))
    out.metrics.push_back({site.name, static_cast<int>(site.line0 + 1)});
  for (auto& site : internal::series_sites(stripped_text, strings_text))
    out.series.push_back({std::move(site.family), std::move(site.source),
                          static_cast<int>(site.line0 + 1)});
  // Function signatures matter only where other modules can see them.
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".h" || ext == ".hpp") extract_function_decls(stripped_text, out);
  return out;
}

}  // namespace tamper::lint
