#include "lint/index.h"

#include <algorithm>
#include <cctype>

#include "lint/text.h"

namespace tamper::lint {

namespace {

using internal::find_word;
using internal::ident_char;
using internal::line_of;
using internal::trimmed;

[[nodiscard]] std::size_t skip_spaces(std::string_view text, std::size_t p) {
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t' || text[p] == '\n'))
    ++p;
  return p;
}

[[nodiscard]] std::string read_ident(std::string_view text, std::size_t p) {
  std::size_t e = p;
  while (e < text.size() && ident_char(text[e])) ++e;
  return std::string(text.substr(p, e - p));
}

/// Offset just past the matching closer for the opener at `p`, or npos.
[[nodiscard]] std::size_t match(std::string_view text, std::size_t p, char open,
                                char close) {
  int depth = 0;
  for (; p < text.size(); ++p) {
    if (text[p] == open) ++depth;
    else if (text[p] == close && --depth == 0) return p + 1;
  }
  return std::string_view::npos;
}

void extract_includes(const std::vector<std::string>& strings_lines, FileIndex& out) {
  for (std::size_t i = 0; i < strings_lines.size(); ++i) {
    const std::string t = trimmed(strings_lines[i]);
    if (t.empty() || t[0] != '#') continue;
    std::size_t p = 1;
    while (p < t.size() && (t[p] == ' ' || t[p] == '\t')) ++p;
    if (t.compare(p, 7, "include") != 0) continue;
    const std::size_t open = t.find('"', p + 7);
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = t.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.includes.push_back(
        {t.substr(open + 1, close - open - 1), static_cast<int>(i + 1)});
  }
}

void extract_enums(std::string_view stripped, FileIndex& out) {
  std::size_t pos = 0, p = 0;
  while ((p = find_word(stripped, "enum", pos)) != std::string_view::npos) {
    pos = p + 4;
    std::size_t q = skip_spaces(stripped, p + 4);
    for (const std::string_view kw : {"class", "struct"}) {
      if (stripped.compare(q, kw.size(), kw) == 0 && q + kw.size() < stripped.size() &&
          !ident_char(stripped[q + kw.size()]))
        q = skip_spaces(stripped, q + kw.size());
    }
    const std::string name = read_ident(stripped, q);
    if (name.empty()) continue;  // anonymous enum: nothing to switch over by name
    q = skip_spaces(stripped, q + name.size());
    if (q < stripped.size() && stripped[q] == ':') {
      // underlying type; scan forward to the body (or a fwd-decl `;`)
      while (q < stripped.size() && stripped[q] != '{' && stripped[q] != ';') ++q;
    }
    if (q >= stripped.size() || stripped[q] != '{') continue;  // forward declaration
    const std::size_t end = match(stripped, q, '{', '}');
    if (end == std::string_view::npos) continue;
    EnumDef def;
    def.name = name;
    def.line = static_cast<int>(line_of(stripped, p) + 1);
    // Split the body on top-level commas; each part's leading identifier is
    // the enumerator (initializers like `= 1 << 2` follow it).
    std::string_view body = stripped.substr(q + 1, end - q - 2);
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const char c = i < body.size() ? body[i] : ',';
      if (c == '(' || c == '{') ++depth;
      else if (c == ')' || c == '}') --depth;
      else if (c == ',' && depth == 0) {
        const std::string part = trimmed(body.substr(start, i - start));
        start = i + 1;
        if (part.empty()) continue;
        const std::string enumerator = read_ident(part, 0);
        if (!enumerator.empty()) def.enumerators.push_back(enumerator);
      }
    }
    out.enums.push_back(std::move(def));
  }
}

void extract_switches(std::string_view stripped, FileIndex& out) {
  std::size_t pos = 0, p = 0;
  while ((p = find_word(stripped, "switch", pos)) != std::string_view::npos) {
    pos = p + 6;
    std::size_t q = skip_spaces(stripped, p + 6);
    if (q >= stripped.size() || stripped[q] != '(') continue;
    const std::size_t cond_end = match(stripped, q, '(', ')');
    if (cond_end == std::string_view::npos) continue;
    q = skip_spaces(stripped, cond_end);
    if (q >= stripped.size() || stripped[q] != '{') continue;
    const std::size_t end = match(stripped, q, '{', '}');
    if (end == std::string_view::npos) continue;
    const std::string_view body = stripped.substr(q + 1, end - q - 2);

    SwitchSite site;
    site.line = static_cast<int>(line_of(stripped, p) + 1);
    std::size_t bp = 0, c = 0;
    while ((c = find_word(body, "case", bp)) != std::string_view::npos) {
      bp = c + 4;
      // Label runs to the first `:` that is not part of a `::`.
      std::size_t colon = c + 4;
      while (colon < body.size()) {
        if (body[colon] == ':' &&
            (colon + 1 >= body.size() || body[colon + 1] != ':') &&
            (colon == 0 || body[colon - 1] != ':'))
          break;
        ++colon;
      }
      if (colon >= body.size()) break;
      const std::string label = trimmed(body.substr(c + 4, colon - c - 4));
      if (label.empty()) continue;
      CaseLabel parsed;
      const std::size_t sep = label.rfind("::");
      if (sep != std::string::npos) {
        parsed.enumerator = label.substr(sep + 2);
        const std::size_t prev = label.rfind("::", sep - 1);
        parsed.enum_name =
            prev == std::string::npos
                ? trimmed(label.substr(0, sep))
                : label.substr(prev + 2, sep - prev - 2);
      } else {
        parsed.enumerator = label;
      }
      if (!parsed.enumerator.empty() && ident_char(parsed.enumerator[0]))
        site.labels.push_back(std::move(parsed));
    }
    std::size_t d = 0;
    while ((d = find_word(body, "default", d)) != std::string_view::npos) {
      const std::size_t after = skip_spaces(body, d + 7);
      if (after < body.size() && body[after] == ':') {
        site.has_default = true;
        break;
      }
      d += 7;
    }
    out.switches.push_back(std::move(site));
  }
}

/// Lexical scopes for lock tracking. Lambda bodies are separate functions
/// whose execution is deferred, so locks held at the definition site are not
/// ordered before locks the body takes: each lambda starts a fresh context.
struct ScopeFrame {
  char kind;              ///< 'n'amespace, 'c'lass, 'l'ambda, 'b'lock
  std::string cls;        ///< enclosing class name ("" when none)
  std::size_t lock_floor; ///< index into the active-lock stack visible here
};

[[nodiscard]] bool looks_like_lambda(std::string_view stmt) {
  const std::size_t rb = stmt.rfind(']');
  if (rb == std::string_view::npos) return false;
  const std::size_t lb = stmt.rfind('[', rb);
  if (lb == std::string_view::npos) return false;
  for (std::size_t i = lb + 1; i < rb; ++i) {
    const char c = stmt[i];
    if (!(ident_char(c) || c == ' ' || c == '&' || c == '=' || c == ',' ||
          c == '.' || c == '*'))
      return false;
  }
  const std::string tail = trimmed(stmt.substr(rb + 1));
  return tail.empty() || tail[0] == '(';
}

/// Class named by a block-opening statement, or "" when it opens something
/// else. Handles `class X {`, `struct X : Base {`, attribute macros between
/// keyword and name, and out-of-line member definitions `Ret X::f(...)`.
[[nodiscard]] std::string class_of_opener(std::string_view stmt,
                                          const std::string& inherited) {
  if (find_word(stmt, "namespace") != std::string_view::npos) return "";
  const bool is_class = find_word(stmt, "class") != std::string_view::npos ||
                        find_word(stmt, "struct") != std::string_view::npos;
  if (is_class && find_word(stmt, "enum") == std::string_view::npos) {
    // Name is the last identifier before the base-clause `:` (if any).
    std::string_view head = stmt;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (stmt[i] == ':' && (i + 1 >= stmt.size() || stmt[i + 1] != ':') &&
          (i == 0 || stmt[i - 1] != ':')) {
        head = stmt.substr(0, i);
        break;
      }
    }
    std::string last, prev;
    for (std::size_t i = 0; i < head.size();) {
      if (ident_char(head[i])) {
        std::size_t e = i;
        while (e < head.size() && ident_char(head[e])) ++e;
        prev = last;
        last = std::string(head.substr(i, e - i));
        i = e;
      } else {
        ++i;
      }
    }
    if (last == "final") last = prev;
    if (!last.empty() && !(last[0] >= '0' && last[0] <= '9')) return last;
    return inherited;
  }
  // Out-of-line member definition: `... Class::method(...)`.
  std::size_t p = 0;
  while ((p = stmt.find("::", p)) != std::string_view::npos) {
    std::size_t b = p;
    while (b > 0 && ident_char(stmt[b - 1])) --b;
    std::size_t e = p + 2;
    std::string member = read_ident(stmt, e);
    std::size_t after = skip_spaces(stmt, e + member.size());
    if (b < p && !member.empty() && after < stmt.size() && stmt[after] == '(')
      return std::string(stmt.substr(b, p - b));
    p += 2;
  }
  return inherited;
}

void extract_lock_nestings(std::string_view stripped, FileIndex& out) {
  struct ActiveLock {
    std::size_t depth;
    std::string node;
  };
  std::vector<ScopeFrame> scopes;
  std::vector<ActiveLock> locks;
  std::size_t stmt_start = 0;

  const auto current_cls = [&]() -> std::string {
    return scopes.empty() ? "" : scopes.back().cls;
  };
  const auto current_floor = [&]() -> std::size_t {
    return scopes.empty() ? 0 : scopes.back().lock_floor;
  };

  const auto scan_locks = [&](std::string_view stmt, std::size_t stmt_off) {
    for (const std::string_view kw : {"MutexLock", "UniqueLock"}) {
      std::size_t from = 0, w = 0;
      while ((w = find_word(stmt, kw, from)) != std::string_view::npos) {
        from = w + kw.size();
        std::size_t p = skip_spaces(stmt, w + kw.size());
        const std::string var = read_ident(stmt, p);
        if (var.empty()) continue;  // `MutexLock(` — a declaration, not a site
        p = skip_spaces(stmt, p + var.size());
        if (p >= stmt.size() || stmt[p] != '(') continue;
        const std::size_t close = match(stmt, p, '(', ')');
        if (close == std::string_view::npos) continue;
        const std::string expr = trimmed(stmt.substr(p + 1, close - p - 2));
        if (expr.empty() || expr.find("Mutex") != std::string::npos) continue;
        const bool bare =
            std::all_of(expr.begin(), expr.end(), [](char c) { return ident_char(c); });
        const std::string cls = current_cls();
        const std::string node = bare && !cls.empty() ? cls + "::" + expr : expr;
        const int line = static_cast<int>(line_of(stripped, stmt_off + w) + 1);
        for (std::size_t i = current_floor(); i < locks.size(); ++i)
          out.lock_nestings.push_back({locks[i].node, node, line});
        locks.push_back({scopes.size(), node});
      }
    }
  };

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == ';') {
      scan_locks(stripped.substr(stmt_start, i - stmt_start), stmt_start);
      stmt_start = i + 1;
    } else if (c == '{') {
      const std::string stmt(
          trimmed(stripped.substr(stmt_start, i - stmt_start)));
      ScopeFrame frame;
      if (looks_like_lambda(stmt)) {
        frame = {'l', current_cls(), locks.size()};
      } else if (find_word(stmt, "namespace") != std::string_view::npos) {
        frame = {'n', "", current_floor()};
      } else {
        frame = {'b', class_of_opener(stmt, current_cls()), current_floor()};
      }
      scopes.push_back(std::move(frame));
      stmt_start = i + 1;
    } else if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      while (!locks.empty() && locks.back().depth > scopes.size()) locks.pop_back();
      stmt_start = i + 1;
    }
  }
}

}  // namespace

FileIndex index_file(const std::string& path, std::string_view stripped_text,
                     std::string_view strings_text) {
  FileIndex out;
  out.path = path;
  extract_includes(internal::split_lines(strings_text), out);
  extract_enums(stripped_text, out);
  extract_switches(stripped_text, out);
  extract_lock_nestings(stripped_text, out);
  for (const auto& site : internal::metric_sites(stripped_text, strings_text))
    out.metrics.push_back({site.name, static_cast<int>(site.line0 + 1)});
  for (auto& site : internal::series_sites(stripped_text, strings_text))
    out.series.push_back({std::move(site.family), std::move(site.source),
                          static_cast<int>(site.line0 + 1)});
  return out;
}

}  // namespace tamper::lint
