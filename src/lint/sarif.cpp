// SARIF 2.1.0 emission. One run, one driver ("tamperlint"), the full rule
// catalog in tool.driver.rules, one result per finding with a line-drift-
// stable partial fingerprint so GitHub code scanning dedupes across pushes.
#include <algorithm>
#include <cstdint>
#include <sstream>

#include "lint/lint.h"

namespace tamper::lint {

namespace {

struct RuleMeta {
  const char* id;
  const char* name;
  const char* summary;
};

// Kept in catalog order; ruleIndex in each result points into this table.
constexpr RuleMeta kRules[] = {
    {"R0", "DirectiveHygiene", "Malformed tamperlint-allow suppression directive"},
    {"R1", "Determinism",
     "No wall-clock or ambient randomness outside common/sim_clock and common/rng"},
    {"R2", "OrderedEmission",
     "No unordered containers in report/JSON emission files"},
    {"R3", "NothrowPath",
     "No throw/.at()/std::sto* inside `// tamperlint: nothrow-path` functions"},
    {"R4", "CheckedNarrowing",
     "No C-style narrowing casts or reinterpret_cast in src/net/"},
    {"R5", "HeaderHygiene",
     "Headers use #pragma once and never `using namespace`"},
    {"R6", "MetricHygiene",
     "Metric/label names are snake_case; each family registered once per file"},
    {"R7", "Layering",
     "Module includes follow the allowed-edge table; the include graph is acyclic"},
    {"R8", "LockOrder",
     "The static mutex acquisition-order graph is cycle-free (no potential deadlock)"},
    {"R9", "TaxonomyExhaustiveness",
     "Switches over the signature/stage taxonomy enums cover every enumerator"},
    {"R10", "MetricDocDrift",
     "Registered metric families and the DESIGN.md inventory agree exactly"},
    {"R11", "LadderExhaustiveness",
     "Switches over the overload-control ladder enums cover every enumerator"},
    {"R12", "SeriesMetricLinkage",
     "series_spec catalog sources resolve to a registered metric family"},
    {"R13", "StrongIdParameters",
     "ID-taxonomy parameter names in src/ headers use common/ids.h strong types"},
};

void json_escape(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

[[nodiscard]] int rule_index(const std::string& id) {
  for (std::size_t i = 0; i < std::size(kRules); ++i)
    if (id == kRules[i].id) return static_cast<int>(i);
  return -1;
}

/// FNV-1a over rule|path|message: stable across runs and across the line
/// drift that plain line-keyed results would churn on.
[[nodiscard]] std::string fingerprint(const Finding& f) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= '|';
    h *= 1099511628211ull;
  };
  mix(f.rule);
  mix(f.path);
  mix(f.message);
  std::ostringstream out;
  out << std::hex << h;
  return out.str();
}

[[nodiscard]] std::string clean_uri(const std::string& path) {
  std::string uri = path;
  std::replace(uri.begin(), uri.end(), '\\', '/');
  while (uri.rfind("./", 0) == 0) uri = uri.substr(2);
  return uri;
}

}  // namespace

std::string format_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"tamperlint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/libtamper/libtamper/blob/main/DESIGN.md\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < std::size(kRules); ++i) {
    const RuleMeta& rule = kRules[i];
    out << "            {\"id\": \"" << rule.id << "\", \"name\": \"" << rule.name
        << "\", \"shortDescription\": {\"text\": ";
    json_escape(out, rule.summary);
    out << "}, \"defaultConfiguration\": {\"level\": \"error\"}}"
        << (i + 1 < std::size(kRules) ? "," : "") << '\n';
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"columnKind\": \"utf16CodeUnits\",\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\"ruleId\": \"" << f.rule << "\"";
    const int idx = rule_index(f.rule);
    if (idx >= 0) out << ", \"ruleIndex\": " << idx;
    out << ", \"level\": \"error\", \"message\": {\"text\": ";
    json_escape(out, f.message);
    out << "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": ";
    json_escape(out, clean_uri(f.path));
    out << ", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}], \"partialFingerprints\": "
        << "{\"tamperlint/v1\": \"" << fingerprint(f) << "\"}}"
        << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace tamper::lint
