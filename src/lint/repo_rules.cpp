// Pass 2: the cross-file rules R7–R13, evaluated over the merged RepoIndex.
// Everything here is deterministic by construction: files arrive sorted by
// path, graph nodes are visited in sorted order, and every finding anchors
// at the first (path, line) site that exhibits the problem.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "lint/index.h"
#include "lint/lint.h"
#include "lint/text.h"

namespace tamper::lint {

namespace {

using internal::trimmed;

[[nodiscard]] bool rule_enabled(const Config& config, std::string_view id) {
  if (config.rules.empty()) return true;
  return std::find(config.rules.begin(), config.rules.end(), id) != config.rules.end();
}

[[nodiscard]] bool suppressed_at(const FileIndex& file, int line,
                                 std::string_view rule) {
  const std::size_t line0 = line > 0 ? static_cast<std::size_t>(line - 1) : 0;
  if (line0 >= file.suppressed.size()) return false;
  const auto& rules = file.suppressed[line0];
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

/// Module of a repo-relative path: "src/<m>/..." → m, otherwise the first
/// path component ("tools", "tests", ...).
[[nodiscard]] std::string module_of(const std::string& path) {
  std::vector<std::string> comps;
  std::size_t start = 0;
  while (start < path.size()) {
    const std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      comps.push_back(path.substr(start));
      break;
    }
    comps.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  if (comps.size() >= 3 && comps[0] == "src") return comps[1];
  return comps.empty() ? "" : comps[0];
}

[[nodiscard]] const std::vector<std::string>* allowed_includes(const Config& config,
                                                               const std::string& mod) {
  for (const auto& [name, allowed] : config.layering)
    if (name == mod) return &allowed;
  return nullptr;
}

/// Deterministic strongly-connected components (Tarjan, iterative) over a
/// graph given as sorted node names + sorted adjacency. Returns the SCCs
/// that contain a cycle (size > 1, or a self-loop), each sorted, in
/// ascending order of their smallest member.
[[nodiscard]] std::vector<std::vector<std::string>> cyclic_sccs(
    const std::map<std::string, std::set<std::string>>& graph) {
  std::map<std::string, int> index, lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int next_index = 0;

  struct Frame {
    const std::string* node;
    std::set<std::string>::const_iterator it;
  };
  for (const auto& [root, unused_] : graph) {
    (void)unused_;
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames;
    const auto push_node = [&](const std::string& n) {
      index[n] = lowlink[n] = next_index++;
      stack.push_back(n);
      on_stack.insert(n);
      frames.push_back({&graph.find(n)->first, graph.find(n)->second.begin()});
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::string& n = *f.node;
      const auto& adj = graph.find(n)->second;
      if (f.it != adj.end()) {
        const std::string& succ = *f.it;
        ++f.it;
        if (graph.count(succ) == 0) continue;  // edge out of the file set
        if (index.count(succ) == 0) {
          push_node(succ);
        } else if (on_stack.count(succ) != 0) {
          lowlink[n] = std::min(lowlink[n], index[succ]);
        }
      } else {
        if (lowlink[n] == index[n]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string m = stack.back();
            stack.pop_back();
            on_stack.erase(m);
            scc.push_back(m);
            if (m == n) break;
          }
          std::sort(scc.begin(), scc.end());
          const bool self_loop =
              scc.size() == 1 && graph.find(scc[0])->second.count(scc[0]) != 0;
          if (scc.size() > 1 || self_loop) sccs.push_back(std::move(scc));
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          lowlink[*parent.node] = std::min(lowlink[*parent.node], lowlink[n]);
        }
      }
    }
  }
  std::sort(sccs.begin(), sccs.end());
  return sccs;
}

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep, std::size_t limit = 0) {
  std::ostringstream out;
  const std::size_t n =
      limit != 0 && parts.size() > limit ? limit : parts.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out << sep;
    out << parts[i];
  }
  if (n < parts.size()) out << sep << "… +" << parts.size() - n << " more";
  return out.str();
}

// ---------------------------------------------------------------- R7

void rule_layering(const RepoIndex& index, const Config& config,
                   std::vector<Finding>& out) {
  std::set<std::string> known_modules;
  for (const auto& [name, allowed] : config.layering) {
    (void)allowed;
    known_modules.insert(name);
  }
  std::set<std::string> paths;
  for (const FileIndex& file : index.files) paths.insert(file.path);

  // Edge check against the allowed-edge table.
  for (const FileIndex& file : index.files) {
    const std::string mod = module_of(file.path);
    const auto* allowed = allowed_includes(config, mod);
    if (allowed == nullptr) continue;  // unknown module: unchecked
    const bool any = std::find(allowed->begin(), allowed->end(), "*") != allowed->end();
    for (const IncludeSite& inc : file.includes) {
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string target_mod = inc.target.substr(0, slash);
      if (target_mod == mod || known_modules.count(target_mod) == 0) continue;
      if (any || std::find(allowed->begin(), allowed->end(), target_mod) !=
                     allowed->end())
        continue;
      if (suppressed_at(file, inc.line, "R7")) continue;
      out.push_back(
          {"R7", file.path, inc.line,
           "layering violation: module '" + mod + "' may not include '" +
               inc.target + "' (module '" + target_mod + "'); allowed below '" +
               mod + "': " +
               (allowed->empty() ? std::string("nothing") : join(*allowed, ", "))});
    }
  }

  // Cycle check over the resolved file-level include graph.
  std::map<std::string, std::set<std::string>> graph;
  const auto resolve = [&](const std::string& includer,
                           const std::string& target) -> std::string {
    if (paths.count("src/" + target) != 0) return "src/" + target;
    if (paths.count(target) != 0) return target;
    const std::size_t slash = includer.rfind('/');
    if (slash != std::string::npos) {
      const std::string sibling = includer.substr(0, slash + 1) + target;
      if (paths.count(sibling) != 0) return sibling;
    }
    return "";
  };
  for (const FileIndex& file : index.files) {
    graph[file.path];  // ensure every file is a node
    for (const IncludeSite& inc : file.includes) {
      const std::string target = resolve(file.path, inc.target);
      if (!target.empty()) graph[file.path].insert(target);
    }
  }
  for (const auto& scc : cyclic_sccs(graph)) {
    // Anchor at the smallest member's first include into the cycle.
    const std::string& anchor_path = scc[0];
    const std::set<std::string> members(scc.begin(), scc.end());
    int line = 1;
    for (const FileIndex& file : index.files) {
      if (file.path != anchor_path) continue;
      for (const IncludeSite& inc : file.includes) {
        const std::string target = resolve(file.path, inc.target);
        if (members.count(target) != 0) {
          line = inc.line;
          break;
        }
      }
      if (suppressed_at(file, line, "R7")) line = -1;
      break;
    }
    if (line < 0) continue;
    std::vector<std::string> cycle(scc.begin(), scc.end());
    out.push_back({"R7", anchor_path, line,
                   "include cycle among: " + join(cycle, " -> ") +
                       "; the include graph must be acyclic"});
  }
}

// ---------------------------------------------------------------- R8

void rule_lock_order(const RepoIndex& index, const Config& config,
                     std::vector<Finding>& out) {
  (void)config;
  struct Site {
    std::string path;
    int line;
  };
  // First acquisition site per ordered (from, to) pair; files are sorted so
  // "first" is deterministic.
  std::map<std::pair<std::string, std::string>, Site> edges;
  for (const FileIndex& file : index.files)
    for (const LockNesting& n : file.lock_nestings)
      edges.emplace(std::make_pair(n.from, n.to), Site{file.path, n.line});

  std::map<std::string, std::set<std::string>> graph;
  for (const auto& [edge, site] : edges) {
    (void)site;
    graph[edge.first].insert(edge.second);
    graph[edge.second];  // nodes with only incoming edges still exist
  }

  for (const auto& scc : cyclic_sccs(graph)) {
    const std::set<std::string> members(scc.begin(), scc.end());
    std::vector<std::string> described;
    const Site* anchor = nullptr;
    for (const auto& [edge, site] : edges) {
      if (members.count(edge.first) == 0 || members.count(edge.second) == 0)
        continue;
      if (anchor == nullptr) anchor = &site;
      described.push_back(edge.first + " -> " + edge.second + " (" + site.path +
                          ":" + std::to_string(site.line) + ")");
    }
    if (anchor == nullptr) continue;
    bool is_suppressed = false;
    for (const FileIndex& file : index.files)
      if (file.path == anchor->path)
        is_suppressed = suppressed_at(file, anchor->line, "R8");
    if (is_suppressed) continue;
    out.push_back({"R8", anchor->path, anchor->line,
                   "lock-order inversion: mutexes {" + join(scc, ", ") +
                       "} are acquired in conflicting orders — " +
                       join(described, "; ") +
                       "; pick one hierarchy (a cycle here is a deadlock "
                       "waiting for its interleaving)"});
  }
}

// ------------------------------------------------------------ R9 / R11

/// Shared machinery for the switch-exhaustiveness rules: R9 guards the
/// signature taxonomy enums, R11 guards the overload-control ladder.
/// `enum_kind` names what a swallowed enumerator would be in the finding
/// ("signature", "ladder level").
void rule_enum_exhaustiveness(const RepoIndex& index,
                              const std::vector<std::string>& enum_names,
                              const std::string& rule_id,
                              const std::string& enum_kind,
                              std::vector<Finding>& out) {
  // First definition (path-sorted) of each guarded enum wins.
  std::map<std::string, const EnumDef*> defs;
  for (const FileIndex& file : index.files)
    for (const EnumDef& def : file.enums)
      if (std::find(enum_names.begin(), enum_names.end(), def.name) !=
          enum_names.end())
        defs.emplace(def.name, &def);

  for (const FileIndex& file : index.files) {
    for (const SwitchSite& site : file.switches) {
      // The switch targets the guarded enum its first qualified label names.
      const EnumDef* def = nullptr;
      for (const CaseLabel& label : site.labels) {
        const auto it = defs.find(label.enum_name);
        if (it != defs.end()) {
          def = it->second;
          break;
        }
      }
      if (def == nullptr) continue;
      std::set<std::string> covered;
      for (const CaseLabel& label : site.labels)
        if (label.enum_name == def->name) covered.insert(label.enumerator);
      std::vector<std::string> missing;
      for (const std::string& e : def->enumerators)
        if (covered.count(e) == 0) missing.push_back(e);
      if (missing.empty()) continue;
      if (suppressed_at(file, site.line, rule_id)) continue;
      out.push_back(
          {rule_id, file.path, site.line,
           "switch over " + def->name + " covers " +
               std::to_string(covered.size()) + " of " +
               std::to_string(def->enumerators.size()) + " enumerators (missing: " +
               join(missing, ", ", 6) + ")" +
               (site.has_default
                    ? "; the default: label silently swallows them — a new " +
                          enum_kind + " must not vanish into a bucket"
                    : "") +
               "; cover every case or suppress with a reason"});
    }
  }
}

void rule_taxonomy_exhaustiveness(const RepoIndex& index, const Config& config,
                                  std::vector<Finding>& out) {
  rule_enum_exhaustiveness(index, config.taxonomy_enums, "R9", "signature", out);
}

// ---------------------------------------------------------------- R11

void rule_ladder_exhaustiveness(const RepoIndex& index, const Config& config,
                                std::vector<Finding>& out) {
  rule_enum_exhaustiveness(index, config.control_enums, "R11", "ladder level", out);
}

// ---------------------------------------------------------------- R10

/// Expand one `{a,b,c}` group per recursion level: the doc inventory writes
/// families like `tamper_queue_{pushed,popped}_total`.
void expand_braces(const std::string& pattern, std::vector<std::string>& out) {
  const std::size_t open = pattern.find('{');
  if (open == std::string::npos) {
    out.push_back(pattern);
    return;
  }
  const std::size_t close = pattern.find('}', open);
  if (close == std::string::npos) {
    out.push_back(pattern);
    return;
  }
  std::size_t start = open + 1;
  const std::string head = pattern.substr(0, open);
  const std::string tail = pattern.substr(close + 1);
  while (start <= close) {
    std::size_t comma = pattern.find(',', start);
    if (comma == std::string::npos || comma > close) comma = close;
    expand_braces(head + pattern.substr(start, comma - start) + tail, out);
    start = comma + 1;
  }
}

void rule_metric_doc_drift(const RepoIndex& index, const Config& config,
                           std::vector<Finding>& out) {
  if (index.doc_path.empty()) return;

  struct Site {
    std::string path;
    int line;
  };
  std::map<std::string, Site> registered;
  for (const FileIndex& file : index.files) {
    const bool in_scope = std::any_of(
        config.metric_scan_prefixes.begin(), config.metric_scan_prefixes.end(),
        [&](const std::string& prefix) { return file.path.rfind(prefix, 0) == 0; });
    if (!in_scope) continue;
    for (const MetricRegistration& reg : file.metrics)
      if (reg.name.rfind(config.metric_prefix, 0) == 0)
        registered.emplace(reg.name, Site{file.path, reg.line});
  }

  // Documented names: backticked spans in the first cell of markdown table
  // rows, brace-expanded.
  std::map<std::string, int> documented;
  for (std::size_t i = 0; i < index.doc_lines.size(); ++i) {
    const std::string t = trimmed(index.doc_lines[i]);
    if (t.size() < 2 || t[0] != '|') continue;
    const std::size_t cell_end = t.find('|', 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = t.substr(1, cell_end - 1);
    std::size_t p = 0;
    while (true) {
      const std::size_t tick = cell.find('`', p);
      if (tick == std::string::npos) break;
      const std::size_t close = cell.find('`', tick + 1);
      if (close == std::string::npos) break;
      std::vector<std::string> names;
      expand_braces(cell.substr(tick + 1, close - tick - 1), names);
      for (const std::string& name : names)
        if (name.rfind(config.metric_prefix, 0) == 0)
          documented.emplace(name, static_cast<int>(i + 1));
      p = close + 1;
    }
  }

  for (const auto& [name, site] : registered) {
    if (documented.count(name) != 0) continue;
    bool is_suppressed = false;
    for (const FileIndex& file : index.files)
      if (file.path == site.path)
        is_suppressed = suppressed_at(file, site.line, "R10");
    if (is_suppressed) continue;
    out.push_back({"R10", site.path, site.line,
                   "metric family \"" + name + "\" is registered here but missing "
                       "from the metric inventory in " + index.doc_path +
                       "; document it (or suppress with a reason)"});
  }
  for (const auto& [name, line] : documented) {
    if (registered.count(name) != 0) continue;
    out.push_back({"R10", index.doc_path, line,
                   "metric family \"" + name + "\" is documented in the metric "
                       "inventory but never registered in " +
                       join(config.metric_scan_prefixes, ", ") +
                       "; delete the row or restore the registration"});
  }
}

// ---------------------------------------------------------------- R12

/// Every `series_spec("family", "source", ...)` catalog entry must reference
/// a real metric family: the source is "agg:<metric>" or "metric:<metric>"
/// and <metric> is registered somewhere in the scanned prefixes. A series
/// whose source dangles would silently sample nothing (or claim a backing
/// surface that does not exist), which is exactly the drift R10 guards the
/// docs against — R12 extends the guarantee to the telemetry catalog.
void rule_series_sources(const RepoIndex& index, const Config& config,
                         std::vector<Finding>& out) {
  std::set<std::string> registered;
  for (const FileIndex& file : index.files) {
    const bool in_scope = std::any_of(
        config.metric_scan_prefixes.begin(), config.metric_scan_prefixes.end(),
        [&](const std::string& prefix) { return file.path.rfind(prefix, 0) == 0; });
    if (!in_scope) continue;
    for (const MetricRegistration& reg : file.metrics) registered.insert(reg.name);
  }

  static constexpr std::string_view kPrefixes[] = {"agg:", "metric:"};
  for (const FileIndex& file : index.files) {
    for (const SeriesRegistration& s : file.series) {
      if (suppressed_at(file, s.line, "R12")) continue;
      std::string metric;
      for (const std::string_view prefix : kPrefixes) {
        if (s.source.rfind(prefix, 0) == 0) {
          metric = s.source.substr(prefix.size());
          break;
        }
      }
      if (metric.empty()) {
        out.push_back(
            {"R12", file.path, s.line,
             "series \"" + s.family + "\" has source \"" + s.source +
                 "\" — a series source must be \"agg:<metric_family>\" or "
                 "\"metric:<metric_family>\" so the backing surface is explicit"});
        continue;
      }
      if (registered.count(metric) != 0) continue;
      out.push_back(
          {"R12", file.path, s.line,
           "series \"" + s.family + "\" references metric family \"" + metric +
               "\" which is never registered in " +
               join(config.metric_scan_prefixes, ", ") +
               "; a dangling source means the series samples a surface that "
               "does not exist"});
    }
  }
}

/// R13 — raw ID-taxonomy parameters in cross-module interfaces. A header
/// parameter named after one of the pipeline's identifier kinds (`pop`,
/// `asn`, `epoch`, ...) but typed as a raw int or string is exactly the
/// signature a swapped-argument bug slips through; common/ids.h has a
/// strong type for each. Serialization boundaries that genuinely traffic
/// in raw representations carry per-site suppressions.
void rule_raw_id_params(const RepoIndex& index, const Config& config,
                        std::vector<Finding>& out) {
  const auto strong_name = [](const std::string& word) {
    std::string t = word;
    t[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(t[0])));
    return t + "Id";
  };
  // The declared type minus cv-qualifiers and reference/pointer sigils:
  // "const std::string&" -> "std::string".
  const auto core_type = [](const std::string& type) {
    std::string core;
    std::string token;
    const auto flush = [&] {
      if (token.empty() || token == "const" || token == "volatile") {
        token.clear();
        return;
      }
      if (!core.empty()) core.push_back(' ');
      core += token;
      token.clear();
    };
    for (char c : type) {
      if (c == ' ' || c == '&' || c == '*') flush();
      else token.push_back(c);
    }
    flush();
    return core;
  };

  for (const FileIndex& file : index.files) {
    // Only src/ headers are cross-module interfaces; tools, tests, and
    // bench own their argument parsing and fixtures.
    if (file.path.rfind("src/", 0) != 0) continue;
    for (const FunctionDecl& fn : file.functions) {
      for (const ParamDecl& param : fn.params) {
        if (param.name.empty()) continue;
        std::string word;
        for (const std::string& w : config.id_taxonomy)
          if (param.name == w || param.name == w + "_id") {
            word = w;
            break;
          }
        if (word.empty()) continue;
        const std::string core = core_type(param.type);
        if (std::find(config.id_raw_types.begin(), config.id_raw_types.end(),
                      core) == config.id_raw_types.end())
          continue;
        // Declarations wrap: a suppression on (or above) the function name
        // covers every parameter line of that declaration.
        if (suppressed_at(file, param.line, "R13") ||
            suppressed_at(file, fn.line, "R13"))
          continue;
        out.push_back(
            {"R13", file.path, param.line,
             "parameter \"" + param.name + "\" of " + fn.name + "() has raw type \"" +
                 core + "\" — ID-taxonomy names take strong types (common/ids.h: " +
                 strong_name(word) +
                 ") so swapped identifier arguments cannot compile; wrap it, or "
                 "tamperlint-allow(R13) a genuine serialization boundary"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> repo_rule_findings(const RepoIndex& index, const Config& config) {
  std::vector<Finding> out;
  if (rule_enabled(config, "R7")) rule_layering(index, config, out);
  if (rule_enabled(config, "R8")) rule_lock_order(index, config, out);
  if (rule_enabled(config, "R9")) rule_taxonomy_exhaustiveness(index, config, out);
  if (rule_enabled(config, "R10")) rule_metric_doc_drift(index, config, out);
  if (rule_enabled(config, "R11")) rule_ladder_exhaustiveness(index, config, out);
  if (rule_enabled(config, "R12")) rule_series_sources(index, config, out);
  if (rule_enabled(config, "R13")) rule_raw_id_params(index, config, out);
  return out;
}

}  // namespace tamper::lint
