// Pass 1 of the two-pass analyzer: a per-file structural index (includes,
// enum definitions, switch sites, lock-acquisition nestings, metric-family
// registrations, exported function declarations, suppression directives)
// that the cross-file rules R7–R13 evaluate over once every file has been
// scanned. Per-file extraction is
// pure and can run in parallel; merging is deterministic in path order.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tamper::lint {

struct Config;
struct Finding;

/// `#include "target"` — quoted includes only; system headers are invisible
/// to layering by construction.
struct IncludeSite {
  std::string target;  ///< verbatim include string, e.g. "common/rng.h"
  int line = 0;        ///< 1-based
};

/// `enum [class] Name ... { enumerators }`.
struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
  int line = 0;
};

/// One `case Enum::kValue:` label inside a switch.
struct CaseLabel {
  std::string enum_name;   ///< qualifier right before the enumerator ("" if bare)
  std::string enumerator;
};

struct SwitchSite {
  std::vector<CaseLabel> labels;
  bool has_default = false;
  int line = 0;  ///< 1-based line of the `switch` keyword
};

/// `to` was constructed (MutexLock/UniqueLock) while `from` was still in
/// scope in the same function body. Nodes are `Class::member` when the lock
/// expression is a bare member inside a known class scope, the expression
/// verbatim otherwise. Lambda bodies start a fresh lock context: their
/// execution is deferred, so lexical nesting is not acquisition nesting.
struct LockNesting {
  std::string from;
  std::string to;
  int line = 0;  ///< 1-based line of the inner acquisition
};

struct MetricRegistration {
  std::string name;
  int line = 0;  ///< 1-based
};

/// One parameter of an exported function declaration: the declared type
/// text (whitespace-collapsed, default argument stripped) and the name.
/// Unnamed parameters are recorded with an empty name.
struct ParamDecl {
  std::string type;
  std::string name;
  int line = 0;  ///< 1-based line of the parameter itself (decls wrap)
};

/// A function declaration (or inline definition) in a header: name plus the
/// parameter list. Extracted only for `.h` files — these are the
/// cross-module signatures the API rules (R13) reason about. The extractor
/// is token-level and deliberately conservative: constructs it cannot
/// prove are declarations (calls, macros, member initializers) are skipped.
struct FunctionDecl {
  std::string name;
  std::vector<ParamDecl> params;
  int line = 0;  ///< 1-based line of the function name
};

/// A `series_spec("family", "source", ...)` catalog entry (R12 checks the
/// source against the registered metric families).
struct SeriesRegistration {
  std::string family;
  std::string source;
  int line = 0;  ///< 1-based
};

struct FileIndex {
  std::string path;
  std::vector<IncludeSite> includes;
  std::vector<EnumDef> enums;
  std::vector<SwitchSite> switches;
  std::vector<LockNesting> lock_nestings;
  std::vector<MetricRegistration> metrics;
  std::vector<SeriesRegistration> series;
  std::vector<FunctionDecl> functions;  ///< headers only (see FunctionDecl)
  /// suppressed[line0] holds rule ids suppressed on that 0-based line
  /// (well-formed `tamperlint-allow` directives only).
  std::vector<std::vector<std::string>> suppressed;
};

/// Extract the structural index of one file. `stripped_text` is the
/// comments-and-strings-blanked form, `strings_text` the strings-kept form
/// (both from internal::strip_literals, position-aligned with the source).
[[nodiscard]] FileIndex index_file(const std::string& path,
                                   std::string_view stripped_text,
                                   std::string_view strings_text);

/// The merged repo index: per-file indices in ascending path order plus the
/// (optional) metric-inventory doc.
struct RepoIndex {
  std::vector<FileIndex> files;  ///< sorted by path
  std::string doc_path;          ///< "" when no doc was provided
  std::vector<std::string> doc_lines;
};

/// Pass 2: evaluate R7 (layering), R8 (lock order), R9 (taxonomy
/// exhaustiveness), R10 (metric–doc drift), R11 (ladder exhaustiveness),
/// R12 (series–metric linkage), and R13 (raw ID-taxonomy parameters in
/// cross-module headers) over the merged index.
/// Findings honor per-line suppressions recorded in the index; the caller
/// sorts and merges them with the per-file findings.
[[nodiscard]] std::vector<Finding> repo_rule_findings(const RepoIndex& index,
                                                      const Config& config);

}  // namespace tamper::lint
