// One-stop analysis pipeline: classify each sampled connection, attribute
// it, and feed every aggregator. Benches and examples run a scenario
// through a Pipeline and then read the aggregates behind each table/figure.
#pragma once

#include <cstdint>
#include <memory>

#include "analysis/aggregates.h"
#include "analysis/evidence.h"
#include "analysis/record.h"
#include "core/classifier.h"
#include "core/scanner.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper::analysis {

class Pipeline {
 public:
  explicit Pipeline(const world::World& world,
                    core::ClassifierConfig classifier_config = {});

  /// Classify + attribute one sample and update all aggregators.
  void ingest(const capture::ConnectionSample& sample);

  /// Convenience: run `connections` of generated traffic through the
  /// pipeline (ground truth is dropped on the floor — validation tests use
  /// the generator directly).
  void run(world::TrafficGenerator& generator, std::size_t connections);

  [[nodiscard]] const SignatureMatrix& signatures() const noexcept { return matrix_; }
  [[nodiscard]] const AsnAggregator& asns() const noexcept { return asns_; }
  [[nodiscard]] const TimeSeries& timeseries() const noexcept { return timeseries_; }
  [[nodiscard]] const VersionProtocolAggregator& version_protocol() const noexcept {
    return version_protocol_;
  }
  [[nodiscard]] const CategoryAggregator& categories() const noexcept { return categories_; }
  [[nodiscard]] const OverlapMatrix& overlap() const noexcept { return overlap_; }
  [[nodiscard]] const EvidenceCollector& evidence() const noexcept { return evidence_; }

  struct ScannerStats {
    std::uint64_t connections = 0;
    std::uint64_t no_tcp_options = 0;
    std::uint64_t high_ttl = 0;
    std::uint64_t syn_rst_matches = 0;       ///< connections matching ⟨SYN → RST⟩
    std::uint64_t syn_rst_zmap = 0;          ///< ... attributable to ZMap
  };
  [[nodiscard]] const ScannerStats& scanner_stats() const noexcept { return scanner_; }

  [[nodiscard]] const core::SignatureClassifier& classifier() const noexcept {
    return classifier_;
  }

 private:
  const world::World& world_;
  core::SignatureClassifier classifier_;
  SignatureMatrix matrix_;
  AsnAggregator asns_;
  TimeSeries timeseries_;
  VersionProtocolAggregator version_protocol_;
  CategoryAggregator categories_;
  OverlapMatrix overlap_;
  EvidenceCollector evidence_;
  ScannerStats scanner_;
};

}  // namespace tamper::analysis
