// One-stop analysis pipeline: classify each sampled connection, attribute
// it, and feed every aggregator. Benches and examples run a scenario
// through a Pipeline and then read the aggregates behind each table/figure.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "analysis/aggregates.h"
#include "analysis/evidence.h"
#include "analysis/record.h"
#include "capture/sampler.h"
#include "common/binio.h"
#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/classifier.h"
#include "core/scanner.h"
#include "net/pcap.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper::analysis {

/// Degraded-input accounting: everything the ingest path dropped, clamped
/// or force-closed instead of crashing on. Exported by analysis::report so
/// operational skew from hostile/corrupt input is visible next to the
/// aggregates it may have biased.
struct DegradedStats {
  std::uint64_t empty_samples = 0;        ///< flows with zero logged packets
  std::uint64_t ingest_errors = 0;        ///< exceptions swallowed by ingest()
  std::uint64_t malformed_packets = 0;    ///< sampler: hostile/garbage packets
  std::uint64_t overload_evicted = 0;     ///< sampler: flows closed at max_flows
  std::uint64_t unparseable_frames = 0;   ///< reader: non-IP / parse failures
  std::uint64_t oversize_frames = 0;      ///< reader: hostile incl_len skipped
  std::uint64_t truncated_frames = 0;     ///< reader: short records
  std::uint64_t queue_shed_embryonic = 0; ///< service: backpressure shed (embryonic)
  std::uint64_t queue_shed_other = 0;     ///< service: backpressure shed (forced)
  std::uint64_t spool_replay_failures = 0; ///< sink: spooled reports lost at replay
  std::uint64_t spool_dropped = 0;         ///< sink: spool cap evictions (oldest-first)
  // Overload-control admission refusals (control::OverloadController), by
  // DropReason — every sample the admission gate turned away, so shed load
  // is visible next to the aggregates it thinned.
  std::uint64_t admission_rate_limited = 0;   ///< token bucket empty
  std::uint64_t admission_sampled_down = 0;   ///< ladder stride skipped it
  std::uint64_t admission_embryonic_shed = 0; ///< embryonic shed at admission
  std::uint64_t admission_rejected = 0;       ///< kShedding refused the flow

  [[nodiscard]] std::uint64_t total() const noexcept {
    return empty_samples + ingest_errors + malformed_packets + overload_evicted +
           unparseable_frames + oversize_frames + truncated_frames +
           queue_shed_embryonic + queue_shed_other + spool_replay_failures +
           spool_dropped + admission_rate_limited + admission_sampled_down +
           admission_embryonic_shed + admission_rejected;
  }

  /// Coverage loss: samples/flows removed from aggregation entirely — what
  /// the anomaly watchdog's `degraded` trends series tracks (DESIGN.md §12).
  /// Excludes input *noise* that biases no rate (empty flows, malformed
  /// packets inside an observed flow) and report-delivery losses (spool_*,
  /// surfaced at the merger as missing partials): a stray junk flow per
  /// epoch must not blind the watchdog for that epoch.
  [[nodiscard]] std::uint64_t coverage_loss() const noexcept {
    return ingest_errors + overload_evicted + unparseable_frames +
           oversize_frames + truncated_frames + queue_shed_embryonic +
           queue_shed_other + admission_rate_limited + admission_sampled_down +
           admission_embryonic_shed + admission_rejected;
  }
};

class Pipeline {
 public:
  explicit Pipeline(const world::World& world,
                    core::ClassifierConfig classifier_config = {});
  ~Pipeline();

  /// Attach observability. The registry gains the tamper_pipeline_* metric
  /// families (see DESIGN.md §9) plus a collector that mirrors the
  /// DegradedStats counters at every snapshot; the tracer (optional)
  /// receives ingest/classify/aggregate spans per sample. The classify
  /// duration histogram is sampled 1-in-64 so the hot path stays a couple
  /// of relaxed fetch_adds. All three must outlive the pipeline.
  void set_obs(obs::Registry* metrics, obs::Tracer* tracer = nullptr,
               const obs::Clock* clock = nullptr);

  /// Classify + attribute one sample and update all aggregators. Never
  /// throws: degraded input is counted (see degraded()) and dropped.
  void ingest(const capture::ConnectionSample& sample) noexcept;

  /// Convenience: run `connections` of generated traffic through the
  /// pipeline (ground truth is dropped on the floor — validation tests use
  /// the generator directly).
  void run(world::TrafficGenerator& generator, std::size_t connections);

  [[nodiscard]] const SignatureMatrix& signatures() const noexcept { return matrix_; }
  [[nodiscard]] const AsnAggregator& asns() const noexcept { return asns_; }
  [[nodiscard]] const TimeSeries& timeseries() const noexcept { return timeseries_; }
  [[nodiscard]] const VersionProtocolAggregator& version_protocol() const noexcept {
    return version_protocol_;
  }
  [[nodiscard]] const CategoryAggregator& categories() const noexcept { return categories_; }
  [[nodiscard]] const OverlapMatrix& overlap() const noexcept { return overlap_; }
  [[nodiscard]] const EvidenceCollector& evidence() const noexcept { return evidence_; }

  struct ScannerStats {
    std::uint64_t connections = 0;
    std::uint64_t no_tcp_options = 0;
    std::uint64_t high_ttl = 0;
    std::uint64_t syn_rst_matches = 0;       ///< connections matching ⟨SYN → RST⟩
    std::uint64_t syn_rst_zmap = 0;          ///< ... attributable to ZMap
  };
  [[nodiscard]] const ScannerStats& scanner_stats() const noexcept { return scanner_; }

  [[nodiscard]] const core::SignatureClassifier& classifier() const noexcept {
    return classifier_;
  }

  /// Degraded-input accounting. Capture-side counters arrive via the
  /// record_* helpers. The source Stats are cumulative, so each helper is
  /// idempotent: it remembers the last snapshot and adds only the delta —
  /// safe to call periodically from a long-running service. A counter that
  /// moves backwards means a fresh source; its full value is re-added.
  ///
  /// Unlike the aggregators (worker-thread-owned until the run ends), the
  /// degraded counters are behind a mutex so a monitoring thread can read
  /// them while the worker is mid-ingest; degraded() returns a consistent
  /// copy.
  [[nodiscard]] DegradedStats degraded() const noexcept TAMPER_EXCLUDES(stats_mu_) {
    common::MutexLock lock(stats_mu_);
    return degraded_;
  }
  void record_reader_stats(const net::PcapReader::Stats& s) noexcept
      TAMPER_EXCLUDES(stats_mu_) {
    common::MutexLock lock(stats_mu_);
    degraded_.unparseable_frames += delta(s.skipped_unparseable, last_reader_.skipped_unparseable);
    degraded_.oversize_frames += delta(s.skipped_oversize, last_reader_.skipped_oversize);
    degraded_.truncated_frames += delta(s.skipped_truncated, last_reader_.skipped_truncated);
    last_reader_ = s;
  }
  void record_sampler_stats(const capture::ConnectionSampler::Stats& s) noexcept
      TAMPER_EXCLUDES(stats_mu_) {
    common::MutexLock lock(stats_mu_);
    degraded_.malformed_packets += delta(s.packets_malformed, last_sampler_.packets_malformed);
    degraded_.overload_evicted +=
        delta(s.flows_evicted_overload, last_sampler_.flows_evicted_overload);
    last_sampler_ = s;
  }
  void record_queue_stats(const common::BoundedQueueStats& s) noexcept
      TAMPER_EXCLUDES(stats_mu_) {
    common::MutexLock lock(stats_mu_);
    degraded_.queue_shed_embryonic += delta(s.shed_low_value, last_queue_.shed_low_value);
    degraded_.queue_shed_other += delta(s.shed_other, last_queue_.shed_other);
    last_queue_ = s;
  }
  /// Report-sink degradation: cumulative counts of spooled reports that
  /// failed replay (quarantined) and of spool-cap evictions — both data
  /// loss an operator must see. Takes plain counters, not the emitter's
  /// Stats struct, so the analysis layer stays below the service layer.
  void record_sink_stats(std::uint64_t spool_replay_failures,
                         std::uint64_t spool_dropped = 0) noexcept
      TAMPER_EXCLUDES(stats_mu_) {
    common::MutexLock lock(stats_mu_);
    degraded_.spool_replay_failures +=
        delta(spool_replay_failures, last_sink_replay_failures_);
    last_sink_replay_failures_ = spool_replay_failures;
    degraded_.spool_dropped += delta(spool_dropped, last_spool_dropped_);
    last_spool_dropped_ = spool_dropped;
  }
  /// Admission-control shed accounting (cumulative, from the overload
  /// controller's stats). Plain counters for the same layering reason as
  /// record_sink_stats: analysis must not depend on control.
  void record_overload_stats(std::uint64_t rate_limited, std::uint64_t sampled_down,
                             std::uint64_t embryonic_shed,
                             std::uint64_t rejected) noexcept
      TAMPER_EXCLUDES(stats_mu_) {
    common::MutexLock lock(stats_mu_);
    degraded_.admission_rate_limited += delta(rate_limited, last_admission_.rate_limited);
    degraded_.admission_sampled_down += delta(sampled_down, last_admission_.sampled_down);
    degraded_.admission_embryonic_shed +=
        delta(embryonic_shed, last_admission_.embryonic_shed);
    degraded_.admission_rejected += delta(rejected, last_admission_.rejected);
    last_admission_ = {rate_limited, sampled_down, embryonic_shed, rejected};
  }

  /// Evidence-only mode (degradation ladder level kEvidenceOnly and above):
  /// ingest skips app-proto (TLS/HTTP) payload parsing and keeps only the
  /// tamper-signature evidence. Safe to flip from any thread; the worker
  /// reads it per sample.
  void set_evidence_only(bool on) noexcept {
    evidence_only_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool evidence_only() const noexcept {
    return evidence_only_.load(std::memory_order_relaxed);
  }

  /// Largest observation_end_sec ingested so far (1-second granularity,
  /// like every timestamp in the capture path — paper §3.2). The fleet
  /// layer derives a partial's epoch from it. Serialized in snapshot(), so
  /// a resumed PoP re-tags its partials with the same epochs.
  [[nodiscard]] std::int64_t latest_ts_sec() const noexcept { return latest_ts_sec_; }

  /// Configure the longitudinal trends ring (epoch width, history depth,
  /// series cap). Resets the ring; call before ingesting. A later restore()
  /// adopts the checkpoint's epoch length regardless.
  void set_trends_config(obs::EpochRingConfig config) {
    trends_ = obs::EpochRing(config);
  }

  /// Sample the trends catalog (obs::default_series_catalog) into the epoch
  /// ring at the current capture time, and mirror the classification
  /// aggregates into the tamper_class_* registry families. Called by the
  /// service at checkpoint/report boundaries, on the worker thread (the
  /// ring and aggregates are worker-owned). Deterministic: values come from
  /// checkpoint-restored state keyed by capture-derived epochs, so a
  /// resumed run re-records identical points.
  void sample_trends();

  /// The longitudinal epoch ring (see obs/timeseries.h). Worker-owned: read
  /// it from the worker thread or after the run ends, like the aggregators.
  [[nodiscard]] const obs::EpochRing& trends() const noexcept { return trends_; }

  /// Fold another pipeline's aggregate state into this one. All aggregate
  /// members are commutative monoids (see aggregates.h), degraded/scanner
  /// counters add, and latest_ts_sec takes the max — so a fleet merger can
  /// combine per-PoP partials in any order or grouping and serialize to
  /// identical bytes. The delta baselines (last_*) are per-process state
  /// and are not merged.
  void merge_from(const Pipeline& other) TAMPER_EXCLUDES(stats_mu_);

  /// Serialize every aggregator plus the degraded/scanner accounting into a
  /// checkpoint payload (see service::Checkpoint for the file envelope).
  void snapshot(common::BinWriter& w) const;
  /// Replace all aggregator state from a payload written by snapshot().
  /// The last-source snapshots reset: a restored process has fresh sources.
  /// Throws common::BinUnderrun on truncated payloads.
  void restore(common::BinReader& r);

 private:
  [[nodiscard]] static std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) noexcept {
    return cur >= prev ? cur - prev : cur;
  }
  const world::World& world_;
  core::SignatureClassifier classifier_;
  SignatureMatrix matrix_;
  AsnAggregator asns_;
  TimeSeries timeseries_;
  VersionProtocolAggregator version_protocol_;
  CategoryAggregator categories_;
  OverlapMatrix overlap_;
  EvidenceCollector evidence_;
  ScannerStats scanner_;
  std::int64_t latest_ts_sec_ = 0;  ///< worker-thread owned, like the aggregators
  // Observability handles (null until set_obs). The counter/histogram
  // pointers are stable registry handles; sampling state is worker-thread
  // only, like the aggregators.
  obs::Registry* obs_metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  const obs::Clock* obs_clock_ = nullptr;
  obs::Counter* obs_samples_ = nullptr;
  obs::Histogram* obs_classify_seconds_ = nullptr;
  obs::Registry::CollectorId obs_collector_ = 0;
  // tamper_class_* mirrors + tamper_timeseries_* bookkeeping, updated only
  // inside sample_trends() on the worker thread (never by collectors: the
  // aggregates and ring are worker-owned).
  obs::Counter* class_connections_c_ = nullptr;
  obs::Counter* class_possibly_c_ = nullptr;
  obs::Counter* class_matched_c_ = nullptr;
  obs::CounterFamily* class_signature_fam_ = nullptr;
  obs::CounterFamily* class_country_conn_fam_ = nullptr;
  obs::CounterFamily* class_country_match_fam_ = nullptr;
  // Cached per-label child handles: CounterFamily::with is a locked lookup,
  // too heavy to repeat for every label on every rollup (the ≤2% sampling
  // overhead contract). Children are stable registry handles; the caches
  // only grow, and reset with the families on set_obs.
  std::array<obs::Counter*, core::kSignatureCount> class_signature_mirror_{};
  std::map<std::string, obs::Counter*> class_country_conn_mirror_;
  std::map<std::string, obs::Counter*> class_country_match_mirror_;
  obs::Counter* ts_points_c_ = nullptr;
  obs::Counter* ts_dropped_c_ = nullptr;
  obs::Gauge* ts_series_g_ = nullptr;
  obs::Gauge* ts_latest_epoch_g_ = nullptr;
  obs::EpochRing trends_;
  mutable common::Mutex stats_mu_;  ///< guards degraded accounting only
  DegradedStats degraded_ TAMPER_GUARDED_BY(stats_mu_);
  net::PcapReader::Stats last_reader_ TAMPER_GUARDED_BY(stats_mu_);
  capture::ConnectionSampler::Stats last_sampler_ TAMPER_GUARDED_BY(stats_mu_);
  common::BoundedQueueStats last_queue_ TAMPER_GUARDED_BY(stats_mu_);
  std::uint64_t last_sink_replay_failures_ TAMPER_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t last_spool_dropped_ TAMPER_GUARDED_BY(stats_mu_) = 0;
  struct AdmissionBaseline {
    std::uint64_t rate_limited = 0;
    std::uint64_t sampled_down = 0;
    std::uint64_t embryonic_shed = 0;
    std::uint64_t rejected = 0;
  };
  AdmissionBaseline last_admission_ TAMPER_GUARDED_BY(stats_mu_);
  std::atomic<bool> evidence_only_{false};
};

}  // namespace tamper::analysis
