// Streaming aggregators behind the paper's tables and figures.
//
// Each aggregator consumes ConnectionRecords; none of them retain raw
// samples (mirroring the paper's aggregate-only reporting, §3.3).
//
// Every aggregator is a commutative monoid under merge(): merge is
// associative and commutative with the default-constructed aggregator as
// identity, so a fleet of PoPs can each aggregate a shard of the traffic
// and a central merger can combine the partials in any order — and any
// grouping — without changing a byte of the merged output
// (tests/test_fleet.cpp pins the three laws against serialized state).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/record.h"
#include "common/ids.h"
#include "common/binio.h"
#include "core/signature.h"
#include "world/category.h"

namespace tamper::analysis {

/// Counts of signature matches cross-tabulated by country.
/// Figure 1 reads columns (country composition of each signature);
/// Figure 4 reads rows (signature composition of each country).
class SignatureMatrix {
 public:
  void add(const ConnectionRecord& record);

  [[nodiscard]] std::uint64_t total_connections() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t country_connections(const std::string& cc) const;
  [[nodiscard]] std::uint64_t count(const std::string& cc, core::Signature sig) const;
  [[nodiscard]] std::uint64_t signature_total(core::Signature sig) const;
  [[nodiscard]] std::uint64_t country_matches(const std::string& cc) const;
  [[nodiscard]] std::uint64_t possibly_tampered() const noexcept { return possibly_; }
  [[nodiscard]] std::uint64_t matched() const noexcept { return matched_; }
  /// Possibly-tampered / matched counts per connection stage (Table 1 text).
  [[nodiscard]] std::uint64_t stage_possibly(core::Stage stage) const;
  [[nodiscard]] std::uint64_t stage_matched(core::Stage stage) const;

  [[nodiscard]] std::vector<std::string> countries() const;

  struct CountryRow {
    std::array<std::uint64_t, core::kSignatureCount> by_signature{};
    std::uint64_t connections = 0;
    std::uint64_t matches = 0;
  };
  /// Direct read-only view of the per-country rows, sorted by country code.
  /// The trends rollup iterates this instead of countries() + per-country
  /// lookups — one tree walk instead of hundreds (DESIGN.md §12 overhead
  /// contract).
  [[nodiscard]] const std::map<std::string, CountryRow>& rows() const noexcept {
    return rows_;
  }

  /// Pointwise count sum (commutative monoid).
  void merge(const SignatureMatrix& other);

  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  std::map<std::string, CountryRow> rows_;
  std::array<std::uint64_t, core::kSignatureCount> signature_totals_{};
  std::array<std::uint64_t, 5> stage_possibly_{};
  std::array<std::uint64_t, 5> stage_matched_{};
  std::uint64_t total_ = 0;
  std::uint64_t possibly_ = 0;
  std::uint64_t matched_ = 0;
};

/// Per-AS match proportions within each country (Figure 5).
class AsnAggregator {
 public:
  void add(const ConnectionRecord& record);

  struct AsnStats {
    common::AsnId asn{};
    std::uint64_t connections = 0;
    std::uint64_t matches = 0;
    [[nodiscard]] double match_percent() const noexcept {
      return connections == 0 ? 0.0
                              : 100.0 * static_cast<double>(matches) /
                                    static_cast<double>(connections);
    }
  };
  /// ASes collectively originating `traffic_share` of a country's
  /// connections (paper: top 80%), largest first.
  [[nodiscard]] std::vector<AsnStats> top_ases(const std::string& cc,
                                               double traffic_share = 0.8) const;
  [[nodiscard]] std::uint64_t country_total(const std::string& cc) const;

  /// Pointwise count sum (commutative monoid).
  void merge(const AsnAggregator& other);

  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  /// Keyed by strong id; AsnId orders by its raw rep, so snapshot bytes
  /// are unchanged from the u32-keyed layout.
  std::map<std::string, std::map<common::AsnId, AsnStats>> by_country_;
};

/// Hourly time series of match rates (Figures 6, 8, 9).
class TimeSeries {
 public:
  enum class Metric : std::uint8_t {
    kPostAckPostPsh,  ///< Fig. 6: Post-ACK + Post-PSH signatures only
    kPerSignature,    ///< Figs. 8/9: every signature separately
  };

  void add(const ConnectionRecord& record);

  struct HourBucket {
    std::uint64_t connections = 0;
    std::uint64_t post_ack_psh_matches = 0;
    std::array<std::uint64_t, core::kSignatureCount> by_signature{};
  };
  /// Buckets keyed by hour index (epoch seconds / 3600) for one country.
  [[nodiscard]] const std::map<std::int64_t, HourBucket>& country_hours(
      const std::string& cc) const;
  [[nodiscard]] std::vector<std::string> countries() const;

  /// Pointwise bucket sum (commutative monoid).
  void merge(const TimeSeries& other);

  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  std::map<std::string, std::map<std::int64_t, HourBucket>> series_;
};

/// IPv4-vs-IPv6 and TLS-vs-HTTP comparison (Figure 7).
class VersionProtocolAggregator {
 public:
  void add(const ConnectionRecord& record);

  struct Split {
    std::uint64_t v4_total = 0, v4_matches = 0;        ///< Post-ACK+PSH matches
    std::uint64_t v6_total = 0, v6_matches = 0;
    std::uint64_t tls_total = 0, tls_psh_matches = 0;  ///< Post-PSH matches
    std::uint64_t http_total = 0, http_psh_matches = 0;
  };
  [[nodiscard]] const std::map<std::string, Split>& by_country() const noexcept {
    return by_country_;
  }

  /// Pointwise split sum (commutative monoid).
  void merge(const VersionProtocolAggregator& other);

  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  std::map<std::string, Split> by_country_;
};

/// Category view of Post-PSH tampering (Table 2). Needs a category oracle
/// (domain name -> category), injected so the aggregator stays decoupled
/// from the world model.
class CategoryAggregator {
 public:
  using CategoryLookup = std::function<std::optional<world::Category>(const std::string&)>;

  explicit CategoryAggregator(CategoryLookup lookup) : lookup_(std::move(lookup)) {}

  void add(const ConnectionRecord& record);

  struct CategoryStats {
    std::uint64_t tampered_connections = 0;
    std::set<std::string> tampered_domains;
    std::set<std::string> seen_domains;  ///< all domains requested, tampered or not
  };
  struct DomainCount {
    std::uint64_t tampered = 0;
  };

  /// Apply the paper's >=100-matches-per-domain confidence threshold and
  /// return per-category stats for one country.
  [[nodiscard]] std::map<world::Category, CategoryStats> country_stats(
      const std::string& cc, std::uint64_t domain_threshold = 100) const;
  /// The tampered-domain set for a region (for the Table 3 test-list audit).
  [[nodiscard]] std::vector<std::string> tampered_domains(
      const std::string& cc, std::uint64_t domain_threshold = 100) const;
  [[nodiscard]] std::vector<std::string> countries() const;

  /// Pointwise per-domain count sum (commutative monoid; lookup_ is config
  /// and never merged).
  void merge(const CategoryAggregator& other);

  /// Serializes the per-domain maps only; the category lookup is config,
  /// re-injected by whoever constructs the restoring aggregator.
  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  struct CountryData {
    std::unordered_map<std::string, std::uint64_t> tampered_by_domain;
    std::unordered_map<std::string, std::uint64_t> seen_by_domain;
  };
  CategoryLookup lookup_;
  std::map<std::string, CountryData> by_country_;
};

/// First-vs-next signature for repeated (client IP, domain) pairs
/// (Figure 10 / Appendix B). Values 0..18 are signatures; 19 = clean.
class OverlapMatrix {
 public:
  static constexpr std::size_t kStates = core::kSignatureCount + 1;

  void add(const ConnectionRecord& record);

  [[nodiscard]] std::uint64_t count(std::size_t first_state, std::size_t next_state) const {
    return matrix_[first_state][next_state];
  }
  [[nodiscard]] std::uint64_t row_total(std::size_t first_state) const;
  [[nodiscard]] static std::size_t state_of(const core::Classification& c) noexcept {
    return c.signature ? static_cast<std::size_t>(*c.signature) : kStates - 1;
  }

  /// Transition-count sum. A (client, domain) pair normally lives on one
  /// PoP (anycast routes by client prefix), so first_state_ keys rarely
  /// collide across shards; after a failover both sides may have seen a
  /// "first" — the smaller state wins, which keeps merge commutative and
  /// associative (min is).
  void merge(const OverlapMatrix& other);

  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  std::unordered_map<common::FlowId, std::size_t> first_state_;  ///< pair-hash -> state
  std::array<std::array<std::uint64_t, kStates>, kStates> matrix_{};
};

}  // namespace tamper::analysis
