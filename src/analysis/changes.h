// Longitudinal change detection over signature match rates.
//
// The operational payoff the paper motivates (§1: "identify and communicate
// network failures", §5.6: tampering around noteworthy events): watch the
// per-country per-signature time series and flag statistically significant
// shifts — a new blocking deployment, a protest response, or a middlebox
// being switched off.
//
// Method: split the series into a baseline window and a recent window,
// compare match proportions with a two-proportion z-test, and report events
// above the significance threshold with their direction and magnitude.
#pragma once

#include <string>
#include <vector>

#include "analysis/aggregates.h"
#include "core/signature.h"

namespace tamper::analysis {

struct ChangeEvent {
  std::string country;
  core::Signature signature = core::Signature::kSynNone;
  double baseline_pct = 0.0;  ///< match % in the baseline window
  double recent_pct = 0.0;    ///< match % in the recent window
  double z_score = 0.0;       ///< signed: positive = surge, negative = drop
  std::uint64_t baseline_connections = 0;
  std::uint64_t recent_connections = 0;

  [[nodiscard]] bool is_surge() const noexcept { return z_score > 0; }
  /// recent/baseline rate ratio (clamped when the baseline is zero).
  [[nodiscard]] double fold_change() const noexcept {
    return baseline_pct > 0 ? recent_pct / baseline_pct
                            : (recent_pct > 0 ? 1e9 : 1.0);
  }
};

struct ChangeDetectorConfig {
  /// Hours (inclusive of the end) forming the "recent" window; everything
  /// earlier is baseline.
  std::int64_t recent_hours = 48;
  double z_threshold = 4.0;  ///< minimum |z| to report
  /// Windows with fewer connections than this are not evaluated.
  std::uint64_t min_connections = 500;
  /// Ignore shifts smaller than this many percentage points (guards against
  /// statistically-significant-but-operationally-trivial events).
  double min_abs_shift_pct = 0.5;
};

/// Scan a TimeSeries and return events sorted by |z| descending.
[[nodiscard]] std::vector<ChangeEvent> detect_changes(
    const TimeSeries& series, const ChangeDetectorConfig& config = {});

}  // namespace tamper::analysis
