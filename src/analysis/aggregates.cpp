#include "analysis/aggregates.h"

#include <algorithm>

#include "common/rng.h"

namespace tamper::analysis {

namespace {

// Checkpoint serialization writes map-like state in sorted key order, so a
// snapshot is a pure function of the aggregate counts: save -> restore ->
// save is byte-identical even for unordered containers (the golden-file
// test in tests/test_service.cpp pins this).
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void write_domain_counts(common::BinWriter& w,
                         const std::unordered_map<std::string, std::uint64_t>& m) {
  w.u64(m.size());
  for (const auto& domain : sorted_keys(m)) {
    w.str(domain);
    w.u64(m.at(domain));
  }
}

void read_domain_counts(common::BinReader& r,
                        std::unordered_map<std::string, std::uint64_t>& m) {
  const std::uint64_t n = r.u64();
  // Element count is validated by the per-element reads (BinUnderrun on a
  // short payload); only the pre-reservation is clamped against hostile n.
  m.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 1u << 20)));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string domain = r.str();
    m[std::move(domain)] = r.u64();
  }
}

}  // namespace

// ---- SignatureMatrix ----

void SignatureMatrix::add(const ConnectionRecord& record) {
  ++total_;
  CountryRow& row = rows_[record.country];
  ++row.connections;
  const auto& c = record.classification;
  if (c.possibly_tampered) {
    ++possibly_;
    ++stage_possibly_[static_cast<std::size_t>(c.stage)];
  }
  if (c.signature) {
    ++matched_;
    ++stage_matched_[static_cast<std::size_t>(c.stage)];
    ++row.matches;
    ++row.by_signature[static_cast<std::size_t>(*c.signature)];
    ++signature_totals_[static_cast<std::size_t>(*c.signature)];
  }
}

std::uint64_t SignatureMatrix::country_connections(const std::string& cc) const {
  const auto it = rows_.find(cc);
  return it == rows_.end() ? 0 : it->second.connections;
}

std::uint64_t SignatureMatrix::count(const std::string& cc, core::Signature sig) const {
  const auto it = rows_.find(cc);
  return it == rows_.end() ? 0 : it->second.by_signature[static_cast<std::size_t>(sig)];
}

std::uint64_t SignatureMatrix::signature_total(core::Signature sig) const {
  return signature_totals_[static_cast<std::size_t>(sig)];
}

std::uint64_t SignatureMatrix::country_matches(const std::string& cc) const {
  const auto it = rows_.find(cc);
  return it == rows_.end() ? 0 : it->second.matches;
}

std::uint64_t SignatureMatrix::stage_possibly(core::Stage stage) const {
  return stage_possibly_[static_cast<std::size_t>(stage)];
}

std::uint64_t SignatureMatrix::stage_matched(core::Stage stage) const {
  return stage_matched_[static_cast<std::size_t>(stage)];
}

void SignatureMatrix::snapshot(common::BinWriter& w) const {
  w.u64(total_);
  w.u64(possibly_);
  w.u64(matched_);
  for (std::uint64_t v : signature_totals_) w.u64(v);
  for (std::uint64_t v : stage_possibly_) w.u64(v);
  for (std::uint64_t v : stage_matched_) w.u64(v);
  w.u64(rows_.size());
  for (const auto& [cc, row] : rows_) {
    w.str(cc);
    w.u64(row.connections);
    w.u64(row.matches);
    for (std::uint64_t v : row.by_signature) w.u64(v);
  }
}

void SignatureMatrix::restore(common::BinReader& r) {
  *this = SignatureMatrix();
  total_ = r.u64();
  possibly_ = r.u64();
  matched_ = r.u64();
  for (std::uint64_t& v : signature_totals_) v = r.u64();
  for (std::uint64_t& v : stage_possibly_) v = r.u64();
  for (std::uint64_t& v : stage_matched_) v = r.u64();
  const std::uint64_t rows = r.u64();
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string cc = r.str();
    CountryRow row;
    row.connections = r.u64();
    row.matches = r.u64();
    for (std::uint64_t& v : row.by_signature) v = r.u64();
    rows_.emplace(std::move(cc), row);
  }
}

std::vector<std::string> SignatureMatrix::countries() const {
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& [cc, row] : rows_) out.push_back(cc);
  return out;
}

void SignatureMatrix::merge(const SignatureMatrix& other) {
  total_ += other.total_;
  possibly_ += other.possibly_;
  matched_ += other.matched_;
  for (std::size_t i = 0; i < signature_totals_.size(); ++i)
    signature_totals_[i] += other.signature_totals_[i];
  for (std::size_t i = 0; i < stage_possibly_.size(); ++i)
    stage_possibly_[i] += other.stage_possibly_[i];
  for (std::size_t i = 0; i < stage_matched_.size(); ++i)
    stage_matched_[i] += other.stage_matched_[i];
  for (const auto& [cc, row] : other.rows_) {
    CountryRow& mine = rows_[cc];
    mine.connections += row.connections;
    mine.matches += row.matches;
    for (std::size_t i = 0; i < mine.by_signature.size(); ++i)
      mine.by_signature[i] += row.by_signature[i];
  }
}

// ---- AsnAggregator ----

void AsnAggregator::add(const ConnectionRecord& record) {
  AsnStats& stats = by_country_[record.country][record.asn];
  stats.asn = record.asn;
  ++stats.connections;
  if (record.classification.signature) ++stats.matches;
}

std::vector<AsnAggregator::AsnStats> AsnAggregator::top_ases(const std::string& cc,
                                                             double traffic_share) const {
  std::vector<AsnStats> out;
  const auto it = by_country_.find(cc);
  if (it == by_country_.end()) return out;
  for (const auto& [asn, stats] : it->second) out.push_back(stats);
  std::sort(out.begin(), out.end(), [](const AsnStats& a, const AsnStats& b) {
    return a.connections > b.connections;
  });
  std::uint64_t total = 0;
  for (const auto& stats : out) total += stats.connections;
  const auto target = static_cast<std::uint64_t>(traffic_share * static_cast<double>(total));
  std::uint64_t running = 0;
  std::size_t keep = 0;
  for (; keep < out.size() && running < target; ++keep) running += out[keep].connections;
  out.resize(std::max<std::size_t>(keep, 1));
  return out;
}

std::uint64_t AsnAggregator::country_total(const std::string& cc) const {
  const auto it = by_country_.find(cc);
  if (it == by_country_.end()) return 0;
  std::uint64_t total = 0;
  for (const auto& [asn, stats] : it->second) total += stats.connections;
  return total;
}

void AsnAggregator::merge(const AsnAggregator& other) {
  for (const auto& [cc, ases] : other.by_country_) {
    auto& mine = by_country_[cc];
    for (const auto& [asn, stats] : ases) {
      AsnStats& s = mine[asn];
      s.asn = asn;
      s.connections += stats.connections;
      s.matches += stats.matches;
    }
  }
}

void AsnAggregator::snapshot(common::BinWriter& w) const {
  w.u64(by_country_.size());
  for (const auto& [cc, ases] : by_country_) {
    w.str(cc);
    w.u64(ases.size());
    for (const auto& [asn, stats] : ases) {
      w.u32(asn.value());
      w.u64(stats.connections);
      w.u64(stats.matches);
    }
  }
}

void AsnAggregator::restore(common::BinReader& r) {
  by_country_.clear();
  const std::uint64_t countries = r.u64();
  for (std::uint64_t i = 0; i < countries; ++i) {
    std::string cc = r.str();
    auto& ases = by_country_[std::move(cc)];
    const std::uint64_t count = r.u64();
    for (std::uint64_t j = 0; j < count; ++j) {
      AsnStats stats;
      stats.asn = common::AsnId(r.u32());
      stats.connections = r.u64();
      stats.matches = r.u64();
      ases.emplace(stats.asn, stats);
    }
  }
}

// ---- TimeSeries ----

void TimeSeries::add(const ConnectionRecord& record) {
  const std::int64_t hour = record.first_ts_sec / 3600;
  HourBucket& bucket = series_[record.country][hour];
  ++bucket.connections;
  const auto& c = record.classification;
  if (c.signature) {
    ++bucket.by_signature[static_cast<std::size_t>(*c.signature)];
    if (core::is_post_ack_or_psh(*c.signature)) ++bucket.post_ack_psh_matches;
  }
}

const std::map<std::int64_t, TimeSeries::HourBucket>& TimeSeries::country_hours(
    const std::string& cc) const {
  static const std::map<std::int64_t, HourBucket> kEmpty;
  const auto it = series_.find(cc);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string> TimeSeries::countries() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [cc, hours] : series_) out.push_back(cc);
  return out;
}

void TimeSeries::merge(const TimeSeries& other) {
  for (const auto& [cc, hours] : other.series_) {
    auto& mine = series_[cc];
    for (const auto& [hour, bucket] : hours) {
      HourBucket& b = mine[hour];
      b.connections += bucket.connections;
      b.post_ack_psh_matches += bucket.post_ack_psh_matches;
      for (std::size_t i = 0; i < b.by_signature.size(); ++i)
        b.by_signature[i] += bucket.by_signature[i];
    }
  }
}

void TimeSeries::snapshot(common::BinWriter& w) const {
  w.u64(series_.size());
  for (const auto& [cc, hours] : series_) {
    w.str(cc);
    w.u64(hours.size());
    for (const auto& [hour, bucket] : hours) {
      w.i64(hour);
      w.u64(bucket.connections);
      w.u64(bucket.post_ack_psh_matches);
      for (std::uint64_t v : bucket.by_signature) w.u64(v);
    }
  }
}

void TimeSeries::restore(common::BinReader& r) {
  series_.clear();
  const std::uint64_t countries = r.u64();
  for (std::uint64_t i = 0; i < countries; ++i) {
    std::string cc = r.str();
    auto& hours = series_[std::move(cc)];
    const std::uint64_t count = r.u64();
    for (std::uint64_t j = 0; j < count; ++j) {
      const std::int64_t hour = r.i64();
      HourBucket bucket;
      bucket.connections = r.u64();
      bucket.post_ack_psh_matches = r.u64();
      for (std::uint64_t& v : bucket.by_signature) v = r.u64();
      hours.emplace(hour, bucket);
    }
  }
}

// ---- VersionProtocolAggregator ----

void VersionProtocolAggregator::add(const ConnectionRecord& record) {
  Split& split = by_country_[record.country];
  const auto& c = record.classification;
  const bool post_ack_psh = c.signature && core::is_post_ack_or_psh(*c.signature);
  const bool post_psh = c.signature && core::stage_of(*c.signature) == core::Stage::kPostPsh;

  if (record.ip_version == net::IpVersion::kV4) {
    ++split.v4_total;
    if (post_ack_psh) ++split.v4_matches;
  } else {
    ++split.v6_total;
    if (post_ack_psh) ++split.v6_matches;
  }
  if (record.protocol == appproto::AppProtocol::kTls) {
    ++split.tls_total;
    if (post_psh) ++split.tls_psh_matches;
  } else if (record.protocol == appproto::AppProtocol::kHttp) {
    ++split.http_total;
    if (post_psh) ++split.http_psh_matches;
  }
}

void VersionProtocolAggregator::merge(const VersionProtocolAggregator& other) {
  for (const auto& [cc, split] : other.by_country_) {
    Split& mine = by_country_[cc];
    mine.v4_total += split.v4_total;
    mine.v4_matches += split.v4_matches;
    mine.v6_total += split.v6_total;
    mine.v6_matches += split.v6_matches;
    mine.tls_total += split.tls_total;
    mine.tls_psh_matches += split.tls_psh_matches;
    mine.http_total += split.http_total;
    mine.http_psh_matches += split.http_psh_matches;
  }
}

void VersionProtocolAggregator::snapshot(common::BinWriter& w) const {
  w.u64(by_country_.size());
  for (const auto& [cc, split] : by_country_) {
    w.str(cc);
    w.u64(split.v4_total);
    w.u64(split.v4_matches);
    w.u64(split.v6_total);
    w.u64(split.v6_matches);
    w.u64(split.tls_total);
    w.u64(split.tls_psh_matches);
    w.u64(split.http_total);
    w.u64(split.http_psh_matches);
  }
}

void VersionProtocolAggregator::restore(common::BinReader& r) {
  by_country_.clear();
  const std::uint64_t countries = r.u64();
  for (std::uint64_t i = 0; i < countries; ++i) {
    std::string cc = r.str();
    Split& split = by_country_[std::move(cc)];
    split.v4_total = r.u64();
    split.v4_matches = r.u64();
    split.v6_total = r.u64();
    split.v6_matches = r.u64();
    split.tls_total = r.u64();
    split.tls_psh_matches = r.u64();
    split.http_total = r.u64();
    split.http_psh_matches = r.u64();
  }
}

// ---- CategoryAggregator ----

void CategoryAggregator::add(const ConnectionRecord& record) {
  if (!record.domain) return;
  CountryData& data = by_country_[record.country];
  ++data.seen_by_domain[*record.domain];
  // "Post-PSH tampering" in the Table 2/3 sense: the trigger content was
  // visible to us, i.e. the signature fired at or after the first data
  // packet (Post-PSH and Post-Data stages).
  const auto& c = record.classification;
  if (c.signature && (core::stage_of(*c.signature) == core::Stage::kPostPsh ||
                      core::stage_of(*c.signature) == core::Stage::kPostData))
    ++data.tampered_by_domain[*record.domain];
}

std::map<world::Category, CategoryAggregator::CategoryStats>
CategoryAggregator::country_stats(const std::string& cc,
                                  std::uint64_t domain_threshold) const {
  std::map<world::Category, CategoryStats> out;
  const auto it = by_country_.find(cc);
  if (it == by_country_.end()) return out;
  for (const auto& [domain, seen] : it->second.seen_by_domain) {
    const auto category = lookup_(domain);
    if (!category) continue;
    out[*category].seen_domains.insert(domain);
  }
  for (const auto& [domain, tampered] : it->second.tampered_by_domain) {
    if (tampered < domain_threshold) continue;
    const auto category = lookup_(domain);
    if (!category) continue;
    CategoryStats& stats = out[*category];
    stats.tampered_connections += tampered;
    stats.tampered_domains.insert(domain);
  }
  return out;
}

std::vector<std::string> CategoryAggregator::tampered_domains(
    const std::string& cc, std::uint64_t domain_threshold) const {
  std::vector<std::string> out;
  const auto it = by_country_.find(cc);
  if (it == by_country_.end()) return out;
  for (const auto& [domain, tampered] : it->second.tampered_by_domain)
    if (tampered >= domain_threshold) out.push_back(domain);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CategoryAggregator::countries() const {
  std::vector<std::string> out;
  out.reserve(by_country_.size());
  for (const auto& [cc, data] : by_country_) out.push_back(cc);
  return out;
}

void CategoryAggregator::merge(const CategoryAggregator& other) {
  for (const auto& [cc, data] : other.by_country_) {
    CountryData& mine = by_country_[cc];
    for (const auto& [domain, n] : data.tampered_by_domain)
      mine.tampered_by_domain[domain] += n;
    for (const auto& [domain, n] : data.seen_by_domain)
      mine.seen_by_domain[domain] += n;
  }
}

void CategoryAggregator::snapshot(common::BinWriter& w) const {
  w.u64(by_country_.size());
  for (const auto& [cc, data] : by_country_) {
    w.str(cc);
    write_domain_counts(w, data.tampered_by_domain);
    write_domain_counts(w, data.seen_by_domain);
  }
}

void CategoryAggregator::restore(common::BinReader& r) {
  by_country_.clear();  // lookup_ is config, not state: keep it
  const std::uint64_t countries = r.u64();
  for (std::uint64_t i = 0; i < countries; ++i) {
    std::string cc = r.str();
    CountryData& data = by_country_[std::move(cc)];
    read_domain_counts(r, data.tampered_by_domain);
    read_domain_counts(r, data.seen_by_domain);
  }
}

// ---- OverlapMatrix ----

void OverlapMatrix::add(const ConnectionRecord& record) {
  if (!record.domain) return;
  const common::FlowId key(
      common::mix64(record.client_ip_hash ^ common::fnv1a(*record.domain)));
  const std::size_t state = state_of(record.classification);
  const auto [it, inserted] = first_state_.try_emplace(key, state);
  if (inserted) return;                 // first observation of this pair
  matrix_[it->second][state] += 1;      // (first, next) transition
}

void OverlapMatrix::merge(const OverlapMatrix& other) {
  for (const auto& [key, state] : other.first_state_) {
    const auto [it, inserted] = first_state_.try_emplace(key, state);
    if (!inserted && state < it->second) it->second = state;
  }
  for (std::size_t i = 0; i < kStates; ++i)
    for (std::size_t j = 0; j < kStates; ++j) matrix_[i][j] += other.matrix_[i][j];
}

void OverlapMatrix::snapshot(common::BinWriter& w) const {
  w.u64(first_state_.size());
  for (const common::FlowId key : sorted_keys(first_state_)) {
    w.u64(key.value());
    w.u64(first_state_.at(key));
  }
  for (const auto& row : matrix_)
    for (std::uint64_t v : row) w.u64(v);
}

void OverlapMatrix::restore(common::BinReader& r) {
  first_state_.clear();
  const std::uint64_t pairs = r.u64();
  first_state_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(pairs, 1u << 20)));
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const common::FlowId key(r.u64());
    // States index matrix_ rows; clamp so no payload can yield OOB writes.
    first_state_[key] = static_cast<std::size_t>(std::min<std::uint64_t>(r.u64(), kStates - 1));
  }
  for (auto& row : matrix_)
    for (std::uint64_t& v : row) v = r.u64();
}

std::uint64_t OverlapMatrix::row_total(std::size_t first_state) const {
  std::uint64_t total = 0;
  for (std::uint64_t v : matrix_[first_state]) total += v;
  return total;
}

}  // namespace tamper::analysis
