#include "analysis/report.h"

#include <map>
#include <ostream>

#include "common/json.h"
#include "common/sim_clock.h"
#include "common/stats.h"
#include "obs/timeseries.h"

namespace tamper::analysis {

void write_radar_report(std::ostream& out, const Pipeline& pipeline,
                        const ReportOptions& options) {
  const SignatureMatrix& matrix = pipeline.signatures();
  common::JsonWriter json(out, options.pretty);

  json.begin_object();
  json.kv("schema", "tamper-radar/1");
  json.kv("privacy", "aggregates only: no client addresses, no domain names");

  json.key("global");
  json.begin_object();
  json.kv("connections", matrix.total_connections());
  json.kv("possibly_tampered_pct",
          common::percent(matrix.possibly_tampered(), matrix.total_connections()));
  json.kv("signature_match_pct",
          common::percent(matrix.matched(), matrix.total_connections()));
  json.kv("signature_coverage_of_possibly_tampered_pct",
          common::percent(matrix.matched(), matrix.possibly_tampered()));
  json.key("stage_share_of_possibly_tampered_pct");
  json.begin_object();
  for (core::Stage stage : {core::Stage::kPostSyn, core::Stage::kPostAck,
                            core::Stage::kPostPsh, core::Stage::kPostData,
                            core::Stage::kOther}) {
    json.kv(core::name(stage),
            common::percent(matrix.stage_possibly(stage), matrix.possibly_tampered()));
  }
  json.end_object();
  json.end_object();

  // Degraded-input accounting: how much hostile/corrupt input the ingest
  // path dropped or force-closed — without this, aggregate consumers cannot
  // tell a quiet day from a day where half the tap was garbage.
  const DegradedStats degraded = pipeline.degraded();
  json.key("degraded_input");
  json.begin_object();
  json.kv("empty_samples", degraded.empty_samples);
  json.kv("ingest_errors", degraded.ingest_errors);
  json.kv("malformed_packets", degraded.malformed_packets);
  json.kv("overload_evicted_flows", degraded.overload_evicted);
  json.kv("unparseable_frames", degraded.unparseable_frames);
  json.kv("oversize_frames", degraded.oversize_frames);
  json.kv("truncated_frames", degraded.truncated_frames);
  json.kv("queue_shed_embryonic", degraded.queue_shed_embryonic);
  json.kv("queue_shed_other", degraded.queue_shed_other);
  json.kv("spool_replay_failures", degraded.spool_replay_failures);
  json.kv("spool_dropped", degraded.spool_dropped);
  json.kv("admission_rate_limited", degraded.admission_rate_limited);
  json.kv("admission_sampled_down", degraded.admission_sampled_down);
  json.kv("admission_embryonic_shed", degraded.admission_embryonic_shed);
  json.kv("admission_rejected", degraded.admission_rejected);
  json.kv("total", degraded.total());
  json.end_object();

  // Fleet coverage (merged reports only): which PoPs are inside these
  // aggregates, per closed epoch. pops_reporting < pops_expected marks the
  // epoch explicitly degraded — the consumer sees reduced coverage instead
  // of silently-wrong totals.
  if (options.fleet != nullptr) {
    const FleetCoverage& fleet = *options.fleet;
    json.key("fleet");
    json.begin_object();
    json.kv("pops_expected", static_cast<std::uint64_t>(fleet.pops_expected));
    json.kv("pops_reporting", static_cast<std::uint64_t>(fleet.pops_reporting));
    json.kv("watermark_epoch", fleet.watermark);
    json.kv("max_epoch", fleet.max_epoch);
    json.kv("degraded", fleet.degraded);
    json.key("pops");
    json.begin_array();
    for (const FleetPopStatus& pop : fleet.pops) {
      json.begin_object();
      json.kv("pop", static_cast<std::uint64_t>(pop.pop.value()));
      json.kv("status", pop.status);
      json.kv("last_epoch", pop.last_epoch.value());
      json.kv("samples", pop.samples);
      json.kv("overload", pop.overload);
      json.kv("shed_samples", pop.shed_samples);
      json.end_object();
    }
    json.end_array();
    json.key("epochs");
    json.begin_array();
    for (const FleetEpochCoverage& epoch : fleet.epochs) {
      json.begin_object();
      json.kv("epoch", epoch.epoch.value());
      json.kv("pops_reporting", static_cast<std::uint64_t>(epoch.pops_reporting));
      json.kv("pops_expected", static_cast<std::uint64_t>(epoch.pops_expected));
      json.kv("pops_shedding", static_cast<std::uint64_t>(epoch.pops_shedding));
      json.kv("degraded", epoch.degraded());
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  // Per-signature global totals with country composition.
  json.key("signatures");
  json.begin_array();
  for (core::Signature sig : core::all_signatures()) {
    json.begin_object();
    json.kv("name", core::name(sig));
    json.kv("ascii_name", core::ascii_name(sig));
    json.kv("stage", core::name(core::stage_of(sig)));
    json.kv("matches", matrix.signature_total(sig));
    json.key("top_countries");
    json.begin_array();
    std::multimap<std::uint64_t, std::string, std::greater<>> ranked;
    for (const auto& cc : matrix.countries()) {
      const std::uint64_t count = matrix.count(cc, sig);
      if (count > 0 && cc != "??") ranked.emplace(count, cc);
    }
    int emitted = 0;
    for (const auto& [count, cc] : ranked) {
      if (++emitted > 5) break;
      json.begin_object();
      json.kv("country", cc);
      json.kv("share_pct", common::percent(count, matrix.signature_total(sig)));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  // Per-country rows (aggregation floor applied).
  json.key("countries");
  json.begin_array();
  for (const auto& cc : matrix.countries()) {
    const std::uint64_t connections = matrix.country_connections(cc);
    if (cc == "??" || connections < options.min_country_connections) continue;
    json.begin_object();
    json.kv("country", cc);
    json.kv("connections", connections);
    json.kv("match_pct", common::percent(matrix.country_matches(cc), connections));
    json.key("by_signature_pct");
    json.begin_object();
    for (core::Signature sig : core::all_signatures()) {
      const std::uint64_t count = matrix.count(cc, sig);
      if (count > 0) json.kv(core::ascii_name(sig), common::percent(count, connections));
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();

  // Longitudinal trends: the sampled epoch ring, with per-epoch coverage
  // annotations so a degraded epoch (PoPs missing or shedding) is never
  // read as a real rate drop, plus the watchdog's deterministic anomaly
  // events.
  if (options.include_trends && !pipeline.trends().empty()) {
    const obs::EpochRing& ring = pipeline.trends();
    json.key("trends");
    json.begin_object();
    json.kv("epoch_length_sec", ring.config().epoch_length_sec);
    json.kv("min_epoch", ring.min_epoch());
    json.kv("max_epoch", ring.max_epoch());
    obs::TimeseriesScope scope;
    scope.ring = &ring;
    if (options.trend_epochs != nullptr) scope.epochs = *options.trend_epochs;
    if (options.trend_anomalies != nullptr)
      scope.anomalies = *options.trend_anomalies;
    obs::write_timeseries_scope_fields(json, scope);
    json.end_object();
  }

  if (options.include_timeseries) {
    json.key("daily_timeseries");
    json.begin_array();
    for (const auto& cc : pipeline.timeseries().countries()) {
      if (cc == "??") continue;
      if (matrix.country_connections(cc) < options.min_country_connections) continue;
      // Collapse hourly buckets to days.
      std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> days;
      for (const auto& [hour, bucket] : pipeline.timeseries().country_hours(cc)) {
        auto& day = days[hour / 24];
        day.first += bucket.connections;
        day.second += bucket.post_ack_psh_matches;
      }
      json.begin_object();
      json.kv("country", cc);
      json.key("days");
      json.begin_array();
      for (const auto& [day, counts] : days) {
        json.begin_object();
        json.kv("date", common::format_date(static_cast<double>(day) * 86400.0));
        json.kv("connections", counts.first);
        json.kv("post_ack_psh_match_pct", common::percent(counts.second, counts.first));
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  out << '\n';
}

}  // namespace tamper::analysis
