#include "analysis/changes.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace tamper::analysis {

namespace {

/// Two-proportion z-statistic for counts (k1 of n1) vs (k2 of n2);
/// positive when the second (recent) proportion is higher.
double two_proportion_z(std::uint64_t k1, std::uint64_t n1, std::uint64_t k2,
                        std::uint64_t n2) {
  if (n1 == 0 || n2 == 0) return 0.0;
  const double p1 = static_cast<double>(k1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(k2) / static_cast<double>(n2);
  const double pooled =
      static_cast<double>(k1 + k2) / static_cast<double>(n1 + n2);
  const double variance =
      pooled * (1.0 - pooled) * (1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n2));
  if (variance <= 0.0) return 0.0;
  return (p2 - p1) / std::sqrt(variance);
}

}  // namespace

std::vector<ChangeEvent> detect_changes(const TimeSeries& series,
                                        const ChangeDetectorConfig& config) {
  std::vector<ChangeEvent> events;
  for (const auto& country : series.countries()) {
    const auto& hours = series.country_hours(country);
    if (hours.empty()) continue;
    const std::int64_t last_hour = hours.rbegin()->first;
    const std::int64_t split = last_hour - config.recent_hours;

    std::array<std::uint64_t, core::kSignatureCount> base_hits{}, recent_hits{};
    std::uint64_t base_total = 0, recent_total = 0;
    for (const auto& [hour, bucket] : hours) {
      const bool recent = hour > split;
      (recent ? recent_total : base_total) += bucket.connections;
      for (std::size_t s = 0; s < core::kSignatureCount; ++s)
        (recent ? recent_hits : base_hits)[s] += bucket.by_signature[s];
    }
    if (base_total < config.min_connections || recent_total < config.min_connections)
      continue;

    for (core::Signature sig : core::all_signatures()) {
      const auto idx = static_cast<std::size_t>(sig);
      const double z =
          two_proportion_z(base_hits[idx], base_total, recent_hits[idx], recent_total);
      if (std::abs(z) < config.z_threshold) continue;
      ChangeEvent event;
      event.country = country;
      event.signature = sig;
      event.baseline_pct = common::percent(base_hits[idx], base_total);
      event.recent_pct = common::percent(recent_hits[idx], recent_total);
      if (std::abs(event.recent_pct - event.baseline_pct) < config.min_abs_shift_pct)
        continue;
      event.z_score = z;
      event.baseline_connections = base_total;
      event.recent_connections = recent_total;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(), [](const ChangeEvent& a, const ChangeEvent& b) {
    return std::abs(a.z_score) > std::abs(b.z_score);
  });
  return events;
}

}  // namespace tamper::analysis
