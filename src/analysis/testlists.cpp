#include "analysis/testlists.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "world/countries.h"

namespace tamper::analysis {

namespace {

/// Popularity score in (0, 1]: ~1 for the head of the ranking, decaying
/// through the tail. Curated lists over-sample the head (volunteers and
/// researchers test famous domains).
double pop01(std::size_t rank) { return std::exp(-static_cast<double>(rank) / 4000.0); }

/// Curated lists are full of URL/host variants of the real domain
/// ("www.x.com", "m.x.com", deep links) that fail an eTLD+1 exact match but
/// still substring-match — the reason the paper's "Substring" rows beat the
/// exact rows (§5.5).
std::string curated_entry(const std::string& name, common::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.40) return name;
  if (roll < 0.62) return "www." + name;
  if (roll < 0.78) return "m." + name;
  if (roll < 0.90) return "blog." + name;
  return name + "/index";
}

}  // namespace

bool TestList::contains_substring(const std::string& domain) const {
  if (lookup.contains(domain)) return true;
  for (const auto& entry : entries) {
    if (entry.size() >= domain.size()) {
      if (entry.find(domain) != std::string::npos) return true;
    } else if (domain.find(entry) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TestListBuilder::TestListBuilder(const world::World& world, std::uint64_t seed)
    : world_(world), seed_(seed) {}

TestList TestListBuilder::ranked_list(std::size_t size, std::string name, double sigma,
                                      std::uint64_t salt) const {
  const auto& domains = world_.domains();
  common::Rng rng(seed_ ^ salt);
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(domains.size());
  for (std::size_t rank = 0; rank < domains.size(); ++rank) {
    // Noisy measured rank: rank * lognormal error.
    const double measured = static_cast<double>(rank + 1) * std::exp(rng.normal(0.0, sigma));
    scored.emplace_back(measured, rank);
  }
  size = std::min(size, scored.size());
  std::nth_element(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(size),
                   scored.end());
  TestList list;
  list.name = std::move(name);
  list.entries.reserve(size);
  for (std::size_t i = 0; i < size; ++i)
    list.entries.push_back(domains.by_rank(scored[i].second).name);
  list.lookup.insert(list.entries.begin(), list.entries.end());
  return list;
}

TestList TestListBuilder::tranco(std::size_t size, std::string name) const {
  return ranked_list(size, std::move(name), 0.35, 0x77a);
}

TestList TestListBuilder::majestic(std::size_t size, std::string name) const {
  // Majestic ranks by referring subnets: correlated with popularity but
  // noisier and skewed differently.
  return ranked_list(size, std::move(name), 0.85, 0x3a5);
}

TestList TestListBuilder::greatfire_all() const {
  const auto& domains = world_.domains();
  const int cn = world::country_index("CN");
  common::Rng rng(seed_ ^ 0x9f);
  TestList list;
  list.name = "Greatfire_all";
  for (std::size_t rank = 0; rank < domains.size(); ++rank) {
    const bool blocked_cn = cn >= 0 && world_.is_blocked(cn, rank);
    // Popularity-biased inclusion, boosted for domains actually blocked in
    // China, plus a large stale/noise floor of never-blocked domains — and
    // most entries are host variants rather than the clean eTLD+1.
    const double p = 0.35 * pop01(rank) + (blocked_cn ? 0.22 : 0.0) + 0.10;
    if (rng.chance(std::min(p, 1.0)))
      list.entries.push_back(curated_entry(domains.by_rank(rank).name, rng));
  }
  list.lookup.insert(list.entries.begin(), list.entries.end());
  return list;
}

TestList TestListBuilder::greatfire_30d() const {
  // Recently-tested subset: ~10% of the full list, popularity-biased.
  const TestList full = greatfire_all();
  const auto& domains = world_.domains();
  common::Rng rng(seed_ ^ 0x30d);
  TestList list;
  list.name = "Greatfire_30d";
  for (const auto& entry : full.entries) {
    const auto rank = domains.rank_of(entry);
    const double p = rank ? 0.04 + 0.5 * pop01(*rank) : 0.04;
    if (rng.chance(p)) list.entries.push_back(entry);
  }
  list.lookup.insert(list.entries.begin(), list.entries.end());
  return list;
}

TestList TestListBuilder::citizenlab() const {
  const auto& domains = world_.domains();
  common::Rng rng(seed_ ^ 0xc17);
  TestList list;
  list.name = "Citizenlab";
  for (std::size_t rank = 0; rank < domains.size(); ++rank) {
    // Hand-curated: strongly head-biased, with thin sensitive-category tails.
    const world::Category cat = domains.by_rank(rank).category;
    const bool sensitive = cat == world::Category::kNewsMedia ||
                           cat == world::Category::kSocialNetworks ||
                           cat == world::Category::kChat;
    const double p = 0.30 * std::pow(pop01(rank), 2.0) + (sensitive ? 0.012 : 0.002);
    if (rng.chance(p)) list.entries.push_back(curated_entry(domains.by_rank(rank).name, rng));
  }
  list.lookup.insert(list.entries.begin(), list.entries.end());
  return list;
}

TestList TestListBuilder::citizenlab_global() const {
  const auto& domains = world_.domains();
  common::Rng rng(seed_ ^ 0xc19);
  TestList list;
  list.name = "Citizenlab_global";
  for (std::size_t rank = 0; rank < domains.size(); ++rank) {
    const double p = 0.18 * std::pow(pop01(rank), 4.0);
    if (rng.chance(p)) list.entries.push_back(curated_entry(domains.by_rank(rank).name, rng));
  }
  list.lookup.insert(list.entries.begin(), list.entries.end());
  return list;
}

TestList TestListBuilder::citizenlab_country(const std::string& cc) const {
  const auto& domains = world_.domains();
  const int country = world::country_index(cc);
  common::Rng rng(seed_ ^ common::fnv1a(cc) ^ 0xcc);
  TestList list;
  list.name = "Citizenlab_" + cc;
  if (country < 0) return list;
  for (std::size_t rank = 0; rank < domains.size(); ++rank) {
    if (!world_.is_blocked(country, rank)) continue;
    // Volunteers know a thin, popularity-biased slice of the blocklist —
    // and lists lag policy, so much of it is stale (modeled by the small p).
    const double p = 0.02 + 0.25 * std::pow(pop01(rank), 3.0);
    if (rng.chance(p)) list.entries.push_back(curated_entry(domains.by_rank(rank).name, rng));
  }
  list.lookup.insert(list.entries.begin(), list.entries.end());
  return list;
}

TestList TestListBuilder::union_of(std::string name,
                                   const std::vector<const TestList*>& lists) {
  TestList out;
  out.name = std::move(name);
  for (const TestList* list : lists) {
    for (const auto& entry : list->entries) {
      if (out.lookup.insert(entry).second) out.entries.push_back(entry);
    }
  }
  return out;
}

std::vector<TestList> TestListBuilder::standard_battery() const {
  // Sizes mirror the paper's 1K/10K/100K/1M tiers, scaled to the synthetic
  // universe (the largest popularity tier reaches ~35% of it, as Tranco_1M
  // reaches only part of the CDN's zone corpus).
  const std::size_t n = world_.domains().size();
  std::vector<TestList> battery;
  battery.push_back(tranco(n / 1000, "Tranco_1K"));
  battery.push_back(tranco(n / 100, "Tranco_10K"));
  battery.push_back(tranco(n * 8 / 100, "Tranco_100K"));
  battery.push_back(tranco(n * 35 / 100, "Tranco_1M"));
  battery.push_back(majestic(n / 1000, "Majestic_1K"));
  battery.push_back(majestic(n / 100, "Majestic_10K"));
  battery.push_back(majestic(n * 8 / 100, "Majestic_100K"));
  battery.push_back(majestic(n * 35 / 100, "Majestic_1M"));
  battery.push_back(greatfire_all());
  battery.push_back(greatfire_30d());
  battery.push_back(citizenlab());
  battery.push_back(citizenlab_global());
  return battery;
}

Coverage audit_coverage(const TestList& list,
                        const std::vector<std::string>& observed_domains) {
  Coverage coverage;
  coverage.observed = observed_domains.size();
  for (const auto& domain : observed_domains) {
    if (list.contains(domain)) {
      ++coverage.exact;
      ++coverage.substring;
    } else if (list.contains_substring(domain)) {
      ++coverage.substring;
    }
  }
  return coverage;
}

}  // namespace tamper::analysis
