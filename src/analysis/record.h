// Per-connection analysis record.
//
// Everything here is derived the way the paper derives it: source country
// and AS from a geo lookup on the client address, the requested domain and
// application protocol from DPI on the first data payload, and the
// signature from the classifier. Ground truth never enters this path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "appproto/dpi.h"
#include "common/ids.h"
#include "capture/sample.h"
#include "core/classifier.h"
#include "world/geo.h"

namespace tamper::analysis {

struct ConnectionRecord {
  core::Classification classification;
  std::string country = "??";  ///< "??" when the source address is unattributed
  common::AsnId asn{};
  net::IpVersion ip_version = net::IpVersion::kV4;
  appproto::AppProtocol protocol = appproto::AppProtocol::kUnknown;
  std::optional<std::string> domain;  ///< from SNI / Host; absent for drops
  std::optional<std::string> http_user_agent;
  std::int64_t first_ts_sec = 0;
  std::uint64_t client_ip_hash = 0;  ///< stable key for (IP, domain) pairing
};

/// `parse_app_proto = false` is the overload ladder's evidence-only mode
/// (control::Level::kEvidenceOnly and above): skip the DPI payload
/// inspection, keeping the port-derived protocol and the tamper-signature
/// classification — the part of the record that must never degrade.
[[nodiscard]] inline ConnectionRecord analyze(const capture::ConnectionSample& sample,
                                              const world::GeoDatabase& geo,
                                              const core::SignatureClassifier& classifier,
                                              bool parse_app_proto = true) {
  ConnectionRecord record;
  record.classification = classifier.classify(sample);
  record.ip_version = sample.ip_version;
  if (const auto country = geo.lookup_country(sample.client_ip)) record.country = *country;
  if (const auto asn = geo.lookup_asn(sample.client_ip)) record.asn = *asn;
  record.client_ip_hash = sample.client_ip.hash();
  if (!sample.packets.empty()) record.first_ts_sec = sample.packets.front().ts_sec;

  // Port gives the coarse protocol; DPI refines it and yields the domain.
  if (sample.server_port == 80)
    record.protocol = appproto::AppProtocol::kHttp;
  else if (sample.server_port == 443)
    record.protocol = appproto::AppProtocol::kTls;
  if (const auto* payload = parse_app_proto ? sample.first_data_payload() : nullptr) {
    const appproto::DpiResult dpi = appproto::inspect_payload(*payload);
    if (dpi.protocol != appproto::AppProtocol::kUnknown) record.protocol = dpi.protocol;
    record.domain = dpi.domain;
    record.http_user_agent = dpi.http_user_agent;
  }
  return record;
}

}  // namespace tamper::analysis
