// Synthetic active-measurement test lists and the Table 3 coverage audit.
//
// Models the construction processes of the real lists:
//  * Tranco / Majestic — popularity rankings with measurement noise; larger
//    tiers reach deeper into the tail.
//  * GreatFire — curated around Chinese blocking, with a strong popularity
//    bias (volunteers test famous sites) and substantial staleness.
//  * Citizen Lab — small, hand-curated global and per-country lists.
//
// The audit asks the paper's question: of the domains we passively observed
// being tampered with in a region, what fraction would an active scanner
// driven by list X have tested?
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "world/world.h"

namespace tamper::analysis {

struct TestList {
  std::string name;
  std::vector<std::string> entries;
  std::unordered_set<std::string> lookup;

  // tamperlint-allow(R13): test lists match domain *text*, not interned identity
  [[nodiscard]] bool contains(const std::string& domain) const {
    return lookup.contains(domain);
  }
  /// Substring match in either direction (the paper's best-case rows).
  // tamperlint-allow(R13): substring matching is inherently textual
  [[nodiscard]] bool contains_substring(const std::string& domain) const;
};

class TestListBuilder {
 public:
  TestListBuilder(const world::World& world, std::uint64_t seed);

  /// Popularity lists; `size` entries of a noisily-measured ranking.
  [[nodiscard]] TestList tranco(std::size_t size, std::string name) const;
  [[nodiscard]] TestList majestic(std::size_t size, std::string name) const;

  [[nodiscard]] TestList greatfire_all() const;
  [[nodiscard]] TestList greatfire_30d() const;
  [[nodiscard]] TestList citizenlab() const;
  [[nodiscard]] TestList citizenlab_global() const;
  [[nodiscard]] TestList citizenlab_country(const std::string& cc) const;

  [[nodiscard]] static TestList union_of(std::string name,
                                         const std::vector<const TestList*>& lists);

  /// The standard battery used by the Table 3 bench: the four Tranco tiers,
  /// four Majestic tiers, GreatFire and Citizen Lab variants, plus unions.
  [[nodiscard]] std::vector<TestList> standard_battery() const;

 private:
  [[nodiscard]] TestList ranked_list(std::size_t size, std::string name, double sigma,
                                     std::uint64_t salt) const;

  const world::World& world_;
  std::uint64_t seed_;
};

struct Coverage {
  std::size_t observed = 0;   ///< tampered domains observed in the region
  std::size_t exact = 0;      ///< ... present in the list verbatim
  std::size_t substring = 0;  ///< ... matching as a substring
  [[nodiscard]] double exact_pct() const noexcept {
    return observed == 0 ? 0.0
                         : 100.0 * static_cast<double>(exact) / static_cast<double>(observed);
  }
  [[nodiscard]] double substring_pct() const noexcept {
    return observed == 0 ? 0.0
                         : 100.0 * static_cast<double>(substring) /
                               static_cast<double>(observed);
  }
};

[[nodiscard]] Coverage audit_coverage(const TestList& list,
                                      const std::vector<std::string>& observed_domains);

}  // namespace tamper::analysis
