// Injection evidence from IP-ID and TTL discontinuities (§4.3, Figs. 2-3).
//
// A forged tear-down packet is stamped by the injector's IP stack, so its
// IP-ID usually falls far from the client's counter and its TTL reflects a
// different path length. We measure, per connection:
//   * tampered: the maximum |delta| between each tear-down (RST) packet and
//     the preceding non-tear-down packet in the reconstructed order;
//   * clean ("Not Tampering"): the maximum |delta| between consecutive
//     packets — the baseline that is <= 1 for >95% of connections.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "analysis/record.h"
#include "capture/sample.h"
#include "common/binio.h"
#include "common/stats.h"
#include "core/classifier.h"
#include "core/signature.h"

namespace tamper::analysis {

struct EvidenceDeltas {
  std::optional<std::uint32_t> max_ipid_delta;  ///< absent when not computable
  std::optional<std::uint32_t> max_ttl_delta;
};

/// Deltas for one sample given its classification. IPv6 samples yield no
/// IP-ID delta (the field does not exist).
[[nodiscard]] EvidenceDeltas evidence_deltas(const capture::ConnectionSample& sample,
                                             const core::Classification& classification,
                                             const core::ClassifierConfig& config = {});

/// Per-signature CDFs of the deltas, capped at `per_signature_cap`
/// connections each (the paper samples up to 1,000 per signature).
class EvidenceCollector {
 public:
  static constexpr std::size_t kBuckets = core::kSignatureCount + 1;  ///< +1 clean

  explicit EvidenceCollector(std::size_t per_signature_cap = 1000)
      : cap_(per_signature_cap) {}

  void add(const capture::ConnectionSample& sample, const ConnectionRecord& record);

  /// Bucket index: signature value, or kBuckets-1 for "Not Tampering".
  [[nodiscard]] const common::EmpiricalCdf& ipid_cdf(std::size_t bucket) const {
    return ipid_[bucket];
  }
  [[nodiscard]] const common::EmpiricalCdf& ttl_cdf(std::size_t bucket) const {
    return ttl_[bucket];
  }
  [[nodiscard]] static std::size_t clean_bucket() noexcept { return kBuckets - 1; }

  /// Multiset union of the per-bucket delta samples (commutative monoid).
  /// The cap is a per-vantage collection-rate limit, deliberately NOT
  /// re-applied at merge time: truncating the union would make the result
  /// depend on merge order and break associativity. A merged bucket may
  /// therefore hold up to cap × PoP-count samples.
  void merge(const EvidenceCollector& other);

  void snapshot(common::BinWriter& w) const;
  void restore(common::BinReader& r);

 private:
  std::size_t cap_;
  std::array<common::EmpiricalCdf, kBuckets> ipid_{};
  std::array<common::EmpiricalCdf, kBuckets> ttl_{};
};

}  // namespace tamper::analysis
