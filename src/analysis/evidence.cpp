#include "analysis/evidence.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace tamper::analysis {

namespace {
std::uint32_t abs_delta_u16(std::uint16_t a, std::uint16_t b) noexcept {
  return static_cast<std::uint32_t>(a > b ? a - b : b - a);
}
std::uint32_t abs_delta_u8(std::uint8_t a, std::uint8_t b) noexcept {
  return static_cast<std::uint32_t>(a > b ? a - b : b - a);
}
}  // namespace

EvidenceDeltas evidence_deltas(const capture::ConnectionSample& sample,
                               const core::Classification& classification,
                               const core::ClassifierConfig& config) {
  EvidenceDeltas out;
  const auto ordered = core::order_packets(sample, config);
  if (ordered.size() < 2) return out;
  const bool has_ipid = sample.ip_version == net::IpVersion::kV4;

  std::uint32_t ipid_max = 0, ttl_max = 0;
  bool any = false;
  if (classification.signature && classification.rst_count + classification.rst_ack_count > 0) {
    // Tampered: compare each tear-down packet with the closest preceding
    // non-tear-down packet.
    const capture::ObservedPacket* last_clean = nullptr;
    for (const auto* pkt : ordered) {
      if (pkt->is_rst()) {
        if (last_clean == nullptr) continue;
        ipid_max = std::max(ipid_max, abs_delta_u16(pkt->ip_id, last_clean->ip_id));
        ttl_max = std::max(ttl_max, abs_delta_u8(pkt->ttl, last_clean->ttl));
        any = true;
      } else {
        last_clean = pkt;
      }
    }
  } else {
    // Baseline: consecutive-packet deltas.
    for (std::size_t i = 1; i < ordered.size(); ++i) {
      ipid_max = std::max(ipid_max, abs_delta_u16(ordered[i]->ip_id, ordered[i - 1]->ip_id));
      ttl_max = std::max(ttl_max, abs_delta_u8(ordered[i]->ttl, ordered[i - 1]->ttl));
      any = true;
    }
  }
  if (!any) return out;
  if (has_ipid) out.max_ipid_delta = ipid_max;
  out.max_ttl_delta = ttl_max;
  return out;
}

void EvidenceCollector::add(const capture::ConnectionSample& sample,
                            const ConnectionRecord& record) {
  const auto& c = record.classification;
  std::size_t bucket;
  if (c.signature) {
    bucket = static_cast<std::size_t>(*c.signature);
  } else if (!c.possibly_tampered) {
    bucket = clean_bucket();
  } else {
    return;  // unmatched possibly-tampered: not plotted in Figs. 2-3
  }
  if (ttl_[bucket].count() >= cap_) return;
  const EvidenceDeltas deltas = evidence_deltas(sample, c);
  if (deltas.max_ipid_delta) ipid_[bucket].add(static_cast<double>(*deltas.max_ipid_delta));
  if (deltas.max_ttl_delta) ttl_[bucket].add(static_cast<double>(*deltas.max_ttl_delta));
}

namespace {

void write_cdf(common::BinWriter& w, const common::EmpiricalCdf& cdf) {
  const auto samples = cdf.sorted_samples();
  w.u64(samples.size());
  for (double v : samples) w.f64(v);
}

void read_cdf(common::BinReader& r, common::EmpiricalCdf& cdf) {
  const std::uint64_t n = r.u64();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 1u << 20)));
  for (std::uint64_t i = 0; i < n; ++i) samples.push_back(r.f64());
  cdf.assign(std::move(samples));
}

}  // namespace

void EvidenceCollector::merge(const EvidenceCollector& other) {
  cap_ = std::max(cap_, other.cap_);
  const auto merge_cdf = [](common::EmpiricalCdf& into, const common::EmpiricalCdf& from) {
    if (from.count() == 0) return;
    std::vector<double> samples = into.sorted_samples();
    const std::vector<double> more = from.sorted_samples();
    samples.insert(samples.end(), more.begin(), more.end());
    into.assign(std::move(samples));
  };
  for (std::size_t b = 0; b < kBuckets; ++b) {
    merge_cdf(ipid_[b], other.ipid_[b]);
    merge_cdf(ttl_[b], other.ttl_[b]);
  }
}

void EvidenceCollector::snapshot(common::BinWriter& w) const {
  w.u64(cap_);
  for (const auto& cdf : ipid_) write_cdf(w, cdf);
  for (const auto& cdf : ttl_) write_cdf(w, cdf);
}

void EvidenceCollector::restore(common::BinReader& r) {
  cap_ = static_cast<std::size_t>(r.u64());
  for (auto& cdf : ipid_) read_cdf(r, cdf);
  for (auto& cdf : ttl_) read_cdf(r, cdf);
}

}  // namespace tamper::analysis
