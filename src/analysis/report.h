// Aggregate JSON report export — the shape of the data the paper shares
// publicly on Cloudflare Radar (§1, "Data sharing"): per-country signature
// shares and stage mixes, per-signature country composition, and daily time
// series. Only aggregates are exported, mirroring the paper's privacy
// posture (§3.3): no addresses, no domains.
#pragma once

#include <iosfwd>

#include "analysis/pipeline.h"

namespace tamper::analysis {

struct ReportOptions {
  /// Countries with fewer sampled connections are suppressed (aggregation
  /// floor, like the paper's aggregate-only reporting).
  std::uint64_t min_country_connections = 200;
  /// Emit the per-country daily time series section.
  bool include_timeseries = true;
  bool pretty = true;
};

/// Serialize the pipeline's aggregates as a JSON document.
void write_radar_report(std::ostream& out, const Pipeline& pipeline,
                        const ReportOptions& options = {});

}  // namespace tamper::analysis
