// Aggregate JSON report export — the shape of the data the paper shares
// publicly on Cloudflare Radar (§1, "Data sharing"): per-country signature
// shares and stage mixes, per-signature country composition, and daily time
// series. Only aggregates are exported, mirroring the paper's privacy
// posture (§3.3): no addresses, no domains.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "common/ids.h"

namespace tamper::analysis {

/// Per-PoP status as seen by the fleet merger at report time.
struct FleetPopStatus {
  common::PopId pop{};
  std::string status;             ///< "live" | "lagging" | "dead" | "silent"
  common::EpochId last_epoch{};   ///< newest epoch received (0 when silent)
  std::uint64_t samples = 0;      ///< samples in the PoP's newest partial
  /// Overload-control state carried in the PoP's newest partial:
  /// snake_case ladder level name (control::name) and cumulative admission
  /// sheds. "normal"/0 for partials from pre-overload PoPs.
  std::string overload = "normal";
  std::uint64_t shed_samples = 0;
};

/// Coverage for one closed epoch: which PoPs' data is inside the merged
/// aggregates for that epoch.
struct FleetEpochCoverage {
  common::EpochId epoch{};
  std::uint32_t pops_reporting = 0;
  std::uint32_t pops_expected = 0;
  /// PoPs whose partial covers this epoch while admission control was
  /// shedding (their contribution is incomplete even though they reported).
  std::uint32_t pops_shedding = 0;
  [[nodiscard]] bool degraded() const noexcept {
    return pops_reporting < pops_expected || pops_shedding > 0;
  }
};

/// Fleet coverage block for the merged Radar report. Every field here is a
/// pure function of the merger's current partial set — never of arrival
/// order — so the merged report stays byte-stable across reorderings.
struct FleetCoverage {
  std::uint32_t pops_expected = 0;
  std::uint32_t pops_reporting = 0;  ///< PoPs with any partial received
  std::uint64_t watermark = 0;       ///< newest epoch considered closed
  std::uint64_t max_epoch = 0;       ///< newest epoch seen from any PoP
  bool degraded = false;             ///< any closed epoch below full coverage
  std::vector<FleetPopStatus> pops;
  std::vector<FleetEpochCoverage> epochs;  ///< closed epochs, oldest first
};

struct ReportOptions {
  /// Countries with fewer sampled connections are suppressed (aggregation
  /// floor, like the paper's aggregate-only reporting).
  std::uint64_t min_country_connections = 200;
  /// Emit the per-country daily time series section.
  bool include_timeseries = true;
  bool pretty = true;
  /// When set (by the fleet merger), a "fleet" section with per-epoch
  /// coverage is emitted after degraded_input.
  const FleetCoverage* fleet = nullptr;
  /// Longitudinal "trends" block (obs/timeseries.h): emitted when the
  /// pipeline's epoch ring holds points. Coverage notes and anomaly events
  /// come from the caller — the fleet merger passes merged per-epoch
  /// coverage, a local service its anomaly watchdog's last scan; when null
  /// the block carries empty arrays for them.
  bool include_trends = true;
  const std::vector<obs::EpochCoverageNote>* trend_epochs = nullptr;
  const std::vector<obs::AnomalyEvent>* trend_anomalies = nullptr;
};

/// Serialize the pipeline's aggregates as a JSON document.
void write_radar_report(std::ostream& out, const Pipeline& pipeline,
                        const ReportOptions& options = {});

}  // namespace tamper::analysis
