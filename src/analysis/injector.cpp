#include "analysis/injector.h"

namespace tamper::analysis {

std::optional<InjectorDistance> estimate_injector_distance(
    const capture::ConnectionSample& sample, const core::Classification& classification,
    const core::ClassifierConfig& config) {
  if (!classification.possibly_tampered ||
      classification.rst_count + classification.rst_ack_count == 0)
    return std::nullopt;

  const auto ordered = core::order_packets(sample, config);
  const capture::ObservedPacket* client_pkt = nullptr;
  const capture::ObservedPacket* teardown = nullptr;
  for (const auto* pkt : ordered) {
    if (pkt->is_rst()) {
      if (teardown == nullptr) teardown = pkt;
    } else if (client_pkt == nullptr) {
      client_pkt = pkt;  // first genuine client packet (the SYN)
    }
  }
  if (client_pkt == nullptr || teardown == nullptr) return std::nullopt;

  const auto client_hops = hops_from_initial_ttl(client_pkt->ttl);
  const auto injector_hops = hops_from_initial_ttl(teardown->ttl);
  if (!client_hops || !injector_hops) return std::nullopt;
  if (*client_hops == 0) return std::nullopt;  // degenerate (zero-hop path)

  InjectorDistance out;
  out.client_hops = *client_hops;
  out.injector_hops = *injector_hops;
  return out;
}

}  // namespace tamper::analysis
