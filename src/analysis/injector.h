// Injector distance estimation — a natural extension of the paper's TTL
// evidence (Fig. 3). The arrival TTL of a forged tear-down packet encodes
// how many hops it traveled: assuming the injector initialized its TTL at
// one of the common constants (64, 128, 255), the distance is the gap to
// the next constant above the observed value. Comparing against the
// client's own distance localizes the middlebox coarsely along the path —
// the "where did this happen" question §3.4 leaves open.
#pragma once

#include <cstdint>
#include <optional>

#include "capture/sample.h"
#include "core/classifier.h"

namespace tamper::analysis {

struct InjectorDistance {
  int injector_hops = 0;  ///< estimated hops from the injector to the server
  int client_hops = 0;    ///< estimated hops from the client to the server
  /// injector_hops / client_hops: ~1 means near the client (access-network
  /// filtering), ~0 means near the server, in between is a transit censor.
  [[nodiscard]] double relative_position() const noexcept {
    return client_hops == 0
               ? 0.0
               : static_cast<double>(injector_hops) / static_cast<double>(client_hops);
  }
};

/// Distance of a TTL value to the next common initial TTL at or above it.
[[nodiscard]] inline std::optional<int> hops_from_initial_ttl(std::uint8_t observed) {
  for (int initial : {32, 64, 128, 255}) {
    if (observed <= initial && initial - static_cast<int>(observed) <= 31)
      return initial - static_cast<int>(observed);
  }
  return std::nullopt;  // implausible gap: likely a randomized TTL
}

/// Estimate where the injector sits for a tampered sample. Returns nullopt
/// when there is no tear-down packet, the TTLs are implausible (randomized
/// injectors), or the estimate degenerates.
[[nodiscard]] std::optional<InjectorDistance> estimate_injector_distance(
    const capture::ConnectionSample& sample, const core::Classification& classification,
    const core::ClassifierConfig& config = {});

}  // namespace tamper::analysis
