#include "analysis/pipeline.h"

namespace tamper::analysis {

Pipeline::Pipeline(const world::World& world, core::ClassifierConfig classifier_config)
    : world_(world),
      classifier_(classifier_config),
      categories_([&world](const std::string& domain) -> std::optional<world::Category> {
        const auto rank = world.domains().rank_of(domain);
        if (!rank) return std::nullopt;
        return world.domains().by_rank(*rank).category;
      }) {}

// tamperlint: nothrow-path
void Pipeline::ingest(const capture::ConnectionSample& sample) noexcept {
  // A flow with no packets was never actually observed at the tap (e.g. the
  // SYN itself was lost upstream).
  if (sample.packets.empty()) {
    common::MutexLock lock(stats_mu_);
    ++degraded_.empty_samples;
    return;
  }
  try {
    const ConnectionRecord record = analyze(sample, world_.geo(), classifier_);
    matrix_.add(record);
    asns_.add(record);
    timeseries_.add(record);
    version_protocol_.add(record);
    categories_.add(record);
    overlap_.add(record);
    evidence_.add(sample, record);

    ++scanner_.connections;
    const core::ScannerIndicators indicators = core::scanner_indicators(sample);
    if (indicators.no_tcp_options) ++scanner_.no_tcp_options;
    if (indicators.high_ttl) ++scanner_.high_ttl;
    if (record.classification.signature == core::Signature::kSynRst) {
      ++scanner_.syn_rst_matches;
      if (indicators.likely_zmap()) ++scanner_.syn_rst_zmap;
    }
  } catch (...) {
    // One hostile sample must not take down the service; count and move on.
    common::MutexLock lock(stats_mu_);
    ++degraded_.ingest_errors;
  }
}

void Pipeline::run(world::TrafficGenerator& generator, std::size_t connections) {
  generator.generate(connections,
                     [this](world::LabeledConnection&& conn) { ingest(conn.sample); });
}

void Pipeline::snapshot(common::BinWriter& w) const {
  {
    common::MutexLock lock(stats_mu_);
    w.u64(degraded_.empty_samples);
    w.u64(degraded_.ingest_errors);
    w.u64(degraded_.malformed_packets);
    w.u64(degraded_.overload_evicted);
    w.u64(degraded_.unparseable_frames);
    w.u64(degraded_.oversize_frames);
    w.u64(degraded_.truncated_frames);
    w.u64(degraded_.queue_shed_embryonic);
    w.u64(degraded_.queue_shed_other);
  }

  w.u64(scanner_.connections);
  w.u64(scanner_.no_tcp_options);
  w.u64(scanner_.high_ttl);
  w.u64(scanner_.syn_rst_matches);
  w.u64(scanner_.syn_rst_zmap);

  matrix_.snapshot(w);
  asns_.snapshot(w);
  timeseries_.snapshot(w);
  version_protocol_.snapshot(w);
  categories_.snapshot(w);
  overlap_.snapshot(w);
  evidence_.snapshot(w);
}

void Pipeline::restore(common::BinReader& r) {
  {
    common::MutexLock lock(stats_mu_);
    degraded_.empty_samples = r.u64();
    degraded_.ingest_errors = r.u64();
    degraded_.malformed_packets = r.u64();
    degraded_.overload_evicted = r.u64();
    degraded_.unparseable_frames = r.u64();
    degraded_.oversize_frames = r.u64();
    degraded_.truncated_frames = r.u64();
    degraded_.queue_shed_embryonic = r.u64();
    degraded_.queue_shed_other = r.u64();
  }

  scanner_.connections = r.u64();
  scanner_.no_tcp_options = r.u64();
  scanner_.high_ttl = r.u64();
  scanner_.syn_rst_matches = r.u64();
  scanner_.syn_rst_zmap = r.u64();

  matrix_.restore(r);
  asns_.restore(r);
  timeseries_.restore(r);
  version_protocol_.restore(r);
  categories_.restore(r);
  overlap_.restore(r);
  evidence_.restore(r);

  // A restored process reads fresh sources whose cumulative counters start
  // at zero again; the delta baselines must follow.
  {
    common::MutexLock lock(stats_mu_);
    last_reader_ = {};
    last_sampler_ = {};
    last_queue_ = {};
  }
}

}  // namespace tamper::analysis
