#include "analysis/pipeline.h"

namespace tamper::analysis {

Pipeline::Pipeline(const world::World& world, core::ClassifierConfig classifier_config)
    : world_(world),
      classifier_(classifier_config),
      categories_([&world](const std::string& domain) -> std::optional<world::Category> {
        const auto rank = world.domains().rank_of(domain);
        if (!rank) return std::nullopt;
        return world.domains().by_rank(*rank).category;
      }) {}

void Pipeline::ingest(const capture::ConnectionSample& sample) noexcept {
  // A flow with no packets was never actually observed at the tap (e.g. the
  // SYN itself was lost upstream).
  if (sample.packets.empty()) {
    ++degraded_.empty_samples;
    return;
  }
  try {
    const ConnectionRecord record = analyze(sample, world_.geo(), classifier_);
    matrix_.add(record);
    asns_.add(record);
    timeseries_.add(record);
    version_protocol_.add(record);
    categories_.add(record);
    overlap_.add(record);
    evidence_.add(sample, record);

    ++scanner_.connections;
    const core::ScannerIndicators indicators = core::scanner_indicators(sample);
    if (indicators.no_tcp_options) ++scanner_.no_tcp_options;
    if (indicators.high_ttl) ++scanner_.high_ttl;
    if (record.classification.signature == core::Signature::kSynRst) {
      ++scanner_.syn_rst_matches;
      if (indicators.likely_zmap()) ++scanner_.syn_rst_zmap;
    }
  } catch (...) {
    // One hostile sample must not take down the service; count and move on.
    ++degraded_.ingest_errors;
  }
}

void Pipeline::run(world::TrafficGenerator& generator, std::size_t connections) {
  generator.generate(connections,
                     [this](world::LabeledConnection&& conn) { ingest(conn.sample); });
}

}  // namespace tamper::analysis
