#include "analysis/pipeline.h"

namespace tamper::analysis {

Pipeline::Pipeline(const world::World& world, core::ClassifierConfig classifier_config)
    : world_(world),
      classifier_(classifier_config),
      categories_([&world](const std::string& domain) -> std::optional<world::Category> {
        const auto rank = world.domains().rank_of(domain);
        if (!rank) return std::nullopt;
        return world.domains().by_rank(*rank).category;
      }) {}

Pipeline::~Pipeline() {
  if (obs_metrics_ != nullptr) obs_metrics_->remove_collector(obs_collector_);
}

void Pipeline::set_obs(obs::Registry* metrics, obs::Tracer* tracer,
                       const obs::Clock* clock) {
  if (obs_metrics_ != nullptr) obs_metrics_->remove_collector(obs_collector_);
  obs_metrics_ = metrics;
  tracer_ = tracer;
  obs_clock_ = clock != nullptr ? clock : &obs::monotonic_clock();
  obs_samples_ = nullptr;
  obs_classify_seconds_ = nullptr;
  if (metrics == nullptr) return;

  obs_samples_ = &metrics->counter("tamper_pipeline_samples_total",
                                   "Samples presented to Pipeline::ingest");
  obs_classify_seconds_ = &metrics->histogram(
      "tamper_pipeline_classify_seconds",
      "Classify+aggregate latency per sample, sampled 1 in 64",
      obs::duration_buckets());
  auto& degraded_family = metrics->counter_family(
      "tamper_pipeline_degraded_total",
      "Degraded-input events by cause (mirrors DegradedStats)", {"cause"});
  struct CauseMirror {
    obs::Counter* counter;
    std::uint64_t DegradedStats::* field;
  };
  const std::vector<CauseMirror> mirrors = {
      {&degraded_family.with({"empty_samples"}), &DegradedStats::empty_samples},
      {&degraded_family.with({"ingest_errors"}), &DegradedStats::ingest_errors},
      {&degraded_family.with({"malformed_packets"}), &DegradedStats::malformed_packets},
      {&degraded_family.with({"overload_evicted"}), &DegradedStats::overload_evicted},
      {&degraded_family.with({"unparseable_frames"}), &DegradedStats::unparseable_frames},
      {&degraded_family.with({"oversize_frames"}), &DegradedStats::oversize_frames},
      {&degraded_family.with({"truncated_frames"}), &DegradedStats::truncated_frames},
      {&degraded_family.with({"queue_shed_embryonic"}),
       &DegradedStats::queue_shed_embryonic},
      {&degraded_family.with({"queue_shed_other"}), &DegradedStats::queue_shed_other},
      {&degraded_family.with({"spool_replay_failures"}),
       &DegradedStats::spool_replay_failures},
      {&degraded_family.with({"spool_dropped"}), &DegradedStats::spool_dropped},
      {&degraded_family.with({"admission_rate_limited"}),
       &DegradedStats::admission_rate_limited},
      {&degraded_family.with({"admission_sampled_down"}),
       &DegradedStats::admission_sampled_down},
      {&degraded_family.with({"admission_embryonic_shed"}),
       &DegradedStats::admission_embryonic_shed},
      {&degraded_family.with({"admission_rejected"}),
       &DegradedStats::admission_rejected},
  };
  obs_collector_ = metrics->add_collector([this, mirrors] {
    const DegradedStats d = degraded();
    for (const CauseMirror& m : mirrors) m.counter->increment_to(d.*m.field);
  });
}

// tamperlint: nothrow-path
void Pipeline::ingest(const capture::ConnectionSample& sample) noexcept {
  obs::Tracer::Span ingest_span(tracer_, obs::stage::kIngest, obs::stage::kCategory);
  std::uint64_t seq = 0;
  if (obs_samples_ != nullptr) seq = obs_samples_->add();
  // A flow with no packets was never actually observed at the tap (e.g. the
  // SYN itself was lost upstream).
  if (sample.packets.empty()) {
    common::MutexLock lock(stats_mu_);
    ++degraded_.empty_samples;
    return;
  }
  if (sample.observation_end_sec > latest_ts_sec_)
    latest_ts_sec_ = sample.observation_end_sec;
  // Sampled latency probe: 1 in 64 keeps the steady-state cost of the
  // instrumentation to two relaxed fetch_adds per sample.
  const bool timed = obs_classify_seconds_ != nullptr && (seq & 63) == 1;
  const std::uint64_t t0 = timed ? obs_clock_->now_ns() : 0;
  try {
    obs::Tracer::Span classify_span(tracer_, obs::stage::kClassify,
                                    obs::stage::kCategory);
    const ConnectionRecord record =
        analyze(sample, world_.geo(), classifier_,
                /*parse_app_proto=*/!evidence_only_.load(std::memory_order_relaxed));
    classify_span.finish();
    obs::Tracer::Span aggregate_span(tracer_, obs::stage::kAggregate,
                                     obs::stage::kCategory);
    matrix_.add(record);
    asns_.add(record);
    timeseries_.add(record);
    version_protocol_.add(record);
    categories_.add(record);
    overlap_.add(record);
    evidence_.add(sample, record);

    ++scanner_.connections;
    const core::ScannerIndicators indicators = core::scanner_indicators(sample);
    if (indicators.no_tcp_options) ++scanner_.no_tcp_options;
    if (indicators.high_ttl) ++scanner_.high_ttl;
    if (record.classification.signature == core::Signature::kSynRst) {
      ++scanner_.syn_rst_matches;
      if (indicators.likely_zmap()) ++scanner_.syn_rst_zmap;
    }
  } catch (...) {
    // One hostile sample must not take down the service; count and move on.
    common::MutexLock lock(stats_mu_);
    ++degraded_.ingest_errors;
  }
  if (timed)
    obs_classify_seconds_->observe(
        static_cast<double>(obs_clock_->now_ns() - t0) * 1e-9);
}

void Pipeline::run(world::TrafficGenerator& generator, std::size_t connections) {
  generator.generate(connections,
                     [this](world::LabeledConnection&& conn) { ingest(conn.sample); });
}

void Pipeline::snapshot(common::BinWriter& w) const {
  {
    common::MutexLock lock(stats_mu_);
    w.u64(degraded_.empty_samples);
    w.u64(degraded_.ingest_errors);
    w.u64(degraded_.malformed_packets);
    w.u64(degraded_.overload_evicted);
    w.u64(degraded_.unparseable_frames);
    w.u64(degraded_.oversize_frames);
    w.u64(degraded_.truncated_frames);
    w.u64(degraded_.queue_shed_embryonic);
    w.u64(degraded_.queue_shed_other);
    w.u64(degraded_.spool_replay_failures);
    w.u64(degraded_.spool_dropped);
    w.u64(degraded_.admission_rate_limited);
    w.u64(degraded_.admission_sampled_down);
    w.u64(degraded_.admission_embryonic_shed);
    w.u64(degraded_.admission_rejected);
  }

  w.u64(scanner_.connections);
  w.u64(scanner_.no_tcp_options);
  w.u64(scanner_.high_ttl);
  w.u64(scanner_.syn_rst_matches);
  w.u64(scanner_.syn_rst_zmap);
  w.i64(latest_ts_sec_);

  matrix_.snapshot(w);
  asns_.snapshot(w);
  timeseries_.snapshot(w);
  version_protocol_.snapshot(w);
  categories_.snapshot(w);
  overlap_.snapshot(w);
  evidence_.snapshot(w);
}

void Pipeline::restore(common::BinReader& r) {
  {
    common::MutexLock lock(stats_mu_);
    degraded_.empty_samples = r.u64();
    degraded_.ingest_errors = r.u64();
    degraded_.malformed_packets = r.u64();
    degraded_.overload_evicted = r.u64();
    degraded_.unparseable_frames = r.u64();
    degraded_.oversize_frames = r.u64();
    degraded_.truncated_frames = r.u64();
    degraded_.queue_shed_embryonic = r.u64();
    degraded_.queue_shed_other = r.u64();
    degraded_.spool_replay_failures = r.u64();
    degraded_.spool_dropped = r.u64();
    degraded_.admission_rate_limited = r.u64();
    degraded_.admission_sampled_down = r.u64();
    degraded_.admission_embryonic_shed = r.u64();
    degraded_.admission_rejected = r.u64();
  }

  scanner_.connections = r.u64();
  scanner_.no_tcp_options = r.u64();
  scanner_.high_ttl = r.u64();
  scanner_.syn_rst_matches = r.u64();
  scanner_.syn_rst_zmap = r.u64();
  latest_ts_sec_ = r.i64();

  matrix_.restore(r);
  asns_.restore(r);
  timeseries_.restore(r);
  version_protocol_.restore(r);
  categories_.restore(r);
  overlap_.restore(r);
  evidence_.restore(r);

  // A restored process reads fresh sources whose cumulative counters start
  // at zero again; the delta baselines must follow.
  {
    common::MutexLock lock(stats_mu_);
    last_reader_ = {};
    last_sampler_ = {};
    last_queue_ = {};
    last_sink_replay_failures_ = 0;
    last_spool_dropped_ = 0;
    last_admission_ = {};
  }
}

void Pipeline::merge_from(const Pipeline& other) {
  {
    // Lock ordering: this->stats_mu_ before other.stats_mu_. The merger
    // only ever folds decoded partials (never two live pipelines that could
    // merge into each other), so the order cannot invert.
    common::MutexLock lock(stats_mu_);
    const DegradedStats od = other.degraded();
    degraded_.empty_samples += od.empty_samples;
    degraded_.ingest_errors += od.ingest_errors;
    degraded_.malformed_packets += od.malformed_packets;
    degraded_.overload_evicted += od.overload_evicted;
    degraded_.unparseable_frames += od.unparseable_frames;
    degraded_.oversize_frames += od.oversize_frames;
    degraded_.truncated_frames += od.truncated_frames;
    degraded_.queue_shed_embryonic += od.queue_shed_embryonic;
    degraded_.queue_shed_other += od.queue_shed_other;
    degraded_.spool_replay_failures += od.spool_replay_failures;
    degraded_.spool_dropped += od.spool_dropped;
    degraded_.admission_rate_limited += od.admission_rate_limited;
    degraded_.admission_sampled_down += od.admission_sampled_down;
    degraded_.admission_embryonic_shed += od.admission_embryonic_shed;
    degraded_.admission_rejected += od.admission_rejected;
  }

  scanner_.connections += other.scanner_.connections;
  scanner_.no_tcp_options += other.scanner_.no_tcp_options;
  scanner_.high_ttl += other.scanner_.high_ttl;
  scanner_.syn_rst_matches += other.scanner_.syn_rst_matches;
  scanner_.syn_rst_zmap += other.scanner_.syn_rst_zmap;
  if (other.latest_ts_sec_ > latest_ts_sec_) latest_ts_sec_ = other.latest_ts_sec_;

  matrix_.merge(other.matrix_);
  asns_.merge(other.asns_);
  timeseries_.merge(other.timeseries_);
  version_protocol_.merge(other.version_protocol_);
  categories_.merge(other.categories_);
  overlap_.merge(other.overlap_);
  evidence_.merge(other.evidence_);
}

}  // namespace tamper::analysis
