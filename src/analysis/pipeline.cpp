#include "analysis/pipeline.h"

namespace tamper::analysis {

Pipeline::Pipeline(const world::World& world, core::ClassifierConfig classifier_config)
    : world_(world),
      classifier_(classifier_config),
      categories_([&world](const std::string& domain) -> std::optional<world::Category> {
        const auto rank = world.domains().rank_of(domain);
        if (!rank) return std::nullopt;
        return world.domains().by_rank(*rank).category;
      }) {}

Pipeline::~Pipeline() {
  if (obs_metrics_ != nullptr) obs_metrics_->remove_collector(obs_collector_);
}

void Pipeline::set_obs(obs::Registry* metrics, obs::Tracer* tracer,
                       const obs::Clock* clock) {
  if (obs_metrics_ != nullptr) obs_metrics_->remove_collector(obs_collector_);
  obs_metrics_ = metrics;
  tracer_ = tracer;
  obs_clock_ = clock != nullptr ? clock : &obs::monotonic_clock();
  obs_samples_ = nullptr;
  obs_classify_seconds_ = nullptr;
  class_connections_c_ = class_possibly_c_ = class_matched_c_ = nullptr;
  class_signature_fam_ = class_country_conn_fam_ = class_country_match_fam_ = nullptr;
  class_signature_mirror_.fill(nullptr);
  class_country_conn_mirror_.clear();
  class_country_match_mirror_.clear();
  ts_points_c_ = ts_dropped_c_ = nullptr;
  ts_series_g_ = ts_latest_epoch_g_ = nullptr;
  if (metrics == nullptr) return;

  obs_samples_ = &metrics->counter("tamper_pipeline_samples_total",
                                   "Samples presented to Pipeline::ingest");
  obs_classify_seconds_ = &metrics->histogram(
      "tamper_pipeline_classify_seconds",
      "Classify+aggregate latency per sample, sampled 1 in 64",
      obs::duration_buckets());
  auto& degraded_family = metrics->counter_family(
      "tamper_pipeline_degraded_total",
      "Degraded-input events by cause (mirrors DegradedStats)", {"cause"});
  struct CauseMirror {
    obs::Counter* counter;
    std::uint64_t DegradedStats::* field;
  };
  const std::vector<CauseMirror> mirrors = {
      {&degraded_family.with({"empty_samples"}), &DegradedStats::empty_samples},
      {&degraded_family.with({"ingest_errors"}), &DegradedStats::ingest_errors},
      {&degraded_family.with({"malformed_packets"}), &DegradedStats::malformed_packets},
      {&degraded_family.with({"overload_evicted"}), &DegradedStats::overload_evicted},
      {&degraded_family.with({"unparseable_frames"}), &DegradedStats::unparseable_frames},
      {&degraded_family.with({"oversize_frames"}), &DegradedStats::oversize_frames},
      {&degraded_family.with({"truncated_frames"}), &DegradedStats::truncated_frames},
      {&degraded_family.with({"queue_shed_embryonic"}),
       &DegradedStats::queue_shed_embryonic},
      {&degraded_family.with({"queue_shed_other"}), &DegradedStats::queue_shed_other},
      {&degraded_family.with({"spool_replay_failures"}),
       &DegradedStats::spool_replay_failures},
      {&degraded_family.with({"spool_dropped"}), &DegradedStats::spool_dropped},
      {&degraded_family.with({"admission_rate_limited"}),
       &DegradedStats::admission_rate_limited},
      {&degraded_family.with({"admission_sampled_down"}),
       &DegradedStats::admission_sampled_down},
      {&degraded_family.with({"admission_embryonic_shed"}),
       &DegradedStats::admission_embryonic_shed},
      {&degraded_family.with({"admission_rejected"}),
       &DegradedStats::admission_rejected},
  };
  obs_collector_ = metrics->add_collector([this, mirrors] {
    const DegradedStats d = degraded();
    for (const CauseMirror& m : mirrors) m.counter->increment_to(d.*m.field);
  });

  // Classification mirrors + trends bookkeeping. Registered here, written
  // only by sample_trends() on the worker thread — a collector would race
  // with the worker on the aggregates (they are worker-owned, unlocked).
  class_connections_c_ = &metrics->counter(
      "tamper_class_connections_total", "Connections classified (aggregate mirror)");
  class_possibly_c_ = &metrics->counter(
      "tamper_class_possibly_tampered_total",
      "Possibly-tampered connections (aggregate mirror)");
  class_matched_c_ = &metrics->counter(
      "tamper_class_matched_total",
      "Connections matching a tamper signature (aggregate mirror)");
  class_signature_fam_ = &metrics->counter_family(
      "tamper_class_signature_matches_total",
      "Signature matches by signature (aggregate mirror)", {"signature"});
  class_country_conn_fam_ = &metrics->counter_family(
      "tamper_class_country_connections_total",
      "Connections by country (aggregate mirror)", {"country"});
  class_country_match_fam_ = &metrics->counter_family(
      "tamper_class_country_matches_total",
      "Signature matches by country (aggregate mirror)", {"country"});
  ts_points_c_ = &metrics->counter("tamper_timeseries_points_total",
                                   "Points offered to the trends epoch ring");
  ts_dropped_c_ = &metrics->counter(
      "tamper_timeseries_dropped_total",
      "Points the trends ring refused (history window or series cap)");
  ts_series_g_ = &metrics->gauge("tamper_timeseries_series",
                                 "Distinct series held in the trends ring");
  ts_latest_epoch_g_ = &metrics->gauge("tamper_timeseries_latest_epoch",
                                       "Newest epoch with a recorded point");
}

void Pipeline::sample_trends() {
  const std::int64_t epoch = trends_.epoch_of(latest_ts_sec_);
  const DegradedStats d = degraded();
  const bool mirror = obs_metrics_ != nullptr;

  // The catalog's "agg:" sources point at the tamper_class_* registry
  // mirrors, which this pass updates alongside the ring (increment_to keeps
  // them idempotent across crash-resume re-derivation). One fused pass per
  // aggregate — the country loops walk matrix rows, mirror-handle maps, and
  // the ring in lockstep (all sorted by country), so each per-label sample
  // costs amortized-constant lookups and rollup sampling honors the ≤2%
  // overhead contract (DESIGN.md §12).
  if (mirror) {
    class_connections_c_->increment_to(matrix_.total_connections());
    class_possibly_c_->increment_to(matrix_.possibly_tampered());
    class_matched_c_->increment_to(matrix_.matched());
  }

  for (const obs::SeriesSpec& spec : obs::default_series_catalog()) {
    const bool from_agg = spec.source.rfind("agg:", 0) == 0;
    if (from_agg) {
      if (spec.family == "connections") {
        trends_.record_epoch(spec.family, "", spec.merge, epoch,
                             static_cast<double>(matrix_.total_connections()));
      } else if (spec.family == "possibly_tampered") {
        trends_.record_epoch(spec.family, "", spec.merge, epoch,
                             static_cast<double>(matrix_.possibly_tampered()));
      } else if (spec.family == "signature_matched") {
        trends_.record_epoch(spec.family, "", spec.merge, epoch,
                             static_cast<double>(matrix_.matched()));
      } else if (spec.family == "signature_matches") {
        for (std::size_t s = 0; s < core::kSignatureCount; ++s) {
          const auto sig = static_cast<core::Signature>(s);
          const std::uint64_t total = matrix_.signature_total(sig);
          if (total == 0) continue;
          if (mirror) {
            obs::Counter*& h = class_signature_mirror_[s];
            if (h == nullptr)
              h = &class_signature_fam_->with({std::string(core::name(sig))});
            h->increment_to(total);
          }
          trends_.record_epoch(spec.family, core::name(sig), spec.merge, epoch,
                               static_cast<double>(total));
        }
      } else if (spec.family == "country_connections") {
        obs::EpochRing::Cursor cursor(trends_);
        auto handle = class_country_conn_mirror_.begin();
        for (const auto& [cc, row] : matrix_.rows()) {
          if (mirror) {
            while (handle != class_country_conn_mirror_.end() && handle->first < cc)
              ++handle;
            if (handle == class_country_conn_mirror_.end() || handle->first != cc)
              handle = class_country_conn_mirror_.emplace_hint(
                  handle, cc, &class_country_conn_fam_->with({cc}));
            handle->second->increment_to(row.connections);
          }
          cursor.record_epoch(spec.family, cc, spec.merge, epoch,
                              static_cast<double>(row.connections));
        }
      } else if (spec.family == "country_matches") {
        obs::EpochRing::Cursor cursor(trends_);
        auto handle = class_country_match_mirror_.begin();
        for (const auto& [cc, row] : matrix_.rows()) {
          if (row.matches == 0) continue;
          if (mirror) {
            while (handle != class_country_match_mirror_.end() && handle->first < cc)
              ++handle;
            if (handle == class_country_match_mirror_.end() || handle->first != cc)
              handle = class_country_match_mirror_.emplace_hint(
                  handle, cc, &class_country_match_fam_->with({cc}));
            handle->second->increment_to(row.matches);
          }
          cursor.record_epoch(spec.family, cc, spec.merge, epoch,
                              static_cast<double>(row.matches));
        }
      } else if (spec.family == "degraded") {
        // Coverage loss only (not d.total()): noise counters like a single
        // empty flow must not mark the whole epoch degraded and suppress
        // the watchdog scan for it.
        trends_.record_epoch(spec.family, "", spec.merge, epoch,
                             static_cast<double>(d.coverage_loss()));
      }
      continue;
    }
    // "metric:" sources read the registry; an absent family (e.g. overload
    // control disabled) is simply not sampled.
    if (!mirror) continue;
    const std::string_view metric =
        std::string_view(spec.source).substr(std::string_view("metric:").size());
    double value = 0.0;
    if (obs_metrics_->read_family_total(metric, &value))
      trends_.record_epoch(spec.family, "", spec.merge, epoch, value);
  }

  if (obs_metrics_ != nullptr) {
    ts_points_c_->increment_to(trends_.recorded_points());
    ts_dropped_c_->increment_to(trends_.dropped_points());
    ts_series_g_->set(static_cast<double>(trends_.series().size()));
    ts_latest_epoch_g_->set(
        trends_.empty() ? 0.0 : static_cast<double>(trends_.max_epoch()));
  }
}

// tamperlint: nothrow-path
void Pipeline::ingest(const capture::ConnectionSample& sample) noexcept {
  obs::Tracer::Span ingest_span(tracer_, obs::stage::kIngest, obs::stage::kCategory);
  std::uint64_t seq = 0;
  if (obs_samples_ != nullptr) seq = obs_samples_->add();
  // A flow with no packets was never actually observed at the tap (e.g. the
  // SYN itself was lost upstream).
  if (sample.packets.empty()) {
    common::MutexLock lock(stats_mu_);
    ++degraded_.empty_samples;
    return;
  }
  if (sample.observation_end_sec > latest_ts_sec_)
    latest_ts_sec_ = sample.observation_end_sec;
  // Sampled latency probe: 1 in 64 keeps the steady-state cost of the
  // instrumentation to two relaxed fetch_adds per sample.
  const bool timed = obs_classify_seconds_ != nullptr && (seq & 63) == 1;
  const std::uint64_t t0 = timed ? obs_clock_->now_ns() : 0;
  try {
    obs::Tracer::Span classify_span(tracer_, obs::stage::kClassify,
                                    obs::stage::kCategory);
    const ConnectionRecord record =
        analyze(sample, world_.geo(), classifier_,
                /*parse_app_proto=*/!evidence_only_.load(std::memory_order_relaxed));
    classify_span.finish();
    obs::Tracer::Span aggregate_span(tracer_, obs::stage::kAggregate,
                                     obs::stage::kCategory);
    matrix_.add(record);
    asns_.add(record);
    timeseries_.add(record);
    version_protocol_.add(record);
    categories_.add(record);
    overlap_.add(record);
    evidence_.add(sample, record);

    ++scanner_.connections;
    const core::ScannerIndicators indicators = core::scanner_indicators(sample);
    if (indicators.no_tcp_options) ++scanner_.no_tcp_options;
    if (indicators.high_ttl) ++scanner_.high_ttl;
    if (record.classification.signature == core::Signature::kSynRst) {
      ++scanner_.syn_rst_matches;
      if (indicators.likely_zmap()) ++scanner_.syn_rst_zmap;
    }
  } catch (...) {
    // One hostile sample must not take down the service; count and move on.
    common::MutexLock lock(stats_mu_);
    ++degraded_.ingest_errors;
  }
  if (timed)
    obs_classify_seconds_->observe(
        static_cast<double>(obs_clock_->now_ns() - t0) * 1e-9);
}

void Pipeline::run(world::TrafficGenerator& generator, std::size_t connections) {
  generator.generate(connections,
                     [this](world::LabeledConnection&& conn) { ingest(conn.sample); });
}

void Pipeline::snapshot(common::BinWriter& w) const {
  {
    common::MutexLock lock(stats_mu_);
    w.u64(degraded_.empty_samples);
    w.u64(degraded_.ingest_errors);
    w.u64(degraded_.malformed_packets);
    w.u64(degraded_.overload_evicted);
    w.u64(degraded_.unparseable_frames);
    w.u64(degraded_.oversize_frames);
    w.u64(degraded_.truncated_frames);
    w.u64(degraded_.queue_shed_embryonic);
    w.u64(degraded_.queue_shed_other);
    w.u64(degraded_.spool_replay_failures);
    w.u64(degraded_.spool_dropped);
    w.u64(degraded_.admission_rate_limited);
    w.u64(degraded_.admission_sampled_down);
    w.u64(degraded_.admission_embryonic_shed);
    w.u64(degraded_.admission_rejected);
  }

  w.u64(scanner_.connections);
  w.u64(scanner_.no_tcp_options);
  w.u64(scanner_.high_ttl);
  w.u64(scanner_.syn_rst_matches);
  w.u64(scanner_.syn_rst_zmap);
  w.i64(latest_ts_sec_);

  matrix_.snapshot(w);
  asns_.snapshot(w);
  timeseries_.snapshot(w);
  version_protocol_.snapshot(w);
  categories_.snapshot(w);
  overlap_.snapshot(w);
  evidence_.snapshot(w);
  trends_.snapshot(w);
}

void Pipeline::restore(common::BinReader& r) {
  {
    common::MutexLock lock(stats_mu_);
    degraded_.empty_samples = r.u64();
    degraded_.ingest_errors = r.u64();
    degraded_.malformed_packets = r.u64();
    degraded_.overload_evicted = r.u64();
    degraded_.unparseable_frames = r.u64();
    degraded_.oversize_frames = r.u64();
    degraded_.truncated_frames = r.u64();
    degraded_.queue_shed_embryonic = r.u64();
    degraded_.queue_shed_other = r.u64();
    degraded_.spool_replay_failures = r.u64();
    degraded_.spool_dropped = r.u64();
    degraded_.admission_rate_limited = r.u64();
    degraded_.admission_sampled_down = r.u64();
    degraded_.admission_embryonic_shed = r.u64();
    degraded_.admission_rejected = r.u64();
  }

  scanner_.connections = r.u64();
  scanner_.no_tcp_options = r.u64();
  scanner_.high_ttl = r.u64();
  scanner_.syn_rst_matches = r.u64();
  scanner_.syn_rst_zmap = r.u64();
  latest_ts_sec_ = r.i64();

  matrix_.restore(r);
  asns_.restore(r);
  timeseries_.restore(r);
  version_protocol_.restore(r);
  categories_.restore(r);
  overlap_.restore(r);
  evidence_.restore(r);
  trends_.restore(r);

  // A restored process reads fresh sources whose cumulative counters start
  // at zero again; the delta baselines must follow.
  {
    common::MutexLock lock(stats_mu_);
    last_reader_ = {};
    last_sampler_ = {};
    last_queue_ = {};
    last_sink_replay_failures_ = 0;
    last_spool_dropped_ = 0;
    last_admission_ = {};
  }
}

void Pipeline::merge_from(const Pipeline& other) {
  {
    // Lock ordering: this->stats_mu_ before other.stats_mu_. The merger
    // only ever folds decoded partials (never two live pipelines that could
    // merge into each other), so the order cannot invert.
    common::MutexLock lock(stats_mu_);
    const DegradedStats od = other.degraded();
    degraded_.empty_samples += od.empty_samples;
    degraded_.ingest_errors += od.ingest_errors;
    degraded_.malformed_packets += od.malformed_packets;
    degraded_.overload_evicted += od.overload_evicted;
    degraded_.unparseable_frames += od.unparseable_frames;
    degraded_.oversize_frames += od.oversize_frames;
    degraded_.truncated_frames += od.truncated_frames;
    degraded_.queue_shed_embryonic += od.queue_shed_embryonic;
    degraded_.queue_shed_other += od.queue_shed_other;
    degraded_.spool_replay_failures += od.spool_replay_failures;
    degraded_.spool_dropped += od.spool_dropped;
    degraded_.admission_rate_limited += od.admission_rate_limited;
    degraded_.admission_sampled_down += od.admission_sampled_down;
    degraded_.admission_embryonic_shed += od.admission_embryonic_shed;
    degraded_.admission_rejected += od.admission_rejected;
  }

  scanner_.connections += other.scanner_.connections;
  scanner_.no_tcp_options += other.scanner_.no_tcp_options;
  scanner_.high_ttl += other.scanner_.high_ttl;
  scanner_.syn_rst_matches += other.scanner_.syn_rst_matches;
  scanner_.syn_rst_zmap += other.scanner_.syn_rst_zmap;
  if (other.latest_ts_sec_ > latest_ts_sec_) latest_ts_sec_ = other.latest_ts_sec_;

  matrix_.merge(other.matrix_);
  asns_.merge(other.asns_);
  timeseries_.merge(other.timeseries_);
  version_protocol_.merge(other.version_protocol_);
  categories_.merge(other.categories_);
  overlap_.merge(other.overlap_);
  evidence_.merge(other.evidence_);
  trends_.merge_from(other.trends_);
}

}  // namespace tamper::analysis
