#include "capture/sampler.h"

#include <cmath>

namespace tamper::capture {

bool ConnectionSampler::should_sample(const FlowKey& key) const noexcept {
  if (config_.sample_one_in <= 1) return true;
  // Hash-based uniform sampling: deterministic per flow, unbiased across
  // flows, independent of arrival order.
  const std::uint64_t h = common::mix64(FlowKeyHash{}(key) ^ config_.hash_salt);
  return h % config_.sample_one_in == 0;
}

bool ConnectionSampler::is_malformed(const net::Packet& pkt) const noexcept {
  if (pkt.tcp.src_port == 0 || pkt.tcp.dst_port == 0) return true;
  // Self-addressed 4-tuple (LAND-style) — no legitimate stack emits this.
  if (pkt.src == pkt.dst && pkt.tcp.src_port == pkt.tcp.dst_port) return true;
  // Deliberately ambiguous flag combinations middleboxes/scanners use to
  // probe DPI behaviour; no meaningful connection state can follow them.
  if (pkt.tcp.has(net::tcpflag::kSyn) &&
      (pkt.tcp.has(net::tcpflag::kFin) || pkt.tcp.has(net::tcpflag::kRst)))
    return true;
  return false;
}

void ConnectionSampler::unlink(FlowState& flow) {
  if (flow.embryonic)
    embryonic_lru_.erase(flow.lru_it);
  else
    established_lru_.erase(flow.lru_it);
}

void ConnectionSampler::evict_for_overload(common::SimTime now) {
  std::list<FlowKey>& lru = embryonic_lru_.empty() ? established_lru_ : embryonic_lru_;
  const FlowKey victim_key = lru.front();
  auto it = flows_.find(victim_key);
  FlowState& victim = it->second;
  victim.sample.observation_end_sec = static_cast<std::int64_t>(std::floor(now));
  evicted_.push_back(std::move(victim.sample));
  lru.pop_front();
  flows_.erase(it);
  ++stats_.flows_evicted_overload;
}

void ConnectionSampler::on_packet(const net::Packet& pkt, common::SimTime now) {
  ++stats_.packets_seen;
  if (config_.scrub && config_.scrub(pkt)) {
    ++stats_.packets_scrubbed;
    return;
  }
  if (is_malformed(pkt)) {
    ++stats_.packets_malformed;
    return;
  }
  const FlowKey key{pkt.src, pkt.dst, pkt.tcp.src_port, pkt.tcp.dst_port};
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    // Only a SYN opens a flow; anything else without flow state is a
    // mid-connection packet of an unsampled (or evicted) flow.
    if (!pkt.tcp.has(net::tcpflag::kSyn) || pkt.tcp.has(net::tcpflag::kAck)) return;
    ++stats_.connections_seen;
    if (!should_sample(key)) return;
    ++stats_.connections_sampled;
    if (config_.max_flows > 0 && flows_.size() >= config_.max_flows)
      evict_for_overload(now);
    FlowState state;
    state.sample.client_ip = pkt.src;
    state.sample.server_ip = pkt.dst;
    state.sample.client_port = pkt.tcp.src_port;
    state.sample.server_port = pkt.tcp.dst_port;
    state.sample.ip_version = pkt.src.version();
    state.lru_it = embryonic_lru_.insert(embryonic_lru_.end(), key);
    it = flows_.emplace(key, std::move(state)).first;
  } else {
    FlowState& flow = it->second;
    if (flow.embryonic) {
      // Second packet: promote out of the SYN-flood eviction class.
      embryonic_lru_.erase(flow.lru_it);
      flow.embryonic = false;
      flow.lru_it = established_lru_.insert(established_lru_.end(), key);
    } else {
      established_lru_.splice(established_lru_.end(), established_lru_, flow.lru_it);
    }
  }
  FlowState& flow = it->second;
  flow.last_seen = now;
  if (flow.full) return;
  flow.sample.packets.push_back(observe(pkt, config_.keep_payloads));
  if (flow.sample.packets.size() >= config_.max_packets) flow.full = true;
}

std::vector<ConnectionSample> ConnectionSampler::drain_idle(common::SimTime now) {
  std::vector<ConnectionSample> out = std::move(evicted_);
  evicted_.clear();
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen >= config_.flow_idle_timeout) {
      it->second.sample.observation_end_sec = static_cast<std::int64_t>(std::floor(now));
      unlink(it->second);
      out.push_back(std::move(it->second.sample));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<ConnectionSample> ConnectionSampler::flush_all(common::SimTime observation_end) {
  std::vector<ConnectionSample> out = std::move(evicted_);
  evicted_.clear();
  out.reserve(out.size() + flows_.size());
  for (auto& [key, flow] : flows_) {
    flow.sample.observation_end_sec = static_cast<std::int64_t>(std::floor(observation_end));
    out.push_back(std::move(flow.sample));
  }
  flows_.clear();
  embryonic_lru_.clear();
  established_lru_.clear();
  return out;
}

}  // namespace tamper::capture
