#include "capture/sampler.h"

#include <cmath>

namespace tamper::capture {

bool ConnectionSampler::should_sample(const FlowKey& key) const noexcept {
  if (config_.sample_one_in <= 1) return true;
  // Hash-based uniform sampling: deterministic per flow, unbiased across
  // flows, independent of arrival order.
  const std::uint64_t h = common::mix64(FlowKeyHash{}(key) ^ config_.hash_salt);
  return h % config_.sample_one_in == 0;
}

void ConnectionSampler::on_packet(const net::Packet& pkt, common::SimTime now) {
  ++stats_.packets_seen;
  if (config_.scrub && config_.scrub(pkt)) {
    ++stats_.packets_scrubbed;
    return;
  }
  const FlowKey key{pkt.src, pkt.dst, pkt.tcp.src_port, pkt.tcp.dst_port};
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    // Only a SYN opens a flow; anything else without flow state is a
    // mid-connection packet of an unsampled (or evicted) flow.
    if (!pkt.tcp.has(net::tcpflag::kSyn) || pkt.tcp.has(net::tcpflag::kAck)) return;
    ++stats_.connections_seen;
    if (!should_sample(key)) return;
    ++stats_.connections_sampled;
    FlowState state;
    state.sample.client_ip = pkt.src;
    state.sample.server_ip = pkt.dst;
    state.sample.client_port = pkt.tcp.src_port;
    state.sample.server_port = pkt.tcp.dst_port;
    state.sample.ip_version = pkt.src.version();
    it = flows_.emplace(key, std::move(state)).first;
  }
  FlowState& flow = it->second;
  flow.last_seen = now;
  if (flow.full) return;
  flow.sample.packets.push_back(observe(pkt, config_.keep_payloads));
  if (flow.sample.packets.size() >= config_.max_packets) flow.full = true;
}

std::vector<ConnectionSample> ConnectionSampler::drain_idle(common::SimTime now) {
  std::vector<ConnectionSample> out;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen >= config_.flow_idle_timeout) {
      it->second.sample.observation_end_sec = static_cast<std::int64_t>(std::floor(now));
      out.push_back(std::move(it->second.sample));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<ConnectionSample> ConnectionSampler::flush_all(common::SimTime observation_end) {
  std::vector<ConnectionSample> out;
  out.reserve(flows_.size());
  for (auto& [key, flow] : flows_) {
    flow.sample.observation_end_sec = static_cast<std::int64_t>(std::floor(observation_end));
    out.push_back(std::move(flow.sample));
  }
  flows_.clear();
  return out;
}

}  // namespace tamper::capture
