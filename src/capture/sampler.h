// Server-side connection sampler.
//
// Mirrors the paper's collection pipeline (§3.2): uniformly sample one in N
// *connections* (decided at the SYN, after an optional DDoS-scrub
// predicate), then log the first `max_packets` inbound packets of sampled
// connections with 1-second timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "capture/sample.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "net/packet.h"

namespace tamper::capture {

class ConnectionSampler {
 public:
  struct Config {
    std::uint32_t sample_one_in = 10000;  ///< paper: 1 in 10,000 connections
    std::size_t max_packets = 10;         ///< paper: first 10 packets
    bool keep_payloads = true;
    double flow_idle_timeout = 30.0;      ///< idle eviction horizon
    /// Hard bound on concurrently tracked flows; 0 = unbounded. When full,
    /// a new sampled flow evicts the oldest *embryonic* (single bare-SYN)
    /// flow first — the shape a SYN flood leaves behind — falling back to
    /// the least recently active flow. Evicted flows are closed out and
    /// surface through drain_idle()/flush_all(), so overload degrades
    /// coverage instead of exhausting memory.
    std::size_t max_flows = 1 << 20;
    std::uint64_t hash_salt = 0x7a3d90c1b2e4f586ULL;
    /// DDoS scrubbing executed *before* sampling; return true to discard.
    std::function<bool(const net::Packet&)> scrub;
  };

  explicit ConnectionSampler(Config config) : config_(std::move(config)) {}

  /// Feed one inbound (client->server) packet. Packets that do not open a
  /// new flow and do not belong to a sampled flow are counted and dropped.
  void on_packet(const net::Packet& pkt, common::SimTime now);

  /// Evict flows idle past the timeout, emitting their samples.
  [[nodiscard]] std::vector<ConnectionSample> drain_idle(common::SimTime now);

  /// Close out every open flow (end of the observation window).
  [[nodiscard]] std::vector<ConnectionSample> flush_all(common::SimTime observation_end);

  struct Stats {
    std::uint64_t packets_seen = 0;
    std::uint64_t packets_scrubbed = 0;
    std::uint64_t connections_seen = 0;
    std::uint64_t connections_sampled = 0;
    /// Hostile/garbage input dropped before flow lookup (port 0, self-
    /// addressed 4-tuples, ambiguous SYN+FIN / SYN+RST flag combos).
    std::uint64_t packets_malformed = 0;
    /// Flows force-closed because the table hit Config::max_flows.
    std::uint64_t flows_evicted_overload = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Currently tracked flows (bounded by Config::max_flows when set).
  [[nodiscard]] std::size_t open_flows() const noexcept { return flows_.size(); }

 private:
  struct FlowKey {
    net::IpAddress client;
    net::IpAddress server;
    std::uint16_t client_port;
    std::uint16_t server_port;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return static_cast<std::size_t>(
          common::mix64(k.client.hash() ^ common::mix64(k.server.hash()) ^
                        (static_cast<std::uint64_t>(k.client_port) << 16 | k.server_port)));
    }
  };
  struct FlowState {
    ConnectionSample sample;
    common::SimTime last_seen = 0.0;
    bool full = false;
    bool embryonic = true;  ///< has seen only its opening SYN so far
    std::list<FlowKey>::iterator lru_it;
  };

  [[nodiscard]] bool should_sample(const FlowKey& key) const noexcept;
  [[nodiscard]] bool is_malformed(const net::Packet& pkt) const noexcept;
  /// Make room for one more flow; closes the victim into evicted_.
  void evict_for_overload(common::SimTime now);
  void unlink(FlowState& flow);

  Config config_;
  Stats stats_;
  std::unordered_map<FlowKey, FlowState, FlowKeyHash> flows_;
  // Recency order (front = coldest), embryonic flows tracked separately so
  // a SYN flood cannibalises itself before touching established flows.
  std::list<FlowKey> embryonic_lru_;
  std::list<FlowKey> established_lru_;
  std::vector<ConnectionSample> evicted_;  ///< overload-closed, pending drain
};

}  // namespace tamper::capture
