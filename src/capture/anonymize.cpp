#include "capture/anonymize.h"

#include "common/rng.h"

namespace tamper::capture {

net::IpAddress anonymize_address(const net::IpAddress& addr,
                                 const AnonymizeConfig& config) {
  const int keep_bits = addr.is_v4() ? config.v4_prefix_bits : config.v6_prefix_bits;
  const int total_bits = addr.is_v4() ? 32 : 128;
  const int offset = addr.is_v4() ? 96 : 0;  // mapped layout offset

  std::array<std::uint8_t, 16> bytes = addr.bytes();
  // Zero (or pseudonymize) everything past the kept prefix.
  for (int bit = keep_bits; bit < total_bits; ++bit) {
    const int absolute = offset + bit;
    bytes[static_cast<std::size_t>(absolute / 8)] &=
        static_cast<std::uint8_t>(~(1u << (7 - absolute % 8)));
  }
  if (config.pseudonymize) {
    // Keyed pseudonym of the kept prefix, folded into the host bits so
    // distinct prefixes stay distinct without revealing the original.
    std::uint64_t h = config.key;
    for (std::uint8_t b : bytes) h = common::mix64(h ^ b);
    for (int bit = keep_bits; bit < total_bits; ++bit) {
      const int absolute = offset + bit;
      if ((h >> (bit % 64)) & 1u)
        bytes[static_cast<std::size_t>(absolute / 8)] |=
            static_cast<std::uint8_t>(1u << (7 - absolute % 8));
    }
  }
  if (addr.is_v4()) {
    return net::IpAddress::v4((std::uint32_t{bytes[12]} << 24) |
                              (std::uint32_t{bytes[13]} << 16) |
                              (std::uint32_t{bytes[14]} << 8) | bytes[15]);
  }
  return net::IpAddress::v6(bytes);
}

void anonymize(ConnectionSample& sample, const AnonymizeConfig& config) {
  sample.client_ip = anonymize_address(sample.client_ip, config);
  if (config.scramble_client_port) {
    sample.client_port = static_cast<std::uint16_t>(
        common::mix64(config.key ^ (std::uint64_t{sample.client_port} << 17)) & 0xffff);
  }
  if (config.strip_payloads) {
    for (auto& pkt : sample.packets) {
      pkt.payload.clear();
      pkt.payload.shrink_to_fit();
      // payload_len is retained: it is header-derived and classification
      // (is_data, stage inference) depends on it.
    }
  }
}

}  // namespace tamper::capture
