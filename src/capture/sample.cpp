#include "capture/sample.h"

#include <cmath>

namespace tamper::capture {

ObservedPacket observe(const net::Packet& pkt, bool keep_payload, double time_scale) {
  ObservedPacket out;
  out.ts_sec = static_cast<std::int64_t>(std::floor(pkt.timestamp * time_scale));
  out.flags = pkt.tcp.flags;
  out.seq = pkt.tcp.seq;
  out.ack = pkt.tcp.ack;
  out.window = pkt.tcp.window;
  out.ttl = pkt.ip.ttl;
  out.ip_id = pkt.ip.ip_id;
  out.has_tcp_options = !pkt.tcp.options.empty();
  out.payload_len = static_cast<std::uint16_t>(pkt.payload.size());
  if (keep_payload) out.payload = pkt.payload;
  return out;
}

}  // namespace tamper::capture
