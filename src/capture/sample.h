// The connection sample record — the exact information the paper's logging
// pipeline retains (§3.2), no more:
//   * inbound (client->server) packets only,
//   * at most the first 10 packets of a connection,
//   * timestamps at 1-second granularity,
//   * full headers and payloads of those packets.
// Everything downstream (the classifier, the analyses) consumes only this.
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/ip_address.h"
#include "net/packet.h"

namespace tamper::capture {

/// One logged inbound packet.
struct ObservedPacket {
  std::int64_t ts_sec = 0;  ///< floor(arrival time): 1 s granularity (§3.2)
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint16_t window = 0;
  std::uint8_t ttl = 0;
  std::uint16_t ip_id = 0;
  bool has_tcp_options = false;
  std::uint16_t payload_len = 0;
  std::vector<std::uint8_t> payload;  ///< empty when the sampler drops payloads

  [[nodiscard]] bool has(std::uint8_t bits) const noexcept {
    return (flags & bits) == bits;
  }
  [[nodiscard]] bool is_syn() const noexcept {
    return has(net::tcpflag::kSyn) && !has(net::tcpflag::kAck);
  }
  [[nodiscard]] bool is_rst() const noexcept { return has(net::tcpflag::kRst); }
  /// RST with the ACK flag (the paper's "RST+ACK").
  [[nodiscard]] bool is_rst_ack() const noexcept {
    return has(net::tcpflag::kRst) && has(net::tcpflag::kAck);
  }
  /// RST without the ACK flag (the paper's bare "RST").
  [[nodiscard]] bool is_plain_rst() const noexcept {
    return has(net::tcpflag::kRst) && !has(net::tcpflag::kAck);
  }
  [[nodiscard]] bool is_fin() const noexcept { return has(net::tcpflag::kFin); }
  [[nodiscard]] bool is_pure_ack() const noexcept {
    return flags == net::tcpflag::kAck && payload_len == 0;
  }
  [[nodiscard]] bool is_data() const noexcept {
    return payload_len > 0 && !has(net::tcpflag::kSyn) && !is_rst();
  }
};

/// All inbound packets logged for one sampled connection.
struct ConnectionSample {
  net::IpAddress client_ip;
  net::IpAddress server_ip;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
  net::IpVersion ip_version = net::IpVersion::kV4;
  std::vector<ObservedPacket> packets;  ///< arrival order, <= max_packets
  /// When the tap stopped watching this flow; trailing silence is measured
  /// against this (1 s granularity like the packet timestamps).
  std::int64_t observation_end_sec = 0;

  /// Payload of the first data packet (TLS ClientHello / HTTP request head),
  /// or empty — what the DPI/analysis side gets to inspect.
  [[nodiscard]] const std::vector<std::uint8_t>* first_data_payload() const noexcept {
    for (const auto& pkt : packets)
      if (pkt.is_data() && !pkt.payload.empty()) return &pkt.payload;
    return nullptr;
  }
};

/// Convert an on-the-wire packet to the logged form. `time_scale` is ticks
/// per second: 1.0 reproduces the paper's 1-second granularity; larger
/// values (e.g. 1000 for milliseconds) exist for the ablation study and
/// scale ts_sec (and the classifier's inactivity threshold) accordingly.
[[nodiscard]] ObservedPacket observe(const net::Packet& pkt, bool keep_payload = true,
                                     double time_scale = 1.0);

}  // namespace tamper::capture
