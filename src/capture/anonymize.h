// Privacy layer (§3.3): anonymize capture records before they leave the
// trusted analysis boundary.
//
// The paper's pipeline restricts raw-data access and reports only
// aggregates. For the cases where per-connection records must be shared at
// all (debugging, appeals, research hand-off), this module applies the
// standard degradations: client addresses truncated to their routing prefix
// or replaced by a keyed pseudonym, ports scrambled under the same key, and
// payloads stripped (header analysis — including signature classification —
// is unaffected; DPI-based domain analysis is deliberately destroyed).
#pragma once

#include <cstdint>

#include "capture/sample.h"

namespace tamper::capture {

struct AnonymizeConfig {
  /// Keep this many leading bits of the client address (paper-style
  /// aggregation keeps routing information but not the host).
  int v4_prefix_bits = 24;
  int v6_prefix_bits = 48;
  /// Replace the truncated address with a keyed pseudonym instead
  /// (prefix-preserving within the kept bits).
  bool pseudonymize = false;
  std::uint64_t key = 0;  ///< pseudonymization key (keep secret)
  bool strip_payloads = true;
  bool scramble_client_port = true;
};

/// Anonymized copy of an address under the config.
[[nodiscard]] net::IpAddress anonymize_address(const net::IpAddress& addr,
                                               const AnonymizeConfig& config);

/// Anonymize one sample in place. Classification-relevant fields (flags,
/// seq/ack, TTL, IP-ID, timestamps) are preserved; the classifier's verdict
/// on the anonymized sample is identical by construction.
void anonymize(ConnectionSample& sample, const AnonymizeConfig& config);

}  // namespace tamper::capture
