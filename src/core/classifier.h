// The passive tampering-signature classifier (§4).
//
// Input: one ConnectionSample — inbound packets only, 1 s timestamps,
// possibly logged out of order, at most 10 packets. Output: whether the
// connection is "possibly tampered" (a RST, or >=3 s inactivity without a
// FIN handshake) and, if so, which of the 19 Table 1 signatures it matches.
//
// The classifier never sees simulation ground truth; tests verify that it
// blindly recovers the injected tampering labels.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "capture/sample.h"
#include "core/signature.h"

namespace tamper::core {

struct ClassifierConfig {
  /// "∅" = no packets for more than this many seconds (paper: 3 s).
  /// Interpreted in the same units as ObservedPacket::ts_sec, so captures
  /// taken at finer granularity scale this accordingly.
  std::int64_t inactivity_seconds = 3;
  /// Samples with this many packets are truncated captures: trailing silence
  /// after them says nothing about the connection (paper logs 10 packets).
  std::size_t max_packets = 10;
  /// Collapse retransmissions (same flags/seq/length) before analysis.
  bool dedupe_retransmissions = true;
  /// Reconstruct logical order from flags/seq within timestamp buckets
  /// (§3.2). Disable only for the ablation study: with 1 s logging and no
  /// reconstruction, scrambled logs misclassify.
  bool reconstruct_order = true;
};

struct Classification {
  bool possibly_tampered = false;
  /// One of the 19 signatures, or nullopt (clean, or possibly tampered but
  /// unmatched — the paper's residual 13.1%).
  std::optional<Signature> signature;
  /// Stage of the anomaly (meaningful when possibly_tampered).
  Stage stage = Stage::kOther;
  /// Graceful FIN close observed with no anomaly.
  bool graceful = false;
  /// The anomaly was an inactivity timeout (Y = ∅) rather than a RST.
  bool timeout = false;
  std::uint32_t rst_count = 0;       ///< plain RSTs in Y
  std::uint32_t rst_ack_count = 0;   ///< RST+ACKs in Y
  /// Index into the *ordered, deduplicated* packet view of the first
  /// tear-down packet, or SIZE_MAX for timeouts.
  std::size_t first_teardown_index = static_cast<std::size_t>(-1);
};

/// Reconstruct logical packet order from 1-second timestamps, TCP flags and
/// sequence numbers (§3.2), collapsing retransmissions. The returned
/// pointers alias `sample.packets`.
[[nodiscard]] std::vector<const capture::ObservedPacket*> order_packets(
    const capture::ConnectionSample& sample, const ClassifierConfig& config = {});

class SignatureClassifier {
 public:
  explicit SignatureClassifier(ClassifierConfig config = {}) : config_(config) {}

  [[nodiscard]] Classification classify(const capture::ConnectionSample& sample) const;

  [[nodiscard]] const ClassifierConfig& config() const noexcept { return config_; }

 private:
  ClassifierConfig config_;
};

}  // namespace tamper::core
