// Scanner fingerprints (§4.2, "Threats to validity").
//
// Network scanners such as ZMap produce packet sequences that collide with
// the Post-SYN signatures (a SYN answered by a bare RST). Following Hiesgen
// et al., three properties separate scanner probes from real client stacks:
// no TCP options, a high initial TTL (>=200 observed), and a fixed non-zero
// IP-ID. ZMap specifically stamps IP-ID 54321 on its probes.
#pragma once

#include "capture/sample.h"

namespace tamper::core {

struct ScannerIndicators {
  bool no_tcp_options = false;   ///< SYN carried no options at all
  bool high_ttl = false;         ///< arrival TTL >= 200
  bool fixed_nonzero_ipid = false;  ///< same non-zero IP-ID on every packet
  bool zmap_ipid = false;        ///< the literal ZMap IP-ID (54321)

  [[nodiscard]] bool likely_scanner() const noexcept {
    return no_tcp_options || (high_ttl && fixed_nonzero_ipid);
  }
  [[nodiscard]] bool likely_zmap() const noexcept {
    return zmap_ipid && (high_ttl || no_tcp_options);
  }
};

inline constexpr std::uint16_t kZmapIpId = 54321;
inline constexpr std::uint8_t kHighTtlThreshold = 200;

[[nodiscard]] ScannerIndicators scanner_indicators(const capture::ConnectionSample& sample);

}  // namespace tamper::core
