// Baseline: forged-RST detection after Weaver, Sommer & Paxson, "Detecting
// Forged TCP Reset Packets" (NDSS 2009) — the closest prior work (§2.3).
//
// Weaver et al. examined individual RST packets for inconsistencies with
// the connection state that a well-behaved endpoint stack would never
// produce. We implement the detector over the same inbound-only capture
// record the signature classifier uses, so the two approaches are directly
// comparable on identical data. The paper's point, which the comparison
// bench quantifies, is that per-packet forgery tests (a) cannot see
// drop-based tampering at all and (b) miss injectors that mimic endpoint
// state, while sequence signatures cover both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/sample.h"

namespace tamper::core {

struct WeaverConfig {
  /// IP-ID jump beyond this (vs the preceding client packet) is suspicious.
  std::uint32_t ipid_jump_threshold = 200;
  /// TTL difference vs other packets of the connection that is suspicious.
  std::uint32_t ttl_jump_threshold = 3;
};

struct WeaverVerdict {
  bool forged_rst_detected = false;
  std::uint32_t rst_count = 0;
  /// Names of the heuristics that fired ("SEQ", "ACK-DIVERSE", "ACK-ZERO",
  /// "IPID", "TTL", "OPTIONS").
  std::vector<std::string> evidence;

  [[nodiscard]] bool fired(const std::string& heuristic) const {
    for (const auto& e : evidence)
      if (e == heuristic) return true;
    return false;
  }
};

/// Run the Weaver-style per-RST forgery tests on a capture record.
[[nodiscard]] WeaverVerdict weaver_detect(const capture::ConnectionSample& sample,
                                          const WeaverConfig& config = {});

}  // namespace tamper::core
