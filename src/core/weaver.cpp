#include "core/weaver.h"

#include <algorithm>
#include <set>

#include "core/classifier.h"

namespace tamper::core {

namespace {
std::uint32_t abs_delta(std::uint32_t a, std::uint32_t b) noexcept {
  return a > b ? a - b : b - a;
}
}  // namespace

WeaverVerdict weaver_detect(const capture::ConnectionSample& sample,
                            const WeaverConfig& config) {
  WeaverVerdict verdict;
  const auto ordered = order_packets(sample);
  if (ordered.empty()) return verdict;

  // Reconstruct the client's sequence state from non-RST packets.
  std::uint32_t expected_seq = 0;
  bool have_seq = false;
  std::set<std::uint32_t> client_acks;
  std::vector<std::uint8_t> client_ttls;
  const capture::ObservedPacket* prev_clean = nullptr;

  std::set<std::uint32_t> rst_acks;
  bool seq_mismatch = false, ack_zero_mix = false, ipid_jump = false, ttl_jump = false;
  bool client_uses_options = false, rst_missing_options = false;

  for (const auto* pkt : ordered) {
    if (!pkt->is_rst()) {
      const std::uint32_t consumed =
          pkt->payload_len + (pkt->has(net::tcpflag::kSyn) ? 1 : 0) +
          (pkt->has(net::tcpflag::kFin) ? 1 : 0);
      expected_seq = pkt->seq + consumed;
      have_seq = true;
      if (pkt->has(net::tcpflag::kAck)) client_acks.insert(pkt->ack);
      client_ttls.push_back(pkt->ttl);
      if (!pkt->is_syn() && pkt->has_tcp_options) client_uses_options = true;
      prev_clean = pkt;
      continue;
    }

    ++verdict.rst_count;
    rst_acks.insert(pkt->ack);

    // SEQ test: a genuine endpoint resets at its current sequence position.
    if (have_seq && pkt->seq != expected_seq) seq_mismatch = true;

    // ACK-ZERO test: a zero acknowledgment on a connection whose client has
    // been acknowledging real data.
    if (pkt->ack == 0 && !client_acks.empty() && *client_acks.rbegin() != 0)
      ack_zero_mix = true;

    // IPID test: the reset's IP-ID is far from the client's counter.
    if (sample.ip_version == net::IpVersion::kV4 && prev_clean != nullptr &&
        abs_delta(pkt->ip_id, prev_clean->ip_id) > config.ipid_jump_threshold)
      ipid_jump = true;

    // TTL test: the reset traveled a different path length.
    if (!client_ttls.empty()) {
      const std::uint8_t reference = client_ttls.front();
      if (abs_delta(pkt->ttl, reference) > config.ttl_jump_threshold) ttl_jump = true;
    }

    // OPTIONS test: the stack kept emitting the timestamps option on every
    // segment (RFC 7323), but this reset carries none.
    if (client_uses_options && !pkt->has_tcp_options) rst_missing_options = true;
  }

  // ACK-DIVERSE test: multiple resets guessing different acknowledgments
  // (Weaver et al.'s strongest middlebox fingerprint).
  const bool ack_diverse = rst_acks.size() > 1;

  if (seq_mismatch) verdict.evidence.emplace_back("SEQ");
  if (ack_diverse) verdict.evidence.emplace_back("ACK-DIVERSE");
  if (ack_zero_mix) verdict.evidence.emplace_back("ACK-ZERO");
  if (ipid_jump) verdict.evidence.emplace_back("IPID");
  if (ttl_jump) verdict.evidence.emplace_back("TTL");
  if (rst_missing_options) verdict.evidence.emplace_back("OPTIONS");
  verdict.forged_rst_detected = !verdict.evidence.empty();
  return verdict;
}

}  // namespace tamper::core
