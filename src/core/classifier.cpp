#include "core/classifier.h"

#include <algorithm>
#include <set>

namespace tamper::core {

namespace {

using capture::ObservedPacket;

/// Within-second ordering rank reflecting TCP causality: the SYN opens the
/// connection, tear-down packets respond to what precedes them, and
/// everything in between is ordered by its own sequence/ack state.
int rank_of(const ObservedPacket& pkt) noexcept {
  if (pkt.is_rst()) return 2;
  if (pkt.is_syn()) return 0;
  return 1;  // ACK / data / FIN: ordered by (seq, kind, ack) below
}

}  // namespace

std::vector<const ObservedPacket*> order_packets(const capture::ConnectionSample& sample,
                                                 const ClassifierConfig& config) {
  std::vector<const ObservedPacket*> ordered;
  ordered.reserve(sample.packets.size());
  for (const auto& pkt : sample.packets) ordered.push_back(&pkt);

  // Logical reconstruction: timestamps first (1 s buckets), then causality
  // rank, then sequence numbers for data / ack numbers for pure ACKs.
  // stable_sort keeps arrival order among tear-down packets, whose seq/ack
  // values are injector-controlled and carry no ordering information.
  if (config.reconstruct_order)
    std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ObservedPacket* a, const ObservedPacket* b) {
                     if (a->ts_sec != b->ts_sec) return a->ts_sec < b->ts_sec;
                     const int ra = rank_of(*a);
                     const int rb = rank_of(*b);
                     if (ra != rb) return ra < rb;
                     if (ra != 1) return false;  // SYNs/RSTs keep arrival order
                     // Mid-connection packets: the client's own sequence
                     // number advances with its data, pure ACKs precede data
                     // sharing a seq (handshake ACK vs first PSH), and
                     // response ACKs order by cumulative ack.
                     if (a->seq != b->seq) return a->seq < b->seq;
                     if (a->is_data() != b->is_data()) return !a->is_data();
                     if (a->ack != b->ack) return a->ack < b->ack;
                     return false;
                   });

  if (config.dedupe_retransmissions) {
    // Collapse retransmissions (same flags/seq/ack/length) of SYNs, data and
    // ACKs — with 1 s timestamps they carry no extra information. Tear-down
    // packets are never collapsed: endpoints do not retransmit RSTs, so
    // repeated identical RSTs are a genuine injector burst and the
    // one-vs-many distinction is load-bearing for Table 1.
    std::vector<const ObservedPacket*> unique;
    unique.reserve(ordered.size());
    for (const ObservedPacket* pkt : ordered) {
      const bool duplicate =
          !pkt->is_rst() &&
          std::any_of(unique.begin(), unique.end(), [&](const ObservedPacket* seen) {
            return seen->flags == pkt->flags && seen->seq == pkt->seq &&
                   seen->ack == pkt->ack && seen->payload_len == pkt->payload_len;
          });
      if (!duplicate) unique.push_back(pkt);
    }
    return unique;
  }
  return ordered;
}

Classification SignatureClassifier::classify(const capture::ConnectionSample& sample) const {
  Classification out;
  if (sample.packets.empty()) return out;

  const auto ordered = order_packets(sample, config_);
  const std::size_t n = ordered.size();

  bool fin_anywhere = false;
  for (const ObservedPacket* pkt : ordered)
    if (pkt->has(net::tcpflag::kFin)) fin_anywhere = true;

  // Locate the first anomaly: the earliest RST, or the earliest >=3 s
  // inactivity gap (internal, or trailing for non-truncated samples when the
  // connection never closed gracefully).
  std::size_t first_rst = n + 1;  // sentinel: no RST
  for (std::size_t i = 0; i < n; ++i) {
    if (ordered[i]->is_rst()) {
      first_rst = i;
      break;
    }
  }
  std::size_t first_gap = n;  // gap *before* ordered[first_gap]
  if (!fin_anywhere) {
    for (std::size_t i = 1; i < n; ++i) {
      if (ordered[i]->ts_sec - ordered[i - 1]->ts_sec >= config_.inactivity_seconds) {
        first_gap = i;
        break;
      }
    }
    const bool truncated = sample.packets.size() >= config_.max_packets;
    if (first_gap == n && !truncated &&
        sample.observation_end_sec - ordered[n - 1]->ts_sec >= config_.inactivity_seconds) {
      first_gap = n;  // trailing silence: anomaly after the last packet
    } else if (first_gap == n) {
      first_gap = n + 1;  // sentinel: no gap anomaly
    }
  } else {
    first_gap = n + 1;
  }

  const std::size_t anomaly = std::min(first_rst, first_gap);
  if (anomaly > n) {
    // No RST, no qualifying inactivity.
    out.graceful = fin_anywhere;
    return out;
  }

  out.possibly_tampered = true;
  out.timeout = anomaly < first_rst;
  if (first_rst <= n) out.first_teardown_index = first_rst;

  // ---- Stage: what did the client get to send before the anomaly? ----
  std::size_t syn_count = 0, ack_count = 0, data_count = 0, fin_count = 0, other_count = 0;
  std::size_t last_data_index = 0;
  std::size_t pre_end = std::min(anomaly, n);
  for (std::size_t i = 0; i < pre_end; ++i) {
    const ObservedPacket& pkt = *ordered[i];
    if (pkt.is_syn()) {
      ++syn_count;
    } else if (pkt.has(net::tcpflag::kFin)) {
      ++fin_count;
    } else if (pkt.is_data()) {
      ++data_count;
      last_data_index = i;
    } else if (pkt.is_pure_ack()) {
      ++ack_count;
    } else {
      ++other_count;
    }
  }

  Stage stage = Stage::kOther;
  if (fin_count == 0 && other_count == 0 && syn_count == 1) {
    if (data_count == 0) {
      if (ack_count == 0) {
        stage = Stage::kPostSyn;
      } else if (ack_count == 1) {
        stage = Stage::kPostAck;
      }
    } else if (data_count == 1 && last_data_index + 1 == pre_end) {
      stage = Stage::kPostPsh;  // anomaly immediately after the first data packet
    } else {
      stage = Stage::kPostData;
    }
  }
  out.stage = stage;

  // ---- Y: tear-down packets from the anomaly onward ----
  std::uint32_t n_rst = 0, n_rst_ack = 0;
  bool first_teardown_is_plain = false;
  std::vector<std::uint32_t> plain_rst_acks;  // ACK numbers of bare RSTs
  for (std::size_t i = std::min(anomaly, n); i < n; ++i) {
    const ObservedPacket& pkt = *ordered[i];
    if (!pkt.is_rst()) continue;
    if (pkt.is_rst_ack()) {
      ++n_rst_ack;
    } else {
      if (n_rst == 0 && n_rst_ack == 0) first_teardown_is_plain = true;
      ++n_rst;
      plain_rst_acks.push_back(pkt.ack);
    }
  }
  out.rst_count = n_rst;
  out.rst_ack_count = n_rst_ack;
  const std::uint32_t total = n_rst + n_rst_ack;

  switch (stage) {
    case Stage::kPostSyn:
      if (total == 0)
        out.signature = Signature::kSynNone;
      else if (n_rst > 0 && n_rst_ack > 0)
        out.signature = Signature::kSynRstRstAck;
      else if (n_rst > 0)
        out.signature = Signature::kSynRst;
      else
        out.signature = Signature::kSynRstAck;
      break;

    case Stage::kPostAck:
      if (total == 0)
        out.signature = Signature::kAckNone;
      else if (n_rst > 0 && n_rst_ack > 0)
        out.signature = std::nullopt;  // mixed: not in Table 1 for Post-ACK
      else if (n_rst == 1)
        out.signature = Signature::kAckRst;
      else if (n_rst > 1)
        out.signature = Signature::kAckRstRst;
      else if (n_rst_ack == 1)
        out.signature = Signature::kAckRstAck;
      else
        out.signature = Signature::kAckRstAckRstAck;
      break;

    case Stage::kPostPsh: {
      if (total == 0) {
        out.signature = Signature::kPshNone;
        break;
      }
      if (n_rst >= 1 && n_rst_ack >= 1) {
        out.signature = Signature::kPshRstRstAck;
      } else if (n_rst_ack >= 2) {
        out.signature = Signature::kPshRstAckRstAck;
      } else if (n_rst_ack == 1) {
        out.signature = Signature::kPshRstAck;
      } else if (n_rst == 1) {
        out.signature = Signature::kPshRst;
      } else {
        // More than one bare RST: split on their ACK numbers.
        const bool any_zero = std::any_of(plain_rst_acks.begin(), plain_rst_acks.end(),
                                          [](std::uint32_t a) { return a == 0; });
        const bool any_nonzero = std::any_of(plain_rst_acks.begin(), plain_rst_acks.end(),
                                             [](std::uint32_t a) { return a != 0; });
        const bool all_equal =
            std::adjacent_find(plain_rst_acks.begin(), plain_rst_acks.end(),
                               std::not_equal_to<>()) == plain_rst_acks.end();
        if (any_zero && any_nonzero)
          out.signature = Signature::kPshRstRst0;
        else if (all_equal)
          out.signature = Signature::kPshRstEqRst;
        else
          out.signature = Signature::kPshRstNeqRst;
      }
      break;
    }

    case Stage::kPostData:
      if (total == 0) {
        out.signature = std::nullopt;  // no ⟨PSH;Data → ∅⟩ signature in Table 1
      } else if (n_rst > 0 && n_rst_ack == 0) {
        out.signature = Signature::kDataRst;
      } else if (n_rst_ack > 0 && n_rst == 0) {
        out.signature = Signature::kDataRstAck;
      } else {
        out.signature =
            first_teardown_is_plain ? Signature::kDataRst : Signature::kDataRstAck;
      }
      break;

    case Stage::kOther:
      out.signature = std::nullopt;
      break;
  }
  return out;
}

}  // namespace tamper::core
