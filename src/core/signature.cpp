#include "core/signature.h"

#include <array>

namespace tamper::core {

namespace {

constexpr std::array<Signature, kSignatureCount> kAll = {
    Signature::kSynNone,         Signature::kSynRst,
    Signature::kSynRstAck,       Signature::kSynRstRstAck,
    Signature::kAckNone,         Signature::kAckRst,
    Signature::kAckRstRst,       Signature::kAckRstAck,
    Signature::kAckRstAckRstAck, Signature::kPshNone,
    Signature::kPshRst,          Signature::kPshRstAck,
    Signature::kPshRstRstAck,    Signature::kPshRstAckRstAck,
    Signature::kPshRstEqRst,     Signature::kPshRstNeqRst,
    Signature::kPshRstRst0,      Signature::kDataRst,
    Signature::kDataRstAck,
};

struct NameEntry {
  Signature sig;
  std::string_view pretty;
  std::string_view ascii;
};

constexpr NameEntry kNames[] = {
    {Signature::kSynNone, "SYN → ∅", "SYN->NONE"},
    {Signature::kSynRst, "SYN → RST", "SYN->RST"},
    {Signature::kSynRstAck, "SYN → RST+ACK", "SYN->RSTACK"},
    {Signature::kSynRstRstAck, "SYN → RST;RST+ACK", "SYN->RST_RSTACK"},
    {Signature::kAckNone, "SYN;ACK → ∅", "SYNACK->NONE"},
    {Signature::kAckRst, "SYN;ACK → RST", "SYNACK->RST"},
    {Signature::kAckRstRst, "SYN;ACK → RST;RST", "SYNACK->RST_RST"},
    {Signature::kAckRstAck, "SYN;ACK → RST+ACK", "SYNACK->RSTACK"},
    {Signature::kAckRstAckRstAck, "SYN;ACK → RST+ACK;RST+ACK", "SYNACK->RSTACK_RSTACK"},
    {Signature::kPshNone, "PSH → ∅", "PSH->NONE"},
    {Signature::kPshRst, "PSH → RST", "PSH->RST"},
    {Signature::kPshRstAck, "PSH → RST+ACK", "PSH->RSTACK"},
    {Signature::kPshRstRstAck, "PSH → RST;RST+ACK", "PSH->RST_RSTACK"},
    {Signature::kPshRstAckRstAck, "PSH → RST+ACK;RST+ACK", "PSH->RSTACK_RSTACK"},
    {Signature::kPshRstEqRst, "PSH → RST=RST", "PSH->RST_EQ_RST"},
    {Signature::kPshRstNeqRst, "PSH → RST≠RST", "PSH->RST_NEQ_RST"},
    {Signature::kPshRstRst0, "PSH → RST;RST₀", "PSH->RST_RST0"},
    {Signature::kDataRst, "PSH;Data → RST", "PSH_DATA->RST"},
    {Signature::kDataRstAck, "PSH;Data → RST+ACK", "PSH_DATA->RSTACK"},
};

}  // namespace

std::span<const Signature> all_signatures() noexcept { return kAll; }

Stage stage_of(Signature sig) noexcept {
  switch (sig) {
    case Signature::kSynNone:
    case Signature::kSynRst:
    case Signature::kSynRstAck:
    case Signature::kSynRstRstAck:
      return Stage::kPostSyn;
    case Signature::kAckNone:
    case Signature::kAckRst:
    case Signature::kAckRstRst:
    case Signature::kAckRstAck:
    case Signature::kAckRstAckRstAck:
      return Stage::kPostAck;
    case Signature::kPshNone:
    case Signature::kPshRst:
    case Signature::kPshRstAck:
    case Signature::kPshRstRstAck:
    case Signature::kPshRstAckRstAck:
    case Signature::kPshRstEqRst:
    case Signature::kPshRstNeqRst:
    case Signature::kPshRstRst0:
      return Stage::kPostPsh;
    case Signature::kDataRst:
    case Signature::kDataRstAck:
      return Stage::kPostData;
  }
  return Stage::kOther;
}

std::string_view name(Signature sig) noexcept {
  for (const auto& entry : kNames)
    if (entry.sig == sig) return entry.pretty;
  return "?";
}

std::string_view ascii_name(Signature sig) noexcept {
  for (const auto& entry : kNames)
    if (entry.sig == sig) return entry.ascii;
  return "?";
}

std::string_view name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kPostSyn:
      return "Post-SYN";
    case Stage::kPostAck:
      return "Post-ACK";
    case Stage::kPostPsh:
      return "Post-PSH";
    case Stage::kPostData:
      return "Post-Data";
    case Stage::kOther:
      return "Other";
  }
  return "?";
}

std::optional<Signature> signature_from_name(std::string_view text) noexcept {
  for (const auto& entry : kNames)
    if (entry.pretty == text || entry.ascii == text) return entry.sig;
  return std::nullopt;
}

bool is_post_ack_or_psh(Signature sig) noexcept {
  const Stage s = stage_of(sig);
  return s == Stage::kPostAck || s == Stage::kPostPsh;
}

}  // namespace tamper::core
