// The tampering-signature taxonomy of Table 1.
//
// A signature ⟨X → Y⟩ names the inbound packets seen before the tampering
// event (X: how deep into the connection the client got) and the tear-down
// packets seen after it (Y: nothing within 3 seconds, or some combination of
// RST / RST+ACK packets). There are 19 signatures across four stages.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace tamper::core {

/// Connection stage at which the tampering event occurred.
enum class Stage : std::uint8_t {
  kPostSyn,   ///< mid-handshake: only a SYN from the client
  kPostAck,   ///< handshake complete, no data yet
  kPostPsh,   ///< immediately after the first data packet
  kPostData,  ///< after multiple data (or post-data ACK) packets
  kOther,     ///< does not fall cleanly into a stage (paper: ~2.3%)
};

enum class Signature : std::uint8_t {
  // Post-SYN (mid-handshake)
  kSynNone,          ///< ⟨SYN → ∅⟩
  kSynRst,           ///< ⟨SYN → RST⟩
  kSynRstAck,        ///< ⟨SYN → RST+ACK⟩
  kSynRstRstAck,     ///< ⟨SYN → RST; RST+ACK⟩
  // Post-ACK (immediately post-handshake)
  kAckNone,          ///< ⟨SYN; ACK → ∅⟩
  kAckRst,           ///< ⟨SYN; ACK → RST⟩ (exactly one)
  kAckRstRst,        ///< ⟨SYN; ACK → RST; RST⟩ (more than one)
  kAckRstAck,        ///< ⟨SYN; ACK → RST+ACK⟩ (exactly one)
  kAckRstAckRstAck,  ///< ⟨SYN; ACK → RST+ACK; RST+ACK⟩ (more than one)
  // Post-PSH (after the first data packet)
  kPshNone,          ///< ⟨PSH+ACK → ∅⟩
  kPshRst,           ///< ⟨PSH+ACK → RST⟩ (exactly one)
  kPshRstAck,        ///< ⟨PSH+ACK → RST+ACK⟩ (exactly one)
  kPshRstRstAck,     ///< ⟨PSH+ACK → RST; RST+ACK⟩ (at least one of each)
  kPshRstAckRstAck,  ///< ⟨PSH+ACK → RST+ACK; RST+ACK⟩ (at least two)
  kPshRstEqRst,      ///< ⟨PSH+ACK → RST = RST⟩ (>1 RST, same ACK numbers)
  kPshRstNeqRst,     ///< ⟨PSH+ACK → RST ≠ RST⟩ (>1 RST, differing ACK numbers)
  kPshRstRst0,       ///< ⟨PSH+ACK → RST; RST₀⟩ (>1 RST, one ACK number zero)
  // Post-multiple-data-packets
  kDataRst,          ///< ⟨PSH+ACK; Data → RST⟩
  kDataRstAck,       ///< ⟨PSH+ACK; Data → RST+ACK⟩
};

inline constexpr std::size_t kSignatureCount = 19;

/// All 19 signatures in Table 1 order.
[[nodiscard]] std::span<const Signature> all_signatures() noexcept;

[[nodiscard]] Stage stage_of(Signature sig) noexcept;

/// Paper-style name, e.g. "SYN;ACK → RST+ACK" or "PSH → RST;RST₀" (UTF-8).
[[nodiscard]] std::string_view name(Signature sig) noexcept;
/// Pure-ASCII name for CSV/code contexts, e.g. "SYN_ACK->RSTACK".
[[nodiscard]] std::string_view ascii_name(Signature sig) noexcept;
[[nodiscard]] std::string_view name(Stage stage) noexcept;

/// Reverse lookup by either naming scheme; nullopt when unknown.
[[nodiscard]] std::optional<Signature> signature_from_name(std::string_view text) noexcept;

/// Signatures the paper treats as robust against SYN-flood/scanner noise
/// (Post-ACK and Post-PSH; §4.2) — several analyses restrict to these.
[[nodiscard]] bool is_post_ack_or_psh(Signature sig) noexcept;

}  // namespace tamper::core
