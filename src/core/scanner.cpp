#include "core/scanner.h"

namespace tamper::core {

ScannerIndicators scanner_indicators(const capture::ConnectionSample& sample) {
  ScannerIndicators out;
  if (sample.packets.empty()) return out;

  bool saw_syn = false;
  bool any_options = false;
  bool ipid_consistent = true;
  std::uint16_t first_ipid = sample.packets.front().ip_id;
  for (const auto& pkt : sample.packets) {
    if (pkt.is_syn()) {
      saw_syn = true;
      if (pkt.has_tcp_options) any_options = true;
      if (pkt.ttl >= kHighTtlThreshold) out.high_ttl = true;
      if (pkt.ip_id == kZmapIpId) out.zmap_ipid = true;
    }
    if (pkt.ip_id != first_ipid) ipid_consistent = false;
  }
  out.no_tcp_options = saw_syn && !any_options;
  out.fixed_nonzero_ipid =
      ipid_consistent && first_ipid != 0 && sample.ip_version == net::IpVersion::kV4;
  return out;
}

}  // namespace tamper::core
