// TCP endpoint state machines for the session simulator.
//
// One class models both roles. The goal is not a full RFC 9293 stack but a
// faithful generator of the *header sequences* a server-side tap observes:
// handshakes, request/response data, graceful FIN teardown, abortive RST,
// retransmission on loss, and the abnormal client behaviors the paper calls
// out as false-positive sources (scanners, Happy Eyeballs cancellation,
// SYN-only probes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "net/packet.h"
#include "tcp/ip_stack_model.h"

namespace tamper::tcp {

enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kTimeWait,
  kReset,
};

/// Client application behaviors.
enum class ClientKind : std::uint8_t {
  kNormal,            ///< request, consume response, graceful FIN
  kSynOnly,           ///< sends one SYN then nothing (spoofed / flood probe)
  kRstOnSynAck,       ///< answers the SYN+ACK with a bare RST (ZMap; HE per RFC 8305)
  kRstAckOnSynAck,    ///< answers the SYN+ACK with RST+ACK (some client stacks)
  kVanishOnSynAck,    ///< ignores the SYN+ACK (curl-style Happy Eyeballs loser)
  kVanishAfterAck,    ///< completes handshake then goes silent (never sends data)
  kVanishAfterRequest, ///< sends the request then goes silent (never ACKs response)
  kAbortMidTransfer,   ///< sends RST+ACK after receiving part of the response
                       ///< (user hit "stop"; a benign post-data RST source)
  kRstAfterFin,        ///< graceful FIN immediately followed by a RST (close()
                       ///< with data in flight; lands in the "other" stage)
};

enum class TimerKind : std::uint8_t {
  kSynRetransmit,
  kDataRetransmit,
  kThink,        ///< client: delay before first request byte
  kNextSegment,  ///< client: gap between request segments
  kService,      ///< server: delay before the response
  kResponseRetransmit,  ///< server: resend unacked response/FIN
};
inline constexpr std::size_t kTimerKindCount = 6;

/// Packets to emit now plus timers to arm, returned from every transition.
struct EndpointActions {
  struct Timer {
    double delay = 0.0;
    TimerKind kind = TimerKind::kThink;
    std::uint64_t generation = 0;
  };
  std::vector<net::Packet> packets;
  std::vector<Timer> timers;
};

struct EndpointConfig {
  net::IpAddress addr;
  std::uint16_t port = 0;
  bool is_client = true;
  IpStackModel stack = IpStackModel::linux_like();
  std::uint32_t isn = 0;
  std::uint16_t mss = 1460;
  std::uint16_t window = 65535;

  // Client application behavior.
  ClientKind kind = ClientKind::kNormal;
  std::vector<std::vector<std::uint8_t>> request_segments;
  double think_time = 0.02;
  double inter_segment_gap = 0.02;
  int syn_retries = 1;
  double syn_rto = 1.0;
  int data_retries = 1;
  double data_rto = 1.5;
  /// kAbortMidTransfer: abort once this many response bytes arrived.
  std::size_t abort_after_response_bytes = 2000;

  // Server application behavior.
  std::size_t response_size = 3000;
  double service_delay = 0.03;
  bool close_after_response = true;
  int response_retries = 2;    ///< retransmissions of unacked response/FIN
  double response_rto = 1.0;
};

class TcpEndpoint {
 public:
  TcpEndpoint(EndpointConfig config, common::Rng rng);

  void set_peer(const net::IpAddress& addr, std::uint16_t port) {
    peer_addr_ = addr;
    peer_port_ = port;
  }

  /// Client: emit the initial SYN. Server: enter LISTEN.
  [[nodiscard]] EndpointActions start(common::SimTime now);
  [[nodiscard]] EndpointActions on_packet(const net::Packet& pkt, common::SimTime now);
  [[nodiscard]] EndpointActions on_timer(TimerKind kind, std::uint64_t generation,
                                         common::SimTime now);

  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] bool is_client() const noexcept { return config_.is_client; }
  /// True when the endpoint will produce no further packets spontaneously.
  [[nodiscard]] bool quiescent() const noexcept;
  [[nodiscard]] const EndpointConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] net::Packet make_packet(std::uint8_t flags, std::uint32_t seq,
                                        std::uint32_t ack,
                                        std::vector<std::uint8_t> payload = {});
  [[nodiscard]] net::Packet make_syn();
  void arm(EndpointActions& actions, TimerKind kind, double delay);
  [[nodiscard]] EndpointActions client_on_packet(const net::Packet& pkt,
                                                 common::SimTime now);
  [[nodiscard]] EndpointActions server_on_packet(const net::Packet& pkt,
                                                 common::SimTime now);
  void send_request_segment(EndpointActions& actions);
  void send_response(EndpointActions& actions);
  void retransmit_response(EndpointActions& actions);

  EndpointConfig config_;
  common::Rng rng_;
  TcpState state_ = TcpState::kClosed;
  net::IpAddress peer_addr_;
  std::uint16_t peer_port_ = 0;

  std::uint32_t snd_nxt_ = 0;  ///< next sequence number to send
  std::uint32_t snd_una_ = 0;  ///< oldest unacknowledged
  std::uint32_t rcv_nxt_ = 0;  ///< next expected from peer
  bool fin_sent_ = false;
  bool fin_received_ = false;
  bool vanished_ = false;      ///< client stopped participating

  std::size_t next_segment_ = 0;       ///< index into request_segments
  std::vector<std::uint8_t> unacked_;  ///< client retransmission buffer
  std::uint32_t unacked_seq_ = 0;
  /// Server retransmission buffer: (seq, length, fin) of emitted response
  /// segments, resent while unacknowledged.
  struct SentSegment {
    std::uint32_t seq;
    std::uint32_t length;
    bool fin;
  };
  std::vector<SentSegment> response_sent_;
  int response_retries_left_ = 0;
  int syn_retries_left_ = 0;
  int data_retries_left_ = 0;
  bool request_seen_ = false;  ///< server: got first data byte
  std::size_t response_bytes_rcvd_ = 0;  ///< client: response progress
  std::uint32_t ts_clock_ = 0;  ///< RFC 7323 timestamps option clock
  std::uint32_t ts_echo_ = 0;   ///< last timestamp value received from peer
  std::uint64_t timer_gen_[kTimerKindCount] = {};
};

}  // namespace tamper::tcp
