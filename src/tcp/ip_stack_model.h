// Models of how a host (or injector) IP stack stamps TTL and IP-ID fields.
//
// These matter because the paper's validation evidence (Figs. 2 and 3) rests
// on injected packets being stamped by a *different* stack than the client's:
// most OSes use zero, a per-connection counter, or a global counter for
// IP-ID, and a constant initial TTL (commonly 64 or 128) — while injectors
// use their own counters/constants, producing large discontinuities.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "net/packet.h"

namespace tamper::tcp {

enum class IpIdStrategy : std::uint8_t {
  kZero,                 ///< always 0 (common for DF packets on Linux)
  kPerConnectionCounter, ///< random start, +1 per packet within the connection
  kGlobalCounter,        ///< shared counter across connections (older Windows)
  kRandomPerPacket,      ///< uniformly random each packet
  kCopyTrigger,          ///< copies the IP-ID of the packet that triggered it
  kFixed,                ///< constant value (ZMap uses 54321)
};

/// Per-host stamping policy plus its mutable counter state.
class IpStackModel {
 public:
  struct Config {
    std::uint8_t initial_ttl = 64;
    bool random_ttl = false;  ///< per-packet uniform TTL (observed from a KR ISP)
    IpIdStrategy ipid = IpIdStrategy::kPerConnectionCounter;
    std::uint16_t fixed_ipid = 0;
    bool emit_tcp_options = true;  ///< scanners often omit all options
    /// SYN carries only an MSS option (scanner probes that survive DDoS
    /// scrubbing; fully optionless SYNs are scrubbed, which is why the
    /// paper found none).
    bool minimal_syn_options = false;
  };

  IpStackModel() : IpStackModel(Config{}) {}
  explicit IpStackModel(const Config& config) : config_(config) {}

  /// Initialize per-connection state (counter start) from the stream RNG.
  void start_connection(common::Rng& rng) {
    if (config_.ipid == IpIdStrategy::kPerConnectionCounter ||
        config_.ipid == IpIdStrategy::kGlobalCounter) {
      if (!counter_initialized_) {
        counter_ = static_cast<std::uint16_t>(rng.below(65536));
        counter_initialized_ = true;
      }
    }
    if (config_.ipid == IpIdStrategy::kPerConnectionCounter) {
      counter_ = static_cast<std::uint16_t>(rng.below(65536));
    }
  }

  /// Stamp TTL and IP-ID onto an outgoing packet. `trigger` is the packet
  /// that provoked this one (used by kCopyTrigger injectors).
  void stamp(net::Packet& pkt, common::Rng& rng, const net::Packet* trigger = nullptr) {
    pkt.ip.ttl = config_.random_ttl
                     ? static_cast<std::uint8_t>(rng.range(16, 255))
                     : config_.initial_ttl;
    if (pkt.src.is_v6()) {
      pkt.ip.ip_id = 0;
      return;
    }
    switch (config_.ipid) {
      case IpIdStrategy::kZero:
        pkt.ip.ip_id = 0;
        break;
      case IpIdStrategy::kPerConnectionCounter:
      case IpIdStrategy::kGlobalCounter:
        pkt.ip.ip_id = counter_++;
        break;
      case IpIdStrategy::kRandomPerPacket:
        pkt.ip.ip_id = static_cast<std::uint16_t>(rng.below(65536));
        break;
      case IpIdStrategy::kCopyTrigger:
        pkt.ip.ip_id = trigger != nullptr ? trigger->ip.ip_id
                                          : static_cast<std::uint16_t>(rng.below(65536));
        break;
      case IpIdStrategy::kFixed:
        pkt.ip.ip_id = config_.fixed_ipid;
        break;
    }
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Canonical client stacks.
  [[nodiscard]] static IpStackModel linux_like() {
    return IpStackModel(Config{.initial_ttl = 64,
                               .ipid = IpIdStrategy::kPerConnectionCounter});
  }
  [[nodiscard]] static IpStackModel windows_like() {
    return IpStackModel(Config{.initial_ttl = 128, .ipid = IpIdStrategy::kGlobalCounter});
  }
  [[nodiscard]] static IpStackModel zero_ipid() {
    return IpStackModel(Config{.initial_ttl = 64, .ipid = IpIdStrategy::kZero});
  }
  /// ZMap probe stack: fixed IP-ID 54321, high TTL, minimal options.
  [[nodiscard]] static IpStackModel zmap() {
    return IpStackModel(Config{.initial_ttl = 255,
                               .ipid = IpIdStrategy::kFixed,
                               .fixed_ipid = 54321,
                               .minimal_syn_options = true});
  }

 private:
  Config config_;
  std::uint16_t counter_ = 0;
  bool counter_initialized_ = false;
};

}  // namespace tamper::tcp
