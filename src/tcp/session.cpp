#include "tcp/session.h"

#include <algorithm>
#include <queue>
#include <variant>

namespace tamper::tcp {

namespace {

struct TimerEvent {
  TimerKind kind;
  std::uint64_t generation;
};

struct DeliveryEvent {
  net::Packet pkt;
  bool injected;
};

struct Event {
  common::SimTime time;
  std::uint64_t order;  ///< stable tiebreak for equal times
  bool to_server;       ///< which endpoint handles it
  std::variant<DeliveryEvent, TimerEvent> body;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.order > b.order;
  }
};

}  // namespace

SessionResult simulate_session(TcpEndpoint& client, TcpEndpoint& server, PathHook* hook,
                               const SessionConfig& config, common::Rng& rng) {
  SessionResult result;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t order = 0;
  const common::SimTime deadline = config.start_time + config.time_budget;

  auto delay_sample = [&]() {
    return config.one_way_delay + rng.uniform(-config.jitter, config.jitter);
  };

  // Packets sharing a direction share a path: deliveries are FIFO (jitter
  // shifts the whole stream, it does not reorder it). Without this, a
  // response burst's FIN could overtake its data and stall the peer.
  common::SimTime last_arrival[2] = {0.0, 0.0};
  auto schedule_delivery = [&](common::SimTime when, bool to_server, net::Packet pkt,
                               bool injected) {
    common::SimTime& previous = last_arrival[to_server ? 1 : 0];
    when = std::max(when, previous + 1e-6);
    previous = when;
    queue.push(Event{when, order++, to_server, DeliveryEvent{std::move(pkt), injected}});
  };

  // Send a packet emitted by an endpoint (not injected) across the path.
  auto transmit = [&](bool from_client, net::Packet pkt, common::SimTime now) {
    const Direction dir =
        from_client ? Direction::kClientToServer : Direction::kServerToClient;
    pkt.timestamp = now;

    PathDecision decision;
    double mb_latency = 0.0;
    if (hook != nullptr) {
      // The hook sees the packet mid-path with a partially decremented TTL.
      net::Packet at_middlebox = pkt;
      const int hops_to_mb = from_client ? config.geometry.middlebox_hop
                                         : config.geometry.hops_to_server();
      at_middlebox.ip.ttl = static_cast<std::uint8_t>(
          std::max(1, static_cast<int>(pkt.ip.ttl) - hops_to_mb));
      decision = hook->on_transit(dir, at_middlebox, now);
      mb_latency =
          delay_sample() * (from_client
                                ? static_cast<double>(config.geometry.middlebox_hop) /
                                      std::max(1, config.geometry.total_hops)
                                : static_cast<double>(config.geometry.hops_to_server()) /
                                      std::max(1, config.geometry.total_hops));
    }

    // Deliver (or drop) the traversing packet first: on the wire it is ahead
    // of anything the middlebox forges in response to it.
    if (decision.drop) {
      ++result.packets_dropped_by_hook;
    } else if (config.loss_rate > 0.0 && rng.chance(config.loss_rate)) {
      ++result.packets_lost;
    } else {
      net::Packet delivered = pkt;
      delivered.ip.ttl = static_cast<std::uint8_t>(
          std::max(1, static_cast<int>(pkt.ip.ttl) - config.geometry.total_hops));
      schedule_delivery(now + delay_sample(), from_client, std::move(delivered), false);
    }

    for (auto& injection : decision.injections) {
      injection.pkt.timestamp = now + mb_latency + injection.delay;
      const double rest =
          delay_sample() *
          (injection.toward == Direction::kClientToServer
               ? static_cast<double>(config.geometry.hops_to_server())
               : static_cast<double>(config.geometry.hops_to_client())) /
          std::max(1, config.geometry.total_hops);
      schedule_delivery(injection.pkt.timestamp + rest,
                        injection.toward == Direction::kClientToServer,
                        std::move(injection.pkt), true);
    }
  };

  auto process_actions = [&](bool from_client, EndpointActions actions,
                             common::SimTime now) {
    for (auto& pkt : actions.packets) transmit(from_client, std::move(pkt), now);
    for (const auto& timer : actions.timers) {
      queue.push(Event{now + timer.delay, order++, !from_client,
                       TimerEvent{timer.kind, timer.generation}});
    }
  };

  process_actions(false, server.start(config.start_time), config.start_time);
  process_actions(true, client.start(config.start_time), config.start_time);

  common::SimTime now = config.start_time;
  while (!queue.empty()) {
    Event ev = queue.top();
    queue.pop();
    if (ev.time > deadline) break;
    now = ev.time;
    TcpEndpoint& target = ev.to_server ? server : client;
    const bool replies_from_client = !ev.to_server;

    if (std::holds_alternative<DeliveryEvent>(ev.body)) {
      auto& delivery = std::get<DeliveryEvent>(ev.body);
      delivery.pkt.timestamp = now;
      if (ev.to_server) {
        result.server_inbound.push_back(
            TracedPacket{delivery.pkt, Direction::kClientToServer, delivery.injected});
      }
      result.full_trace.push_back(TracedPacket{
          delivery.pkt,
          ev.to_server ? Direction::kClientToServer : Direction::kServerToClient,
          delivery.injected});
      process_actions(replies_from_client, target.on_packet(delivery.pkt, now), now);
    } else {
      const auto& timer = std::get<TimerEvent>(ev.body);
      process_actions(replies_from_client, target.on_timer(timer.kind, timer.generation, now),
                      now);
    }
  }
  // The tap keeps observing until the horizon even after traffic stops, so
  // trailing-silence ("no packets for >3 s") computations use the deadline.
  result.end_time = deadline;
  return result;
}

}  // namespace tamper::tcp
