#include "tcp/endpoint.h"

#include <algorithm>

namespace tamper::tcp {

using net::Packet;
using namespace net::tcpflag;

TcpEndpoint::TcpEndpoint(EndpointConfig config, common::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  config_.stack.start_connection(rng_);
  ts_clock_ = static_cast<std::uint32_t>(rng_.below(1u << 30));
  snd_nxt_ = config_.isn;
  snd_una_ = config_.isn;
  syn_retries_left_ = config_.syn_retries;
  data_retries_left_ = config_.data_retries;
  state_ = config_.is_client ? TcpState::kClosed : TcpState::kListen;
}

bool TcpEndpoint::quiescent() const noexcept {
  return vanished_ || state_ == TcpState::kClosed || state_ == TcpState::kReset ||
         state_ == TcpState::kTimeWait;
}

Packet TcpEndpoint::make_packet(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                                std::vector<std::uint8_t> payload) {
  Packet pkt = net::make_tcp_packet(config_.addr, config_.port, peer_addr_, peer_port_,
                                    flags, seq, ack, std::move(payload));
  pkt.tcp.window = config_.window;
  config_.stack.stamp(pkt, rng_);
  // Stacks that negotiated options keep emitting the timestamps option on
  // every segment (RFC 7323). Injected packets typically lack it — one of
  // the forgery signals Weaver et al. exploit.
  if (!pkt.tcp.has(kSyn) && config_.stack.config().emit_tcp_options &&
      !config_.stack.config().minimal_syn_options) {
    pkt.tcp.options.push_back(net::TcpOption::nop_opt());
    pkt.tcp.options.push_back(net::TcpOption::nop_opt());
    pkt.tcp.options.push_back(net::TcpOption::timestamps_opt(++ts_clock_, ts_echo_));
  }
  return pkt;
}

Packet TcpEndpoint::make_syn() {
  Packet pkt = make_packet(kSyn, config_.isn, 0);
  if (config_.stack.config().minimal_syn_options) {
    pkt.tcp.options.push_back(net::TcpOption::mss_opt(config_.mss));
  } else if (config_.stack.config().emit_tcp_options) {
    pkt.tcp.options.push_back(net::TcpOption::mss_opt(config_.mss));
    pkt.tcp.options.push_back(net::TcpOption::sack_permitted_opt());
    pkt.tcp.options.push_back(
        net::TcpOption::timestamps_opt(static_cast<std::uint32_t>(rng_.below(1u << 30)), 0));
    pkt.tcp.options.push_back(net::TcpOption::nop_opt());
    pkt.tcp.options.push_back(net::TcpOption::window_scale_opt(7));
  }
  return pkt;
}

void TcpEndpoint::arm(EndpointActions& actions, TimerKind kind, double delay) {
  const auto idx = static_cast<std::size_t>(kind);
  ++timer_gen_[idx];
  actions.timers.push_back({delay, kind, timer_gen_[idx]});
}

EndpointActions TcpEndpoint::start(common::SimTime /*now*/) {
  EndpointActions actions;
  if (!config_.is_client) {
    state_ = TcpState::kListen;
    return actions;
  }
  state_ = TcpState::kSynSent;
  snd_nxt_ = config_.isn + 1;  // SYN consumes one sequence number
  actions.packets.push_back(make_syn());
  if (config_.kind == ClientKind::kSynOnly) {
    vanished_ = true;  // spoofed source: the SYN+ACK goes nowhere
    return actions;
  }
  if (config_.syn_retries > 0)
    arm(actions, TimerKind::kSynRetransmit, config_.syn_rto);
  return actions;
}

EndpointActions TcpEndpoint::on_packet(const Packet& pkt, common::SimTime now) {
  if (vanished_ || state_ == TcpState::kReset) return {};
  if (const auto ts = pkt.tcp.timestamp_value()) ts_echo_ = *ts;
  if (pkt.tcp.is_rst()) {
    // RFC 9293: RST acceptability checks elided; any RST kills the session.
    state_ = TcpState::kReset;
    vanished_ = true;
    return {};
  }
  return config_.is_client ? client_on_packet(pkt, now) : server_on_packet(pkt, now);
}

void TcpEndpoint::send_request_segment(EndpointActions& actions) {
  if (next_segment_ >= config_.request_segments.size()) return;
  std::vector<std::uint8_t> payload = config_.request_segments[next_segment_];
  ++next_segment_;
  unacked_ = payload;
  unacked_seq_ = snd_nxt_;
  data_retries_left_ = config_.data_retries;
  Packet pkt = make_packet(kPsh | kAck, snd_nxt_, rcv_nxt_, std::move(payload));
  snd_nxt_ += static_cast<std::uint32_t>(pkt.payload.size());
  actions.packets.push_back(std::move(pkt));
  if (next_segment_ < config_.request_segments.size()) {
    arm(actions, TimerKind::kNextSegment, config_.inter_segment_gap);
  }
  if (config_.data_retries > 0) arm(actions, TimerKind::kDataRetransmit, config_.data_rto);
}

EndpointActions TcpEndpoint::client_on_packet(const Packet& pkt, common::SimTime /*now*/) {
  EndpointActions actions;
  const auto& tcp = pkt.tcp;

  if (state_ == TcpState::kSynSent && tcp.is_syn_ack()) {
    rcv_nxt_ = tcp.seq + 1;
    snd_una_ = std::max(snd_una_, tcp.ack);
    switch (config_.kind) {
      case ClientKind::kRstOnSynAck:
        // ZMap-style abort: bare RST, sequence taken from the acked value.
        actions.packets.push_back(make_packet(kRst, snd_nxt_, 0));
        state_ = TcpState::kReset;
        vanished_ = true;
        return actions;
      case ClientKind::kRstAckOnSynAck:
        actions.packets.push_back(make_packet(kRst | kAck, snd_nxt_, rcv_nxt_));
        state_ = TcpState::kReset;
        vanished_ = true;
        return actions;
      case ClientKind::kVanishOnSynAck:
        vanished_ = true;
        return actions;
      default:
        break;
    }
    actions.packets.push_back(make_packet(kAck, snd_nxt_, rcv_nxt_));
    state_ = TcpState::kEstablished;
    if (config_.kind == ClientKind::kVanishAfterAck) {
      vanished_ = true;
      return actions;
    }
    if (!config_.request_segments.empty())
      arm(actions, TimerKind::kThink, config_.think_time);
    return actions;
  }

  if (state_ == TcpState::kSynSent) return actions;  // stray packet pre-handshake

  // Acknowledgment bookkeeping.
  if (tcp.has(kAck)) {
    snd_una_ = std::max(snd_una_, tcp.ack);
    if (snd_una_ >= snd_nxt_) {
      ++timer_gen_[static_cast<std::size_t>(TimerKind::kDataRetransmit)];  // cancel
      unacked_.clear();
    }
  }

  bool advanced = false;
  if (!pkt.payload.empty()) {
    if (tcp.seq == rcv_nxt_) {
      rcv_nxt_ += static_cast<std::uint32_t>(pkt.payload.size());
      response_bytes_rcvd_ += pkt.payload.size();
      advanced = true;
    }
    // Out-of-order data: fall through and emit a duplicate ACK below.
  }
  if (config_.kind == ClientKind::kAbortMidTransfer &&
      response_bytes_rcvd_ >= config_.abort_after_response_bytes) {
    actions.packets.push_back(make_packet(kRst | kAck, snd_nxt_, rcv_nxt_));
    state_ = TcpState::kReset;
    vanished_ = true;
    return actions;
  }
  if (tcp.has(kFin) && tcp.seq + pkt.payload.size() == rcv_nxt_) {
    rcv_nxt_ += 1;
    fin_received_ = true;
    advanced = true;
  }

  if (config_.kind == ClientKind::kVanishAfterRequest &&
      next_segment_ >= config_.request_segments.size() && next_segment_ > 0) {
    vanished_ = true;
    return actions;  // never ACKs the response
  }

  if (fin_received_ && !fin_sent_ &&
      (config_.kind == ClientKind::kNormal || config_.kind == ClientKind::kRstAfterFin)) {
    // Respond to the server's FIN with our own FIN+ACK (common combined form).
    fin_sent_ = true;
    actions.packets.push_back(make_packet(kFin | kAck, snd_nxt_, rcv_nxt_));
    snd_nxt_ += 1;
    if (config_.kind == ClientKind::kRstAfterFin) {
      // close() raced pending data: the stack follows up with a reset.
      actions.packets.push_back(make_packet(kRst | kAck, snd_nxt_, rcv_nxt_));
      state_ = TcpState::kReset;
      vanished_ = true;
    } else {
      state_ = TcpState::kLastAck;
    }
    return actions;
  }
  if (state_ == TcpState::kLastAck && tcp.has(kAck) && tcp.ack >= snd_nxt_) {
    state_ = TcpState::kClosed;
    return actions;
  }
  if (!pkt.payload.empty() || advanced) {
    actions.packets.push_back(make_packet(kAck, snd_nxt_, rcv_nxt_));
  }
  return actions;
}

void TcpEndpoint::send_response(EndpointActions& actions) {
  std::size_t remaining = config_.response_size;
  // Response bytes are opaque to the tap (only inbound packets are logged),
  // so fill with a fixed pattern.
  while (remaining > 0) {
    const std::size_t chunk = std::min<std::size_t>(remaining, config_.mss);
    std::vector<std::uint8_t> payload(chunk, 0x5a);
    Packet pkt = make_packet(remaining == chunk ? (kPsh | kAck) : kAck, snd_nxt_,
                             rcv_nxt_, std::move(payload));
    response_sent_.push_back({snd_nxt_, static_cast<std::uint32_t>(chunk), false});
    snd_nxt_ += static_cast<std::uint32_t>(chunk);
    actions.packets.push_back(std::move(pkt));
    remaining -= chunk;
  }
  if (config_.close_after_response) {
    fin_sent_ = true;
    response_sent_.push_back({snd_nxt_, 0, true});
    actions.packets.push_back(make_packet(kFin | kAck, snd_nxt_, rcv_nxt_));
    snd_nxt_ += 1;
    state_ = TcpState::kFinWait1;
  }
  if (config_.response_retries > 0 && !response_sent_.empty()) {
    response_retries_left_ = config_.response_retries;
    arm(actions, TimerKind::kResponseRetransmit, config_.response_rto);
  }
}

void TcpEndpoint::retransmit_response(EndpointActions& actions) {
  for (const SentSegment& segment : response_sent_) {
    const std::uint32_t end = segment.seq + segment.length + (segment.fin ? 1 : 0);
    if (end <= snd_una_) continue;  // fully acknowledged
    if (segment.fin) {
      actions.packets.push_back(make_packet(kFin | kAck, segment.seq, rcv_nxt_));
    } else {
      actions.packets.push_back(make_packet(
          kPsh | kAck, segment.seq, rcv_nxt_,
          std::vector<std::uint8_t>(segment.length, 0x5a)));
    }
  }
}

EndpointActions TcpEndpoint::server_on_packet(const Packet& pkt, common::SimTime /*now*/) {
  EndpointActions actions;
  const auto& tcp = pkt.tcp;

  if (tcp.is_syn()) {
    // New connection (or retransmitted SYN): (re)send SYN+ACK.
    peer_addr_ = pkt.src;
    peer_port_ = tcp.src_port;
    rcv_nxt_ = tcp.seq + 1;
    if (state_ == TcpState::kListen) {
      snd_nxt_ = config_.isn + 1;
      state_ = TcpState::kSynReceived;
      // SYN data (e.g. TFO-style payloads) is acknowledged but not parsed here.
      if (!pkt.payload.empty()) rcv_nxt_ += static_cast<std::uint32_t>(pkt.payload.size());
    }
    Packet synack = make_packet(kSyn | kAck, config_.isn, rcv_nxt_);
    if (config_.stack.config().emit_tcp_options) {
      synack.tcp.options.push_back(net::TcpOption::mss_opt(config_.mss));
      synack.tcp.options.push_back(net::TcpOption::sack_permitted_opt());
      synack.tcp.options.push_back(net::TcpOption::window_scale_opt(7));
    }
    actions.packets.push_back(std::move(synack));
    return actions;
  }

  if (state_ == TcpState::kListen) return actions;

  if (tcp.has(kAck)) {
    snd_una_ = std::max(snd_una_, tcp.ack);
    if (state_ == TcpState::kSynReceived) state_ = TcpState::kEstablished;
    if (state_ == TcpState::kFinWait1 && tcp.ack >= snd_nxt_) state_ = TcpState::kFinWait2;
  }

  bool advanced = false;
  if (!pkt.payload.empty() && tcp.seq == rcv_nxt_) {
    rcv_nxt_ += static_cast<std::uint32_t>(pkt.payload.size());
    advanced = true;
    if (!request_seen_) {
      request_seen_ = true;
      arm(actions, TimerKind::kService, config_.service_delay);
    }
  }
  if (tcp.has(kFin) && tcp.seq + pkt.payload.size() == rcv_nxt_) {
    rcv_nxt_ += 1;
    fin_received_ = true;
    advanced = true;
    actions.packets.push_back(make_packet(kAck, snd_nxt_, rcv_nxt_));
    if (!fin_sent_) {
      fin_sent_ = true;
      actions.packets.push_back(make_packet(kFin | kAck, snd_nxt_, rcv_nxt_));
      snd_nxt_ += 1;
      state_ = TcpState::kLastAck;
    } else {
      state_ = TcpState::kClosed;
    }
    return actions;
  }
  if (advanced || !pkt.payload.empty()) {
    actions.packets.push_back(make_packet(kAck, snd_nxt_, rcv_nxt_));
  }
  return actions;
}

EndpointActions TcpEndpoint::on_timer(TimerKind kind, std::uint64_t generation,
                                      common::SimTime /*now*/) {
  EndpointActions actions;
  if (vanished_) return actions;
  if (generation != timer_gen_[static_cast<std::size_t>(kind)]) return actions;  // stale

  switch (kind) {
    case TimerKind::kSynRetransmit:
      if (state_ == TcpState::kSynSent && syn_retries_left_ > 0) {
        --syn_retries_left_;
        actions.packets.push_back(make_syn());
        if (syn_retries_left_ > 0)
          arm(actions, TimerKind::kSynRetransmit, config_.syn_rto * 2.0);
      }
      break;
    case TimerKind::kThink:
      if (state_ == TcpState::kEstablished) send_request_segment(actions);
      break;
    case TimerKind::kNextSegment:
      if (state_ == TcpState::kEstablished) send_request_segment(actions);
      break;
    case TimerKind::kDataRetransmit:
      if (!unacked_.empty() && snd_una_ < snd_nxt_ && data_retries_left_ > 0) {
        --data_retries_left_;
        actions.packets.push_back(
            make_packet(kPsh | kAck, unacked_seq_, rcv_nxt_, unacked_));
        if (data_retries_left_ > 0)
          arm(actions, TimerKind::kDataRetransmit, config_.data_rto * 2.0);
      }
      break;
    case TimerKind::kService:
      if (state_ == TcpState::kEstablished) send_response(actions);
      break;
    case TimerKind::kResponseRetransmit:
      if (snd_una_ < snd_nxt_ && response_retries_left_ > 0 &&
          state_ != TcpState::kReset) {
        --response_retries_left_;
        retransmit_response(actions);
        if (response_retries_left_ > 0)
          arm(actions, TimerKind::kResponseRetransmit, config_.response_rto * 2.0);
      }
      break;
  }
  return actions;
}

}  // namespace tamper::tcp
