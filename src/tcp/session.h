// Discrete-event simulation of one TCP session across a network path with an
// optional in/on-path middlebox hook.
//
// The simulator delivers packets between a client and a server endpoint with
// configurable one-way delay, jitter, random loss, and hop counts (TTL is
// decremented like a real path so the Fig. 3 evidence arises naturally). The
// PathHook observes every traversing packet and may drop it and/or inject
// forged packets toward either end — exactly the capability set of the
// tampering middleboxes in the paper (§2.1, §3.1).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "net/packet.h"
#include "tcp/endpoint.h"

namespace tamper::tcp {

enum class Direction : std::uint8_t { kClientToServer, kServerToClient };

/// Where the middlebox sits on the path; used by hooks to compute the TTL an
/// injected packet will arrive with.
struct PathGeometry {
  int total_hops = 14;     ///< client NIC -> server NIC
  int middlebox_hop = 5;   ///< hops from the client to the middlebox
  [[nodiscard]] int hops_to_server() const noexcept { return total_hops - middlebox_hop; }
  [[nodiscard]] int hops_to_client() const noexcept { return middlebox_hop; }
};

/// A forged packet to deliver. `pkt.ip.ttl` must already be the *arrival*
/// TTL (injector initial TTL minus hops from the middlebox; see
/// PathGeometry::hops_to_*). `delay` is measured from the trigger packet's
/// traversal of the middlebox.
struct Injection {
  net::Packet pkt;
  Direction toward = Direction::kClientToServer;
  double delay = 0.0;
};

/// Hook verdict for one traversing packet.
struct PathDecision {
  bool drop = false;
  std::vector<Injection> injections;
};

/// Interface implemented by middleboxes (see middlebox/).
class PathHook {
 public:
  virtual ~PathHook() = default;
  /// `pkt` carries the TTL as seen at the middlebox.
  virtual PathDecision on_transit(Direction dir, const net::Packet& pkt,
                                  common::SimTime now) = 0;
};

struct SessionConfig {
  common::SimTime start_time = 0.0;
  double one_way_delay = 0.04;   ///< seconds, each direction
  double jitter = 0.004;         ///< uniform +/- jitter
  double loss_rate = 0.0;        ///< independent per-packet loss, both directions
  double time_budget = 30.0;     ///< simulated seconds before the session is cut
  PathGeometry geometry;
};

/// A packet observed at the server tap (or in the full trace).
struct TracedPacket {
  net::Packet pkt;      ///< as received (arrival TTL/timestamps)
  Direction dir = Direction::kClientToServer;
  bool injected = false;  ///< ground truth: forged by the middlebox
};

struct SessionResult {
  /// Packets that arrived at the server, in arrival order (the tap input).
  std::vector<TracedPacket> server_inbound;
  /// Every delivered packet, both directions (for pcap export/debugging).
  std::vector<TracedPacket> full_trace;
  common::SimTime end_time = 0.0;
  std::uint64_t packets_dropped_by_hook = 0;
  std::uint64_t packets_lost = 0;
};

/// Runs one client/server pair to quiescence or the time budget.
/// `hook` may be nullptr (clean path).
[[nodiscard]] SessionResult simulate_session(TcpEndpoint& client, TcpEndpoint& server,
                                             PathHook* hook, const SessionConfig& config,
                                             common::Rng& rng);

}  // namespace tamper::tcp
