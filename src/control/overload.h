// Overload control plane: admission control, the degradation ladder, and
// sink backpressure — the contract that keeps a PoP inside its memory and
// staleness bounds when the offered load exceeds what it can classify.
//
// Three cooperating pieces, all deterministic given (seed, clock):
//
//   * AdmissionDecision / OverloadController::admit() — the gate in front
//     of the service's bounded MPSC queue. A token bucket caps the
//     sustained admit rate (refilled from the injectable obs::Clock, never
//     ambient time — lint R1), and the current ladder level contributes a
//     sampling stride and embryonic/new-flow policy. Every refusal carries
//     an explicit reason and is counted; nothing is dropped silently.
//
//   * The degradation ladder — Level::kNormal .. Level::kShedding. Each
//     level maps to a concrete LevelPolicy (see policy_for): raise the
//     effective sampling stride, shed embryonic flows at admission, skip
//     app-proto (TLS/HTTP) parsing and keep only tamper-signature
//     evidence, and finally reject new flows outright. Transitions are
//     driven by observe(): queue-depth watermarks, emitter spool depth and
//     the circuit breaker feed a pressure/calm signal that must persist
//     for a configured streak (hysteresis) before the level moves one rung
//     — so a single burst cannot flap the service through the whole
//     ladder.
//
//   * The circuit breaker — sink backpressure. Consecutive report-delivery
//     failures trip it; while open, the service skips periodic report
//     emissions (counted) instead of growing the spool without bound, and
//     the open breaker is itself a pressure input that pushes the ladder
//     up. After a cooldown (injectable clock) it half-opens to let one
//     probe emission through.
//
// OverloadState is the compact summary that travels in each fleet partial
// (fleet/partial.h) so the central merger can mark epochs covered by a
// shedding PoP as coverage-degraded rather than treating them as healthy.
#pragma once

#include <array>
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace tamper::control {

/// The degradation ladder, mildest first. Levels only ever move one rung
/// per transition; the enumerator order IS the escalation order.
enum class Level : std::uint8_t {
  kNormal = 0,        ///< full fidelity
  kSampleDown = 1,    ///< admission stride > 1: deterministic subsampling
  kEmbryonicShed = 2, ///< + embryonic (single-SYN) flows refused at admission
  kEvidenceOnly = 3,  ///< + skip app-proto DPI; keep tamper-signature evidence
  kShedding = 4,      ///< + reject all new flows
};

[[nodiscard]] constexpr std::array<Level, 5> all_levels() noexcept {
  return {Level::kNormal, Level::kSampleDown, Level::kEmbryonicShed,
          Level::kEvidenceOnly, Level::kShedding};
}

/// Stable snake_case name (metrics labels, fleet coverage JSON).
[[nodiscard]] const char* name(Level level) noexcept;

/// What a ladder level concretely does to the ingest path.
struct LevelPolicy {
  std::uint32_t admit_one_in = 1;  ///< admission stride (1 = every sample)
  bool shed_embryonic = false;     ///< refuse single-SYN flows at admission
  bool parse_app_proto = true;     ///< false: evidence-only classification
  bool admit_new_flows = true;     ///< false: reject everything (kShedding)
};

/// The fixed level -> policy mapping (documented in DESIGN.md §11).
[[nodiscard]] LevelPolicy policy_for(Level level) noexcept;

struct OverloadConfig {
  /// Master switch: a default-constructed config leaves the service's
  /// behavior exactly as before this subsystem existed.
  bool enabled = false;

  /// Token bucket: sustained admit rate in samples/second (0 = unlimited)
  /// and bucket capacity (0 = one second of rate). Refills from `clock`.
  double admit_rate_per_sec = 0.0;
  double admit_burst = 0.0;

  /// Queue-depth watermarks as fractions of capacity: pressure above high,
  /// calm below low, hysteresis holds in between.
  double high_watermark = 0.75;
  double low_watermark = 0.40;
  /// Emitter spool depth at or above this counts as pressure (the sink is
  /// not keeping up and disk is filling).
  std::size_t spool_high_watermark = 64;

  /// Hysteresis, in consecutive observe() calls: the pressure (calm)
  /// signal must persist this long before the ladder moves up (down) one
  /// rung. observe() is sample-cadenced, so these are deterministic under
  /// a seeded load schedule.
  std::uint32_t escalate_after = 4;
  std::uint32_t deescalate_after = 16;

  /// Circuit breaker: consecutive report-delivery failures that trip it,
  /// and how long it stays open before half-opening for a probe.
  std::uint32_t breaker_trip_after = 3;
  std::uint64_t breaker_cooldown_ns = 250'000'000;

  /// Injectable time source for the token bucket and breaker cooldown.
  /// Null means obs::monotonic_clock(); campaigns inject a ManualClock so
  /// twin-seeded runs are byte-identical.
  const obs::Clock* clock = nullptr;
};

/// Why admit() refused a sample. kNone means admitted.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kRateLimited,    ///< token bucket empty
  kSampledDown,    ///< ladder stride skipped it
  kEmbryonicShed,  ///< embryonic flow at kEmbryonicShed or above
  kRejected,       ///< kShedding refuses all new flows
};

struct AdmissionDecision {
  bool admit = true;
  DropReason reason = DropReason::kNone;
  Level level = Level::kNormal;  ///< ladder level at decision time
};

/// Cumulative controller accounting (single source of truth; the metrics
/// collector and DegradedStats both mirror it).
struct OverloadStats {
  std::uint64_t offered = 0;         ///< admit() calls
  std::uint64_t admitted = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t sampled_down = 0;
  std::uint64_t embryonic_shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t escalations = 0;
  std::uint64_t deescalations = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t reports_skipped = 0;  ///< emissions skipped, breaker open
  Level level = Level::kNormal;
  Level peak_level = Level::kNormal;

  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return rate_limited + sampled_down + embryonic_shed + rejected;
  }
};

/// The compact per-PoP summary carried in every fleet partial envelope.
struct OverloadState {
  Level level = Level::kNormal;        ///< ladder level at emission time
  std::uint64_t shed_samples = 0;      ///< cumulative admission drops
  std::int64_t first_shed_ts_sec = 0;  ///< capture time of the first drop (0: never)
};

/// The overload controller. Thread contract: every public method is safe
/// from any thread (producers admit, the worker observes, the metrics
/// collector reads); all state sits behind one leaf mutex and the methods
/// never call out while holding it.
class OverloadController {
 public:
  explicit OverloadController(const OverloadConfig& config);
  ~OverloadController();

  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  /// Ladder inputs at one observation point (one per submitted sample plus
  /// one per worker iteration, in the live service).
  struct Inputs {
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    std::size_t spool_depth = 0;
  };

  /// Feed the watermark comparators and advance the ladder (one rung at
  /// most, hysteresis permitting).
  void observe(const Inputs& inputs) TAMPER_EXCLUDES(mu_);

  /// Admission decision for one sample. `embryonic` is the queue's
  /// shed_first predicate (single bare SYN); `sample_ts_sec` stamps
  /// first_shed_ts_sec when this is the first drop ever.
  [[nodiscard]] AdmissionDecision admit(bool embryonic, std::int64_t sample_ts_sec)
      TAMPER_EXCLUDES(mu_);

  /// Report-delivery outcome from the emitter: failures feed the breaker,
  /// a success closes it.
  void report_outcome(bool delivered) TAMPER_EXCLUDES(mu_);

  /// True while the breaker holds emissions back. After the cooldown the
  /// breaker half-opens: this returns false so one probe emission goes
  /// through; its outcome re-trips or closes the breaker.
  [[nodiscard]] bool breaker_open() TAMPER_EXCLUDES(mu_);

  /// Count one periodic emission skipped because the breaker was open.
  void count_report_skipped() TAMPER_EXCLUDES(mu_);

  [[nodiscard]] Level level() const TAMPER_EXCLUDES(mu_);
  [[nodiscard]] OverloadStats stats() const TAMPER_EXCLUDES(mu_);
  [[nodiscard]] OverloadState state() const TAMPER_EXCLUDES(mu_);

  /// Register the tamper_overload_* metric families plus a collector that
  /// mirrors stats() at every snapshot. The registry must outlive the
  /// controller (or call set_obs(nullptr) first).
  void set_obs(obs::Registry* metrics);

 private:
  void refill_locked(std::uint64_t now_ns) TAMPER_REQUIRES(mu_);
  void move_level_locked(Level to) TAMPER_REQUIRES(mu_);

  const OverloadConfig config_;
  const obs::Clock* clock_;
  mutable common::Mutex mu_;
  OverloadStats stats_ TAMPER_GUARDED_BY(mu_);
  double tokens_ TAMPER_GUARDED_BY(mu_) = 0.0;
  std::uint64_t last_refill_ns_ TAMPER_GUARDED_BY(mu_) = 0;
  std::uint32_t pressure_streak_ TAMPER_GUARDED_BY(mu_) = 0;
  std::uint32_t calm_streak_ TAMPER_GUARDED_BY(mu_) = 0;
  std::int64_t first_shed_ts_sec_ TAMPER_GUARDED_BY(mu_) = 0;
  // Breaker: closed (failures < trip_after), open (until open_until_ns_),
  // then half-open — breaker_open() returns false past the deadline and the
  // next report_outcome() decides.
  std::uint32_t consecutive_failures_ TAMPER_GUARDED_BY(mu_) = 0;
  bool breaker_tripped_ TAMPER_GUARDED_BY(mu_) = false;
  std::uint64_t breaker_open_until_ns_ TAMPER_GUARDED_BY(mu_) = 0;
  obs::Registry* metrics_ = nullptr;
  obs::Registry::CollectorId collector_ = 0;
};

}  // namespace tamper::control
