#include "control/overload.h"

namespace tamper::control {

const char* name(Level level) noexcept {
  switch (level) {
    case Level::kNormal:
      return "normal";
    case Level::kSampleDown:
      return "sample_down";
    case Level::kEmbryonicShed:
      return "embryonic_shed";
    case Level::kEvidenceOnly:
      return "evidence_only";
    case Level::kShedding:
      return "shedding";
  }
  return "normal";
}

LevelPolicy policy_for(Level level) noexcept {
  // One rung at a time, each strictly harsher than the last: the stride
  // doubles while the previous rungs' policies stay in force.
  switch (level) {
    case Level::kNormal:
      return {1, false, true, true};
    case Level::kSampleDown:
      return {4, false, true, true};
    case Level::kEmbryonicShed:
      return {8, true, true, true};
    case Level::kEvidenceOnly:
      return {16, true, false, true};
    case Level::kShedding:
      return {1, true, false, false};
  }
  return {};
}

OverloadController::OverloadController(const OverloadConfig& config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &obs::monotonic_clock()) {
  const double burst = config_.admit_burst > 0 ? config_.admit_burst
                                               : config_.admit_rate_per_sec;
  common::MutexLock lock(mu_);
  tokens_ = burst;
  last_refill_ns_ = clock_->now_ns();
}

OverloadController::~OverloadController() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_);
}

void OverloadController::refill_locked(std::uint64_t now_ns) {
  if (config_.admit_rate_per_sec <= 0) return;
  const double burst = config_.admit_burst > 0 ? config_.admit_burst
                                               : config_.admit_rate_per_sec;
  if (now_ns > last_refill_ns_) {
    const double elapsed_s = static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    tokens_ += elapsed_s * config_.admit_rate_per_sec;
    if (tokens_ > burst) tokens_ = burst;
  }
  last_refill_ns_ = now_ns;
}

void OverloadController::move_level_locked(Level to) {
  if (to == stats_.level) return;
  if (static_cast<std::uint8_t>(to) > static_cast<std::uint8_t>(stats_.level)) {
    ++stats_.escalations;
  } else {
    ++stats_.deescalations;
  }
  stats_.level = to;
  if (static_cast<std::uint8_t>(to) > static_cast<std::uint8_t>(stats_.peak_level))
    stats_.peak_level = to;
}

void OverloadController::observe(const Inputs& inputs) {
  common::MutexLock lock(mu_);
  const bool queue_pressure =
      inputs.queue_capacity > 0 &&
      static_cast<double>(inputs.queue_depth) >=
          config_.high_watermark * static_cast<double>(inputs.queue_capacity);
  const bool queue_calm =
      inputs.queue_capacity == 0 ||
      static_cast<double>(inputs.queue_depth) <=
          config_.low_watermark * static_cast<double>(inputs.queue_capacity);
  const bool spool_pressure = config_.spool_high_watermark > 0 &&
                              inputs.spool_depth >= config_.spool_high_watermark;
  const bool pressure = queue_pressure || spool_pressure || breaker_tripped_;
  const bool calm = queue_calm && !spool_pressure && !breaker_tripped_;

  if (pressure) {
    calm_streak_ = 0;
    if (++pressure_streak_ >= config_.escalate_after) {
      pressure_streak_ = 0;
      if (stats_.level != Level::kShedding)
        move_level_locked(static_cast<Level>(
            static_cast<std::uint8_t>(stats_.level) + 1));
    }
  } else if (calm) {
    pressure_streak_ = 0;
    if (++calm_streak_ >= config_.deescalate_after) {
      calm_streak_ = 0;
      if (stats_.level != Level::kNormal)
        move_level_locked(static_cast<Level>(
            static_cast<std::uint8_t>(stats_.level) - 1));
    }
  } else {
    // Between the watermarks: hysteresis holds the current level.
    pressure_streak_ = 0;
    calm_streak_ = 0;
  }
}

AdmissionDecision OverloadController::admit(bool embryonic,
                                            std::int64_t sample_ts_sec) {
  common::MutexLock lock(mu_);
  ++stats_.offered;
  const LevelPolicy policy = policy_for(stats_.level);
  AdmissionDecision decision;
  decision.level = stats_.level;

  if (!policy.admit_new_flows) {
    decision.reason = DropReason::kRejected;
    ++stats_.rejected;
  } else if (embryonic && policy.shed_embryonic) {
    decision.reason = DropReason::kEmbryonicShed;
    ++stats_.embryonic_shed;
  } else if (policy.admit_one_in > 1 && stats_.offered % policy.admit_one_in != 0) {
    decision.reason = DropReason::kSampledDown;
    ++stats_.sampled_down;
  } else if (config_.admit_rate_per_sec > 0) {
    refill_locked(clock_->now_ns());
    if (tokens_ < 1.0) {
      decision.reason = DropReason::kRateLimited;
      ++stats_.rate_limited;
    } else {
      tokens_ -= 1.0;
    }
  }

  if (decision.reason == DropReason::kNone) {
    ++stats_.admitted;
  } else {
    decision.admit = false;
    if (first_shed_ts_sec_ == 0)
      first_shed_ts_sec_ = sample_ts_sec > 0 ? sample_ts_sec : 1;
  }
  return decision;
}

void OverloadController::report_outcome(bool delivered) {
  common::MutexLock lock(mu_);
  if (delivered) {
    consecutive_failures_ = 0;
    breaker_tripped_ = false;
    return;
  }
  ++consecutive_failures_;
  // A failure while tripped is the half-open probe failing: re-trip and
  // restart the cooldown.
  if (breaker_tripped_ || consecutive_failures_ >= config_.breaker_trip_after) {
    breaker_tripped_ = true;
    ++stats_.breaker_trips;
    breaker_open_until_ns_ = clock_->now_ns() + config_.breaker_cooldown_ns;
  }
}

bool OverloadController::breaker_open() {
  common::MutexLock lock(mu_);
  if (!breaker_tripped_) return false;
  // Past the cooldown the breaker half-opens: let one probe through.
  return clock_->now_ns() < breaker_open_until_ns_;
}

void OverloadController::count_report_skipped() {
  common::MutexLock lock(mu_);
  ++stats_.reports_skipped;
}

Level OverloadController::level() const {
  common::MutexLock lock(mu_);
  return stats_.level;
}

OverloadStats OverloadController::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

OverloadState OverloadController::state() const {
  common::MutexLock lock(mu_);
  OverloadState s;
  s.level = stats_.level;
  s.shed_samples = stats_.shed_total();
  s.first_shed_ts_sec = first_shed_ts_sec_;
  return s;
}

void OverloadController::set_obs(obs::Registry* metrics) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_);
  metrics_ = metrics;
  if (metrics == nullptr) return;
  obs::Registry& m = *metrics;
  obs::Gauge* level_g =
      &m.gauge("tamper_overload_level",
               "Current degradation-ladder level (0=normal .. 4=shedding)");
  obs::Gauge* peak_g = &m.gauge("tamper_overload_peak_level",
                                "Highest ladder level reached this run");
  obs::Counter* offered = &m.counter("tamper_overload_offered_total",
                                     "Samples presented to admission control");
  obs::Counter* admitted = &m.counter("tamper_overload_admitted_total",
                                      "Samples admitted past the controller");
  auto& shed_family = m.counter_family("tamper_overload_shed_total",
                                       "Samples refused at admission, by reason",
                                       {"reason"});
  obs::Counter* shed_rate = &shed_family.with({"rate_limited"});
  obs::Counter* shed_stride = &shed_family.with({"sampled_down"});
  obs::Counter* shed_embryonic = &shed_family.with({"embryonic"});
  obs::Counter* shed_rejected = &shed_family.with({"rejected"});
  auto& transitions_family = m.counter_family(
      "tamper_overload_transitions_total", "Ladder transitions, by direction",
      {"direction"});
  obs::Counter* escalations = &transitions_family.with({"escalate"});
  obs::Counter* deescalations = &transitions_family.with({"deescalate"});
  obs::Gauge* breaker_g = &m.gauge("tamper_overload_breaker_open",
                                   "1 while the report circuit breaker is tripped");
  obs::Counter* trips = &m.counter("tamper_overload_breaker_trips_total",
                                   "Circuit breaker trips (incl. failed probes)");
  obs::Counter* skipped =
      &m.counter("tamper_overload_reports_skipped_total",
                 "Periodic report emissions skipped while the breaker was open");
  collector_ = m.add_collector([=, this] {
    OverloadStats s;
    bool tripped = false;
    {
      common::MutexLock lock(mu_);
      s = stats_;
      tripped = breaker_tripped_;
    }
    level_g->set(static_cast<double>(static_cast<std::uint8_t>(s.level)));
    peak_g->set(static_cast<double>(static_cast<std::uint8_t>(s.peak_level)));
    offered->increment_to(s.offered);
    admitted->increment_to(s.admitted);
    shed_rate->increment_to(s.rate_limited);
    shed_stride->increment_to(s.sampled_down);
    shed_embryonic->increment_to(s.embryonic_shed);
    shed_rejected->increment_to(s.rejected);
    escalations->increment_to(s.escalations);
    deescalations->increment_to(s.deescalations);
    breaker_g->set(tripped ? 1.0 : 0.0);
    trips->increment_to(s.breaker_trips);
    skipped->increment_to(s.reports_skipped);
  });
}

}  // namespace tamper::control
